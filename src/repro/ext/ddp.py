"""DDP-style gradient synchronization over MCR-DL.

What `torch.nn.parallel.DistributedDataParallel` does for PyTorch,
packaged over the MCR-DL communicator: parameters are registered once,
assigned to fixed buckets in reverse registration order (gradients
become ready back-to-front during backward), and each bucket's
averaged allreduce is posted the moment its last gradient arrives —
overlapping communication with the rest of backward.

Because it sits on MCR-DL rather than one library, the reduction
backend can be an explicit name or ``"auto"`` for tuned selection, and
different buckets can land on different backends.

Usage::

    ddp = DistributedDataParallel(comm, backend="auto")
    for name, tensor in params:
        ddp.register_parameter(name, tensor)
    ddp.finalize_buckets()

    for step in range(steps):
        ...backward produces gradients back-to-front...
        for name in reversed(param_names):
            ddp.grad_ready(name)
        ddp.wait_all()   # gradients now averaged across ranks
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.backends.ops import ReduceOp
from repro.core.exceptions import MCRError
from repro.core.protocols import CommCore
from repro.tensor import SimTensor
from repro.tensor.tensor import cat

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.handles import WorkHandle

DEFAULT_BUCKET_BYTES = 25 * 1024 * 1024  # torch DDP's default


@dataclass
class _Bucket:
    names: list[str] = field(default_factory=list)
    tensors: list[SimTensor] = field(default_factory=list)
    nbytes: int = 0
    pending: set = field(default_factory=set)
    handle: Optional["WorkHandle"] = None


class DistributedDataParallel:
    """Bucketed, overlapped gradient averaging."""

    def __init__(
        self,
        comm: CommCore,
        backend: str = "auto",
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        op: ReduceOp = ReduceOp.AVG,
    ):
        if bucket_bytes <= 0:
            raise MCRError("bucket_bytes must be positive")
        self.comm = comm
        self.backend = backend
        self.bucket_bytes = bucket_bytes
        self.op = op
        self._params: dict[str, SimTensor] = {}
        self._order: list[str] = []
        self._buckets: list[_Bucket] = []
        self._bucket_of: dict[str, int] = {}
        self._finalized = False

    # -- setup -----------------------------------------------------------

    def register_parameter(self, name: str, grad: SimTensor) -> None:
        """Register one parameter's gradient tensor (once, before
        finalize_buckets)."""
        if self._finalized:
            raise MCRError("cannot register parameters after finalize_buckets()")
        if name in self._params:
            raise MCRError(f"parameter {name!r} registered twice")
        self._params[name] = grad
        self._order.append(name)

    def finalize_buckets(self) -> None:
        """Freeze bucket assignment (reverse registration order, greedy
        fill up to bucket_bytes — torch DDP's scheme)."""
        if self._finalized:
            raise MCRError("finalize_buckets() called twice")
        if not self._params:
            raise MCRError("no parameters registered")
        current = _Bucket()
        for name in reversed(self._order):
            grad = self._params[name]
            if current.nbytes and current.nbytes + grad.nbytes() > self.bucket_bytes:
                self._buckets.append(current)
                current = _Bucket()
            current.names.append(name)
            current.tensors.append(grad)
            current.nbytes += grad.nbytes()
        self._buckets.append(current)
        for i, bucket in enumerate(self._buckets):
            for name in bucket.names:
                self._bucket_of[name] = i
        self._finalized = True
        self._reset_pending()

    def _reset_pending(self) -> None:
        for bucket in self._buckets:
            bucket.pending = set(bucket.names)
            bucket.handle = None

    def reset(self) -> None:
        """Abandon the current step after an error and rearm for a retry.

        A step that raises between :meth:`grad_ready` and
        :meth:`wait_all` leaves buckets half-drained and possibly holding
        posted handles; without this, the retried step's ``grad_ready``
        raises "marked ready twice" on every gradient the failed step
        already produced.  Any allreduce already in flight is completed
        first (SPMD: every rank posted it) so the retried step cannot
        race against the abandoned one, then the ready-tracking and
        handles are cleared.
        """
        if not self._finalized:
            raise MCRError("finalize_buckets() before reset()")
        for bucket in self._buckets:
            if bucket.handle is not None:
                bucket.handle.synchronize()
        self._reset_pending()

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def bucket_layout(self) -> list[list[str]]:
        """Parameter names per bucket, in reduction order."""
        return [list(b.names) for b in self._buckets]

    # -- per-step protocol --------------------------------------------------

    def grad_ready(self, name: str) -> None:
        """Mark one gradient produced; posts the bucket's allreduce when
        it was the last one missing."""
        if not self._finalized:
            raise MCRError("finalize_buckets() before grad_ready()")
        try:
            bucket = self._buckets[self._bucket_of[name]]
        except KeyError:
            raise MCRError(f"unknown parameter {name!r}") from None
        if name not in bucket.pending:
            raise MCRError(f"gradient {name!r} marked ready twice this step")
        bucket.pending.discard(name)
        if not bucket.pending:
            self._reduce_bucket(bucket)

    def _reduce_bucket(self, bucket: _Bucket) -> None:
        fused = cat(bucket.tensors)
        handle = self.comm.all_reduce(self.backend, fused, op=self.op, async_op=True)
        if not fused.is_virtual:
            views = [t.view_flat() for t in bucket.tensors]
            flat = fused.view_flat()

            def copy_back() -> None:
                offset = 0
                for view in views:
                    view[:] = flat[offset : offset + view.size]
                    offset += view.size

            if handle.flag.is_set:
                copy_back()
            else:
                handle.flag.callbacks.append(copy_back)
        bucket.handle = handle

    def wait_all(self) -> None:
        """Block until every bucket's reduction completed; resets the
        ready-tracking for the next step."""
        for bucket in self._buckets:
            if bucket.pending:
                raise MCRError(
                    f"wait_all() with gradients still missing: {sorted(bucket.pending)}"
                )
            if bucket.handle is not None:
                bucket.handle.synchronize()
        self._reset_pending()
