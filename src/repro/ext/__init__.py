"""MCR-DL extensibility layer (paper §V-E, contribution C6).

Because every communication operation funnels through MCR-DL, cross-
cutting optimizations plug in once and apply to all operations and all
backends:

* :mod:`~repro.ext.logging_ext` — communication logging (generates the
  breakdowns of Figures 1 and 12);
* :mod:`~repro.ext.compression` — lossy fixed-rate compression (zfp-
  style) of eligible payloads;
* :mod:`~repro.ext.fusion` — tensor fusion with max-buffer ``B`` and
  max-wait ``T``, including the cross-backend timeout-flush overlap
  optimization.
"""

from repro.ext.logging_ext import CommLogger, CommRecord
from repro.ext.compression import FixedRateCodec
from repro.ext.fusion import TensorFusion, FusionConfig
from repro.ext.persistent import PersistentCollective
from repro.ext.ddp import DistributedDataParallel

__all__ = [
    "CommLogger",
    "CommRecord",
    "FixedRateCodec",
    "TensorFusion",
    "FusionConfig",
    "PersistentCollective",
    "DistributedDataParallel",
]
