"""Tensor fusion (paper §V-E).

Combines many small tensors into one bandwidth-optimal buffer before
communicating — the optimization Horovod and PyTorch DDP build into
their allreduce paths, implemented here once on top of MCR-DL so it
applies to every backend.

Two parameters (paper §V-E): the maximum fusion-buffer size ``B`` and
the maximum wait time ``T`` for the buffer to fill.  MCR-DL's extra
trick: when a buffer times out *below* ``B`` (so it will not saturate
bandwidth anyway), the flush is routed to the least-busy backend's
communication streams, overlapping it with other backends' fusion
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.backends.ops import ReduceOp
from repro.core.exceptions import MCRError
from repro.core.protocols import CommCore
from repro.tensor import SimTensor
from repro.tensor.tensor import cat

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.handles import WorkHandle


@dataclass
class FusionConfig:
    """Tensor-fusion parameters."""

    #: maximum fusion buffer size B, bytes
    max_buffer_bytes: int = 4 * 1024 * 1024
    #: maximum wait T for the buffer to fill, µs (enforced lazily: checked
    #: on each subsequent post and at explicit flush points)
    max_wait_us: float = 50.0
    #: tensors at or above this size bypass fusion entirely, bytes
    bypass_threshold: int = 1024 * 1024
    #: route timeout flushes to the least-busy backend (§V-E optimization)
    cross_backend_overlap: bool = True


class FusedHandle:
    """Per-tensor handle for a (possibly not yet flushed) fused op."""

    def __init__(self, fusion: "TensorFusion", bucket_key: tuple):
        self._fusion = fusion
        self._bucket_key = bucket_key
        self._inner: Optional["WorkHandle"] = None

    def _bind(self, inner: "WorkHandle") -> None:
        self._inner = inner

    def _ensure_flushed(self) -> None:
        if self._inner is None:
            self._fusion.flush(self._bucket_key)
        if self._inner is None:  # pragma: no cover - defensive
            raise MCRError("fusion flush did not bind a work handle")

    def wait(self, backend: Optional[str] = None) -> None:
        self._ensure_flushed()
        if backend is not None:
            # validate like WorkHandle.wait, but tolerate the §V-E
            # cross-backend reroute: a timeout/boundary flush may run on
            # a different backend than the one the tensor was posted to,
            # so both the posted name and the actual one are accepted
            from repro.backends.base import canonical_name

            requested = canonical_name(backend)
            posted = canonical_name(self._bucket_key[0])
            actual = self._inner.backend_name
            if requested not in (posted, actual):
                raise MCRError(
                    f"fused handle belongs to backend {posted!r} "
                    f"(flushed on {actual!r}), wait called with {backend!r}"
                )
        self._inner.wait()

    def synchronize(self) -> None:
        self._ensure_flushed()
        self._inner.synchronize()

    def is_completed(self) -> bool:
        return self._inner is not None and self._inner.is_completed()


class _Bucket:
    """Pending small tensors for one (backend, reduce op, dtype)."""

    __slots__ = ("tensors", "handles", "first_post_us", "nbytes")

    def __init__(self) -> None:
        self.tensors: list[SimTensor] = []
        self.handles: list[FusedHandle] = []
        self.first_post_us: Optional[float] = None
        self.nbytes = 0


class TensorFusion:
    """Fusion engine for allreduce traffic over one communicator."""

    def __init__(self, comm: CommCore, config: Optional[FusionConfig] = None):
        self.comm = comm
        self.config = config or FusionConfig()
        self._buckets: dict[tuple, _Bucket] = {}
        # per-bucket flush sequence numbers: SPMD ranks flush the same
        # buckets in the same order, so (key, seq) identifies "the same
        # flush" across ranks for route coordination
        self._flush_seq: dict[tuple, int] = {}
        #: statistics: flushes by trigger kind (full = bucket reached B;
        #: timeout = T expired; boundary = explicit flush below B, e.g.
        #: at a step boundary)
        self.stats = {
            "full_flushes": 0,
            "timeout_flushes": 0,
            "boundary_flushes": 0,
            "bypass": 0,
            "fused_tensors": 0,
        }

    # -- public API -----------------------------------------------------------

    def all_reduce(
        self, backend: str, tensor: SimTensor, op: ReduceOp = ReduceOp.SUM
    ) -> "FusedHandle | WorkHandle":
        """Post a (possibly fused) allreduce; always returns a handle."""
        if tensor.nbytes() >= self.config.bypass_threshold:
            self.stats["bypass"] += 1
            return self.comm.all_reduce(backend, tensor, op=op, async_op=True)

        key = (backend, op.value, tensor.dtype.name)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
        elif (
            bucket.first_post_us is not None
            and self.comm.ctx.now - bucket.first_post_us > self.config.max_wait_us
        ):
            # lazy timeout: T expired before this post, flush the old batch
            self.flush(key, timeout=True)
            bucket = self._buckets[key] = _Bucket()

        if bucket.first_post_us is None:
            bucket.first_post_us = self.comm.ctx.now
        handle = FusedHandle(self, key)
        bucket.tensors.append(tensor)
        bucket.handles.append(handle)
        bucket.nbytes += tensor.nbytes()
        self.stats["fused_tensors"] += 1

        if bucket.nbytes >= self.config.max_buffer_bytes:
            self.flush(key)
        return handle

    def flush(self, key: Optional[tuple] = None, timeout: bool = False) -> None:
        """Flush one bucket (or all) as fused collectives."""
        keys = [key] if key is not None else list(self._buckets)
        for k in keys:
            bucket = self._buckets.pop(k, None)
            if bucket is None or not bucket.tensors:
                continue
            self._flush_bucket(k, bucket, timeout)

    def flush_all(self) -> None:
        """Flush every pending bucket (call at step boundaries)."""
        self.flush(None)

    # -- internals -------------------------------------------------------------

    def _flush_bucket(self, key: tuple, bucket: _Bucket, timeout: bool) -> None:
        backend, op_value, _dtype = key
        op = ReduceOp(op_value)
        seq = self._flush_seq.get(key, 0)
        self._flush_seq[key] = seq + 1
        below_b = bucket.nbytes < self.config.max_buffer_bytes
        if timeout:
            trigger = "timeout"
            self.stats["timeout_flushes"] += 1
        elif below_b:
            # explicit flush (step boundary) of a bucket that never
            # filled: not a full flush — same character as a timeout
            trigger = "boundary"
            self.stats["boundary_flushes"] += 1
        else:
            trigger = "full"
            self.stats["full_flushes"] += 1
        if (
            (timeout or below_b)
            and self.config.cross_backend_overlap
            and len(self.comm.backends) > 1
        ):
            # a below-B flush will not saturate bandwidth: overlap it with
            # other backends' fusion buffers on the least busy one (§V-E).
            # Stream occupancy is rank-local and ranks reach this point at
            # different virtual times, so the choice must be coordinated:
            # the first rank to flush (key, seq) decides from its own load
            # and publishes the route; the other ranks follow it.
            backend = self._route_flush(key, seq)

        obs = self.comm._obs
        if obs is not None:
            from repro.obs.metrics import ObsEvent

            rank = self.comm.ctx.rank
            now = self.comm.ctx.now
            obs.observe(
                ObsEvent(
                    kind="fusion",
                    rank=rank,
                    stream="",
                    backend=backend,
                    family=trigger,
                    nbytes=bucket.nbytes,
                    step=obs.current_step(rank),
                    start=now,
                    end=now,
                    detail=f"{len(bucket.tensors)} tensors",
                )
            )
        tensors = bucket.tensors
        fused_tensor = cat(tensors)
        inner = self.comm.all_reduce(backend, fused_tensor, op=op, async_op=True)

        if not fused_tensor.is_virtual:
            # scatter reduced values back into the original tensors when
            # the fused op completes (virtual tensors carry no data)
            fused = fused_tensor.view_flat()
            views = [t.view_flat() for t in tensors]
            sizes = [v.size for v in views]

            def copy_back() -> None:
                offset = 0
                for view, size in zip(views, sizes):
                    view[:] = fused[offset : offset + size]
                    offset += size

            if inner.flag.is_set:
                copy_back()
            else:
                inner.flag.callbacks.append(copy_back)
        for handle in bucket.handles:
            handle._bind(inner)

    def _route_flush(self, key: tuple, seq: int) -> str:
        """Symmetric backend choice for one below-B flush.

        First-flusher-decides (the coordinator pattern Horovod uses for
        fusion ordering): the route table lives in the communicator's
        cross-rank shared state, entries are dropped once every group
        rank has read them.
        """
        routes = self.comm._shared.setdefault("fusion_routes", {})
        entry = routes.get((key, seq))
        if entry is None:
            choice = self.comm.sync.least_busy_backend(
                list(self.comm.backends), self.comm._outstanding
            )
            routes[(key, seq)] = [choice, 1]
            return choice
        entry[1] += 1
        if entry[1] >= len(self.comm.group_ranks):
            del routes[(key, seq)]
        return entry[0]

    @property
    def pending_bytes(self) -> int:
        return sum(b.nbytes for b in self._buckets.values())
