"""Persistent collectives (paper §V-E's named future optimization).

MPI-4 style persistent operations: the argument list is validated and
the dispatch plan negotiated **once** at initialization, then each
``start()`` re-posts the same operation with most of the per-call
dispatch cost amortized away.  For DL training — the same gradient
buckets reduced every step — this removes the host-side setup from the
steady state.

Usage::

    op = PersistentCollective(comm, "all_reduce", "nccl", grad_bucket)
    for _ in range(steps):
        handle = op.start()
        ...
        handle.wait()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.exceptions import MCRError
from repro.core.handles import WorkHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.comm import MCRCommunicator

#: fraction of the normal dispatch cost a persistent start still pays
#: (the request-start syscall; argument marshalling is gone)
PERSISTENT_DISPATCH_SCALE = 0.25

#: operations that may be made persistent (collectives with stable
#: argument lists; rooted/vectored ops qualify too)
_ALLOWED = {
    "all_reduce",
    "all_gather",
    "all_gather_base",
    "reduce_scatter",
    "all_to_all_single",
    "bcast",
    "reduce",
    "gather",
    "scatter",
    "gatherv",
    "scatterv",
    "all_gatherv",
    "all_to_allv",
}


class PersistentCollective:
    """A pre-negotiated collective that can be started repeatedly."""

    def __init__(self, comm: "MCRCommunicator", op_name: str, backend: str, *args, **kwargs):
        if op_name not in _ALLOWED:
            raise MCRError(
                f"{op_name!r} cannot be made persistent; allowed: {sorted(_ALLOWED)}"
            )
        if kwargs.pop("async_op", None) is not None:
            raise MCRError("persistent collectives are always started async")
        self.comm = comm
        self.op_name = op_name
        self.backend = backend
        self._args = args
        self._kwargs = kwargs
        self._post = getattr(comm, op_name)
        self.starts = 0
        # init-time negotiation: resolve the backend once so bad names
        # fail here, not at step N
        comm._backend(backend) if backend != "auto" else None

    def start(self) -> WorkHandle:
        """Post one instance of the operation; returns its handle."""
        self.starts += 1
        comm = self.comm
        prev = getattr(comm, "_persistent_scale", None)
        comm._persistent_scale = PERSISTENT_DISPATCH_SCALE
        try:
            handle = self._post(
                self.backend, *self._args, async_op=True, **self._kwargs
            )
        finally:
            comm._persistent_scale = prev
        return handle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PersistentCollective({self.op_name} on {self.backend}, "
            f"starts={self.starts})"
        )
