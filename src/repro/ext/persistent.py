"""Persistent collectives (paper §V-E's named future optimization).

MPI-4 style persistent operations: the argument list is validated and
the dispatch plan negotiated **once** at initialization, then each
``start()`` re-posts the same operation with most of the per-call
dispatch cost amortized away.  For DL training — the same gradient
buckets reduced every step — this removes the host-side setup from the
steady state.

Implementation: initialization runs the public op with the
communicator's ``_collective`` intercepted, capturing the exact
internal invocation (validated buffers, op family, rendezvous meta) and
pre-compiling its :class:`~repro.core.dispatch.CommPlan` in the
communicator's dispatch plan cache.  ``start()`` replays that
invocation with ``dispatch_scale=PERSISTENT_DISPATCH_SCALE`` — a
per-call keyword, so a start that raises (quarantined backend, fault
storm) cannot leak a discount into unrelated operations, unlike the old
``comm._persistent_scale`` global.  Plan invalidation (tuning-table
swaps, quarantines, codec changes) is handled by the cache itself: the
next start recompiles transparently.

Usage::

    op = PersistentCollective(comm, "all_reduce", "nccl", grad_bucket)
    for _ in range(steps):
        handle = op.start()
        ...
        handle.wait()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.exceptions import MCRError
from repro.core.handles import WorkHandle
from repro.core.protocols import CommCore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.dispatch import CommPlan

#: fraction of the normal dispatch cost a persistent start still pays
#: (the request-start syscall; argument marshalling is gone)
PERSISTENT_DISPATCH_SCALE = 0.25

#: operations that may be made persistent (collectives with stable
#: argument lists; rooted/vectored ops qualify too)
_ALLOWED = {
    "all_reduce",
    "all_gather",
    "all_gather_base",
    "reduce_scatter",
    "all_to_all_single",
    "bcast",
    "reduce",
    "gather",
    "scatter",
    "gatherv",
    "scatterv",
    "all_gatherv",
    "all_to_allv",
}


class PersistentCollective:
    """A pre-negotiated collective that can be started repeatedly."""

    def __init__(self, comm: CommCore, op_name: str, backend: str, *args, **kwargs):
        if op_name not in _ALLOWED:
            raise MCRError(
                f"{op_name!r} cannot be made persistent; allowed: {sorted(_ALLOWED)}"
            )
        if kwargs.pop("async_op", None) is not None:
            raise MCRError("persistent collectives are always started async")
        self.comm = comm
        self.op_name = op_name
        self.backend = backend
        self.starts = 0
        # init-time negotiation: resolve the backend once so bad names
        # fail here, not at step N
        if backend != "auto":
            comm._backend(backend)
        # run the public op with dispatch intercepted: arguments are
        # validated here (bad shapes/roots fail at init) and the internal
        # invocation is captured for replay
        self._call = comm._capture_collective(
            getattr(comm, op_name), backend, *args, **kwargs
        )
        # pre-compile the plan so the first start() is already steady-state
        comm._plan_for_call(*self._call)

    @property
    def plan(self) -> "CommPlan":
        """The currently pinned dispatch plan (recompiled transparently
        after an invalidation epoch)."""
        return self.comm._plan_for_call(*self._call)

    def start(self) -> WorkHandle:
        """Post one instance of the operation; returns its handle."""
        self.starts += 1
        args, kwargs = self._call
        return self.comm._collective(
            *args, dispatch_scale=PERSISTENT_DISPATCH_SCALE, **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PersistentCollective({self.op_name} on {self.backend}, "
            f"starts={self.starts})"
        )
