"""Communication logging (paper §V-E).

Every MCR-DL operation is recorded with its family, backend, wire size,
and completion interval.  The paper uses exactly this extension to
generate the communication breakdowns of Figure 1 and Figure 12.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Flag
    from repro.sim.process import RankContext


@dataclass(slots=True)
class CommRecord:
    """One completed communication operation on one rank.

    A plain slotted dataclass: one record is appended per operation, and
    the frozen variant's ``object.__setattr__``-per-field construction
    cost was measurable at that rate.
    """

    rank: int
    family: str
    backend: str
    nbytes: int
    start: float
    end: float
    async_op: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


class CommLogger:
    """Job-wide communication log (shared across all ranks)."""

    def __init__(self) -> None:
        self.records: list[CommRecord] = []

    @classmethod
    def shared(cls, ctx: "RankContext") -> "CommLogger":
        """The per-job logger instance, created on first use."""
        return ctx.shared.setdefault("comm_logger", cls())

    def log(
        self,
        rank: int,
        family: str,
        backend: str,
        nbytes: int,
        start: float,
        end: float,
        async_op: bool,
    ) -> None:
        self.records.append(
            CommRecord(rank, family, backend, nbytes, start, end, async_op)
        )

    def defer(self, flag: "Flag", emit: Callable[[], None]) -> None:
        """Emit a record when ``flag`` fires (completion time unknown yet)."""
        flag.callbacks.append(emit)

    # -- aggregation (Figures 1 & 12) ---------------------------------------

    def total_time_by_family(self, rank: Optional[int] = None) -> dict[str, float]:
        """Summed durations per op family (one rank, or averaged over all)."""
        sums: dict[str, float] = defaultdict(float)
        counts_ranks = set()
        for r in self.records:
            if rank is not None and r.rank != rank:
                continue
            sums[r.family] += r.duration
            counts_ranks.add(r.rank)
        if rank is None and counts_ranks:
            return {k: v / len(counts_ranks) for k, v in sums.items()}
        return dict(sums)

    def total_time_by_backend(self, rank: Optional[int] = None) -> dict[str, float]:
        sums: dict[str, float] = defaultdict(float)
        ranks = set()
        for r in self.records:
            if rank is not None and r.rank != rank:
                continue
            sums[r.backend] += r.duration
            ranks.add(r.rank)
        if rank is None and ranks:
            return {k: v / len(ranks) for k, v in sums.items()}
        return dict(sums)

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for r in self.records:
            counts[r.family] += 1
        return dict(counts)

    def bytes_by_family(self) -> dict[str, int]:
        sums: dict[str, int] = defaultdict(int)
        for r in self.records:
            sums[r.family] += r.nbytes
        return dict(sums)

    def clear(self) -> None:
        self.records.clear()
