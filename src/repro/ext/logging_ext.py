"""Communication logging (paper §V-E).

Every MCR-DL operation is recorded with its family, backend, wire size,
and completion interval.  The paper uses exactly this extension to
generate the communication breakdowns of Figure 1 and Figure 12.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Flag
    from repro.sim.process import RankContext


@dataclass(slots=True)
class CommRecord:
    """One completed communication operation on one rank.

    A plain slotted dataclass: one record is appended per operation, and
    the frozen variant's ``object.__setattr__``-per-field construction
    cost was measurable at that rate.
    """

    rank: int
    family: str
    backend: str
    nbytes: int
    start: float
    end: float
    async_op: bool
    #: training step the op was *posted* in (-1 = outside any step)
    step: int = -1
    #: dispatch decision: "explicit" | "auto" | "reroute"
    dispatch: str = "explicit"
    #: stream the op ran on ("" when unknown)
    stream: str = ""
    #: hierarchical decomposition phase: "intra" | "inter" | "" (flat)
    phase: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True)
class FaultEvent:
    """One fault-handling action (retry, failover, quarantine) on one
    rank — the degraded-mode audit trail of the fault injector."""

    kind: str
    rank: int
    backend: str
    time_us: float
    detail: str = ""


class CommLogger:
    """Job-wide communication log (shared across all ranks)."""

    def __init__(self, world_size: Optional[int] = None) -> None:
        self.records: list[CommRecord] = []
        #: retry/failover/quarantine trail (fault injection)
        self.events: list[FaultEvent] = []
        #: job world size; per-job averages divide by it, not by however
        #: many ranks happened to appear in the filtered records
        self.world_size = world_size
        #: optional :class:`repro.obs.MetricsRegistry`: every comm record
        #: and fault event is mirrored into the unified schema.  Bound in
        #: :meth:`shared` from the job's shared state; None keeps log()
        #: at one attribute check of extra cost.
        self.observer = None

    @classmethod
    def shared(cls, ctx: "RankContext") -> "CommLogger":
        """The per-job logger instance, created on first use."""
        logger = ctx.shared.setdefault("comm_logger", cls(ctx.world_size))
        if logger.world_size is None:
            logger.world_size = ctx.world_size
        if logger.observer is None:
            logger.observer = ctx.shared.get("obs")
        return logger

    def log(
        self,
        rank: int,
        family: str,
        backend: str,
        nbytes: int,
        start: float,
        end: float,
        async_op: bool,
        step: int = -1,
        dispatch: str = "explicit",
        stream: str = "",
        phase: str = "",
    ) -> None:
        self.records.append(
            CommRecord(
                rank, family, backend, nbytes, start, end, async_op,
                step, dispatch, stream, phase,
            )
        )
        if self.observer is not None:
            from repro.obs.metrics import ObsEvent

            self.observer.observe(
                ObsEvent(
                    kind="comm",
                    rank=rank,
                    stream=stream,
                    backend=backend,
                    family=family,
                    nbytes=nbytes,
                    step=step,
                    start=start,
                    end=end,
                    detail=dispatch,
                    phase=phase,
                )
            )

    def defer(self, flag: "Flag", emit: Callable[[], None]) -> None:
        """Emit a record when ``flag`` fires (completion time unknown yet)."""
        flag.callbacks.append(emit)

    # -- fault events (retry / failover / quarantine) -----------------------

    def log_event(
        self, kind: str, rank: int, backend: str, time_us: float, detail: str = ""
    ) -> None:
        self.events.append(FaultEvent(kind, rank, backend, time_us, detail))
        if self.observer is not None:
            from repro.obs.metrics import ObsEvent

            self.observer.observe(
                ObsEvent(
                    kind="fault",
                    rank=rank,
                    stream="",
                    backend=backend,
                    family=kind,
                    nbytes=0,
                    step=self.observer.current_step(rank),
                    start=time_us,
                    end=time_us,
                    detail=detail,
                )
            )

    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for e in self.events:
            counts[e.kind] += 1
        return dict(counts)

    # -- aggregation (Figures 1 & 12) ---------------------------------------

    def _per_rank_divisor(self, observed: set) -> int:
        # divide by the true world size: ranks that logged nothing for a
        # given family/backend still count in a per-rank average (dividing
        # by observed ranks only inflates the result).  Loggers built
        # without a world size (direct construction) keep the observed-
        # rank behavior.
        if self.world_size is not None:
            return self.world_size
        return len(observed)

    def total_time_by_family(self, rank: Optional[int] = None) -> dict[str, float]:
        """Summed durations per op family (one rank, or per-rank average
        over the whole job)."""
        sums: dict[str, float] = defaultdict(float)
        counts_ranks = set()
        for r in self.records:
            if rank is not None and r.rank != rank:
                continue
            sums[r.family] += r.duration
            counts_ranks.add(r.rank)
        if rank is None and counts_ranks:
            divisor = self._per_rank_divisor(counts_ranks)
            return {k: v / divisor for k, v in sums.items()}
        return dict(sums)

    def total_time_by_backend(self, rank: Optional[int] = None) -> dict[str, float]:
        sums: dict[str, float] = defaultdict(float)
        ranks = set()
        for r in self.records:
            if rank is not None and r.rank != rank:
                continue
            sums[r.backend] += r.duration
            ranks.add(r.rank)
        if rank is None and ranks:
            divisor = self._per_rank_divisor(ranks)
            return {k: v / divisor for k, v in sums.items()}
        return dict(sums)

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for r in self.records:
            counts[r.family] += 1
        return dict(counts)

    def bytes_by_family(self) -> dict[str, int]:
        sums: dict[str, int] = defaultdict(int)
        for r in self.records:
            sums[r.family] += r.nbytes
        return dict(sums)

    def clear(self) -> None:
        self.records.clear()
        self.events.clear()
        if self.observer is not None:
            # keep the registry's comm totals reconciled with this log
            # (the trainer clears both at the warmup/measure boundary)
            self.observer.clear_comm()
