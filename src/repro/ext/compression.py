"""Lossy fixed-rate communication compression (paper §V-E).

The paper integrates zfp [30] fixed-rate compression into MCR-DL.  zfp
itself is a C library; the substitution here is a real fixed-rate block
codec with the same *interface contract*: a guaranteed output size
(``rate_bits`` per element) and a bounded, measurable quantization error
— enough to exercise the code path (wire-size reduction + codec kernel
time + actual numerical error) end to end.

The codec is block-scaled linear quantization: each block of
``BLOCK_ELEMS`` values stores one float32 scale plus ``rate_bits``-bit
signed integers.  For ``rate_bits=8`` on float32 payloads this is ~4x
compression with relative error bounded by ``1/(2**(rate_bits-1) - 1)``
of the block's max magnitude.
"""

from __future__ import annotations

import numpy as np

BLOCK_ELEMS = 256

#: simulated GPU throughput of the (de)compression kernels, GB/s
CODEC_GBPS = 400.0


class FixedRateCodec:
    """Fixed-rate lossy codec for floating-point payloads."""

    def __init__(self, rate_bits: int = 8):
        if not 2 <= rate_bits <= 16:
            raise ValueError(f"rate_bits must be in [2, 16], got {rate_bits}")
        self.rate_bits = rate_bits
        self.qmax = (1 << (rate_bits - 1)) - 1

    # -- size / time model -----------------------------------------------------

    def compressed_nbytes(self, nbytes: int) -> int:
        """Wire bytes for a payload of ``nbytes`` (float32 elements)."""
        n_elems = max(1, nbytes // 4)
        n_blocks = (n_elems + BLOCK_ELEMS - 1) // BLOCK_ELEMS
        payload_bits = n_elems * self.rate_bits
        scale_bytes = n_blocks * 4
        # ceil-div: a partial trailing byte still goes on the wire
        return (payload_bits + 7) // 8 + scale_bytes

    def ratio(self, nbytes: int) -> float:
        return nbytes / self.compressed_nbytes(nbytes)

    def codec_time_us(self, nbytes: int) -> float:
        """Compress + decompress kernel time for ``nbytes`` of payload."""
        return 2.0 * nbytes / (CODEC_GBPS * 1e3)

    # -- real data transform -------------------------------------------------

    def quantize(self, array: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Compress: returns (int quantized values, per-block scales)."""
        flat = array.reshape(-1).astype(np.float64)
        n = flat.size
        n_blocks = (n + BLOCK_ELEMS - 1) // BLOCK_ELEMS
        padded = np.zeros(n_blocks * BLOCK_ELEMS)
        padded[:n] = flat
        blocks = padded.reshape(n_blocks, BLOCK_ELEMS)
        scales = np.abs(blocks).max(axis=1)
        scales[scales == 0] = 1.0
        q = np.rint(blocks / scales[:, None] * self.qmax).astype(np.int32)
        return q, scales

    def dequantize(
        self, q: np.ndarray, scales: np.ndarray, n: int, dtype: np.dtype
    ) -> np.ndarray:
        blocks = q.astype(np.float64) * scales[:, None] / self.qmax
        return blocks.reshape(-1)[:n].astype(dtype)

    def apply_quantization_error(self, array: np.ndarray) -> None:
        """Round-trip ``array`` through the codec in place.

        This is what the communicator applies to compressed payloads so
        downstream consumers observe the *actual* lossy values, the same
        way real zfp-compressed gradients would.
        """
        if not np.issubdtype(array.dtype, np.floating):
            return  # integer payloads are never compressed
        q, scales = self.quantize(array)
        array.reshape(-1)[:] = self.dequantize(q, scales, array.size, array.dtype)

    def max_relative_error(self) -> float:
        """Worst-case error relative to each block's max magnitude."""
        return 0.5 / self.qmax
