"""Benchmark reporting: printable tables and persisted result files.

Every benchmark in ``benchmarks/`` prints the rows/series the paper's
corresponding table or figure reports, and persists the same content
under ``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence


@dataclass
class Report:
    """One experiment's output: a title, table rows, and notes."""

    experiment: str  # e.g. "fig8"
    title: str
    header: Sequence[str]
    rows: list[Sequence] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        lines = [f"== {self.experiment}: {self.title} ==", ""]
        lines.append(format_table(self.header, self.rows))
        if self.notes:
            lines.append("")
            lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "header": list(self.header),
            "rows": [list(r) for r in self.rows],
            "notes": self.notes,
        }


def format_table(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width ASCII table."""
    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    table = [list(map(cell, header))] + [list(map(cell, r)) for r in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    out = []
    for i, row in enumerate(table):
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def results_dir(base: "str | Path | None" = None) -> Path:
    """``results/`` next to the repo root (created on demand)."""
    root = Path(base) if base is not None else Path(__file__).resolve().parents[3]
    path = root / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def step_breakdown_report(registry, title: str = "per-step breakdown") -> Report:
    """Human-readable per-step communication table from a
    :class:`repro.obs.MetricsRegistry` (ISSUE 4 tentpole, exporter 3).

    One row per training step: how long the step's window was (max over
    ranks), how many comm ops it posted, the bytes moved, the summed
    comm time, and the dominant op family.
    """
    report = Report(
        experiment="step_breakdown",
        title=title,
        header=(
            "step", "window_us", "comm_ops", "comm_bytes",
            "comm_time_us", "top_family",
        ),
    )
    windows: dict[int, float] = {}
    for marker in registry.steps:
        if marker.end is None:
            continue
        dur = marker.end - marker.start
        windows[marker.step] = max(windows.get(marker.step, 0.0), dur)
    per_step = registry.per_step_comm()
    for step in sorted(windows.keys() | per_step.keys()):
        cell = per_step.get(step, {"ops": 0, "bytes": 0, "time_us": 0.0, "families": {}})
        families = cell["families"]
        top = max(families, key=families.get) if families else "-"
        report.add_row(
            step if step >= 0 else "(unattributed)",
            windows.get(step, 0.0),
            cell["ops"],
            cell["bytes"],
            cell["time_us"],
            top,
        )
    first_measured = registry.gauges.get("train.first_measured_step")
    if first_measured is not None:
        report.add_note(
            f"steps below {int(first_measured)} are warmup (their comm "
            "records are cleared at the warmup/measure boundary)"
        )
    return report


def save_report(report: Report, base: "str | Path | None" = None) -> Path:
    """Write <results>/<experiment>.txt and .json; return the txt path."""
    out = results_dir(base)
    txt = out / f"{report.experiment}.txt"
    txt.write_text(report.render() + "\n")
    (out / f"{report.experiment}.json").write_text(
        json.dumps(report.to_json(), indent=2)
    )
    return txt
