"""Terminal plotting: ASCII line charts for benchmark series.

Good enough to eyeball a figure's shape (crossovers, scaling curves)
straight from the terminal or a results file, with log-scale support for
latency-vs-message-size sweeps.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: marks assigned to series, in order
MARKS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        return math.log10(max(value, 1e-12))
    return value


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Each series gets a mark from :data:`MARKS`; the legend maps marks to
    labels.  Points are nearest-cell rasterized; later series overwrite
    earlier ones where they collide.
    """
    if not series:
        raise ValueError("no series to plot")
    points = [
        (label, x, y) for label, pts in series.items() for x, y in pts
    ]
    if not points:
        raise ValueError("series contain no points")
    xs = [_transform(x, log_x) for _, x, _ in points]
    ys = [_transform(y, log_y) for _, _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (label, pts) in enumerate(series.items()):
        mark = MARKS[i % len(MARKS)]
        for x, y in pts:
            col = round((_transform(x, log_x) - x_lo) / x_span * (width - 1))
            row = round((_transform(y, log_y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    y_top = f"{10 ** y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    y_bot = f"{10 ** y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    margin = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label:>{margin}} |" + "".join(row))
    x_lo_lbl = f"{10 ** x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    x_hi_lbl = f"{10 ** x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    lines.append(" " * margin + " +" + "-" * width)
    lines.append(
        " " * margin + f"  {x_lo_lbl}" + " " * max(1, width - len(x_lo_lbl) - len(x_hi_lbl) - 2) + x_hi_lbl
    )
    legend = "  ".join(
        f"{MARKS[i % len(MARKS)]}={label}" for i, label in enumerate(series)
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def series_from_rows(
    rows: Sequence[Sequence], x_col: int, y_cols: Mapping[str, int]
) -> dict[str, list[tuple[float, float]]]:
    """Build chart series from table rows (as in a Report)."""
    return {
        label: [(float(r[x_col]), float(r[col])) for r in rows]
        for label, col in y_cols.items()
    }
