"""OMB-style communication micro-benchmarks.

Measurement methodology (paper §VI-A):

* :func:`omb_latency_us` — the OSU Micro-Benchmarks reference: the raw
  library cost of one operation with no framework layer on top (the C
  benchmark loops directly over ``MPI_Alltoall``/``ncclAllReduce``).
* :func:`framework_latency_us` — the same operation issued through a
  framework (MCR-DL, PyTorch-distributed, ...) inside the simulator, so
  the framework's dispatch overheads and synchronization scheme are on
  the measured path.
* :func:`overhead_pct` — Fig. 7's metric: percent overhead of the
  framework over the OMB reference.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence

from repro.backends.base import create_backend
from repro.backends.ops import OpFamily
from repro.cluster.topology import SystemSpec
from repro.core.api import create_communicator
from repro.core.config import MCRConfig
from repro.sim.simulator import Simulator

#: Fig. 2/7 sweep: 1 KiB .. 64 MiB
MICRO_MESSAGE_SIZES = tuple(1024 * (2**i) for i in range(17))


@lru_cache(maxsize=256)
def _cost_backend(backend_name: str, world_size: int, system: SystemSpec):
    """One cost-query backend per (name, world size, system).

    Sweeps call :func:`omb_latency_us` once per message size; building a
    fresh backend per cell defeated the per-(class, system) cost memo
    the same way the pre-hoist analytic tuner did (see
    ``Tuner._analytic_backends``).  Cost queries never mutate the
    backend, so one shared rank-0 instance serves every sweep.
    """
    return create_backend(backend_name, 0, world_size, system)


def omb_latency_us(
    system: SystemSpec,
    backend_name: str,
    family: OpFamily,
    nbytes: int,
    world_size: int,
    nonblocking: bool = False,
) -> float:
    """C-level reference latency of one collective (no framework)."""
    if backend_name[:5].lower() == "hier:":
        # composite target: price the full phase schedule (Fig. 2-style
        # sweeps compare it against its constituents at each size)
        from repro.backends.hierarchical import (
            hier_collective_cost_us,
            parse_hier,
        )

        return hier_collective_cost_us(
            system, parse_hier(backend_name), family, nbytes, world_size
        )
    backend = _cost_backend(backend_name, world_size, system)
    path = system.comm_path(world_size)
    raw = backend.collective_cost_us(
        family, nbytes, world_size, path, nonblocking=nonblocking
    )
    return raw + backend.call_overhead_us()


def effective_nbytes(nbytes: int, world_size: int) -> int:
    """The byte count a framework measurement actually exercises.

    Collective buffers hold float32 elements and must divide evenly by
    the world size, so a requested ``nbytes`` is realized as the largest
    element count ``<= nbytes // 4`` that is a multiple of
    ``world_size`` (at least one element per rank).  Overhead
    comparisons must price the OMB reference at this same size — pricing
    it at the raw ``nbytes`` compares the two sides at different
    payloads and inflates Fig. 7 overheads for sizes not divisible by
    ``4 * world_size``.
    """
    numel = max(world_size, nbytes // 4)
    numel -= numel % world_size
    return numel * 4


def framework_latency_us(
    system: SystemSpec,
    backend_name: str,
    family: OpFamily,
    nbytes: int,
    world_size: int,
    config: Optional[MCRConfig] = None,
    iterations: int = 5,
    nonblocking: bool = False,
) -> float:
    """Per-op latency through a framework's dispatch path (simulated)."""

    config = config or MCRConfig()
    numel = effective_nbytes(nbytes, world_size) // 4

    def bench(ctx):
        comm = create_communicator(ctx, [backend_name], config=config, comm_id="omb")
        x = ctx.virtual_tensor(numel)
        out = ctx.virtual_tensor(numel)
        big = ctx.virtual_tensor(numel * ctx.world_size)

        def run_op():
            if family is OpFamily.ALLREDUCE:
                h = comm.all_reduce(backend_name, x, async_op=nonblocking)
            elif family is OpFamily.ALLTOALL:
                h = comm.all_to_all_single(backend_name, out, x, async_op=nonblocking)
            elif family is OpFamily.ALLGATHER:
                h = comm.all_gather(backend_name, big, x, async_op=nonblocking)
            elif family is OpFamily.BROADCAST:
                h = comm.bcast(backend_name, x, root=0, async_op=nonblocking)
            else:
                raise ValueError(f"microbench does not cover {family}")
            if h is not None:
                h.synchronize()
            else:
                comm.synchronize(backend_name)

        run_op()  # warmup
        comm.barrier(backend_name)
        start = ctx.now
        for _ in range(iterations):
            run_op()
        elapsed = (ctx.now - start) / iterations
        comm.finalize()
        return elapsed

    result = Simulator(world_size, system=system).run(bench)
    return max(result.rank_results)


def overhead_pct(framework_us: float, omb_us: float) -> float:
    """Fig. 7's metric: percent overhead over the OMB reference."""
    if omb_us <= 0:
        raise ValueError(f"invalid OMB reference {omb_us}")
    return (framework_us - omb_us) / omb_us * 100.0


def framework_overhead_pct(
    system: SystemSpec,
    backend_name: str,
    family: OpFamily,
    nbytes: int,
    world_size: int,
    config: Optional[MCRConfig] = None,
    iterations: int = 5,
    nonblocking: bool = False,
) -> float:
    """Fig. 7 overhead with both sides priced at one effective payload.

    Computes :func:`effective_nbytes` once and feeds it to *both* the
    framework measurement and the OMB reference, so the comparison is
    apples-to-apples even when ``nbytes`` is not a multiple of
    ``4 * world_size``.
    """
    eff = effective_nbytes(nbytes, world_size)
    framework = framework_latency_us(
        system, backend_name, family, eff, world_size,
        config=config, iterations=iterations, nonblocking=nonblocking,
    )
    omb = omb_latency_us(
        system, backend_name, family, eff, world_size, nonblocking=nonblocking
    )
    return overhead_pct(framework, omb)


def _omb_cell(context: tuple, unit: tuple) -> float:
    """Sweep-engine worker: one (backend, message size) OMB cell.
    Top-level so the spawn pool can pickle it by reference."""
    system, family_value, world_size, nonblocking = context
    backend, msg = unit
    return omb_latency_us(
        system, backend, OpFamily(family_value), msg, world_size, nonblocking
    )


def _omb_cache_keys(
    system: SystemSpec,
    family: OpFamily,
    world_size: int,
    nonblocking: bool,
    cells: Sequence[tuple],
) -> list[str]:
    from repro.bench.sweep import (
        SWEEP_SCHEMA_VERSION,
        calibration_fingerprint,
        stable_hash,
        system_fingerprint,
    )

    base = {
        "schema": SWEEP_SCHEMA_VERSION,
        "kind": "microbench",
        "system": system_fingerprint(system),
        "family": str(family),
        "world_size": world_size,
        "nonblocking": nonblocking,
    }
    backend_ctx = {
        name: stable_hash({**base, "calibration": calibration_fingerprint(name)})
        for name in {backend for backend, _ in cells}
    }
    return [
        stable_hash({"ctx": backend_ctx[backend], "backend": backend, "msg": msg})
        for backend, msg in cells
    ]


def sweep_backends(
    system: SystemSpec,
    backends: Sequence[str],
    family: OpFamily,
    world_size: int,
    message_sizes: Sequence[int] = MICRO_MESSAGE_SIZES,
    nonblocking: bool = False,
    jobs: int = 1,
    cache=None,
) -> dict[str, list[tuple[int, float]]]:
    """Fig. 2: OMB latency series per backend over message sizes.

    Backend construction is hoisted out of the sweep loop (one cost
    backend per name, via :func:`_cost_backend`); ``jobs``/``cache``
    fan cells out / serve them from the on-disk sweep cache exactly as
    :meth:`repro.core.tuner.Tuner.build_table` does.
    """
    from repro.bench.sweep import run_sweep

    family = OpFamily(family)
    cells = [(backend, msg) for backend in backends for msg in message_sizes]
    outcome = run_sweep(
        _omb_cell,
        cells,
        context=(system, family.value, world_size, nonblocking),
        jobs=jobs,
        cache=cache,
        keys=(
            _omb_cache_keys(system, family, world_size, nonblocking, cells)
            if cache is not None
            else None
        ),
    )
    out: dict[str, list[tuple[int, float]]] = {}
    for (backend, msg), latency in zip(cells, outcome.results):
        out.setdefault(backend, []).append((msg, latency))
    return out
