"""Parallel, incremental sweep execution engine.

Every expensive offline surface of this reproduction — the tuning suite
(paper §V-F, C5), the Fig. 2/7 micro-benchmark sweeps, and the
perf-regression scenario runs — has the same shape: a grid of
independent cells, each a pure function of picklable coordinates, whose
results must be merged back *in the exact serial order* so tables,
reports, and baselines stay byte-identical no matter how the work was
scheduled.  This module factors that shape out once:

* :func:`run_sweep` executes a list of work units either serially
  (``jobs=1``, the default — determinism tests and perfgate baselines
  never see a pool) or fanned out over a ``multiprocessing`` **spawn**
  pool.  Results are merged by unit index, so the output list is
  identical to the serial one regardless of completion order or which
  worker ran which cell.
* :class:`SweepCache` is a content-addressed on-disk cache: one JSON
  file per cell, named by the SHA-256 of the cell's full key.  A key
  hashes *everything the measurement depends on* — the system spec, the
  backend's calibration constants, the measured-path ``MCRConfig``
  fields, the mode/iterations/warmup, the cell coordinates, and a
  schema version — so editing a calibration constant invalidates
  exactly the cells it affects and nothing else.
* Cache hit/miss counts are reported through the obs
  :class:`~repro.obs.metrics.MetricsRegistry` as ``kind="tuning"``
  events (``family="sweep_cache"``).

Workers and contexts must be **top-level picklables**: the spawn pool
re-imports modules in each child, ships the context once per worker via
the pool initializer, and ships each unit with its serial index.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

#: bump when the engine or any measured-path semantics change in a way
#: that silently alters cached values (part of every cache key)
SWEEP_SCHEMA_VERSION = 1

#: sentinel distinguishing "cache miss" from a legitimately-None result
_MISS = object()

#: conventional cache location (used by the CLI and gitignored)
DEFAULT_CACHE_DIR = ".sweep_cache"


# ----------------------------------------------------------------------
# stable hashing / fingerprints
# ----------------------------------------------------------------------


def _canonical(obj: Any) -> Any:
    """Reduce an object to a JSON-stable structure for hashing."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def stable_hash(obj: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``obj``."""
    payload = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def system_fingerprint(system) -> dict:
    """Everything a :class:`~repro.cluster.topology.SystemSpec` feeds
    into a cost model or a simulated run."""
    fabric = system.fabric
    return {
        "name": system.name,
        "node": _canonical(system.node),
        "inter_link": _canonical(system.inter_link),
        "max_nodes": system.max_nodes,
        "fabric_contention": system.fabric_contention,
        "cross_path_interference": system.cross_path_interference,
        "fabric": _canonical(vars(fabric)) if fabric is not None else None,
    }


def calibration_fingerprint(backend_name: str) -> dict:
    """One backend's calibration constants and cost-relevant properties.

    Editing any of these (a multiplier, the call overhead, a capability
    flag that changes staging or emulation) must invalidate exactly the
    cached cells measured on that backend.
    """
    from repro.backends import calibration
    from repro.backends.base import backend_class

    if backend_name[:5].lower() == "hier:":
        # composite target: its cost is a pure function of the two
        # constituents' calibrations, so fingerprint those
        from repro.backends.hierarchical import parse_hier

        spec = parse_hier(backend_name)
        return {
            "composite": "hier",
            "intra": calibration_fingerprint(spec.intra),
            "inter": calibration_fingerprint(spec.inter),
        }
    cls = backend_class(backend_name)
    return {
        "class": cls.__name__,
        "tuning": _canonical(cls.tuning),
        "properties": _canonical(cls.properties),
        # shared constants every backend's cost goes through
        "reduce_gamma": calibration.REDUCE_GAMMA_US_PER_BYTE,
        "vector_overhead_us": calibration.VECTOR_VARIANT_OVERHEAD_US,
        "nonblocking_overhead_us": calibration.NONBLOCKING_OVERHEAD_US,
    }


def config_fingerprint(config) -> dict:
    """The :class:`~repro.core.config.MCRConfig` fields on the measured
    path.  ``enable_logging`` is excluded — observers record, they never
    change a timing — everything else can move a measurement."""
    fields = _canonical(config)
    fields.pop("enable_logging", None)
    return fields


# ----------------------------------------------------------------------
# on-disk cache
# ----------------------------------------------------------------------


class SweepCache:
    """Content-addressed on-disk cache of sweep-cell results.

    One JSON file per cell under ``root``, named ``<sha256>.json`` and
    holding ``{"schema", "cell", "value"}``.  The human-readable
    ``cell`` payload is stored purely for inspection/debugging; the hash
    in the filename is the authoritative key.  Values must be
    JSON-serializable; floats round-trip exactly (``repr`` encoding), so
    a warm-cache sweep reproduces cold results byte-identically.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key_hash: str) -> Path:
        return self.root / f"{key_hash}.json"

    def get(self, key_hash: str) -> Any:
        """The cached value, or the module-level ``_MISS`` sentinel."""
        try:
            payload = json.loads(self._path(key_hash).read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return _MISS
        if payload.get("schema") != SWEEP_SCHEMA_VERSION:
            return _MISS
        return payload["value"]

    def put(self, key_hash: str, cell: Any, value: Any) -> None:
        """Store atomically (write-then-rename) so concurrent sweeps
        sharing a cache directory never read a torn file."""
        path = self._path(key_hash)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(
                {
                    "schema": SWEEP_SCHEMA_VERSION,
                    "cell": _canonical(cell),
                    "value": value,
                },
                sort_keys=True,
            )
        )
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


@dataclass
class SweepStats:
    """What one :func:`run_sweep` call did."""

    units: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    computed: int = 0
    jobs: int = 1

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class SweepOutcome:
    """Results (in serial unit order) plus execution statistics."""

    results: list
    stats: SweepStats


# per-worker state installed by the pool initializer (spawn children
# re-import this module, so the dict starts empty in every worker)
_WORKER_STATE: dict[str, Any] = {}


def _pool_init(worker: Callable, context: Any) -> None:
    _WORKER_STATE["worker"] = worker
    _WORKER_STATE["context"] = context


def _pool_call(indexed_unit: tuple[int, Any]) -> tuple[int, Any]:
    index, unit = indexed_unit
    return index, _WORKER_STATE["worker"](_WORKER_STATE["context"], unit)


def _observe_cache_counts(metrics, hits: int, misses: int) -> None:
    """Report cache effectiveness as ``kind="tuning"`` obs events."""
    if metrics is None:
        return
    from repro.obs.metrics import ObsEvent

    for detail, count in (("hit", hits), ("miss", misses)):
        metrics.observe(
            ObsEvent(
                kind="tuning",
                rank=-1,
                stream="",
                backend="",
                family="sweep_cache",
                nbytes=count,
                step=-1,
                start=0.0,
                end=0.0,
                detail=detail,
            )
        )


def run_sweep(
    worker: Callable[[Any, Any], Any],
    units: Sequence[Any],
    *,
    context: Any = None,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
    keys: Optional[Sequence[str]] = None,
    metrics=None,
) -> SweepOutcome:
    """Execute ``worker(context, unit)`` for every unit, in order.

    ``jobs=1`` (the default) runs serially in-process — no pool, no
    subprocesses, bit-for-bit the historical code path.  ``jobs > 1``
    fans the unserved units out over a spawn pool; the merge is by unit
    index, so the returned ``results`` list is identical to the serial
    one regardless of scheduling.

    With ``cache`` (and matching per-unit ``keys`` hashes), cached cells
    are served without recomputation and fresh results are written back.
    Hit/miss counts are reported to ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) when provided.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if cache is not None:
        if keys is None or len(keys) != len(units):
            raise ValueError("cache requires one key hash per unit")
    units = list(units)
    stats = SweepStats(units=len(units), jobs=jobs)
    results: list[Any] = [None] * len(units)
    pending: list[int] = []
    if cache is not None:
        for i in range(len(units)):
            value = cache.get(keys[i])
            if value is _MISS:
                pending.append(i)
            else:
                results[i] = value
                stats.cache_hits += 1
        stats.cache_misses = len(pending)
    else:
        pending = list(range(len(units)))

    stats.computed = len(pending)
    if pending:
        workers = min(jobs, len(pending))
        if multiprocessing.current_process().daemon:
            # pool workers are daemonic and may not spawn children; a
            # nested sweep (e.g. a scenario fan-out running a parallel
            # tuning sweep) degrades to serial instead of crashing
            workers = 1
        if workers <= 1:
            for i in pending:
                results[i] = worker(context, units[i])
        else:
            ctx = multiprocessing.get_context("spawn")
            chunksize = max(1, len(pending) // (workers * 4))
            with ctx.Pool(
                processes=workers,
                initializer=_pool_init,
                initargs=(worker, context),
            ) as pool:
                indexed = [(i, units[i]) for i in pending]
                for index, value in pool.imap_unordered(
                    _pool_call, indexed, chunksize
                ):
                    results[index] = value
        if cache is not None:
            for i in pending:
                cache.put(keys[i], units[i], results[i])

    _observe_cache_counts(metrics, stats.cache_hits, stats.cache_misses)
    return SweepOutcome(results=results, stats=stats)
