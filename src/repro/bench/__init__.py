"""Benchmark harness: OMB-style micro-benchmarks, sweeps, and reporting.

:mod:`repro.bench.microbench` reproduces the paper's measurement
methodology: a C-level OSU-Micro-Benchmarks reference (raw backend cost,
no framework dispatch) against framework-level measurements through the
real communicator — the basis of Figures 2 and 7.
"""

from repro.bench.microbench import (
    framework_latency_us,
    omb_latency_us,
    overhead_pct,
    MICRO_MESSAGE_SIZES,
)
from repro.bench.perfregress import SCENARIOS as PERF_SCENARIOS
from repro.bench.perfregress import run_scenarios
from repro.bench.reporting import Report, format_table, save_report
from repro.bench.sweep import (
    SWEEP_SCHEMA_VERSION,
    SweepCache,
    SweepOutcome,
    SweepStats,
    run_sweep,
)

__all__ = [
    "PERF_SCENARIOS",
    "run_scenarios",
    "run_sweep",
    "SweepCache",
    "SweepOutcome",
    "SweepStats",
    "SWEEP_SCHEMA_VERSION",
    "framework_latency_us",
    "omb_latency_us",
    "overhead_pct",
    "MICRO_MESSAGE_SIZES",
    "Report",
    "format_table",
    "save_report",
]
