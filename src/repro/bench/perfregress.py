"""Perf-regression harness for the simulator's hot paths.

The simulator is the instrument every figure in this reproduction is
measured with, so its *wall-clock* throughput is a first-class concern:
a 2x slower engine doubles the cost of every tuning sweep and benchmark
run.  This module pins down a small set of canonical scenarios that
exercise each hot path and times them for real (wall-clock), while also
recording the *simulated* result of each scenario so that a speedup can
be shown to leave virtual timestamps byte-identical.

Scenarios
---------

``engine_events``
    Raw discrete-event throughput: a handful of processes ping-pong
    through ``sleep``/``wait_flag`` with interleaved wake times, plus a
    run-ahead phase that hits the direct-handoff fast path.  Measures
    events dispatched per second with no communicator on top.

``allreduce_ws{16,64,128}``
    A tight all-reduce loop through the full runtime (communicator,
    rendezvous, streams, cost model) on virtual tensors at three scales.

``dispatch_cache``
    The same steady-state loop with the dispatch plan cache on and
    force-disabled: ops/s, plan hit rate, and cached-vs-uncached
    simulated-time identity (part of the fingerprint).

``tuner_sweep``
    Three consecutive analytic ``Tuner.build_table`` sweeps — dominated
    by the collective cost model.  Repetition is the point: benchmark
    fixtures and examples rebuild tables and probe the same costs many
    times per process, which is the path the cost-cache memoization
    accelerates.

``hier_allreduce``
    The hierarchical-composite crossover (Fig. 2-style): a 4 MiB
    all-reduce at 16 ranks on each constituent backend and on the
    ``hier:nccl+mvapich2-gdr`` composite, plus an analytic tuner sweep.
    The fingerprint pins the per-target simulated times and the tuned
    picks (flat at 4 KiB, composite at 4 MiB); ``scripts/perfgate.py``
    gates the composite's speedup over the best flat backend against
    ``--hier-speedup-floor``.

``adaptive_degraded_link``
    Online adaptive dispatch under a mid-run degraded link (§ adaptive
    retuning): a steady all-reduce loop at 16 ranks whose tuned backend
    (NCCL) hits a 4x inter-node link slowdown partway through.  Runs the
    loop twice — static table vs ``AdaptiveConfig(enabled=True)`` — and
    fingerprints both tail latencies plus the retuner's final pick and
    action counters.  ``scripts/perfgate.py`` gates ``adapt_recovery``
    (static tail / adaptive tail) against ``--adapt-floor``.

``dsmoe_step``
    One measured DS-MoE training step at 64 ranks under a mixed plan:
    the end-to-end composition (model, plan dispatch, rendezvous,
    wire-lane contention) that Figure 8 runs dozens of times.

``obs_overhead``
    The same training measurement with observability off and on
    (tracing + metrics).  Its fingerprint includes the simulated
    step-time delta between the two, which must stay at zero —
    observers record, they never sleep.

Usage
-----

``python -m repro perf --out BENCH_simulator.json`` runs every scenario
and merges the results into the output JSON under ``--label`` (default
``after``).  Running once from the pre-optimization tree with
``--label before`` and once from the current tree yields a single file
with both sides and a computed ``speedup`` section; the harness refuses
to report a speedup when the simulated fingerprints differ.

``scripts/perfgate.py`` consumes the same JSON as a committed baseline
and fails CI-style when a fresh run regresses wall-clock by more than
20% or changes any simulated fingerprint.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Optional

from repro.core import MCRCommunicator

SCHEMA_VERSION = 1

#: scenario registry: name -> zero-arg callable returning a metrics dict.
#: Every metrics dict carries ``wall_s`` plus any scenario-specific
#: numbers; keys starting with ``sim_`` are *simulated* results and form
#: the determinism fingerprint (they must not move when only wall-clock
#: performance changes).
SCENARIOS: dict[str, Callable[[], dict]] = {}


def scenario(name: str) -> Callable:
    def register(fn: Callable[[], dict]) -> Callable[[], dict]:
        SCENARIOS[name] = fn
        return fn

    return register


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------


@scenario("engine_events")
def engine_events() -> dict:
    """Raw engine dispatch: cross-thread handoffs + run-ahead sleeps."""
    from repro.sim.engine import Engine

    procs = 4
    rounds = 4_000
    engine = Engine()
    flags = [engine.new_flag(f"round-{i}") for i in range(rounds)]

    def body(idx: int):
        def run():
            for i in range(rounds):
                # interleaved wake times force real baton handoffs ...
                engine.sleep(0.5 + idx * 0.1, "spin")
                if idx == 0:
                    flags[i].fire(engine.now)
                else:
                    engine.wait_flag(flags[i])
            # ... and a solo tail exercises the run-ahead fast path
            for _ in range(rounds):
                engine.sleep(0.25, "tail")
            return engine.now

        return run

    for idx in range(procs):
        engine.add_process(f"p{idx}", body(idx))
    wall = time.perf_counter()
    final = engine.run()
    wall = time.perf_counter() - wall
    events = engine._events_dispatched
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "sim_final_us": final,
    }


def _allreduce_loop(world_size: int, iters: int) -> dict:
    from repro.cluster import lassen
    from repro.sim import Simulator

    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
        x = ctx.virtual_tensor(262_144)  # 1 MiB fp32
        for i in range(iters):
            comm.all_reduce("nccl" if i % 2 else "mvapich2-gdr", x)
        comm.synchronize()
        comm.finalize()
        return ctx.now

    sim = Simulator(world_size, system=lassen())
    wall = time.perf_counter()
    result = sim.run(main)
    wall = time.perf_counter() - wall
    ops = world_size * iters
    return {
        "wall_s": wall,
        "ops": ops,
        "ops_per_s": ops / wall if wall > 0 else 0.0,
        "sim_final_us": result.rank_results[0],
    }


@scenario("allreduce_ws16")
def allreduce_ws16() -> dict:
    return _allreduce_loop(16, 60)


@scenario("allreduce_ws64")
def allreduce_ws64() -> dict:
    return _allreduce_loop(64, 30)


@scenario("allreduce_ws128")
def allreduce_ws128() -> dict:
    return _allreduce_loop(128, 15)


@scenario("dispatch_cache")
def dispatch_cache() -> dict:
    """Steady-state dispatch through the plan cache (paper §V-E).

    Runs the same alternating-backend allreduce loop twice — plans
    cached (the default) and force-disabled — and reports the cached
    ops/s, the plan hit rate, and whether the two runs produced the same
    simulated completion time.  The identity is part of the simulated
    fingerprint: the cache may only skip re-derivation, never change a
    timing.  ``scripts/perfgate.py`` gates the hit rate against
    ``--plan-hit-floor`` (steady state must be >= 0.95).
    """
    from repro.cluster import lassen
    from repro.core.config import MCRConfig
    from repro.sim import Simulator

    world_size, iters = 16, 80
    stats: dict = {}

    def loop(plan_cache: bool) -> tuple[float, float]:
        def main(ctx):
            comm = MCRCommunicator(
                ctx,
                ["nccl", "mvapich2-gdr"],
                config=MCRConfig(plan_cache=plan_cache),
            )
            x = ctx.virtual_tensor(262_144)  # 1 MiB fp32
            for i in range(iters):
                comm.all_reduce("nccl" if i % 2 else "mvapich2-gdr", x)
            comm.synchronize()
            if plan_cache and ctx.rank == 0:
                stats.update(comm.plan_stats)
            comm.finalize()
            return ctx.now

        sim = Simulator(world_size, system=lassen())
        start = time.perf_counter()
        result = sim.run(main)
        return result.rank_results[0], time.perf_counter() - start

    cached_us, cached_s = loop(True)
    uncached_us, uncached_s = loop(False)
    ops = world_size * iters
    total = stats.get("hits", 0) + stats.get("misses", 0)
    return {
        "wall_s": cached_s,
        "uncached_wall_s": uncached_s,
        "ops": ops,
        "ops_per_s": ops / cached_s if cached_s > 0 else 0.0,
        "plan_hits": stats.get("hits", 0),
        "plan_misses": stats.get("misses", 0),
        "plan_hit_rate": round(stats.get("hits", 0) / total, 6) if total else 0.0,
        "sim_final_us": cached_us,
        "sim_cached_equals_uncached": cached_us == uncached_us,
    }


@scenario("tuner_sweep")
def tuner_sweep() -> dict:
    from repro.backends.ops import OpFamily
    from repro.cluster import lassen
    from repro.core import Tuner

    # start cold so the scenario measures the memoized sweep itself, not
    # a cache warmed by an earlier scenario or caller.  Tolerate trees
    # without the cache (the harness also runs against the ``before``
    # side of a comparison, which may predate the memoization).
    try:
        from repro.backends.base import clear_cost_caches
    except ImportError:
        pass
    else:
        clear_cost_caches()
    system = lassen()
    sweeps = 3
    wall = time.perf_counter()
    for _ in range(sweeps):
        tuner = Tuner(system, ["nccl", "mvapich2-gdr", "msccl"], mode="analytic")
        report = tuner.build_table(
            world_sizes=[16, 64, 256],
            ops=[OpFamily.ALLREDUCE, OpFamily.ALLTOALL, OpFamily.ALLGATHER],
        )
    wall = time.perf_counter() - wall
    cells = sweeps * report.table.num_entries()
    # fingerprint: the winning backend per (op, ws) at one probe size
    picks = {
        f"{op.value}@{ws}": report.table.lookup(op.value, ws, 1 << 20)
        for op in (OpFamily.ALLREDUCE, OpFamily.ALLTOALL, OpFamily.ALLGATHER)
        for ws in (16, 64, 256)
    }
    return {
        "wall_s": wall,
        "cells": cells,
        "cells_per_s": cells / wall if wall > 0 else 0.0,
        "sim_table_picks": picks,
    }


@scenario("tune_sweep")
def tune_sweep() -> dict:
    """The sweep engine on a simulated-mode tuning sweep (paper C5).

    Runs the same sweep three ways — serial cold, 4-worker-pool cold,
    and warm from the on-disk sweep cache — and reports the wall-clock
    of each plus the derived speedups.  The simulated fingerprint pins
    the table picks and the byte-identity of all three runs: the engine
    may only reschedule and cache work, never change a measurement.
    ``scripts/perfgate.py`` gates ``parallel_speedup`` against a
    configurable floor (on multi-core hosts) and requires the warm run
    to recompute zero cells at near-zero cost.
    """
    import os
    import shutil
    import tempfile

    from repro.backends.ops import OpFamily
    from repro.bench.sweep import SweepCache
    from repro.cluster import lassen
    from repro.core import Tuner

    system = lassen()
    backends = ["nccl", "mvapich2-gdr"]
    grid = dict(
        world_sizes=[8],
        message_sizes=[1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20],
        ops=[OpFamily.ALLREDUCE, OpFamily.ALLTOALL],
    )
    jobs = 4

    def sweep(**kwargs):
        tuner = Tuner(system, backends, mode="simulated", iterations=3, warmup=1)
        start = time.perf_counter()
        report = tuner.build_table(**grid, **kwargs)
        return report, time.perf_counter() - start

    wall = time.perf_counter()
    cache_dir = tempfile.mkdtemp(prefix="tune_sweep_cache_")
    try:
        serial, serial_s = sweep()
        parallel, parallel_s = sweep(jobs=jobs, cache=SweepCache(cache_dir))
        warm, warm_s = sweep(jobs=jobs, cache=SweepCache(cache_dir))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    wall = time.perf_counter() - wall

    tables_identical = (
        json.dumps(serial.table.entries, sort_keys=True)
        == json.dumps(parallel.table.entries, sort_keys=True)
        == json.dumps(warm.table.entries, sort_keys=True)
    )
    samples_identical = serial.samples == parallel.samples == warm.samples
    picks = {
        f"{op.value}@8": serial.table.lookup(op.value, 8, 1 << 16)
        for op in grid["ops"]
    }
    return {
        "wall_s": wall,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "warm_wall_s": warm_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "warm_speedup": serial_s / warm_s if warm_s > 0 else 0.0,
        "jobs": jobs,
        "host_cpus": os.cpu_count() or 1,
        "cells": serial.sweep_stats.units,
        "cold_misses": parallel.sweep_stats.cache_misses,
        "warm_hits": warm.sweep_stats.cache_hits,
        "warm_recomputed": warm.sweep_stats.computed,
        "sim_table_picks": picks,
        "sim_tables_identical": tables_identical,
        "sim_samples_identical": samples_identical,
    }


@scenario("hier_allreduce")
def hier_allreduce() -> dict:
    """Hierarchical mixed-backend crossover (Fig. 2-style sweep).

    Times a steady-state 4 MiB all-reduce at 16 ranks (4 lassen nodes)
    on NCCL, on MVAPICH2-GDR, and on the two-level
    ``hier:nccl+mvapich2-gdr`` composite, then runs an analytic tuner
    sweep over all three.  Past the crossover the composite must beat
    both constituents (its inter-node phase moves 1/ppn of the vector
    with the full NIC per node leader); below it the flat backends win
    on latency.  ``scripts/perfgate.py`` gates ``hier_speedup`` against
    ``--hier-speedup-floor``.
    """
    from repro.backends.ops import OpFamily
    from repro.cluster import lassen
    from repro.core import Tuner
    from repro.sim import Simulator

    system = lassen()
    world_size, iters = 16, 10
    # 4 MiB fp32: past the *simulated* crossover (wire-lane contention
    # between the ppn concurrent shard groups pushes it above the
    # analytic one, which assumes each leader gets the NIC to itself)
    numel = 1_048_576
    targets = ("nccl", "mvapich2-gdr", "hier:nccl+mvapich2-gdr")

    def timed(target: str) -> float:
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
            x = ctx.virtual_tensor(numel)
            comm.all_reduce(target, x)  # warmup builds the phase groups
            comm.synchronize()
            start = ctx.now
            for _ in range(iters):
                comm.all_reduce(target, x)
            comm.synchronize()
            elapsed = ctx.now - start
            comm.finalize()
            return elapsed / iters

        return max(Simulator(world_size, system=system).run(main).rank_results)

    wall = time.perf_counter()
    per_op = {t: timed(t) for t in targets}
    table = Tuner(system, list(targets), mode="analytic").build_table(
        world_sizes=[world_size],
        message_sizes=[4096, numel * 4],
        ops=[OpFamily.ALLREDUCE],
    ).table
    wall = time.perf_counter() - wall
    flat_best = min(per_op["nccl"], per_op["mvapich2-gdr"])
    hier_us = per_op["hier:nccl+mvapich2-gdr"]
    return {
        "wall_s": wall,
        "hier_speedup": round(flat_best / hier_us, 6) if hier_us > 0 else 0.0,
        "sim_nccl_us": per_op["nccl"],
        "sim_mvapich_us": per_op["mvapich2-gdr"],
        "sim_hier_us": hier_us,
        "sim_pick_small": table.lookup("allreduce", world_size, 4096),
        "sim_pick_large": table.lookup("allreduce", world_size, numel * 4),
    }


@scenario("adaptive_degraded_link")
def adaptive_degraded_link() -> dict:
    """Feedback-driven retuning beats a stale table on a degraded link.

    A 1 MiB all-reduce loop at 16 ranks starts on its tuned backend
    (NCCL); at t=20 ms a fault quadruples NCCL's inter-node link time
    for the rest of the run.  The static table keeps dispatching into
    the slow link; the adaptive retuner must detect the drift, sweep the
    alternatives, and commit a faster pick so the tail of the run
    recovers.  The loop blocks on each op (``async_op=True`` +
    ``synchronize``) so the host clock tracks completions — a free-run
    post loop would outrun the fault window.  ``scripts/perfgate.py``
    gates ``adapt_recovery`` against ``--adapt-floor``.
    """
    from repro.cluster import lassen
    from repro.core import MCRConfig, TuningTable
    from repro.core.config import AdaptiveConfig
    from repro.sim import Simulator
    from repro.sim.faults import FaultSpec

    system = lassen()
    world_size, ops, tail_ops = 16, 150, 40
    nbytes = 1 << 20

    def timed(adaptive: bool):
        table = TuningTable(system=system.name)
        table.add("allreduce", world_size, nbytes, "nccl")
        faults = FaultSpec.parse("link=20000:inf:4.0:backend=nccl")

        def main(ctx):
            config = MCRConfig()
            if adaptive:
                config.adaptive = AdaptiveConfig(
                    enabled=True, min_samples=5, explore_ops=3, drift_ratio=1.5
                )
            comm = MCRCommunicator(
                ctx,
                ["nccl", "mvapich2-gdr"],
                config=config,
                tuning_table=table,
                comm_id="adapt-bench",
            )
            x = ctx.virtual_tensor(nbytes // 4)
            t_tail = 0.0
            for i in range(ops):
                if i == ops - tail_ops:
                    t_tail = ctx.now
                comm.all_reduce("auto", x, async_op=True).synchronize()
            tail = ctx.now - t_tail
            snap = comm.retuner.snapshot() if comm.retuner is not None else None
            comm.finalize()
            return tail, snap

        result = Simulator(world_size, system=system, faults=faults).run(main)
        return (
            max(r[0] for r in result.rank_results),
            result.rank_results[0][1],
        )

    wall = time.perf_counter()
    static_us, _ = timed(adaptive=False)
    adaptive_us, snap = timed(adaptive=True)
    wall = time.perf_counter() - wall
    cell = snap["cells"]["allreduce/%d" % nbytes]
    return {
        "wall_s": wall,
        "adapt_recovery": (
            round(static_us / adaptive_us, 6) if adaptive_us > 0 else 0.0
        ),
        "sim_static_us": round(static_us, 3),
        "sim_adaptive_us": round(adaptive_us, 3),
        "sim_final_pick": cell["current"],
        "sim_retunes": snap["stats"]["retune"],
        "sim_drifts": snap["stats"]["drift"],
    }


@scenario("dsmoe_step")
def dsmoe_step() -> dict:
    from repro.cluster import lassen
    from repro.models import BackendPlan, DSMoEModel, Trainer

    trainer = Trainer(lassen(), steps=2, warmup=1)
    wall = time.perf_counter()
    result = trainer.run(DSMoEModel(), 64, BackendPlan.mixed(label="MCR-DL"))
    wall = time.perf_counter() - wall
    return {
        "wall_s": wall,
        "samples_per_wall_s": (
            result.samples_per_sec * result.step_time_us / 1e6 / wall
            if wall > 0
            else 0.0
        ),
        "sim_step_us": result.step_time_us,
        "sim_samples_per_sec": result.samples_per_sec,
    }


@scenario("obs_overhead")
def obs_overhead() -> dict:
    """Observability cost on the timed path (paper C3's overhead budget).

    Runs the same training measurement twice — plain, then with tracing
    and metrics both on — and reports the *simulated* step-time delta.
    Observers only record, they never sleep, so the delta must be zero;
    ``scripts/perfgate.py`` gates it at <= 5%.
    """
    from repro.cluster import lassen
    from repro.models import BackendPlan, DSMoEModel, Trainer

    wall = time.perf_counter()
    plain = Trainer(lassen(), steps=2, warmup=1).run(
        DSMoEModel(), 16, BackendPlan.mixed(label="MCR-DL")
    )
    instrumented = Trainer(lassen(), steps=2, warmup=1, trace=True, metrics=True).run(
        DSMoEModel(), 16, BackendPlan.mixed(label="MCR-DL")
    )
    wall = time.perf_counter() - wall
    overhead_pct = (
        (instrumented.step_time_us - plain.step_time_us) / plain.step_time_us * 100.0
        if plain.step_time_us > 0
        else 0.0
    )
    recorded = len(instrumented.metrics.events) if instrumented.metrics else 0
    return {
        "wall_s": wall,
        "events_recorded": recorded,
        "sim_step_us": plain.step_time_us,
        "sim_instrumented_step_us": instrumented.step_time_us,
        "sim_overhead_pct": round(overhead_pct, 6),
    }


# ----------------------------------------------------------------------
# running and reporting
# ----------------------------------------------------------------------


def _scenario_unit(repeats: int, name: str) -> dict:
    """Sweep-engine worker: one scenario, measured in its own process.
    Top-level so the spawn pool can pickle it by reference."""
    return run_scenarios([name], repeats=repeats)[name]


def run_scenarios(
    names: Optional[list[str]] = None,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> dict:
    """Run the requested scenarios ``repeats`` times each.

    Returns ``{name: metrics}`` where ``wall_s`` is the best (minimum)
    wall time across repeats — the standard noise-resistant estimator —
    and ``wall_runs_s`` keeps every sample.  Simulated ``sim_*`` values
    are asserted identical across repeats (the engine is deterministic;
    a mismatch means a real bug, so it raises immediately).

    ``jobs > 1`` fans scenarios out over the sweep engine's spawn pool,
    one scenario per work unit, merged back in request order.  Parallel
    scenarios contend for the machine, so wall numbers are for quick
    smoke runs, not for committing as a baseline.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    chosen = list(SCENARIOS) if names is None else list(names)
    unknown = [n for n in chosen if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s) {unknown}; have {sorted(SCENARIOS)}")
    if jobs > 1 and len(chosen) > 1:
        from repro.bench.sweep import run_sweep

        outcome = run_sweep(_scenario_unit, chosen, context=repeats, jobs=jobs)
        out = dict(zip(chosen, outcome.results))
        if progress is not None:
            for name, metrics in out.items():
                progress(
                    f"{name:<18} {metrics['wall_s']*1e3:9.1f} ms  "
                    f"(best of {repeats}, parallel x{jobs})"
                )
        return out
    out: dict[str, dict] = {}
    for name in chosen:
        fn = SCENARIOS[name]
        best: Optional[dict] = None
        walls = []
        for _ in range(repeats):
            metrics = fn()
            walls.append(metrics["wall_s"])
            if best is None or metrics["wall_s"] < best["wall_s"]:
                if best is not None:
                    _check_fingerprint(name, best, metrics)
                best = metrics
            else:
                _check_fingerprint(name, best, metrics)
        assert best is not None
        best["wall_runs_s"] = walls
        out[name] = best
        if progress is not None:
            progress(f"{name:<18} {best['wall_s']*1e3:9.1f} ms  (best of {repeats})")
    return out


def fingerprint(metrics: dict) -> dict:
    """The simulated (wall-clock-independent) part of a metrics dict."""
    return {k: v for k, v in metrics.items() if k.startswith("sim_")}


def _check_fingerprint(name: str, a: dict, b: dict) -> None:
    fa, fb = fingerprint(a), fingerprint(b)
    if fa != fb:
        raise AssertionError(
            f"scenario {name!r} is non-deterministic across repeats: {fa} != {fb}"
        )


def environment() -> dict:
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def compare(before: dict, after: dict) -> dict:
    """Per-scenario wall-clock speedups (before/after), fingerprint-gated.

    Returns ``{name: {"speedup": x, "sim_identical": bool}}`` for every
    scenario present on both sides.  A speedup is only meaningful when
    the simulated fingerprints agree, so it is reported alongside the
    equality verdict rather than silently.
    """
    out: dict[str, dict] = {}
    for name, b in before.items():
        a = after.get(name)
        if a is None:
            continue
        out[name] = {
            "speedup": round(b["wall_s"] / a["wall_s"], 3) if a["wall_s"] > 0 else None,
            "sim_identical": fingerprint(b) == fingerprint(a),
        }
    return out


def load(path: str) -> dict:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return {"schema": SCHEMA_VERSION}
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return data


def merge_results(path: str, label: str, scenarios: dict) -> dict:
    """Merge one run under ``label`` into the JSON at ``path``.

    Recomputes the ``speedup`` section whenever both ``before`` and
    ``after`` are present.  Returns the merged document (also written
    back to ``path``).
    """
    data = load(path)
    data["schema"] = SCHEMA_VERSION
    merged = dict(data.get(label, {}).get("scenarios", {}))
    merged.update(scenarios)
    data[label] = {"env": environment(), "scenarios": merged}
    if "before" in data and "after" in data:
        data["speedup"] = compare(
            data["before"]["scenarios"], data["after"]["scenarios"]
        )
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


def render_comparison(data: dict) -> str:
    """Human-readable before/after table for a merged document."""
    if "speedup" not in data:
        return "(no before/after pair to compare)"
    lines = [
        f"{'scenario':<18} {'before':>10} {'after':>10} {'speedup':>8}  sim",
        "-" * 56,
    ]
    before = data["before"]["scenarios"]
    after = data["after"]["scenarios"]
    for name, cmp in sorted(data["speedup"].items()):
        b, a = before[name]["wall_s"], after[name]["wall_s"]
        sim = "identical" if cmp["sim_identical"] else "DIFFERS!"
        lines.append(
            f"{name:<18} {b*1e3:9.1f}ms {a*1e3:9.1f}ms {cmp['speedup']:>7.2f}x  {sim}"
        )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - thin CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_simulator.json")
    parser.add_argument("--label", choices=["before", "after"], default="after")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--scenario", nargs="+", dest="names", default=None)
    args = parser.parse_args(argv)
    results = run_scenarios(
        args.names, repeats=args.repeats, progress=print, jobs=args.jobs
    )
    data = merge_results(args.out, args.label, results)
    print(f"[{args.label}] {len(results)} scenario(s) -> {args.out}")
    print(render_comparison(data))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
