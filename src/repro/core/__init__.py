"""MCR-DL core: the paper's primary contribution.

* :mod:`repro.core.api` — the module-level API of Listing 1 (import it
  as ``mcr_dl``);
* :class:`repro.core.comm.MCRCommunicator` — the per-rank object API
  (layered over :mod:`repro.core.dispatch` and
  :mod:`repro.core.rendezvous`; extensions program against the
  :class:`repro.core.protocols.CommCore` protocol);
* :class:`repro.core.config.MCRConfig` — runtime configuration
  (synchronization scheme, stream pools, MPI stream modes, compression);
* :class:`repro.core.tuning.TuningTable` /
  :class:`repro.core.tuner.Tuner` — the tuning suite behind the
  ``"auto"`` backend (§V-F);
* :class:`repro.core.handles.WorkHandle` — non-blocking op handles with
  the paper's fine-grained synchronization semantics (§V-C).
"""

from repro.backends.ops import OpFamily, ReduceOp
from repro.core.adaptive import AdaptiveRetuner
from repro.core.comm import MCRCommunicator
from repro.core.config import AdaptiveConfig, CompressionConfig, MCRConfig
from repro.core.exceptions import (
    BackendError,
    CommTimeoutError,
    ConfigurationError,
    MCRError,
    TuningError,
    ValidationError,
)
from repro.core.handles import CompletedHandle, WorkHandle
from repro.core.protocols import CommCore
from repro.core.tuner import Tuner, TuningReport, DEFAULT_MESSAGE_SIZES, DEFAULT_OPS
from repro.core.tuning import TuningTable, message_bucket

__all__ = [
    "OpFamily",
    "ReduceOp",
    "MCRCommunicator",
    "CommCore",
    "MCRConfig",
    "CompressionConfig",
    "AdaptiveConfig",
    "AdaptiveRetuner",
    "MCRError",
    "BackendError",
    "CommTimeoutError",
    "ConfigurationError",
    "TuningError",
    "ValidationError",
    "WorkHandle",
    "CompletedHandle",
    "Tuner",
    "TuningReport",
    "TuningTable",
    "message_bucket",
    "DEFAULT_MESSAGE_SIZES",
    "DEFAULT_OPS",
]
