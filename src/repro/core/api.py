"""The module-level MCR-DL API (paper Listing 1).

Because each simulated rank runs on its own thread, the functional API
binds to "this process" through a thread-local — so user code inside a
:class:`~repro.sim.Simulator` SPMD function reads exactly like the
paper's examples (Listings 3 and 4)::

    import repro.core.api as mcr_dl

    def main(ctx):
        mcr_dl.init(["nccl", "mvapich2-gdr"])
        x = ctx.rand(1024)
        y = ctx.rand(1024)
        h1 = mcr_dl.all_reduce("nccl", x, async_op=True)
        h2 = mcr_dl.all_reduce("mvapich2-gdr", y, async_op=True)
        h1.wait(); h2.wait()
        mcr_dl.finalize()

Every function takes the backend name first — a registered backend
string (``"nccl"``, ``"mvapich2-gdr"``, ``"msccl"``, ...) or ``"auto"``
to dispatch through the tuning table (§V-F).
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.backends.base import available_backends as _available_backends
from repro.backends.ops import ReduceOp
from repro.core.comm import MCRCommunicator
from repro.core.config import MCRConfig
from repro.core.exceptions import MCRError
from repro.core.handles import WorkHandle
from repro.core.protocols import CommCore
from repro.core.tuning import TuningTable
from repro.sim.process import RankContext
from repro.tensor import SimTensor

_tls = threading.local()


def _bind_context(ctx: RankContext) -> None:
    """Attach the current rank's context to this thread (the Simulator
    calls this before invoking the user function)."""
    _tls.ctx = ctx
    _tls.comm = None


def _unbind_context() -> None:
    _tls.ctx = None
    _tls.comm = None


def current_context() -> RankContext:
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise MCRError(
            "no rank context bound to this thread — the functional API can "
            "only be used inside a Simulator-run SPMD function"
        )
    return ctx


def _comm() -> MCRCommunicator:
    comm = getattr(_tls, "comm", None)
    if comm is None:
        raise MCRError("mcr_dl.init() has not been called on this rank")
    return comm


# ----------------------------------------------------------------------
# lifecycle (Listing 1 head)
# ----------------------------------------------------------------------


def available() -> list[str]:
    """Canonical names of all registered backend classes."""
    return _available_backends()


def create_communicator(
    ctx: RankContext,
    backends: "str | Sequence[str]",
    config: Optional[MCRConfig] = None,
    tuning_table: Optional[TuningTable] = None,
    comm_id: str = "world",
    ranks: Optional[Sequence[int]] = None,
) -> CommCore:
    """Construct a concrete communicator for an explicit rank context.

    This is the object-API entry point for framework shims and
    benchmarks: they hold a :class:`~repro.core.protocols.CommCore`
    and never import the concrete
    :class:`~repro.core.comm.MCRCommunicator` class (enforced by
    ``scripts/check_imports.py``).
    """
    return MCRCommunicator(
        ctx,
        backends,
        config=config,
        tuning_table=tuning_table,
        comm_id=comm_id,
        ranks=ranks,
    )


def init(
    backends: "str | Sequence[str]",
    config: Optional[MCRConfig] = None,
    tuning_table: Optional[TuningTable] = None,
) -> MCRCommunicator:
    """Initialize MCR-DL on this rank with one or more backends."""
    ctx = current_context()
    if getattr(_tls, "comm", None) is not None:
        raise MCRError("mcr_dl.init() called twice on this rank")
    _tls.comm = MCRCommunicator(
        ctx, backends, config=config, tuning_table=tuning_table
    )
    return _tls.comm


def finalize(backends: "str | Sequence[str] | None" = None) -> None:
    _comm().finalize(backends)
    _tls.comm = None


def synchronize(backends: "str | Sequence[str] | None" = None) -> None:
    _comm().synchronize(backends)


def get_backends() -> list[str]:
    return _comm().get_backends()


def get_size(backend: Optional[str] = None) -> int:
    return _comm().get_size(backend)


def get_rank(backend: Optional[str] = None) -> int:
    return _comm().get_rank(backend)


def set_tuning_table(table: TuningTable) -> None:
    """Install/replace the tuning table consulted by the "auto" backend.

    Plan-invalidating: every compiled dispatch plan recompiles against
    the new table on its next use.
    """
    _comm().tuning_table = table


def invalidate_plans(reason: str = "") -> None:
    """Force recompilation of this rank's compiled dispatch plans.

    Rarely needed — tuning-table installs, in-place table edits,
    quarantines, and codec/synchronization changes invalidate
    automatically — but required after out-of-band mutations the
    communicator snapshots at compile time (e.g. installing a
    link-degradation schedule on the SystemSpec mid-run).
    """
    _comm().invalidate_plans(reason)


def new_group(ranks, comm_id: str) -> MCRCommunicator:
    """Create a process group over a rank subset (``torch.distributed
    new_group`` analogue).  Only members may call; all members must pass
    the same ``ranks`` and ``comm_id``.  Returns an
    :class:`MCRCommunicator` with group-local rank/size semantics."""
    parent = _comm()
    return MCRCommunicator(
        current_context(),
        list(parent.backends),
        config=parent.config,
        tuning_table=parent.tuning_table,
        comm_id=comm_id,
        ranks=ranks,
    )


# ----------------------------------------------------------------------
# point-to-point
# ----------------------------------------------------------------------


def send(backend: str, tensor: SimTensor, dst: int, tag: int = 0, async_op: bool = False):
    return _comm().send(backend, tensor, dst, tag, async_op)


def recv(backend: str, tensor: SimTensor, src: int, tag: int = 0, async_op: bool = False):
    return _comm().recv(backend, tensor, src, tag, async_op)


def isend(backend: str, tensor: SimTensor, dst: int, tag: int = 0) -> WorkHandle:
    return _comm().isend(backend, tensor, dst, tag)


def irecv(backend: str, tensor: SimTensor, src: int, tag: int = 0) -> WorkHandle:
    return _comm().irecv(backend, tensor, src, tag)


# ----------------------------------------------------------------------
# collectives
# ----------------------------------------------------------------------


def all_reduce(backend: str, tensor: SimTensor, op: ReduceOp = ReduceOp.SUM, async_op: bool = False):
    return _comm().all_reduce(backend, tensor, op, async_op)


def reduce(backend: str, tensor: SimTensor, root: int = 0, op: ReduceOp = ReduceOp.SUM, async_op: bool = False):
    return _comm().reduce(backend, tensor, root, op, async_op)


def bcast(backend: str, tensor: SimTensor, root: int = 0, async_op: bool = False):
    return _comm().bcast(backend, tensor, root, async_op)


broadcast = bcast


def all_gather(backend: str, output: SimTensor, input: SimTensor, async_op: bool = False):
    return _comm().all_gather(backend, output, input, async_op)


def all_gather_base(backend: str, output: SimTensor, input: SimTensor, async_op: bool = False):
    return _comm().all_gather_base(backend, output, input, async_op)


def reduce_scatter(backend: str, output: SimTensor, input: SimTensor, op: ReduceOp = ReduceOp.SUM, async_op: bool = False):
    return _comm().reduce_scatter(backend, output, input, op, async_op)


def all_to_all_single(backend: str, output: SimTensor, input: SimTensor, async_op: bool = False):
    return _comm().all_to_all_single(backend, output, input, async_op)


def all_to_all(backend: str, output: Sequence[SimTensor], input: Sequence[SimTensor], async_op: bool = False):
    return _comm().all_to_all(backend, output, input, async_op)


def gather(backend: str, input: SimTensor, output: Optional[SimTensor] = None, root: int = 0, async_op: bool = False):
    return _comm().gather(backend, input, output, root, async_op)


def scatter(backend: str, output: SimTensor, input: Optional[SimTensor] = None, root: int = 0, async_op: bool = False):
    return _comm().scatter(backend, output, input, root, async_op)


def gatherv(backend: str, input: SimTensor, output: Optional[SimTensor] = None, rcounts=None, displs=None, root: int = 0, async_op: bool = False):
    return _comm().gatherv(backend, input, output, rcounts, displs, root, async_op)


def scatterv(backend: str, output: SimTensor, input: Optional[SimTensor] = None, scounts=None, displs=None, root: int = 0, async_op: bool = False):
    return _comm().scatterv(backend, output, input, scounts, displs, root, async_op)


def all_gatherv(backend: str, output: SimTensor, input: SimTensor, rcounts=None, displs=None, async_op: bool = False):
    return _comm().all_gatherv(backend, output, input, rcounts, displs, async_op)


def all_to_allv(backend: str, output: SimTensor, input: SimTensor, scounts=None, sdispls=None, rcounts=None, rdispls=None, async_op: bool = False):
    return _comm().all_to_allv(backend, output, input, scounts, sdispls, rcounts, rdispls, async_op)


def barrier(backend: Optional[str] = None, async_op: bool = False):
    return _comm().barrier(backend, async_op)
