"""Execution layer of the comm core: rendezvous matching and the
collective/p2p spines.

Collectives rendezvous through shared simulation state keyed by a
per-backend sequence number, exactly like communicator-ordered
collective calls in NCCL/MPI: symmetric programs match up, mismatched
programs deadlock (and the engine reports it), and argument mismatches
raise :class:`~repro.core.exceptions.ValidationError` at the
rendezvous.

This module is the bottom of the comm-core layering (op surface →
dispatch → execution; see ``docs/INTERNALS.md`` §15): it must not
import :mod:`repro.core.dispatch` or :mod:`repro.core.comm`.  The
:class:`ExecutionLayer` mixin reaches dispatch-layer methods
(``_compile_plan``, ``_admit_backend``, ...) through ``self`` — the
concrete :class:`~repro.core.comm.MCRCommunicator` composes both
layers — so the *code* dependency stays one-directional even though the
call graph crosses layers per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.backends.ops import OpFamily
from repro.core.exceptions import CommTimeoutError, MCRError, ValidationError
from repro.core.handles import CompletedHandle, WorkHandle
from repro.sim.engine import Flag
from repro.sim.graph import CollectiveGroup, resolve
from repro.tensor import SimTensor

#: stand-in data-plane buffer for virtual (timing-only) tensors
_VIRTUAL_BUF = np.empty(0, dtype=np.float32)


@dataclass(slots=True)
class Arrival:
    """One rank's registration at a collective rendezvous."""

    rank: int
    host_time: float
    inputs: list[np.ndarray]
    outputs: list[np.ndarray]
    extras: dict = field(default_factory=dict)


class Rendezvous:
    """Shared per-collective matching record."""

    __slots__ = (
        "key",
        "expected",
        "family",
        "meta",
        "flag",
        "stream_kind",
        "group",
        "arrivals",
        "resolved",
        "claimed",
        "duration",
    )

    def __init__(
        self,
        key: tuple,
        expected: int,
        family: OpFamily,
        meta: tuple,
        flag: Flag,
        stream_kind: bool,
    ):
        self.key = key
        self.expected = expected
        self.family = family
        self.meta = meta
        self.flag = flag
        self.stream_kind = stream_kind
        self.group: Optional[CollectiveGroup] = (
            CollectiveGroup(expected, flag, label=str(key)) if stream_kind else None
        )
        self.arrivals: dict[int, Arrival] = {}
        self.resolved = False
        #: set by the rank that takes responsibility for resolution (the
        #: pre-post host sync can let several ranks observe "all arrived")
        self.claimed = False
        #: transfer duration (µs), known once the last rank arrives
        self.duration: Optional[float] = None


class ExecutionLayer:
    """Mixin: posts operations into the engine and observes completion.

    Stateless by itself — every attribute it reads (``ctx``, ``_shared``,
    ``_seq``, plan-cache state, fault gates, ...) is initialized by
    :class:`~repro.core.comm.MCRCommunicator`, and every dispatch-layer
    method it calls (``_compile_plan``, ``_admit_backend``,
    ``_op_label``, ...) is provided by
    :class:`~repro.core.dispatch.DispatchLayer`.
    """

    def _flat(self, tensor: SimTensor) -> np.ndarray:
        if not isinstance(tensor, SimTensor):
            raise TypeError(f"expected SimTensor, got {type(tensor).__name__}")
        if tensor.is_virtual:
            # timing-only tensor: the buffer is never read or written (every
            # data-plane touch is guarded by ``not timing_only``), so skip
            # the contiguity/view work and hand back a shared placeholder
            return _VIRTUAL_BUF
        return tensor.contiguous().view_flat()

    def _next_seq(self, backend_name: str) -> int:
        # rendezvous sequence numbers are keyed per backend only:
        # collective calls are communicator-ordered within a library
        # regardless of op family, exactly like NCCL/MPI, so mixed-family
        # programs stay matched as long as every rank posts the same
        # op order (tests/test_plan_cache.py pins this down)
        self._seq[backend_name] += 1
        return self._seq[backend_name]

    def _collective(
        self,
        backend_name: str,
        family: OpFamily,
        nbytes: int,
        inputs: list[np.ndarray],
        outputs: list[np.ndarray],
        move: Callable[[list[Arrival]], None],
        meta: tuple,
        async_op: bool,
        vector: bool = False,
        force_host: bool = False,
        compressible: bool = True,
        extras: Optional[dict] = None,
        tensors: tuple = (),
        dispatch_scale: float = 1.0,
    ) -> Optional[WorkHandle]:
        # virtual (timing-only) tensors: charge full communication time
        # but skip the data plane (workload modeling; see SimTensor docs)
        timing_only = False
        for t in tensors:
            if t is not None and t.is_virtual:
                timing_only = True
                break
        if self._finalized:
            raise MCRError("communicator already finalized")
        ctx = self.ctx

        # pre-dispatch hook fallback for direct ``_collective`` callers
        # (persistent-collective replay): the public op surface primes
        # ``_adapt_primed`` before hier/flat resolution, so this only
        # fires when the op surface was bypassed.  A probation canary
        # (retuner.quiet) posts from inside before_op and must not count
        # as a new adaptive op.
        retuner = self._retuner
        if retuner is not None:
            if self._adapt_primed:
                self._adapt_primed = False
            elif not retuner.quiet:
                retuner.before_op(family, nbytes)

        # plan lookup: steady state pays one dict probe; first post (or
        # first post after an epoch bump) compiles.  The cache-off path
        # compiles a throwaway plan through the same code, which is what
        # keeps cached and uncached dispatch identical by construction.
        if self._plan_cache_on:
            pkey = (
                backend_name, family, meta, nbytes,
                vector, force_host, compressible, timing_only,
            )
            plan = self._plans.get(pkey)
            if plan is not None and self._plan_valid(plan):
                self._plan_hits += 1
            else:
                plan = self._compile_plan(
                    backend_name, family, nbytes, meta,
                    vector, force_host, compressible, timing_only,
                )
                self._plans[pkey] = plan
                self._plan_misses += 1
        else:
            plan = self._compile_plan(
                backend_name, family, nbytes, meta,
                vector, force_host, compressible, timing_only,
            )

        backend = plan.backend
        label = plan.label
        dispatch_reason = plan.dispatch_reason
        dispatch_cost = plan.dispatch_cost_us
        stream_kind = plan.stream_kind
        if self._fault_gate or self._quarantined:
            # the fault gate runs per call even on a plan hit: injector
            # op counters must advance exactly as in the uncached path,
            # and its retries/reroutes are call-local, never plan state
            admitted = self._admit_backend(backend, family, nbytes)
            if admitted is not backend:
                backend = admitted
                label, dispatch_reason = self._op_label(family, backend.name)
                dispatch_cost = self._dispatch_cost(backend)
                stream_kind = self.sync.uses_streams(backend) and not force_host
                if self.config.synchronization == "naive":
                    stream_kind = not force_host
        dispatch = (
            self._dispatch_kind(backend_name, plan.resolved_name, backend.name)
            if self.logger is not None
            else "explicit"
        )

        # host dispatch: thin Python layer + backend call overhead (C3);
        # persistent collectives replay at a discounted scale (§V-E)
        if dispatch_scale != 1.0:
            dispatch_cost *= dispatch_scale
        ctx.engine.sleep(dispatch_cost, dispatch_reason)

        codec = plan.codec
        wire_bytes = plan.wire_bytes
        codec_us = plan.codec_us

        if self.world_size == 1:
            if not timing_only:
                for a_in, a_out in zip(inputs, outputs):
                    if a_in is not a_out:
                        a_out[:] = a_in
            handle = CompletedHandle(ctx, backend.name, label)
            self._log(
                family, backend, nbytes, ctx.now, ctx.now, async_op,
                dispatch=dispatch, stream="host",
            )
            if async_op:
                return handle
            return None

        # rendezvous ---------------------------------------------------

        seq = self._next_seq(backend.name)
        key = (self.comm_id, backend.name, seq)
        rdv_table = self._shared["rdv"]
        meta = plan.meta_tagged
        rdv = rdv_table.get(key)
        if rdv is None:
            rdv = Rendezvous(
                key, self.world_size, family, meta, ctx.new_flag(label), stream_kind
            )
            rdv_table[key] = rdv
        if rdv.meta != meta or rdv.family is not family:
            raise ValidationError(
                f"collective mismatch at {key}: rank {ctx.rank} posted "
                f"{family}/{meta}, expected {rdv.family}/{rdv.meta}"
            )
        if ctx.rank in rdv.arrivals:
            raise ValidationError(f"rank {ctx.rank} arrived twice at {key}")

        arrival = Arrival(
            rank=ctx.rank,
            host_time=ctx.now,
            inputs=inputs,
            outputs=outputs,
            extras=extras or {},
        )
        rdv.arrivals[ctx.rank] = arrival

        member_node = None
        stream_label = "host"
        if stream_kind:
            self.sync.pre_post(backend)
            # pre_post may advance the host clock (naive-mode default
            # stream sync); the arrival timestamp must reflect when the
            # op was actually posted or flapping-link windows skew
            arrival.host_time = ctx.now
            stream = self.sync.pick_stream(backend, wire_bytes)
            stream_label = stream.name
            producer = ctx.gpu.default_stream.last
            member_node = stream.enqueue_collective_member(
                rdv.group,
                deps=[producer] if producer is not None else [],
                label=label,
                category="comm",
            )
        else:
            self.sync.pre_post(backend)
            arrival.host_time = ctx.now  # pre_post may have advanced time

        last = len(rdv.arrivals) == self.world_size and not rdv.claimed
        if last:
            rdv.claimed = True
            if vector and family is OpFamily.ALLTOALL:
                # an imbalanced alltoallv runs at the pace of its heaviest
                # sender or receiver (the straggler destination), not this
                # rank's own volume
                wire_bytes = max(wire_bytes, self._alltoallv_critical_bytes(rdv))
            duration = backend.collective_cost_us(
                family,
                wire_bytes,
                self.world_size,
                self._comm_path,
                vector=vector,
                nonblocking=async_op,
            )
            duration *= 1.0 + self.config.dispatch_fraction
            if self._link_faults:
                # degraded/flapping fabric window (repro.sim.faults):
                # decided once, by the resolving rank, at the transfer's
                # start time — per-rank clocks cannot split the decision
                duration *= ctx.system.link_time_factor(
                    max(a.host_time for a in rdv.arrivals.values()),
                    backend.name,
                )
            duration += codec_us
            if self.config.force_host_staging:
                # Listing-2 style device->host->device copies around the op
                duration += 2.0 * ctx.system.host_staging_us(wire_bytes)
            ordered = [rdv.arrivals[r] for r in self.group_ranks]

            def on_resolve() -> None:
                if not timing_only:
                    if codec is not None:
                        for a in ordered:
                            for buf in a.inputs:
                                codec.apply_quantization_error(buf)
                    move(ordered)
                rdv.resolved = True

            del rdv_table[key]
            # Bandwidth-bound ops serialize per wire lane (§V-C:
            # "concurrent large-message operations are bandwidth-bound and
            # show no benefit"); latency-bound small ops overlap freely.
            # Two lanes model the two injection paths of a GPU node:
            # GPU-initiated (NCCL-family) and host-initiated RDMA (MPI) —
            # which is also why mixing more than one backend of the same
            # kind buys nothing (paper §V-D footnote 4).
            is_large = wire_bytes >= self.config.large_message_threshold
            lane = (
                "wire:stream" if backend.properties.stream_aware else "wire:host"
            )
            interference = getattr(ctx.system, "cross_path_interference", 0.6)
            rdv.duration = duration  # before fire: deferred log emits read it
            if stream_kind:
                rdv.group.duration = duration
                rdv.group.on_resolve = on_resolve
                if is_large and family is not OpFamily.BARRIER:
                    rdv.group.channel_store = self._channel
                    rdv.group.channel_key = lane
                    rdv.group.interference = interference
                resolve(rdv.group, ctx.engine)
            else:
                from repro.sim.graph import apply_wire_lane

                channel = self._channel
                start = max(a.host_time for a in ordered)
                if is_large:
                    start = apply_wire_lane(
                        channel, lane, start, duration, interference
                    )
                end = start + duration
                on_resolve()
                self._trace_host_collective(ordered, label, start, end)
                rdv.flag.fire(end)
        elif member_node is not None and rdv.claimed:
            # the pre-post host sync separates arrival registration from
            # member enqueue, so the claiming rank can wake first and
            # resolve() an incomplete group (a silent no-op).  The rank
            # whose member completes the group must retry, or every host
            # parks on a flag nobody will fire.
            group = rdv.group
            if group is not None and group.complete and not group._resolved:
                resolve(group, ctx.engine)

        # wait() semantics: stream-aware libraries synchronize through
        # CUDA events (host never blocks); MPI libraries complete through
        # MPI_Wait on the host even when their traffic rides MCR-managed
        # streams (mcr-managed mode only changes *where* the transfer
        # overlaps, not how completion is observed).
        stream_semantics = (
            stream_kind
            and backend.properties.stream_aware
            and self.config.synchronization != "naive"
        )
        self._log_on_flag(
            family, backend, nbytes, rdv.flag, async_op, rdv,
            dispatch=dispatch, stream=stream_label,
        )
        if retuner is not None:
            # observation rides the rendezvous flag: fire() runs every
            # rank's callback at one instant with one shared duration,
            # keeping the per-rank observation streams identical
            retuner.attach(family, backend.name, nbytes, rdv, backend_name == "auto")
        deadline_us = self.config.op_deadline_us
        if async_op:
            handle = WorkHandle(
                ctx, backend.name, rdv.flag, member_node,
                stream_semantics=stream_semantics, label=label,
                deadline_us=deadline_us,
                timeout_info=(
                    self._timeout_info(label, rdv) if deadline_us is not None else None
                ),
            )
            self._outstanding[backend.name].append(handle)
            return handle
        # synchronous op: apply wait() semantics inline, no handle object
        if stream_semantics and member_node is not None:
            ctx.gpu.default_stream._gates.append(member_node)
        else:
            self._await_flag(rdv.flag, label, rdv, deadline_us)
        if self.config.synchronization == "naive":
            # naive scheme additionally host-blocks (Fig. 4a)
            ctx.engine.wait_flag(rdv.flag, reason=label)
        return None

    def _await_flag(
        self,
        flag: Flag,
        label: str,
        rdv: Optional[Rendezvous],
        deadline_us: Optional[float],
    ) -> None:
        """Host-block on a completion flag, honoring the per-op deadline."""
        ctx = self.ctx
        if deadline_us is None:
            if flag.ready_time is None:
                ctx.engine.wait_flag(flag, reason=f"wait({label})")
            else:
                ctx.engine.wait_flag(flag, reason=label)
            return
        if not ctx.engine.wait_flag_deadline(
            flag, ctx.now + deadline_us, reason=f"wait({label})"
        ):
            detail = self._timeout_info(label, rdv)()
            raise CommTimeoutError(
                f"{label} exceeded the {deadline_us:.0f}us deadline on rank "
                f"{ctx.rank}: {detail}",
                label=label,
                rank=ctx.rank,
                deadline_us=deadline_us,
                detail=detail,
            )

    def _timeout_info(self, label: str, rdv: Optional[Rendezvous]):
        """Deferred per-rank diagnostics for a CommTimeoutError: evaluated
        at timeout time, when the rendezvous shows who never arrived."""

        def info() -> str:
            if rdv is None:
                return "operation still pending"
            arrived = sorted(rdv.arrivals)
            missing = [r for r in self.group_ranks if r not in rdv.arrivals]
            if missing:
                posted = ", ".join(
                    f"rank {r}@{rdv.arrivals[r].host_time:.1f}us" for r in arrived
                )
                return f"ranks {missing} never posted {label} (arrived: {posted})"
            return "all ranks arrived; transfer still in flight"

        return info

    def _alltoallv_critical_bytes(self, rdv: Rendezvous) -> int:
        """Heaviest per-rank send or receive volume of an alltoallv."""
        arrivals = [rdv.arrivals[r] for r in self.group_ranks if r in rdv.arrivals]
        if not arrivals or "scounts" not in arrivals[0].extras:
            return 0
        elem = arrivals[0].extras.get("_elem_size", 4)
        send_totals = [sum(a.extras["scounts"]) for a in arrivals]
        p = len(arrivals)
        recv_totals = [
            sum(a.extras["scounts"][j] for a in arrivals) for j in range(p)
        ]
        return max(max(send_totals), max(recv_totals)) * elem

    def _trace_host_collective(
        self, ordered: list[Arrival], label: str, start: float, end: float
    ) -> None:
        tracer = self.ctx.gpu.tracer
        if tracer is None:
            return
        for a in ordered:
            tracer.record(
                rank=a.rank, stream="mpi-host", label=label, category="comm",
                start=start, end=end,
            )

    # -- point-to-point ----------------------------------------------------

    def _p2p(
        self,
        backend_name: str,
        tensor: SimTensor,
        peer: int,
        tag: int,
        is_send: bool,
        async_op: bool,
    ) -> Optional[WorkHandle]:
        ctx = self.ctx
        if not 0 <= peer < self.world_size:
            raise ValidationError(f"peer {peer} out of range")
        peer_global = self.group_ranks[peer]
        if peer_global == ctx.rank:
            raise ValidationError("p2p with self is not supported")
        backend = self._resolve_backend(backend_name, OpFamily.P2P, tensor.nbytes())
        resolved_name = backend.name
        src, dst = (ctx.rank, peer_global) if is_send else (peer_global, ctx.rank)
        if self._fault_gate or self._quarantined:
            backend = self._admit_backend(
                backend, OpFamily.P2P, tensor.nbytes(), p2p_channel=(src, dst, tag)
            )
        label, dispatch_reason = self._op_label(
            "send" if is_send else "recv", backend.name
        )
        ctx.sleep(self._dispatch_cost(backend), reason=dispatch_reason)

        chan = self._shared["p2p"][(backend.name, src, dst, tag)]
        mine, theirs = ("sends", "recvs") if is_send else ("recvs", "sends")
        buf = self._flat(tensor)

        if chan[theirs]:
            other_buf, other_time, flag, other_virtual = chan[theirs].popleft()
            timing_only = tensor.is_virtual or other_virtual
            send_buf, recv_buf = (buf, other_buf) if is_send else (other_buf, buf)
            if not timing_only and send_buf.size != recv_buf.size:
                raise ValidationError(
                    f"p2p size mismatch: send {send_buf.size} vs recv {recv_buf.size}"
                )
            cost = backend.p2p_cost_us(
                tensor.nbytes(), ctx.system.same_node(src, dst)
            ) * (1.0 + self.config.dispatch_fraction)
            start = max(ctx.now, other_time)
            if self._link_faults:
                cost *= ctx.system.link_time_factor(start, backend.name)
            end = start + cost
            if not timing_only:
                recv_buf[:] = send_buf
            if not flag.is_set:  # eager sends fire their flag at post time
                flag.fire(end)
            if not is_send:
                # the receiver's own completion is the transfer end
                my_flag = ctx.new_flag(label)
                my_flag.fire(end)
                flag = my_flag
            if self.logger is not None:
                # one record per endpoint (the queued peer cannot know the
                # transfer duration, so the matching side logs for both)
                dispatch = self._dispatch_kind(
                    backend_name, resolved_name, backend.name
                )
                for endpoint in (ctx.rank, peer):
                    self.logger.log(
                        rank=endpoint,
                        family=str(OpFamily.P2P),
                        backend=backend.name,
                        nbytes=tensor.nbytes(),
                        start=end - cost,
                        end=end,
                        async_op=async_op,
                        step=self._current_step(endpoint),
                        dispatch=dispatch,
                        stream="p2p",
                    )
            handle = WorkHandle(
                ctx, backend.name, flag, None, False, label,
                deadline_us=self.config.op_deadline_us,
            )
        else:
            flag = ctx.new_flag(label)
            if is_send and tensor.nbytes() <= self.config.eager_threshold:
                # eager protocol: buffer the payload so the sender can
                # return (and reuse its tensor) before the match
                if not tensor.is_virtual:
                    buf = buf.copy()
                flag.fire(ctx.now)
            chan[mine].append((buf, ctx.now, flag, tensor.is_virtual))
            handle = WorkHandle(
                ctx, backend.name, flag, None, False, label,
                deadline_us=self.config.op_deadline_us,
            )

        if async_op:
            self._outstanding[backend.name].append(handle)
            return handle
        handle.synchronize()
        return None

    # -- logging -----------------------------------------------------------

    @staticmethod
    def _dispatch_kind(requested: str, resolved_name: str, actual_name: str) -> str:
        """Attribution tag for one dispatch decision (ISSUE 4): how did
        this op end up on ``actual_name``?"""
        if actual_name != resolved_name:
            return "reroute"  # fault gate failed over / rerouted
        return "auto" if requested == "auto" else "explicit"

    def _current_step(self, rank: int) -> int:
        obs = self._obs
        return obs.current_step(rank) if obs is not None else -1

    def _log(
        self,
        family: OpFamily,
        backend,
        nbytes: int,
        start: float,
        end: float,
        async_op: bool,
        dispatch: str = "explicit",
        stream: str = "",
    ) -> None:
        if self.logger is not None:
            self.logger.log(
                rank=self.ctx.rank,
                family=family.value,
                backend=backend.name,
                nbytes=nbytes,
                start=start,
                end=end,
                async_op=async_op,
                step=self._current_step(self.ctx.rank),
                dispatch=dispatch,
                stream=stream,
                phase=self._phase_tag,
            )

    def _log_on_flag(
        self,
        family: OpFamily,
        backend,
        nbytes: int,
        flag: Flag,
        async_op: bool,
        rdv: Optional[Rendezvous] = None,
        dispatch: str = "explicit",
        stream: str = "",
    ) -> None:
        """Log once the completion time is known (flag fired).

        Records the *transfer* interval (completion minus duration), not
        post-to-completion — queueing behind other traffic is not
        communication time (it would double-count in the breakdowns).
        The training step is captured at *post* time: a non-blocking op
        completing during step N+1 still belongs to the step that issued
        it.
        """
        if self.logger is None:
            return
        logger = self.logger
        rank = self.ctx.rank
        post_time = self.ctx.now
        step = self._current_step(rank)
        phase = self._phase_tag

        def emit() -> None:
            end = flag.ready_time
            duration = rdv.duration if rdv is not None and rdv.duration else None
            start = end - duration if duration is not None else post_time
            logger.log(
                rank=rank,
                family=family.value,
                backend=backend.name,
                nbytes=nbytes,
                start=start,
                end=end,
                async_op=async_op,
                step=step,
                dispatch=dispatch,
                stream=stream,
                phase=phase,
            )

        if flag.is_set:
            emit()
        else:
            logger.defer(flag, emit)
