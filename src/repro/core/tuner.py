"""The MCR-DL tuning suite (paper §V-F, C5).

Runs communication micro-benchmarks for every (backend, operation,
message size, world size) combination and records the winner in a
:class:`~repro.core.tuning.TuningTable` for later use by the ``"auto"``
backend.

Two measurement modes:

* ``simulated`` — actually runs the discrete-event simulator with an
  MCR-DL communicator issuing the operation in a timed loop (this is
  what the paper's suite does with OMB-style scripts);
* ``analytic`` — prices the operation directly from the backend cost
  model plus per-call overheads.  Orders of magnitude faster for wide
  sweeps; the test suite verifies both modes agree on rankings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backends.base import create_backend
from repro.backends.ops import OpFamily
from repro.cluster.topology import SystemSpec
from repro.core.config import MCRConfig
from repro.core.exceptions import TuningError
from repro.core.tuning import TuningTable

#: default sweep, 256 B .. 64 MiB in powers of two
DEFAULT_MESSAGE_SIZES = tuple(256 * (2**i) for i in range(19))

DEFAULT_OPS = (
    OpFamily.ALLREDUCE,
    OpFamily.ALLGATHER,
    OpFamily.ALLTOALL,
    OpFamily.REDUCE_SCATTER,
    OpFamily.BROADCAST,
    OpFamily.GATHER,
    OpFamily.SCATTER,
    OpFamily.REDUCE,
)


@dataclass
class TuningSample:
    """One micro-benchmark measurement."""

    op: str
    backend: str
    world_size: int
    msg_bytes: int
    latency_us: float


@dataclass
class TuningReport:
    """All samples from one tuning run plus the resulting table."""

    table: TuningTable
    samples: list[TuningSample] = field(default_factory=list)

    def samples_for(self, op: str, world_size: int, msg_bytes: int) -> list[TuningSample]:
        return [
            s
            for s in self.samples
            if s.op == op and s.world_size == world_size and s.msg_bytes == msg_bytes
        ]


class _BenchBuffers:
    """Lazily allocated tensors shared by the simulated op runners."""

    __slots__ = ("ctx", "numel", "_cache")

    def __init__(self, ctx, numel: int):
        self.ctx = ctx
        self.numel = numel
        self._cache: dict[str, object] = {}

    def get(self, name: str, numel: int):
        buf = self._cache.get(name)
        if buf is None:
            buf = self._cache[name] = self.ctx.zeros(numel)
        return buf

    @property
    def x(self):
        return self.get("x", self.numel)

    @property
    def out(self):
        return self.get("out", self.numel * self.ctx.world_size)

    @property
    def big(self):
        return self.get("big", self.numel * self.ctx.world_size)


def _run_reduce_scatter(comm, backend_name, ctx, bufs):
    small = bufs.get("small", max(1, bufs.numel // ctx.world_size))
    pad = bufs.get("pad", small.numel() * ctx.world_size)
    comm.reduce_scatter(backend_name, small, pad)


#: simulated micro-benchmark body per op family
_SIM_OP_RUNNERS = {
    OpFamily.ALLREDUCE: lambda comm, b, ctx, bufs: comm.all_reduce(b, bufs.x),
    OpFamily.ALLGATHER: lambda comm, b, ctx, bufs: comm.all_gather(b, bufs.out, bufs.x),
    OpFamily.ALLTOALL: lambda comm, b, ctx, bufs: comm.all_to_all_single(
        b, bufs.big, bufs.big
    ),
    OpFamily.REDUCE_SCATTER: _run_reduce_scatter,
    OpFamily.BROADCAST: lambda comm, b, ctx, bufs: comm.bcast(b, bufs.x, root=0),
    OpFamily.REDUCE: lambda comm, b, ctx, bufs: comm.reduce(b, bufs.x, root=0),
    OpFamily.GATHER: lambda comm, b, ctx, bufs: comm.gather(
        b, bufs.x, bufs.out if ctx.rank == 0 else None, root=0
    ),
    OpFamily.SCATTER: lambda comm, b, ctx, bufs: comm.scatter(
        b, bufs.x, bufs.big if ctx.rank == 0 else None, root=0
    ),
}


class Tuner:
    """Builds tuning tables for a system over a set of backends."""

    def __init__(
        self,
        system: SystemSpec,
        backends: Sequence[str],
        config: Optional[MCRConfig] = None,
        mode: str = "analytic",
        iterations: int = 5,
        warmup: int = 1,
        metrics=None,
    ):
        if mode not in ("analytic", "simulated"):
            raise TuningError(f"unknown tuning mode {mode!r}")
        if not backends:
            raise TuningError("tuner needs at least one backend")
        self.system = system
        self.backends = list(backends)
        self.config = config or MCRConfig()
        self.mode = mode
        self.iterations = iterations
        self.warmup = warmup
        #: optional repro.obs.MetricsRegistry; every measured sample is
        #: reported as a kind="tuning" event
        self.metrics = metrics
        #: one analytic backend instance per (name, world_size), reused
        #: across the whole sweep — instantiating per cell dominated wide
        #: analytic sweeps and defeated the shared cost memo
        self._analytic_backends: dict[tuple[str, int], object] = {}

    # -- measurement --------------------------------------------------------

    def measure(
        self, backend_name: str, op: OpFamily, msg_bytes: int, world_size: int
    ) -> float:
        """End-to-end per-operation latency in µs."""
        if self.mode == "analytic":
            return self._measure_analytic(backend_name, op, msg_bytes, world_size)
        return self._measure_simulated(backend_name, op, msg_bytes, world_size)

    def _measure_analytic(
        self, backend_name: str, op: OpFamily, msg_bytes: int, world_size: int
    ) -> float:
        key = (backend_name, world_size)
        backend = self._analytic_backends.get(key)
        if backend is None:
            backend = self._analytic_backends[key] = create_backend(
                backend_name, 0, world_size, self.system
            )
        path = self.system.comm_path(world_size)
        raw = backend.collective_cost_us(op, msg_bytes, world_size, path)
        raw *= 1.0 + self.config.dispatch_fraction
        return raw + self.config.dispatch_overhead_us + backend.call_overhead_us()

    def _measure_simulated(
        self, backend_name: str, op: OpFamily, msg_bytes: int, world_size: int
    ) -> float:
        from repro.core.comm import MCRCommunicator
        from repro.sim.simulator import Simulator
        from repro.tensor.dtypes import float32

        iters, warmup = self.iterations, self.warmup
        numel = max(1, msg_bytes // float32.itemsize)
        config = self.config
        runner = _SIM_OP_RUNNERS.get(op)
        if runner is None:
            raise TuningError(f"tuner cannot benchmark {op}")

        def bench(ctx):
            comm = MCRCommunicator(ctx, [backend_name], config=config)
            bufs = _BenchBuffers(ctx, numel)

            def run_op():
                runner(comm, backend_name, ctx, bufs)
                comm.synchronize(backend_name)

            for _ in range(warmup):
                run_op()
            comm.barrier(backend_name)
            start = ctx.now
            for _ in range(iters):
                run_op()
            elapsed = ctx.now - start
            comm.finalize()
            return elapsed / iters

        result = Simulator(world_size, system=self.system).run(bench)
        return max(result.rank_results)

    # -- sweep ------------------------------------------------------------

    def build_table(
        self,
        world_sizes: Sequence[int],
        message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
        ops: Sequence[OpFamily] = DEFAULT_OPS,
    ) -> TuningReport:
        """Benchmark every combination and record the per-cell winner."""
        bad = [ws for ws in world_sizes if ws < 2]
        if bad:
            # validate before measuring anything so a bad sweep cannot
            # leave a partially populated report behind
            raise TuningError(f"tuning needs world sizes >= 2, got {bad}")
        table = TuningTable(system=self.system.name)
        report = TuningReport(table=table)
        for op in ops:
            for ws in world_sizes:
                for msg in message_sizes:
                    best_backend, best_latency = None, float("inf")
                    for backend in self.backends:
                        latency = self.measure(backend, op, msg, ws)
                        report.samples.append(
                            TuningSample(str(op), backend, ws, msg, latency)
                        )
                        if self.metrics is not None:
                            from repro.obs.metrics import ObsEvent

                            self.metrics.observe(
                                ObsEvent(
                                    kind="tuning",
                                    rank=-1,
                                    stream="",
                                    backend=backend,
                                    family=str(op),
                                    nbytes=msg,
                                    step=-1,
                                    start=0.0,
                                    end=latency,
                                    detail=f"ws={ws}",
                                )
                            )
                        if latency < best_latency:
                            best_backend, best_latency = backend, latency
                    table.add(str(op), ws, msg, best_backend)
        return report
