"""The MCR-DL tuning suite (paper §V-F, C5).

Runs communication micro-benchmarks for every (backend, operation,
message size, world size) combination and records the winner in a
:class:`~repro.core.tuning.TuningTable` for later use by the ``"auto"``
backend.

Two measurement modes:

* ``simulated`` — actually runs the discrete-event simulator with an
  MCR-DL communicator issuing the operation in a timed loop (this is
  what the paper's suite does with OMB-style scripts);
* ``analytic`` — prices the operation directly from the backend cost
  model plus per-call overheads.  Orders of magnitude faster for wide
  sweeps; the test suite verifies both modes agree on rankings.

Sweeps are embarrassingly parallel — every cell is a pure function of
its coordinates — so :meth:`Tuner.build_table` decomposes the grid into
picklable work units and hands them to the
:mod:`repro.bench.sweep` engine: ``jobs=N`` fans cells out over a
spawn pool, ``cache=`` serves unchanged cells from the content-addressed
on-disk cache.  The merge replays the exact serial ordering, so the
resulting table and report are byte-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backends.base import create_backend
from repro.backends.ops import OpFamily
from repro.cluster.topology import SystemSpec
from repro.core.comm import MCRCommunicator
from repro.core.config import MCRConfig
from repro.core.exceptions import TuningError
from repro.core.tuning import TuningTable
from repro.obs.metrics import ObsEvent

#: default sweep, 256 B .. 64 MiB in powers of two
DEFAULT_MESSAGE_SIZES = tuple(256 * (2**i) for i in range(19))

DEFAULT_OPS = (
    OpFamily.ALLREDUCE,
    OpFamily.ALLGATHER,
    OpFamily.ALLTOALL,
    OpFamily.REDUCE_SCATTER,
    OpFamily.BROADCAST,
    OpFamily.GATHER,
    OpFamily.SCATTER,
    OpFamily.REDUCE,
)


@dataclass
class TuningSample:
    """One micro-benchmark measurement."""

    op: str
    backend: str
    world_size: int
    msg_bytes: int
    latency_us: float


@dataclass
class TuningReport:
    """All samples from one tuning run plus the resulting table."""

    table: TuningTable
    samples: list[TuningSample] = field(default_factory=list)
    #: execution statistics from the sweep engine (jobs, cache hits /
    #: misses); excluded from equality so parallel and cached runs
    #: compare equal to serial ones when their measurements agree
    sweep_stats: Optional[object] = field(default=None, compare=False)

    def samples_for(self, op: str, world_size: int, msg_bytes: int) -> list[TuningSample]:
        return [
            s
            for s in self.samples
            if s.op == op and s.world_size == world_size and s.msg_bytes == msg_bytes
        ]


class _BenchBuffers:
    """Lazily allocated tensors shared by the simulated op runners."""

    __slots__ = ("ctx", "numel", "_cache")

    def __init__(self, ctx, numel: int):
        self.ctx = ctx
        self.numel = numel
        self._cache: dict[str, object] = {}

    def get(self, name: str, numel: int):
        buf = self._cache.get(name)
        if buf is None:
            buf = self._cache[name] = self.ctx.zeros(numel)
        return buf

    @property
    def x(self):
        return self.get("x", self.numel)

    @property
    def out(self):
        return self.get("out", self.numel * self.ctx.world_size)

    @property
    def big(self):
        return self.get("big", self.numel * self.ctx.world_size)


def _run_reduce_scatter(comm, backend_name, ctx, bufs):
    small = bufs.get("small", max(1, bufs.numel // ctx.world_size))
    pad = bufs.get("pad", small.numel() * ctx.world_size)
    comm.reduce_scatter(backend_name, small, pad)


#: simulated micro-benchmark body per op family
_SIM_OP_RUNNERS = {
    OpFamily.ALLREDUCE: lambda comm, b, ctx, bufs: comm.all_reduce(b, bufs.x),
    OpFamily.ALLGATHER: lambda comm, b, ctx, bufs: comm.all_gather(b, bufs.out, bufs.x),
    OpFamily.ALLTOALL: lambda comm, b, ctx, bufs: comm.all_to_all_single(
        b, bufs.big, bufs.big
    ),
    OpFamily.REDUCE_SCATTER: _run_reduce_scatter,
    OpFamily.BROADCAST: lambda comm, b, ctx, bufs: comm.bcast(b, bufs.x, root=0),
    OpFamily.REDUCE: lambda comm, b, ctx, bufs: comm.reduce(b, bufs.x, root=0),
    OpFamily.GATHER: lambda comm, b, ctx, bufs: comm.gather(
        b, bufs.x, bufs.out if ctx.rank == 0 else None, root=0
    ),
    OpFamily.SCATTER: lambda comm, b, ctx, bufs: comm.scatter(
        b, bufs.x, bufs.big if ctx.rank == 0 else None, root=0
    ),
}


class _SweepContext:
    """Picklable measurement context shipped once to each pool worker.

    Reconstructs (and memoizes) a :class:`Tuner` on first use in each
    process; the serial path binds the issuing tuner instead so the
    in-process sweep reuses its per-instance backend memo exactly as
    before.
    """

    def __init__(
        self,
        system: SystemSpec,
        backends: Sequence[str],
        config: MCRConfig,
        mode: str,
        iterations: int,
        warmup: int,
    ):
        self.system = system
        self.backends = tuple(backends)
        self.config = config
        self.mode = mode
        self.iterations = iterations
        self.warmup = warmup
        self._tuner: Optional["Tuner"] = None

    def bind(self, tuner: "Tuner") -> None:
        self._tuner = tuner

    def tuner(self) -> "Tuner":
        if self._tuner is None:
            self._tuner = Tuner(
                self.system,
                list(self.backends),
                config=self.config,
                mode=self.mode,
                iterations=self.iterations,
                warmup=self.warmup,
            )
        return self._tuner

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_tuner"] = None  # never ship the memoized tuner
        return state


def _measure_cell(context: _SweepContext, unit: tuple) -> float:
    """Sweep-engine worker: measure one (op, world size, msg, backend)
    cell.  Top-level so the spawn pool can pickle it by reference."""
    op_value, world_size, msg_bytes, backend = unit
    return context.tuner().measure(
        backend, OpFamily(op_value), msg_bytes, world_size
    )


class Tuner:
    """Builds tuning tables for a system over a set of backends."""

    def __init__(
        self,
        system: SystemSpec,
        backends: Sequence[str],
        config: Optional[MCRConfig] = None,
        mode: str = "analytic",
        iterations: int = 5,
        warmup: int = 1,
        metrics=None,
    ):
        if mode not in ("analytic", "simulated"):
            raise TuningError(f"unknown tuning mode {mode!r}")
        if not backends:
            raise TuningError("tuner needs at least one backend")
        self.system = system
        self.backends = list(backends)
        self.config = config or MCRConfig()
        self.mode = mode
        self.iterations = iterations
        self.warmup = warmup
        #: optional repro.obs.MetricsRegistry; every measured sample is
        #: reported as a kind="tuning" event
        self.metrics = metrics
        #: one analytic backend instance per (name, world_size), reused
        #: across the whole sweep — instantiating per cell dominated wide
        #: analytic sweeps and defeated the shared cost memo
        self._analytic_backends: dict[tuple[str, int], object] = {}

    # -- measurement --------------------------------------------------------

    def measure(
        self, backend_name: str, op: OpFamily, msg_bytes: int, world_size: int
    ) -> float:
        """End-to-end per-operation latency in µs."""
        if self.mode == "analytic":
            return self._measure_analytic(backend_name, op, msg_bytes, world_size)
        return self._measure_simulated(backend_name, op, msg_bytes, world_size)

    def _measure_analytic(
        self, backend_name: str, op: OpFamily, msg_bytes: int, world_size: int
    ) -> float:
        if backend_name[:5].lower() == "hier:":
            # composite candidate: price the phase schedule (each phase
            # already carries its dispatch fraction + overheads); +inf
            # for families a hierarchical target cannot run, so flat
            # backends always win those cells
            from repro.backends.hierarchical import (
                hier_collective_cost_us,
                parse_hier,
            )

            return hier_collective_cost_us(
                self.system, parse_hier(backend_name), op, msg_bytes,
                world_size, config=self.config,
            )
        key = (backend_name, world_size)
        backend = self._analytic_backends.get(key)
        if backend is None:
            backend = self._analytic_backends[key] = create_backend(
                backend_name, 0, world_size, self.system
            )
        path = self.system.comm_path(world_size)
        raw = backend.collective_cost_us(op, msg_bytes, world_size, path)
        raw *= 1.0 + self.config.dispatch_fraction
        return raw + self.config.dispatch_overhead_us + backend.call_overhead_us()

    def _measure_simulated(
        self, backend_name: str, op: OpFamily, msg_bytes: int, world_size: int
    ) -> float:
        from repro.sim.simulator import Simulator
        from repro.tensor.dtypes import float32

        iters, warmup = self.iterations, self.warmup
        numel = max(1, msg_bytes // float32.itemsize)
        config = self.config
        runner = _SIM_OP_RUNNERS.get(op)
        if runner is None:
            raise TuningError(f"tuner cannot benchmark {op}")
        if backend_name[:5].lower() == "hier:":
            from repro.backends.hierarchical import HIER_FAMILIES, parse_hier

            if op not in HIER_FAMILIES:
                import math

                return math.inf  # not decomposable; never simulate it
            spec = parse_hier(backend_name)
            comm_backends = list(dict.fromkeys((spec.intra, spec.inter)))
            #: "hier:*" is not a backend name; synchronize/barrier on the
            #: constituents (None = all, which also drains phase groups)
            sync_target, barrier_on = None, comm_backends[0]
        else:
            comm_backends = [backend_name]
            sync_target, barrier_on = backend_name, backend_name

        def bench(ctx):
            comm = MCRCommunicator(ctx, comm_backends, config=config)
            bufs = _BenchBuffers(ctx, numel)

            def run_op():
                runner(comm, backend_name, ctx, bufs)
                comm.synchronize(sync_target)

            for _ in range(warmup):
                run_op()
            comm.barrier(barrier_on)
            start = ctx.now
            for _ in range(iters):
                run_op()
            elapsed = ctx.now - start
            comm.finalize()
            return elapsed / iters

        result = Simulator(world_size, system=self.system).run(bench)
        return max(result.rank_results)

    # -- sweep ------------------------------------------------------------

    def _cache_keys(self, cells: Sequence[tuple]) -> list[str]:
        """One content hash per cell: measurement context + the
        backend's calibration constants + the cell coordinates."""
        from repro.bench.sweep import (
            SWEEP_SCHEMA_VERSION,
            calibration_fingerprint,
            config_fingerprint,
            stable_hash,
            system_fingerprint,
        )

        base = {
            "schema": SWEEP_SCHEMA_VERSION,
            "kind": "tuning",
            "system": system_fingerprint(self.system),
            "config": config_fingerprint(self.config),
            "mode": self.mode,
            "iterations": self.iterations,
            "warmup": self.warmup,
        }
        # hash the per-backend context once, not once per cell
        backend_ctx = {
            name: stable_hash({**base, "calibration": calibration_fingerprint(name)})
            for name in self.backends
        }
        return [
            stable_hash(
                {
                    "ctx": backend_ctx[backend],
                    "op": op_value,
                    "world_size": ws,
                    "msg_bytes": msg,
                    "backend": backend,
                }
            )
            for (op_value, ws, msg, backend) in cells
        ]

    def build_table(
        self,
        world_sizes: Sequence[int],
        message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
        ops: Sequence[OpFamily] = DEFAULT_OPS,
        jobs: int = 1,
        cache=None,
    ) -> TuningReport:
        """Benchmark every combination and record the per-cell winner.

        ``jobs > 1`` fans independent cells out over a spawn pool;
        ``cache`` (a :class:`repro.bench.sweep.SweepCache`) serves
        already-measured cells from disk.  Both preserve byte-identical
        output relative to a serial, uncached sweep.
        """
        from repro.bench.sweep import run_sweep

        bad = [ws for ws in world_sizes if ws < 2]
        if bad:
            # validate before measuring anything so a bad sweep cannot
            # leave a partially populated report behind
            raise TuningError(f"tuning needs world sizes >= 2, got {bad}")

        # decompose into picklable units in the exact serial order
        cells = [
            (str(op), ws, msg, backend)
            for op in ops
            for ws in world_sizes
            for msg in message_sizes
            for backend in self.backends
        ]
        context = _SweepContext(
            self.system, self.backends, self.config,
            self.mode, self.iterations, self.warmup,
        )
        if jobs <= 1:
            # serial sweeps measure through *this* tuner, preserving its
            # per-instance analytic-backend memo across build_table calls
            context.bind(self)
        outcome = run_sweep(
            _measure_cell,
            cells,
            context=context,
            jobs=jobs,
            cache=cache,
            keys=self._cache_keys(cells) if cache is not None else None,
            metrics=self.metrics,
        )

        # deterministic merge: replay the serial loop order over the
        # index-aligned results, so samples, winners, and tie-breaks are
        # byte-identical no matter how the cells were computed
        table = TuningTable(system=self.system.name)
        report = TuningReport(table=table, sweep_stats=outcome.stats)
        latencies = outcome.results
        index = 0
        for op in ops:
            for ws in world_sizes:
                for msg in message_sizes:
                    best_backend, best_latency = None, float("inf")
                    cell_samples = []
                    for backend in self.backends:
                        latency = latencies[index]
                        index += 1
                        cell_samples.append(
                            TuningSample(str(op), backend, ws, msg, latency)
                        )
                        if latency < best_latency:
                            best_backend, best_latency = backend, latency
                    report.samples.extend(cell_samples)
                    self._observe_cell(cell_samples)
                    table.add(str(op), ws, msg, best_backend)
        return report

    def _observe_cell(self, cell_samples: Sequence[TuningSample]) -> None:
        """Batch-report one merged cell's samples as tuning events."""
        if self.metrics is None:
            return
        for s in cell_samples:
            self.metrics.observe(
                ObsEvent(
                    kind="tuning",
                    rank=-1,
                    stream="",
                    backend=s.backend,
                    family=s.op,
                    nbytes=s.msg_bytes,
                    step=-1,
                    start=0.0,
                    end=s.latency_us,
                    detail=f"ws={s.world_size}",
                )
            )
