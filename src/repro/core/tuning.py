"""Static tuning tables (paper §V-F, Table II).

A tuning table maps ``(operation, world size, message size)`` to the
best-performing backend.  Entries are first keyed by world size, then by
message size (the paper's indexing order); lookups snap the message size
to its power-of-two bucket and the world size to the nearest benchmarked
scale, so a table trained over {8, 16, 32, 64} still serves a 48-GPU
run.  Total entries = Num_Collectives x Num_Scales x Num_Message_Sizes.

Tables are per-system artifacts (the paper: "tuning tables are not
transferable across HPC systems") — :meth:`TuningTable.save` records the
system name and :meth:`TuningTable.load` can enforce it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.exceptions import TuningError


def message_bucket(nbytes: int) -> int:
    """Snap a byte count to its power-of-two bucket (>= 1).

    Deterministic round-half-up in log space: a value at or above the
    geometric midpoint of ``[2**k, 2**(k+1)]`` snaps to ``2**(k+1)``.
    Implemented in exact integer arithmetic — ``round(math.log2(n))``
    was subject to banker's rounding of float midpoints, which snapped
    adjacent midpoint sizes into non-adjacent buckets (log2 exactly 46.5
    rounds down, 47.5 rounds up), and to float error for byte counts
    near 2**53.  ``n`` is at/above the midpoint iff ``n*n >= 2**(2k+1)``.
    """
    if nbytes <= 1:
        return 1
    k = nbytes.bit_length() - 1  # 2**k <= nbytes < 2**(k+1)
    if nbytes * nbytes >= 1 << (2 * k + 1):
        k += 1
    return 1 << k


@dataclass
class TuningTable:
    """In-memory tuning table: {op: {world_size: {msg_bucket: backend}}}."""

    system: str = "unknown"
    entries: dict[str, dict[int, dict[int, str]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # lookup() runs once per "auto"-dispatched operation; the sorting
        # and log-space nearest-neighbour search are memoized per snapped
        # (op, world size, bucket) and invalidated whenever entries change
        self._lookup_cache: dict[tuple[str, int, int], Optional[str]] = {}
        # monotonic edit counter: communicator dispatch plans compiled
        # through the "auto" path pin the generation they consulted, so
        # in-place edits (add/merge) recompile plans without the caller
        # having to reinstall the table
        self._generation = 0

    @property
    def generation(self) -> int:
        """Bumped on every in-place edit (``add``/``merge``)."""
        return self._generation

    # -- construction ----------------------------------------------------

    def add(self, op: str, world_size: int, msg_bytes: int, backend: str) -> None:
        if world_size < 1:
            raise TuningError(f"bad world size {world_size}")
        if msg_bytes < 0:
            raise TuningError(f"bad message size {msg_bytes}")
        bucket = message_bucket(msg_bytes)
        self.entries.setdefault(op, {}).setdefault(world_size, {})[bucket] = backend
        self._lookup_cache.clear()
        self._generation += 1

    def merge(self, other: "TuningTable") -> None:
        """Overlay ``other``'s entries onto this table.

        Merged keys get the same validation as :meth:`add` (and the whole
        merge is rejected before any entry lands, so a bad ``other`` never
        leaves this table half-updated).  The lookup memo and
        ``generation`` only move when an entry actually changed — a no-op
        merge must not recompile every cached "auto" dispatch plan.
        """
        for op, scales in other.entries.items():
            for ws, buckets in scales.items():
                if ws < 1:
                    raise TuningError(f"bad world size {ws} in merged table ({op})")
                for bucket in buckets:
                    if bucket < 1 or bucket != message_bucket(bucket):
                        raise TuningError(
                            f"bad message bucket {bucket} in merged table "
                            f"({op}, world size {ws}); buckets are powers of two"
                        )
        changed = False
        for op, scales in other.entries.items():
            for ws, buckets in scales.items():
                for bucket, backend in buckets.items():
                    row = self.entries.setdefault(op, {}).setdefault(ws, {})
                    if row.get(bucket) != backend:
                        row[bucket] = backend
                        changed = True
        if changed:
            self._lookup_cache.clear()
            self._generation += 1

    def clone(self) -> "TuningTable":
        """Deep copy of the entries under a fresh generation counter.

        Online adaptive dispatch (:mod:`repro.core.adaptive`) edits its
        communicator's table in place at rank-local op indexes; ranks of
        an SPMD job that were handed one shared table object must each
        retune a private clone, or one rank's edit would leak into
        another rank's dispatch at a different logical op.
        """
        return TuningTable(
            system=self.system,
            entries={
                op: {ws: dict(buckets) for ws, buckets in scales.items()}
                for op, scales in self.entries.items()
            },
        )

    # -- lookup ------------------------------------------------------------

    def lookup(self, op: str, world_size: int, msg_bytes: int) -> Optional[str]:
        """Best backend for the op, or None if the op was never tuned."""
        key = (op, world_size, message_bucket(msg_bytes))
        cache = self._lookup_cache
        try:
            return cache[key]
        except KeyError:
            pass
        choice = self._lookup_uncached(*key)
        cache[key] = choice
        return choice

    def _lookup_uncached(self, op: str, world_size: int, bucket: int) -> Optional[str]:
        scales = self.entries.get(op)
        if not scales:
            return None
        ws = self._nearest(sorted(scales), world_size)
        buckets = scales[ws]
        return buckets[self._nearest(sorted(buckets), bucket)]

    @staticmethod
    def _nearest(candidates: list[int], value: int) -> int:
        """Nearest candidate in log-space (scale and message size both
        behave multiplicatively).

        Tie-breaking is part of the contract: when ``value`` sits at the
        exact geometric midpoint of two tuned neighbours (equal log2
        distance), the **smaller** candidate wins — ``candidates`` is
        sorted ascending and ``min`` keeps the first of equal keys.
        Online retuning (:mod:`repro.core.adaptive`) relies on this being
        deterministic so every rank resolves the same entry.
        """
        return min(candidates, key=lambda c: abs(math.log2(c) - math.log2(max(value, 1))))

    def num_entries(self) -> int:
        return sum(
            len(buckets) for scales in self.entries.values() for buckets in scales.values()
        )

    def ops(self) -> list[str]:
        return sorted(self.entries)

    def rows(self, op: str, world_size: int) -> list[tuple[int, str]]:
        """(message size, backend) rows for one op/scale — Table II format."""
        scales = self.entries.get(op, {})
        if world_size not in scales:
            raise TuningError(
                f"no tuning rows for {op} at world size {world_size}; "
                f"have {sorted(scales)}"
            )
        return sorted(scales[world_size].items())

    # -- persistence ----------------------------------------------------------

    def save(self, path: "str | Path") -> None:
        payload = {
            "system": self.system,
            "entries": {
                op: {str(ws): {str(b): name for b, name in buckets.items()}
                     for ws, buckets in scales.items()}
                for op, scales in self.entries.items()
            },
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: "str | Path", expect_system: Optional[str] = None) -> "TuningTable":
        payload = json.loads(Path(path).read_text())
        if expect_system is not None and payload.get("system") != expect_system:
            raise TuningError(
                f"tuning table was generated on {payload.get('system')!r}, "
                f"not {expect_system!r} — tables are not transferable across "
                "systems (paper §V-F)"
            )
        table = cls(system=payload.get("system", "unknown"))
        for op, scales in payload.get("entries", {}).items():
            for ws, buckets in scales.items():
                for bucket, backend in buckets.items():
                    table.entries.setdefault(op, {}).setdefault(int(ws), {})[
                        int(bucket)
                    ] = backend
        return table
