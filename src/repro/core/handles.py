"""Work handles for non-blocking operations.

A :class:`WorkHandle` is what every ``async_op=True`` call returns.  Its
``wait()`` follows the paper's semantics (§V-C/V-D):

* **stream-aware backends** (NCCL, MSCCL): ``wait()`` makes the *PyTorch
  default stream* wait on the CUDA event MCR-DL recorded after the
  communication kernel.  The host does **not** block — this is the
  property that makes mixed-backend programs deadlock-free.
* **host-synchronized backends** (MPI): ``wait()`` is an ``MPI_Wait`` —
  the host blocks until the request completes.

``synchronize()`` always blocks the host (the analogue of
``cudaEventSynchronize`` / ``MPI_Wait``); use it before reading tensor
*values* from the host side, exactly as with real CUDA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.exceptions import CommTimeoutError, MCRError
from repro.sim.engine import Flag
from repro.sim.graph import GpuOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import RankContext


class WorkHandle:
    """Completion handle for one posted communication operation."""

    __slots__ = (
        "ctx",
        "backend_name",
        "flag",
        "member_node",
        "stream_semantics",
        "label",
        "deadline_us",
        "timeout_info",
        "_waited",
    )

    def __init__(
        self,
        ctx: "RankContext",
        backend_name: str,
        flag: Flag,
        member_node: Optional[GpuOp],
        stream_semantics: bool,
        label: str,
        *,
        deadline_us: Optional[float] = None,
        timeout_info=None,
    ):
        self.ctx = ctx
        self.backend_name = backend_name
        self.flag = flag
        self.member_node = member_node
        self.stream_semantics = stream_semantics
        self.label = label
        #: per-op deadline (MCRConfig.op_deadline_us): host-blocking waits
        #: that exceed it raise CommTimeoutError instead of hanging
        self.deadline_us = deadline_us
        #: zero-arg callable producing rendezvous diagnostics at timeout
        self.timeout_info = timeout_info
        self._waited = False

    def wait(self, backend: Optional[str] = None) -> None:
        """Order the caller's subsequent work after this operation.

        ``backend`` is accepted for paper-API compatibility
        (``h.wait('nccl')``) and validated if given.
        """
        if backend is not None and backend != self.backend_name:
            raise MCRError(
                f"handle belongs to backend {self.backend_name!r}, "
                f"wait called with {backend!r}"
            )
        self._waited = True
        if self.stream_semantics and self.member_node is not None:
            # fine-grained CUDA-event sync: the default stream waits on
            # the event recorded after the comm kernel (Fig. 4b step 4);
            # the host continues immediately.
            self.ctx.gpu.default_stream._gates.append(self.member_node)
            return
        # host-synchronized (MPI_Wait); the decorated reason is only worth
        # building when the flag is still pending (it can actually park)
        self._host_block("wait")

    def synchronize(self) -> None:
        """Block the *host* until the operation completes."""
        self._waited = True
        self._host_block("synchronize")

    def _host_block(self, verb: str) -> None:
        flag = self.flag
        if flag.ready_time is None:
            if self.deadline_us is not None:
                ctx = self.ctx
                if not ctx.engine.wait_flag_deadline(
                    flag, ctx.now + self.deadline_us, reason=f"{verb}({self.label})"
                ):
                    detail = (
                        self.timeout_info()
                        if self.timeout_info is not None
                        else "operation still pending"
                    )
                    raise CommTimeoutError(
                        f"{self.label} on {self.backend_name} exceeded the "
                        f"{self.deadline_us:.0f}us deadline on rank {ctx.rank}: "
                        f"{detail}",
                        label=self.label,
                        rank=ctx.rank,
                        deadline_us=self.deadline_us,
                        detail=detail,
                    )
                return
            self.ctx.engine.wait_flag(flag, reason=f"{verb}({self.label})")
        else:
            self.ctx.engine.wait_flag(flag, reason=self.label)

    def is_completed(self) -> bool:
        """Non-blocking completion test (MPI_Test analogue)."""
        return self.flag.is_set and self.flag.ready_time <= self.ctx.now

    @property
    def completion_time(self) -> Optional[float]:
        """Completion timestamp if already resolved, else None."""
        return self.flag.ready_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkHandle({self.label!r} on {self.backend_name})"


class CompletedHandle(WorkHandle):
    """Handle for a trivially complete op (world_size == 1 fast path)."""

    def __init__(self, ctx: "RankContext", backend_name: str, label: str):
        flag = ctx.engine.new_flag(label)
        flag.fire(ctx.now)
        super().__init__(ctx, backend_name, flag, None, False, label)
