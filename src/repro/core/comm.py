"""The MCR-DL communicator: the op-surface layer of the comm core.

One :class:`MCRCommunicator` per rank binds any number of communication
backends under the unified API of the paper's Listing 1: every
point-to-point and collective operation — including vectored and
non-blocking variants — dispatched per call to an explicit backend, or
to ``"auto"`` for tuning-table selection (§V-F).

The communicator is composed of three layers with one-directional
dependencies (``docs/INTERNALS.md`` §15):

* **op surface** (this module) — each public collective is one
  :class:`CollectiveSpec` table row: op family, argument
  validation/meta builder (``prepare``), datapath mover, hierarchical
  capability, and the ``force_host``/``compressible``/``vector``
  flags.  The shared pre-dispatch hook chain (``retuner.before_op`` →
  ``_adapt_primed`` → ``_hier_target``) runs uniformly for every
  family from :meth:`MCRCommunicator._post`;
* **dispatch** (:mod:`repro.core.dispatch`) — backend resolution,
  fault quarantine/failover, and the compiled
  :class:`~repro.core.dispatch.CommPlan` cache;
* **execution** (:mod:`repro.core.rendezvous`) — rendezvous matching
  and the collective/p2p spines over the simulation engine.

Code outside ``repro.core`` programs against the narrow
:class:`~repro.core.protocols.CommCore` protocol instead of this
concrete class (enforced by ``scripts/check_imports.py``).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Optional, Sequence

import numpy as np

from repro.backends.base import Backend, canonical_name, create_backend
from repro.backends.ops import ReduceOp
from repro.core.config import MCRConfig
from repro.core.dispatch import CommPlan, DispatchLayer
from repro.core.exceptions import BackendError, ValidationError
from repro.core.handles import WorkHandle
from repro.core.op_table import (
    _ALL_GATHER,
    _ALL_GATHERV,
    _ALL_REDUCE,
    _ALL_TO_ALL,
    _ALL_TO_ALL_SINGLE,
    _ALL_TO_ALLV,
    _BARRIER,
    _BCAST,
    _GATHER,
    _GATHERV,
    _REDUCE,
    _REDUCE_SCATTER,
    _SCATTER,
    _SCATTERV,
    CollectiveSpec,
)
from repro.core.rendezvous import ExecutionLayer
from repro.core.sync import SyncManager
from repro.core.tuning import TuningTable
from repro.sim.process import RankContext
from repro.tensor import SimTensor

__all__ = ["CollectiveSpec", "CommPlan", "MCRCommunicator"]


class MCRCommunicator(DispatchLayer, ExecutionLayer):
    """Per-rank MCR-DL instance over a set of backends.

    Construct one on every rank (same backend list everywhere), usually
    through :func:`repro.core.api.init`.
    """

    def __init__(
        self,
        ctx: RankContext,
        backends: "str | Sequence[str]",
        config: Optional[MCRConfig] = None,
        tuning_table: Optional[TuningTable] = None,
        comm_id: str = "world",
        ranks: Optional[Sequence[int]] = None,
    ):
        if isinstance(backends, str):
            backends = [backends]
        if not backends:
            raise BackendError("MCR-DL needs at least one backend")
        self.ctx = ctx
        self.config = config or MCRConfig()
        self.config.validate()
        self.comm_id = comm_id

        # dispatch plan cache: compiled plans keyed by call signature,
        # invalidated as one epoch (see CommPlan).  Initialized before
        # the tuning table so the table property's epoch bump has state
        # to act on.
        self._plans: dict[tuple, CommPlan] = {}
        self._plan_epoch = 0
        self._plan_hits = 0
        self._plan_misses = 0
        self._plan_invalidations = 0
        self._plan_cache_on = self.config.plan_cache
        self._tuning_table = tuning_table

        # process group: the rank subset this communicator spans (like an
        # MPI sub-communicator / torch.distributed process group)
        if ranks is None:
            ranks = range(ctx.world_size)
        self.group_ranks = list(dict.fromkeys(int(r) for r in ranks))
        if len(self.group_ranks) != len(list(ranks)):
            raise BackendError(f"duplicate ranks in group {list(ranks)}")
        for r in self.group_ranks:
            if not 0 <= r < ctx.world_size:
                raise BackendError(f"group rank {r} out of range")
        if ctx.rank not in self.group_ranks:
            raise BackendError(
                f"rank {ctx.rank} constructing a communicator for group "
                f"{self.group_ranks} it does not belong to"
            )
        #: group size, cached — group_ranks is immutable after init and
        #: the property is read several times per operation
        self._ws = len(self.group_ranks)

        names = [canonical_name(b) for b in backends]
        if len(set(names)) != len(names):
            raise BackendError(f"duplicate backends in {list(backends)}")
        self.backends: dict[str, Backend] = {}
        for name in names:
            backend = create_backend(name, ctx.rank, len(self.group_ranks), ctx.system)
            backend.init()
            self.ctx.sleep(self.config.backend_init_us, reason=f"init({name})")
            self.backends[name] = backend

        non_stream = [n for n, b in self.backends.items() if not b.properties.stream_aware]
        #: footnote 4: mixing more than one non-stream-aware backend is
        #: suboptimal for overlap; recorded so callers/tests can assert.
        self.mixing_warning: Optional[str] = None
        if len(non_stream) > 1:
            self.mixing_warning = (
                f"multiple non-stream-aware backends {non_stream}: at most "
                "one is optimal for overlap (paper §V-D footnote 4)"
            )

        self.sync = SyncManager(ctx, self.backends, self.config)
        self._seq: dict[str, int] = defaultdict(int)
        self._outstanding: dict[str, list[WorkHandle]] = defaultdict(list)
        self._finalized = False
        #: interned (label, dispatch reason) per (op, backend) — these
        #: strings sit on the per-op hot path and never change
        self._op_labels: dict[tuple, tuple[str, str]] = {}

        # hierarchical composite dispatch (``hier:<intra>+<inter>``):
        # the executor and its sub-communicators are built lazily on the
        # first hierarchical dispatch; ``_phase_tag`` marks this
        # communicator as one phase of a parent's decomposition (set by
        # spawn_phase_comm's caller) and flows into op labels and comm
        # records
        self._phase_tag = ""
        self._hier_children: list["MCRCommunicator"] = []
        self._hier_exec = None
        #: memoized "does this table contain hier entries" probe, keyed
        #: by (table identity, generation) — keeps the no-hier auto path
        #: at one dict hit per dispatch
        self._hier_table_probe: Optional[tuple[int, int, bool]] = None

        # fault injection / graceful degradation (repro.sim.faults): the
        # injector is installed into shared state by the Simulator; with
        # no injector and no degradation hook the per-op gates below are
        # two False boolean checks.
        self._injector = ctx.shared.get("fault_injector")
        self._fault_gate = self._injector is not None
        #: permanently failed backends; decisions adding to this set are
        #: deterministic per (comm, backend, collective index) so every
        #: rank quarantines at the same op and the set stays symmetric
        self._quarantined: set = set()
        #: per-scope op counters driving injector decisions (see
        #: _admit_backend for the symmetry argument)
        self._fault_counters: dict = {}

        self.logger = None
        if self.config.enable_logging:
            from repro.ext.logging_ext import CommLogger

            self.logger = CommLogger.shared(ctx)
        #: retry/failover events always go to the shared comm log, even
        #: when per-op logging is off
        self._fault_log = None
        if self._fault_gate:
            from repro.ext.logging_ext import CommLogger

            self._fault_log = CommLogger.shared(ctx)
        #: unified observability registry (repro.obs), installed into the
        #: job's shared state by the Simulator; None = observability off,
        #: and every use below is guarded so the healthy path pays one
        #: attribute load
        self._obs = ctx.shared.get("obs")

        self._codec = None
        if self.config.compression.enabled:
            from repro.ext.compression import FixedRateCodec

            self._codec = FixedRateCodec(self.config.compression.rate_bits)

        state = ctx.shared.setdefault("mcr_dl", {})
        self._shared = state.setdefault(
            (comm_id, tuple(self.group_ranks)),
            {
                "rdv": {},
                "p2p": defaultdict(lambda: {"sends": deque(), "recvs": deque()}),
            },
        )
        # wire lanes are a property of the *fabric*, shared by every
        # communicator/process group in the job
        self._channel = state.setdefault("__channel__", defaultdict(float))
        if len(self.group_ranks) == ctx.world_size:
            self._comm_path = ctx.system.comm_path(ctx.world_size)
        else:
            self._comm_path = ctx.system.comm_path_for_ranks(self.group_ranks)
        #: link-degradation gate, bound once (the Simulator installs the
        #: schedule on the SystemSpec before any rank runs); False keeps
        #: the healthy hot path free of extra float ops
        self._link_faults = getattr(ctx.system, "link_degradation", None) is not None

        # online adaptive dispatch (repro.core.adaptive): one retuner
        # per rank per top-level communicator.  Hierarchical phase
        # communicators never adapt on their own — the parent owns the
        # table that routed the composite.  None keeps every adaptive
        # hook below at a single is-None check (zero cost when off).
        self._retuner = None
        self._adapt_primed = False
        if self.config.adaptive.enabled and "|hier-" not in comm_id:
            from repro.core.adaptive import AdaptiveRetuner

            if self._tuning_table is not None:
                # ranks are usually handed one shared table object;
                # online edits happen at rank-local points in execution,
                # so each rank retunes a private clone (edits still stay
                # symmetric — they apply at matched op indexes)
                self._tuning_table = self._tuning_table.clone()
            else:
                self._tuning_table = TuningTable(system=ctx.system.name)
            self._retuner = AdaptiveRetuner(self)

    # ------------------------------------------------------------------
    # introspection (Listing 1 head)
    # ------------------------------------------------------------------

    def get_backends(self) -> list[str]:
        """Names of the initialized backends, in init order."""
        return list(self.backends)

    def get_size(self, backend: Optional[str] = None) -> int:
        self._backend(backend or next(iter(self.backends)))
        return len(self.group_ranks)

    def get_rank(self, backend: Optional[str] = None) -> int:
        """This process's rank *within the communicator's group*."""
        self._backend(backend or next(iter(self.backends)))
        return self.group_rank

    @property
    def rank(self) -> int:
        """Group-local rank (MPI communicator semantics)."""
        return self.group_rank

    @property
    def group_rank(self) -> int:
        return self.group_ranks.index(self.ctx.rank)

    @property
    def world_size(self) -> int:
        """Size of this communicator's group."""
        return self._ws

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def synchronize(self, backends: "str | Sequence[str] | None" = None) -> None:
        """Synchronize one, several, or all backends (§V-D): loop over
        each backend and apply its native completion semantics."""
        if backends is None:
            backends = list(self.backends)
            # hierarchical phases run on sub-communicators; a full
            # synchronize drains those first (their completions gate the
            # parent-level handles)
            for child in self._hier_children:
                child.synchronize()
        elif isinstance(backends, str):
            backends = [backends]
        for name in backends:
            backend = self._backend(name)
            self.sync.synchronize_backend(backend)
            pending = self._outstanding.pop(backend.name, [])
            for handle in pending:
                handle.synchronize()

    def finalize(self, backends: "str | Sequence[str] | None" = None) -> None:
        """Drain outstanding work and shut backends down."""
        if self._finalized:
            return
        self.synchronize(backends)
        for child in self._hier_children:
            child.finalize()
        self._flush_plan_stats()
        for backend in self.backends.values():
            backend.finalize()
        self._finalized = True

    def spawn_phase_comm(
        self, ranks: Sequence[int], comm_id: str, phase: str
    ) -> "MCRCommunicator":
        """Construct a phase sub-communicator over a rank subset.

        This is the hierarchical executor's entry point for building its
        intra-node and shard groups: the child shares this
        communicator's backends and config, carries ``phase`` in its op
        labels and comm records, inherits the parent's quarantines
        (a backend the parent declared dead must not serve a phase), and
        registers in ``_hier_children`` so quarantine/unquarantine
        cascades, plan invalidation, synchronize, and finalize all reach
        it.
        """
        sub = MCRCommunicator(
            self.ctx,
            list(self.backends),
            config=self.config,
            comm_id=comm_id,
            ranks=ranks,
        )
        sub._phase_tag = phase
        for name in self._quarantined:
            backend = sub.backends.get(name)
            if backend is not None and name not in sub._quarantined:
                sub._quarantine(backend, "inherited from parent communicator")
        self._hier_children.append(sub)
        return sub

    # ------------------------------------------------------------------
    # the shared pre-dispatch driver
    # ------------------------------------------------------------------

    def _post(
        self, spec: CollectiveSpec, backend_name: str, args: tuple, async_op: bool
    ) -> Optional[WorkHandle]:
        """Run one table row: validate/prepare, then the uniform
        pre-dispatch hook chain, then hand off to the dispatch layer.

        The hook chain runs identically for *every* family:

        1. ``retuner.before_op`` — adaptive pre-op accounting (pending
           table edits apply to the op being posted; ``_adapt_primed``
           keeps the ``_collective`` fallback from counting it twice);
        2. ``_hier_target`` — hierarchical composite routing for the
           families that decompose (``spec.hier_op``).
        """
        prep = spec.prepare(self, *args)
        retuner = self._retuner
        if retuner is not None and not retuner.quiet:
            retuner.before_op(spec.family, prep.nbytes)
            self._adapt_primed = True
        if spec.hier_op is not None:
            hspec = self._hier_target(backend_name, spec.family, prep.nbytes)
            if hspec is not None:
                self._adapt_primed = False
                return getattr(self._hier(), spec.hier_op)(hspec, *args, async_op)
        return self._collective(
            backend_name, spec.family, prep.nbytes, prep.inputs, prep.outputs,
            prep.move, meta=prep.meta, async_op=async_op, vector=spec.vector,
            force_host=spec.force_host, compressible=spec.compressible,
            extras=prep.extras, tensors=prep.tensors,
        )

    # ------------------------------------------------------------------
    # collectives (Listing 1): thin table-driven wrappers
    # ------------------------------------------------------------------

    def all_reduce(
        self,
        backend: str,
        tensor: SimTensor,
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """In-place allreduce of ``tensor`` across all ranks."""
        return self._post(_ALL_REDUCE, backend, (tensor, op), async_op)

    def reduce(
        self,
        backend: str,
        tensor: SimTensor,
        root: int = 0,
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Reduce into ``tensor`` on ``root`` (other ranks' tensors are inputs)."""
        return self._post(_REDUCE, backend, (tensor, root, op), async_op)

    def bcast(
        self, backend: str, tensor: SimTensor, root: int = 0, async_op: bool = False
    ) -> Optional[WorkHandle]:
        """Broadcast ``root``'s tensor into everyone's tensor (in place)."""
        return self._post(_BCAST, backend, (tensor, root), async_op)

    broadcast = bcast

    def all_gather(
        self, backend: str, output: SimTensor, input: SimTensor, async_op: bool = False
    ) -> Optional[WorkHandle]:
        """Gather every rank's ``input`` into every rank's ``output``
        (rank-major order); output numel must be world_size * input numel."""
        return self._post(_ALL_GATHER, backend, (output, input), async_op)

    #: PyTorch spelling used in the paper's Listing 2
    all_gather_base = all_gather

    def reduce_scatter(
        self,
        backend: str,
        output: SimTensor,
        input: SimTensor,
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Reduce full ``input`` vectors and scatter 1/p chunks into ``output``."""
        return self._post(_REDUCE_SCATTER, backend, (output, input, op), async_op)

    def all_to_all_single(
        self, backend: str, output: SimTensor, input: SimTensor, async_op: bool = False
    ) -> Optional[WorkHandle]:
        """Shuffle equal chunks of ``input`` elements across ranks
        (PyTorch's all_to_all_single)."""
        return self._post(_ALL_TO_ALL_SINGLE, backend, (output, input), async_op)

    def all_to_all(
        self,
        backend: str,
        output: Sequence[SimTensor],
        input: Sequence[SimTensor],
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """List-of-tensors alltoall (PyTorch convention, §V-A): rank i's
        ``input[j]`` lands in rank j's ``output[i]``.  Per-pair sizes may
        vary but must agree pairwise."""
        return self._post(_ALL_TO_ALL, backend, (output, input), async_op)

    def gather(
        self,
        backend: str,
        input: SimTensor,
        output: Optional[SimTensor] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Gather every rank's ``input`` into ``output`` on ``root``."""
        return self._post(_GATHER, backend, (input, output, root), async_op)

    def scatter(
        self,
        backend: str,
        output: SimTensor,
        input: Optional[SimTensor] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Scatter ``root``'s ``input`` in equal chunks into each ``output``."""
        return self._post(_SCATTER, backend, (output, input, root), async_op)

    # -- vectored collectives (§V-A: supported for all backends) ----------

    def gatherv(
        self,
        backend: str,
        input: SimTensor,
        output: Optional[SimTensor] = None,
        rcounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """MPI_Gatherv: rank i contributes ``rcounts[i]`` elements, landing
        at ``displs[i]`` in the root's ``output``."""
        return self._post(
            _GATHERV, backend, (input, output, rcounts, displs, root), async_op
        )

    def scatterv(
        self,
        backend: str,
        output: SimTensor,
        input: Optional[SimTensor] = None,
        scounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """MPI_Scatterv: root sends ``scounts[i]`` elements from offset
        ``displs[i]`` to rank i."""
        return self._post(
            _SCATTERV, backend, (output, input, scounts, displs, root), async_op
        )

    def all_gatherv(
        self,
        backend: str,
        output: SimTensor,
        input: SimTensor,
        rcounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """MPI_Allgatherv: like gatherv but every rank gets the result."""
        return self._post(
            _ALL_GATHERV, backend, (output, input, rcounts, displs), async_op
        )

    def all_to_allv(
        self,
        backend: str,
        output: SimTensor,
        input: SimTensor,
        scounts: Optional[Sequence[int]] = None,
        sdispls: Optional[Sequence[int]] = None,
        rcounts: Optional[Sequence[int]] = None,
        rdispls: Optional[Sequence[int]] = None,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """MPI_Alltoallv: each rank passes its own send/recv count and
        displacement rows (lengths = world size)."""
        return self._post(
            _ALL_TO_ALLV, backend,
            (output, input, scounts, sdispls, rcounts, rdispls), async_op,
        )

    def barrier(self, backend: Optional[str] = None, async_op: bool = False) -> Optional[WorkHandle]:
        """Block until every rank arrives (host-blocking on all backends).

        ``backend=None`` picks the *first initialized* backend —
        deterministic dict insertion order, i.e. the order of the
        backend list every rank passed at construction — so SPMD
        programs rendezvous on the same library without naming it.
        """
        backend = backend or next(iter(self.backends))
        return self._post(_BARRIER, backend, (), async_op)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(
        self,
        backend: str,
        tensor: SimTensor,
        dst: int,
        tag: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Send ``tensor`` to rank ``dst`` (rendezvous-protocol semantics:
        a blocking send completes when the transfer does)."""
        return self._p2p(backend, tensor, peer=dst, tag=tag, is_send=True, async_op=async_op)

    def recv(
        self,
        backend: str,
        tensor: SimTensor,
        src: int,
        tag: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Receive into ``tensor`` from rank ``src``."""
        return self._p2p(backend, tensor, peer=src, tag=tag, is_send=False, async_op=async_op)

    def isend(self, backend: str, tensor: SimTensor, dst: int, tag: int = 0) -> WorkHandle:
        return self.send(backend, tensor, dst, tag, async_op=True)

    def irecv(self, backend: str, tensor: SimTensor, src: int, tag: int = 0) -> WorkHandle:
        return self.recv(backend, tensor, src, tag, async_op=True)

    # ------------------------------------------------------------------
    # argument validation helpers (used by the prepare builders)
    # ------------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.world_size:
            raise ValidationError(f"root {root} out of range [0, {self.world_size})")

    def _check_v_args(
        self, counts: Optional[Sequence[int]], displs: Optional[Sequence[int]]
    ) -> tuple[list[int], list[int]]:
        if counts is None:
            raise ValidationError("vectored collective requires counts")
        counts = [int(c) for c in counts]
        if len(counts) != self.world_size:
            raise ValidationError(
                f"counts length {len(counts)} != world size {self.world_size}"
            )
        if any(c < 0 for c in counts):
            raise ValidationError(f"negative count in {counts}")
        if displs is None:
            displs = list(np.cumsum([0] + counts[:-1]))
        displs = [int(d) for d in displs]
        if len(displs) != self.world_size:
            raise ValidationError(
                f"displs length {len(displs)} != world size {self.world_size}"
            )
        return counts, displs
