"""The MCR-DL communicator.

One :class:`MCRCommunicator` per rank binds any number of communication
backends under the unified API of the paper's Listing 1: every
point-to-point and collective operation — including vectored and
non-blocking variants — dispatched per call to an explicit backend, or
to ``"auto"`` for tuning-table selection (§V-F).

Collectives rendezvous through shared simulation state keyed by a
per-backend sequence number, exactly like communicator-ordered
collective calls in NCCL/MPI: symmetric programs match up, mismatched
programs deadlock (and the engine reports it), and argument mismatches
raise :class:`~repro.core.exceptions.ValidationError` at the rendezvous.

Steady-state dispatch runs through a compile-once plan cache
(:class:`CommPlan`): everything derivable from a call's signature alone
— resolved backend, interned labels, dispatch cost, codec arithmetic,
stream placement, tagged rendezvous meta — is snapshotted on first post
and re-used per call, the way MPI-4 persistent operations and pre-built
communication plans amortize per-call setup (paper §V-E).  A single
plan epoch, bumped on tuning-table installs, quarantines, and
codec/synchronization changes, keeps degraded-mode behavior and
simulated timings bit-identical to the uncached path.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.backends import datapath
from repro.backends.base import Backend, canonical_name, create_backend
from repro.backends.ops import OpFamily, ReduceOp
from repro.core.config import CompressionConfig, MCRConfig
from repro.core.exceptions import (
    BackendError,
    CommTimeoutError,
    MCRError,
    ValidationError,
)
from repro.core.handles import CompletedHandle, WorkHandle
from repro.core.sync import SyncManager
from repro.core.tuning import TuningTable
from repro.sim.engine import Flag
from repro.sim.graph import CollectiveGroup, resolve
from repro.sim.process import RankContext
from repro.tensor import SimTensor


#: stand-in data-plane buffer for virtual (timing-only) tensors
_VIRTUAL_BUF = np.empty(0, dtype=np.float32)


@dataclass(slots=True)
class CommPlan:
    """One compiled dispatch plan (paper §V-E persistent-op amortization).

    Snapshots everything :meth:`MCRCommunicator._collective` can derive
    from the call signature alone, keyed per (requested backend, op
    family, rendezvous meta, nbytes, vector/force_host/compressible,
    timing-only) so a steady-state training step pays one dict lookup
    instead of re-deriving tuning choice, labels, codec arithmetic, and
    stream placement on every post.

    Validity is epoch-based: ``epoch`` must match the communicator's
    plan epoch (bumped on tuning-table installs, quarantines, and
    codec/synchronization changes), and plans compiled through the
    ``"auto"`` path additionally pin the tuning table's generation so
    in-place table edits (``add``/``merge``) recompile without an
    explicit reinstall.  Compilation itself never advances the virtual
    clock, so cached and uncached dispatch are byte-identical.
    """

    epoch: int
    #: tuning-table generation consulted at compile time; -1 when the
    #: plan did not go through the table (explicit backend, or no table)
    table_generation: int
    backend: Backend
    #: backend name after §V-F resolution but *before* the fault gate —
    #: the reference point for "reroute" dispatch attribution
    resolved_name: str
    label: str
    dispatch_reason: str
    #: dispatch attribution when the fault gate does not reroute
    dispatch_kind: str
    dispatch_cost_us: float
    codec: object
    wire_bytes: int
    codec_us: float
    stream_kind: bool
    #: rendezvous meta with the virtual/real data-plane tag appended
    meta_tagged: tuple


@dataclass(slots=True)
class _Arrival:
    """One rank's registration at a collective rendezvous."""

    rank: int
    host_time: float
    inputs: list[np.ndarray]
    outputs: list[np.ndarray]
    extras: dict = field(default_factory=dict)


class _Rendezvous:
    """Shared per-collective matching record."""

    __slots__ = (
        "key",
        "expected",
        "family",
        "meta",
        "flag",
        "stream_kind",
        "group",
        "arrivals",
        "resolved",
        "claimed",
        "duration",
    )

    def __init__(
        self,
        key: tuple,
        expected: int,
        family: OpFamily,
        meta: tuple,
        flag: Flag,
        stream_kind: bool,
    ):
        self.key = key
        self.expected = expected
        self.family = family
        self.meta = meta
        self.flag = flag
        self.stream_kind = stream_kind
        self.group: Optional[CollectiveGroup] = (
            CollectiveGroup(expected, flag, label=str(key)) if stream_kind else None
        )
        self.arrivals: dict[int, _Arrival] = {}
        self.resolved = False
        #: set by the rank that takes responsibility for resolution (the
        #: pre-post host sync can let several ranks observe "all arrived")
        self.claimed = False
        #: transfer duration (µs), known once the last rank arrives
        self.duration: Optional[float] = None


class MCRCommunicator:
    """Per-rank MCR-DL instance over a set of backends.

    Construct one on every rank (same backend list everywhere), usually
    through :func:`repro.core.api.init`.
    """

    def __init__(
        self,
        ctx: RankContext,
        backends: "str | Sequence[str]",
        config: Optional[MCRConfig] = None,
        tuning_table: Optional[TuningTable] = None,
        comm_id: str = "world",
        ranks: Optional[Sequence[int]] = None,
    ):
        if isinstance(backends, str):
            backends = [backends]
        if not backends:
            raise BackendError("MCR-DL needs at least one backend")
        self.ctx = ctx
        self.config = config or MCRConfig()
        self.config.validate()
        self.comm_id = comm_id

        # dispatch plan cache: compiled plans keyed by call signature,
        # invalidated as one epoch (see CommPlan).  Initialized before
        # the tuning table so the table property's epoch bump has state
        # to act on.
        self._plans: dict[tuple, CommPlan] = {}
        self._plan_epoch = 0
        self._plan_hits = 0
        self._plan_misses = 0
        self._plan_invalidations = 0
        self._plan_cache_on = self.config.plan_cache
        self._tuning_table = tuning_table

        # process group: the rank subset this communicator spans (like an
        # MPI sub-communicator / torch.distributed process group)
        if ranks is None:
            ranks = range(ctx.world_size)
        self.group_ranks = list(dict.fromkeys(int(r) for r in ranks))
        if len(self.group_ranks) != len(list(ranks)):
            raise BackendError(f"duplicate ranks in group {list(ranks)}")
        for r in self.group_ranks:
            if not 0 <= r < ctx.world_size:
                raise BackendError(f"group rank {r} out of range")
        if ctx.rank not in self.group_ranks:
            raise BackendError(
                f"rank {ctx.rank} constructing a communicator for group "
                f"{self.group_ranks} it does not belong to"
            )
        #: group size, cached — group_ranks is immutable after init and
        #: the property is read several times per operation
        self._ws = len(self.group_ranks)

        names = [canonical_name(b) for b in backends]
        if len(set(names)) != len(names):
            raise BackendError(f"duplicate backends in {list(backends)}")
        self.backends: dict[str, Backend] = {}
        for name in names:
            backend = create_backend(name, ctx.rank, len(self.group_ranks), ctx.system)
            backend.init()
            self.ctx.sleep(self.config.backend_init_us, reason=f"init({name})")
            self.backends[name] = backend

        non_stream = [n for n, b in self.backends.items() if not b.properties.stream_aware]
        #: footnote 4: mixing more than one non-stream-aware backend is
        #: suboptimal for overlap; recorded so callers/tests can assert.
        self.mixing_warning: Optional[str] = None
        if len(non_stream) > 1:
            self.mixing_warning = (
                f"multiple non-stream-aware backends {non_stream}: at most "
                "one is optimal for overlap (paper §V-D footnote 4)"
            )

        self.sync = SyncManager(ctx, self.backends, self.config)
        self._seq: dict[str, int] = defaultdict(int)
        self._outstanding: dict[str, list[WorkHandle]] = defaultdict(list)
        self._finalized = False
        #: interned (label, dispatch reason) per (op, backend) — these
        #: strings sit on the per-op hot path and never change
        self._op_labels: dict[tuple, tuple[str, str]] = {}

        # hierarchical composite dispatch (``hier:<intra>+<inter>``):
        # the executor and its sub-communicators are built lazily on the
        # first hierarchical dispatch; ``_phase_tag`` marks this
        # communicator as one phase of a parent's decomposition (set by
        # HierarchicalExecutor right after construction) and flows into
        # op labels and comm records
        self._phase_tag = ""
        self._hier_children: list["MCRCommunicator"] = []
        self._hier_exec = None
        #: memoized "does this table contain hier entries" probe, keyed
        #: by (table identity, generation) — keeps the no-hier auto path
        #: at one dict hit per dispatch
        self._hier_table_probe: Optional[tuple[int, int, bool]] = None

        # fault injection / graceful degradation (repro.sim.faults): the
        # injector is installed into shared state by the Simulator; with
        # no injector and no degradation hook the per-op gates below are
        # two False boolean checks.
        self._injector = ctx.shared.get("fault_injector")
        self._fault_gate = self._injector is not None
        #: permanently failed backends; decisions adding to this set are
        #: deterministic per (comm, backend, collective index) so every
        #: rank quarantines at the same op and the set stays symmetric
        self._quarantined: set = set()
        #: per-scope op counters driving injector decisions (see
        #: _admit_backend for the symmetry argument)
        self._fault_counters: dict = {}

        self.logger = None
        if self.config.enable_logging:
            from repro.ext.logging_ext import CommLogger

            self.logger = CommLogger.shared(ctx)
        #: retry/failover events always go to the shared comm log, even
        #: when per-op logging is off
        self._fault_log = None
        if self._fault_gate:
            from repro.ext.logging_ext import CommLogger

            self._fault_log = CommLogger.shared(ctx)
        #: unified observability registry (repro.obs), installed into the
        #: job's shared state by the Simulator; None = observability off,
        #: and every use below is guarded so the healthy path pays one
        #: attribute load
        self._obs = ctx.shared.get("obs")

        self._codec = None
        if self.config.compression.enabled:
            from repro.ext.compression import FixedRateCodec

            self._codec = FixedRateCodec(self.config.compression.rate_bits)

        state = ctx.shared.setdefault("mcr_dl", {})
        self._shared = state.setdefault(
            (comm_id, tuple(self.group_ranks)),
            {
                "rdv": {},
                "p2p": defaultdict(lambda: {"sends": deque(), "recvs": deque()}),
            },
        )
        # wire lanes are a property of the *fabric*, shared by every
        # communicator/process group in the job
        self._channel = state.setdefault("__channel__", defaultdict(float))
        if len(self.group_ranks) == ctx.world_size:
            self._comm_path = ctx.system.comm_path(ctx.world_size)
        else:
            self._comm_path = ctx.system.comm_path_for_ranks(self.group_ranks)
        #: link-degradation gate, bound once (the Simulator installs the
        #: schedule on the SystemSpec before any rank runs); False keeps
        #: the healthy hot path free of extra float ops
        self._link_faults = getattr(ctx.system, "link_degradation", None) is not None

        # online adaptive dispatch (repro.core.adaptive): one retuner
        # per rank per top-level communicator.  Hierarchical phase
        # communicators never adapt on their own — the parent owns the
        # table that routed the composite.  None keeps every adaptive
        # hook below at a single is-None check (zero cost when off).
        self._retuner = None
        self._adapt_primed = False
        if self.config.adaptive.enabled and "|hier-" not in comm_id:
            from repro.core.adaptive import AdaptiveRetuner

            if self._tuning_table is not None:
                # ranks are usually handed one shared table object;
                # online edits happen at rank-local points in execution,
                # so each rank retunes a private clone (edits still stay
                # symmetric — they apply at matched op indexes)
                self._tuning_table = self._tuning_table.clone()
            else:
                self._tuning_table = TuningTable(system=ctx.system.name)
            self._retuner = AdaptiveRetuner(self)

    # ------------------------------------------------------------------
    # introspection (Listing 1 head)
    # ------------------------------------------------------------------

    def get_backends(self) -> list[str]:
        """Names of the initialized backends, in init order."""
        return list(self.backends)

    def get_size(self, backend: Optional[str] = None) -> int:
        self._backend(backend or next(iter(self.backends)))
        return len(self.group_ranks)

    def get_rank(self, backend: Optional[str] = None) -> int:
        """This process's rank *within the communicator's group*."""
        self._backend(backend or next(iter(self.backends)))
        return self.group_rank

    @property
    def rank(self) -> int:
        """Group-local rank (MPI communicator semantics)."""
        return self.group_rank

    @property
    def group_rank(self) -> int:
        return self.group_ranks.index(self.ctx.rank)

    @property
    def world_size(self) -> int:
        """Size of this communicator's group."""
        return self._ws

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def synchronize(self, backends: "str | Sequence[str] | None" = None) -> None:
        """Synchronize one, several, or all backends (§V-D): loop over
        each backend and apply its native completion semantics."""
        if backends is None:
            backends = list(self.backends)
            # hierarchical phases run on sub-communicators; a full
            # synchronize drains those first (their completions gate the
            # parent-level handles)
            for child in self._hier_children:
                child.synchronize()
        elif isinstance(backends, str):
            backends = [backends]
        for name in backends:
            backend = self._backend(name)
            self.sync.synchronize_backend(backend)
            pending = self._outstanding.pop(backend.name, [])
            for handle in pending:
                handle.synchronize()

    def finalize(self, backends: "str | Sequence[str] | None" = None) -> None:
        """Drain outstanding work and shut backends down."""
        if self._finalized:
            return
        self.synchronize(backends)
        for child in self._hier_children:
            child.finalize()
        self._flush_plan_stats()
        for backend in self.backends.values():
            backend.finalize()
        self._finalized = True

    # ------------------------------------------------------------------
    # dispatch plan cache (§V-E persistent-op amortization)
    # ------------------------------------------------------------------

    @property
    def tuning_table(self) -> Optional[TuningTable]:
        """The table consulted by ``"auto"`` dispatch (§V-F).

        Assigning a new table invalidates every compiled plan; in-place
        mutation of the installed table is caught per-lookup through the
        table's generation counter instead.
        """
        return self._tuning_table

    @tuning_table.setter
    def tuning_table(self, table: Optional[TuningTable]) -> None:
        self._tuning_table = table
        self.invalidate_plans("tuning-table install/swap")

    def invalidate_plans(self, reason: str = "") -> None:
        """Bump the plan epoch: every compiled plan recompiles on next use.

        Called automatically on tuning-table install/swap, backend
        quarantine, and codec/synchronization changes.  Call it manually
        after mutating state the communicator snapshots at construction
        or compile time — e.g. installing a link-degradation schedule on
        the SystemSpec mid-run — so the refreshed gates below take
        effect with the same invalidation discipline as the plans.
        """
        self._plan_epoch += 1
        self._plan_invalidations += 1
        self._plans.clear()
        self._link_faults = (
            getattr(self.ctx.system, "link_degradation", None) is not None
        )
        injector = self.ctx.shared.get("fault_injector")
        if injector is not None and not self._fault_gate:
            self._injector = injector
            self._fault_gate = True
            from repro.ext.logging_ext import CommLogger

            self._fault_log = CommLogger.shared(self.ctx)
        # hierarchical phase communicators snapshot the same state
        # (plans, fault gates); one epoch covers the whole family
        for child in self._hier_children:
            child.invalidate_plans(reason)

    def set_compression(self, compression: CompressionConfig) -> None:
        """Enable/disable/retune lossy compression mid-run (§V-E).

        Rebinds the codec and invalidates compiled plans so wire sizes
        and codec costs recompute; mutating ``config.compression`` in
        place would leave stale plans serving the old codec.
        """
        self.config.compression = compression
        self._codec = None
        if compression.enabled:
            from repro.ext.compression import FixedRateCodec

            self._codec = FixedRateCodec(compression.rate_bits)
        self.invalidate_plans("codec change")

    def set_synchronization(self, mode: str) -> None:
        """Switch the synchronization scheme mid-run (Fig. 4a vs 4b).

        Plan-invalidating: stream-vs-host placement is plan state.
        """
        self.config.synchronization = mode
        self.config.validate()
        self.invalidate_plans("synchronization change")

    @property
    def retuner(self):
        """This rank's :class:`repro.core.adaptive.AdaptiveRetuner`, or
        None when ``config.adaptive.enabled`` is off (the default)."""
        return self._retuner

    @property
    def plan_stats(self) -> dict:
        """Plan-cache effectiveness: hit/miss/invalidation counts, the
        number of resident plans, and the steady-state hit rate."""
        total = self._plan_hits + self._plan_misses
        return {
            "hits": self._plan_hits,
            "misses": self._plan_misses,
            "invalidations": self._plan_invalidations,
            "plans": len(self._plans),
            "hit_rate": self._plan_hits / total if total else 0.0,
        }

    # ------------------------------------------------------------------
    # collectives (Listing 1)
    # ------------------------------------------------------------------

    def all_reduce(
        self,
        backend: str,
        tensor: SimTensor,
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """In-place allreduce of ``tensor`` across all ranks."""
        buf = self._flat(tensor)
        nbytes = tensor.nbytes()
        retuner = self._retuner
        if retuner is not None and not retuner.quiet:
            # adaptive hook runs before hier/flat resolution so pending
            # table edits affect the op being posted; _adapt_primed
            # keeps _collective from counting this op twice
            retuner.before_op(OpFamily.ALLREDUCE, nbytes)
            self._adapt_primed = True
        spec = self._hier_target(backend, OpFamily.ALLREDUCE, nbytes)
        if spec is not None:
            self._adapt_primed = False
            return self._hier().all_reduce(spec, tensor, op, async_op)

        def move(arrivals: list[_Arrival]) -> None:
            datapath.all_reduce([a.inputs[0] for a in arrivals], [a.outputs[0] for a in arrivals], op)

        return self._collective(
            backend, OpFamily.ALLREDUCE, nbytes, [buf], [buf], move,
            meta=("allreduce", tensor.numel(), tensor.dtype.name, op.value),
            async_op=async_op, tensors=(tensor,),
        )

    def reduce(
        self,
        backend: str,
        tensor: SimTensor,
        root: int = 0,
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Reduce into ``tensor`` on ``root`` (other ranks' tensors are inputs)."""
        self._check_root(root)
        buf = self._flat(tensor)

        def move(arrivals: list[_Arrival]) -> None:
            datapath.reduce([a.inputs[0] for a in arrivals], arrivals[root].outputs[0], op)

        return self._collective(
            backend, OpFamily.REDUCE, tensor.nbytes(), [buf], [buf], move,
            meta=("reduce", tensor.numel(), tensor.dtype.name, op.value, root),
            async_op=async_op, tensors=(tensor,),
        )

    def bcast(
        self, backend: str, tensor: SimTensor, root: int = 0, async_op: bool = False
    ) -> Optional[WorkHandle]:
        """Broadcast ``root``'s tensor into everyone's tensor (in place)."""
        self._check_root(root)
        buf = self._flat(tensor)
        retuner = self._retuner
        if retuner is not None and not retuner.quiet:
            retuner.before_op(OpFamily.BROADCAST, tensor.nbytes())
            self._adapt_primed = True
        spec = self._hier_target(backend, OpFamily.BROADCAST, tensor.nbytes())
        if spec is not None:
            self._adapt_primed = False
            return self._hier().bcast(spec, tensor, root, async_op)

        def move(arrivals: list[_Arrival]) -> None:
            datapath.broadcast(arrivals[root].inputs[0], [a.outputs[0] for a in arrivals])

        return self._collective(
            backend, OpFamily.BROADCAST, tensor.nbytes(), [buf], [buf], move,
            meta=("bcast", tensor.numel(), tensor.dtype.name, root),
            async_op=async_op, compressible=False, tensors=(tensor,),
        )

    broadcast = bcast

    def all_gather(
        self, backend: str, output: SimTensor, input: SimTensor, async_op: bool = False
    ) -> Optional[WorkHandle]:
        """Gather every rank's ``input`` into every rank's ``output``
        (rank-major order); output numel must be world_size * input numel."""
        in_buf, out_buf = self._flat(input), self._flat(output)
        retuner = self._retuner
        if retuner is not None and not retuner.quiet:
            retuner.before_op(OpFamily.ALLGATHER, input.nbytes())
            self._adapt_primed = True
        spec = self._hier_target(backend, OpFamily.ALLGATHER, input.nbytes())
        if spec is not None:
            self._adapt_primed = False
            return self._hier().all_gather(spec, output, input, async_op)
        if output.numel() != input.numel() * self.world_size:
            raise ValidationError(
                f"all_gather: output numel {output.numel()} != "
                f"{self.world_size} * {input.numel()}"
            )

        def move(arrivals: list[_Arrival]) -> None:
            datapath.all_gather([a.inputs[0] for a in arrivals], [a.outputs[0] for a in arrivals])

        return self._collective(
            backend, OpFamily.ALLGATHER, input.nbytes(), [in_buf], [out_buf], move,
            meta=("all_gather", input.numel(), input.dtype.name),
            async_op=async_op, compressible=False, tensors=(input, output),
        )

    #: PyTorch spelling used in the paper's Listing 2
    all_gather_base = all_gather

    def reduce_scatter(
        self,
        backend: str,
        output: SimTensor,
        input: SimTensor,
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Reduce full ``input`` vectors and scatter 1/p chunks into ``output``."""
        in_buf, out_buf = self._flat(input), self._flat(output)
        if input.numel() != output.numel() * self.world_size:
            raise ValidationError(
                f"reduce_scatter: input numel {input.numel()} != "
                f"{self.world_size} * {output.numel()}"
            )

        def move(arrivals: list[_Arrival]) -> None:
            datapath.reduce_scatter(
                [a.inputs[0] for a in arrivals], [a.outputs[0] for a in arrivals], op
            )

        return self._collective(
            backend, OpFamily.REDUCE_SCATTER, input.nbytes(), [in_buf], [out_buf], move,
            meta=("reduce_scatter", input.numel(), input.dtype.name, op.value),
            async_op=async_op, tensors=(input, output),
        )

    def all_to_all_single(
        self, backend: str, output: SimTensor, input: SimTensor, async_op: bool = False
    ) -> Optional[WorkHandle]:
        """Shuffle equal chunks of ``input`` elements across ranks
        (PyTorch's all_to_all_single)."""
        in_buf, out_buf = self._flat(input), self._flat(output)
        retuner = self._retuner
        if retuner is not None and not retuner.quiet:
            retuner.before_op(OpFamily.ALLTOALL, input.nbytes())
            self._adapt_primed = True
        spec = self._hier_target(backend, OpFamily.ALLTOALL, input.nbytes())
        if spec is not None:
            self._adapt_primed = False
            return self._hier().all_to_all_single(spec, output, input, async_op)
        if input.numel() != output.numel():
            raise ValidationError("all_to_all_single: input/output numel differ")
        if input.numel() % self.world_size != 0:
            raise ValidationError(
                f"all_to_all_single: numel {input.numel()} not divisible by "
                f"world size {self.world_size}"
            )

        def move(arrivals: list[_Arrival]) -> None:
            datapath.all_to_all_single(
                [a.inputs[0] for a in arrivals], [a.outputs[0] for a in arrivals]
            )

        return self._collective(
            backend, OpFamily.ALLTOALL, input.nbytes(), [in_buf], [out_buf], move,
            meta=("all_to_all_single", input.numel(), input.dtype.name),
            async_op=async_op, compressible=False, tensors=(input, output),
        )

    def all_to_all(
        self,
        backend: str,
        output: Sequence[SimTensor],
        input: Sequence[SimTensor],
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """List-of-tensors alltoall (PyTorch convention, §V-A): rank i's
        ``input[j]`` lands in rank j's ``output[i]``.  Per-pair sizes may
        vary but must agree pairwise."""
        if len(input) != self.world_size or len(output) != self.world_size:
            raise ValidationError(
                f"all_to_all: need {self.world_size} tensors per list, got "
                f"{len(input)}/{len(output)}"
            )
        in_bufs = [self._flat(t) for t in input]
        out_bufs = [self._flat(t) for t in output]
        nbytes = sum(t.nbytes() for t in input)

        def move(arrivals: list[_Arrival]) -> None:
            p = len(arrivals)
            for i in range(p):
                for j in range(p):
                    src = arrivals[i].inputs[j]
                    dst = arrivals[j].outputs[i]
                    if src.size != dst.size:
                        raise ValidationError(
                            f"all_to_all: rank {i}->rank {j} size mismatch "
                            f"({src.size} vs {dst.size})"
                        )
            staged = [[np.array(b, copy=True) for b in a.inputs] for a in arrivals]
            for i in range(p):
                for j in range(p):
                    arrivals[j].outputs[i][:] = staged[i][j]

        return self._collective(
            backend, OpFamily.ALLTOALL, nbytes, in_bufs, out_bufs, move,
            meta=("all_to_all", self.world_size),
            async_op=async_op, compressible=False,
            tensors=(*input, *output),
        )

    def gather(
        self,
        backend: str,
        input: SimTensor,
        output: Optional[SimTensor] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Gather every rank's ``input`` into ``output`` on ``root``."""
        self._check_root(root)
        in_buf = self._flat(input)
        out_bufs = []
        if self.rank == root:
            if output is None:
                raise ValidationError("gather: root must pass an output tensor")
            if output.numel() != input.numel() * self.world_size:
                raise ValidationError("gather: root output numel mismatch")
            out_bufs = [self._flat(output)]

        def move(arrivals: list[_Arrival]) -> None:
            datapath.gather([a.inputs[0] for a in arrivals], arrivals[root].outputs[0])

        return self._collective(
            backend, OpFamily.GATHER, input.nbytes(), [in_buf], out_bufs, move,
            meta=("gather", input.numel(), input.dtype.name, root),
            async_op=async_op, compressible=False, tensors=(input, output),
        )

    def scatter(
        self,
        backend: str,
        output: SimTensor,
        input: Optional[SimTensor] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Scatter ``root``'s ``input`` in equal chunks into each ``output``."""
        self._check_root(root)
        out_buf = self._flat(output)
        in_bufs = []
        if self.rank == root:
            if input is None:
                raise ValidationError("scatter: root must pass an input tensor")
            if input.numel() != output.numel() * self.world_size:
                raise ValidationError("scatter: root input numel mismatch")
            in_bufs = [self._flat(input)]

        def move(arrivals: list[_Arrival]) -> None:
            datapath.scatter(arrivals[root].inputs[0], [a.outputs[0] for a in arrivals])

        return self._collective(
            backend, OpFamily.SCATTER, output.nbytes(), in_bufs, [out_buf], move,
            meta=("scatter", output.numel(), output.dtype.name, root),
            async_op=async_op, compressible=False, tensors=(input, output),
        )

    # -- vectored collectives (§V-A: supported for all backends) ----------

    def gatherv(
        self,
        backend: str,
        input: SimTensor,
        output: Optional[SimTensor] = None,
        rcounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """MPI_Gatherv: rank i contributes ``rcounts[i]`` elements, landing
        at ``displs[i]`` in the root's ``output``."""
        self._check_root(root)
        rcounts, displs = self._check_v_args(rcounts, displs)
        in_buf = self._flat(input)
        if input.numel() < rcounts[self.rank]:
            raise ValidationError(
                f"gatherv: rank {self.rank} input smaller than rcount"
            )
        out_bufs = []
        if self.rank == root:
            if output is None:
                raise ValidationError("gatherv: root must pass an output tensor")
            out_bufs = [self._flat(output)]

        def move(arrivals: list[_Arrival]) -> None:
            datapath.gather_v(
                [a.inputs[0] for a in arrivals], arrivals[root].outputs[0], rcounts, displs
            )

        nbytes = max(rcounts) * input.element_size()
        return self._collective(
            backend, OpFamily.GATHER, nbytes, [in_buf], out_bufs, move,
            meta=("gatherv", tuple(rcounts), tuple(displs), input.dtype.name, root),
            async_op=async_op, vector=True, compressible=False,
            tensors=(input, output),
        )

    def scatterv(
        self,
        backend: str,
        output: SimTensor,
        input: Optional[SimTensor] = None,
        scounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """MPI_Scatterv: root sends ``scounts[i]`` elements from offset
        ``displs[i]`` to rank i."""
        self._check_root(root)
        scounts, displs = self._check_v_args(scounts, displs)
        out_buf = self._flat(output)
        if output.numel() < scounts[self.rank]:
            raise ValidationError(
                f"scatterv: rank {self.rank} output smaller than scount"
            )
        in_bufs = []
        if self.rank == root:
            if input is None:
                raise ValidationError("scatterv: root must pass an input tensor")
            in_bufs = [self._flat(input)]

        def move(arrivals: list[_Arrival]) -> None:
            datapath.scatter_v(
                arrivals[root].inputs[0], [a.outputs[0] for a in arrivals], scounts, displs
            )

        nbytes = max(scounts) * output.element_size()
        return self._collective(
            backend, OpFamily.SCATTER, nbytes, in_bufs, [out_buf], move,
            meta=("scatterv", tuple(scounts), tuple(displs), output.dtype.name, root),
            async_op=async_op, vector=True, compressible=False,
            tensors=(input, output),
        )

    def all_gatherv(
        self,
        backend: str,
        output: SimTensor,
        input: SimTensor,
        rcounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """MPI_Allgatherv: like gatherv but every rank gets the result."""
        rcounts, displs = self._check_v_args(rcounts, displs)
        in_buf, out_buf = self._flat(input), self._flat(output)

        def move(arrivals: list[_Arrival]) -> None:
            datapath.all_gather_v(
                [a.inputs[0] for a in arrivals],
                [a.outputs[0] for a in arrivals],
                rcounts,
                displs,
            )

        nbytes = max(rcounts) * input.element_size()
        return self._collective(
            backend, OpFamily.ALLGATHER, nbytes, [in_buf], [out_buf], move,
            meta=("all_gatherv", tuple(rcounts), tuple(displs), input.dtype.name),
            async_op=async_op, vector=True, compressible=False,
            tensors=(input, output),
        )

    def all_to_allv(
        self,
        backend: str,
        output: SimTensor,
        input: SimTensor,
        scounts: Optional[Sequence[int]] = None,
        sdispls: Optional[Sequence[int]] = None,
        rcounts: Optional[Sequence[int]] = None,
        rdispls: Optional[Sequence[int]] = None,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """MPI_Alltoallv: each rank passes its own send/recv count and
        displacement rows (lengths = world size)."""
        scounts, sdispls = self._check_v_args(scounts, sdispls)
        rcounts, rdispls = self._check_v_args(rcounts, rdispls)
        in_buf, out_buf = self._flat(input), self._flat(output)

        def move(arrivals: list[_Arrival]) -> None:
            datapath.all_to_all_v(
                [a.inputs[0] for a in arrivals],
                [a.outputs[0] for a in arrivals],
                [a.extras["scounts"] for a in arrivals],
                [a.extras["sdispls"] for a in arrivals],
                [a.extras["rcounts"] for a in arrivals],
                [a.extras["rdispls"] for a in arrivals],
            )

        nbytes = sum(scounts) * input.element_size()
        return self._collective(
            backend, OpFamily.ALLTOALL, nbytes, [in_buf], [out_buf], move,
            meta=("all_to_allv", self.world_size, input.dtype.name),
            async_op=async_op, vector=True, compressible=False,
            tensors=(input, output),
            extras={
                "scounts": list(scounts),
                "sdispls": list(sdispls),
                "rcounts": list(rcounts),
                "rdispls": list(rdispls),
                "_elem_size": input.element_size(),
            },
        )

    def barrier(self, backend: Optional[str] = None, async_op: bool = False) -> Optional[WorkHandle]:
        """Block until every rank arrives (host-blocking on all backends)."""
        backend = backend or next(iter(self.backends))

        def move(arrivals: list[_Arrival]) -> None:
            pass

        return self._collective(
            backend, OpFamily.BARRIER, 0, [], [], move,
            meta=("barrier",), async_op=async_op, force_host=True, compressible=False,
        )

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(
        self,
        backend: str,
        tensor: SimTensor,
        dst: int,
        tag: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Send ``tensor`` to rank ``dst`` (rendezvous-protocol semantics:
        a blocking send completes when the transfer does)."""
        return self._p2p(backend, tensor, peer=dst, tag=tag, is_send=True, async_op=async_op)

    def recv(
        self,
        backend: str,
        tensor: SimTensor,
        src: int,
        tag: int = 0,
        async_op: bool = False,
    ) -> Optional[WorkHandle]:
        """Receive into ``tensor`` from rank ``src``."""
        return self._p2p(backend, tensor, peer=src, tag=tag, is_send=False, async_op=async_op)

    def isend(self, backend: str, tensor: SimTensor, dst: int, tag: int = 0) -> WorkHandle:
        return self.send(backend, tensor, dst, tag, async_op=True)

    def irecv(self, backend: str, tensor: SimTensor, src: int, tag: int = 0) -> WorkHandle:
        return self.recv(backend, tensor, src, tag, async_op=True)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _backend(self, name: str) -> Backend:
        # the common case is a canonical name; only alias/odd-case misses
        # pay for normalization
        backend = self.backends.get(name)
        if backend is not None:
            return backend
        if name[:5].lower() == "hier:":
            # composite targets are dispatch spellings, not backends;
            # only the four decomposable collectives accept them
            raise BackendError(
                f"hierarchical target {name!r} is not valid for this "
                "operation; hier:* supports all_reduce, bcast, all_gather "
                "and all_to_all_single only"
            )
        canon = canonical_name(name)
        try:
            return self.backends[canon]
        except KeyError:
            raise BackendError(
                f"backend {name!r} not initialized on this communicator; "
                f"have {list(self.backends)}"
            ) from None

    def _flat(self, tensor: SimTensor) -> np.ndarray:
        if not isinstance(tensor, SimTensor):
            raise TypeError(f"expected SimTensor, got {type(tensor).__name__}")
        if tensor.is_virtual:
            # timing-only tensor: the buffer is never read or written (every
            # data-plane touch is guarded by ``not timing_only``), so skip
            # the contiguity/view work and hand back a shared placeholder
            return _VIRTUAL_BUF
        return tensor.contiguous().view_flat()

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.world_size:
            raise ValidationError(f"root {root} out of range [0, {self.world_size})")

    def _check_v_args(
        self, counts: Optional[Sequence[int]], displs: Optional[Sequence[int]]
    ) -> tuple[list[int], list[int]]:
        if counts is None:
            raise ValidationError("vectored collective requires counts")
        counts = [int(c) for c in counts]
        if len(counts) != self.world_size:
            raise ValidationError(
                f"counts length {len(counts)} != world size {self.world_size}"
            )
        if any(c < 0 for c in counts):
            raise ValidationError(f"negative count in {counts}")
        if displs is None:
            displs = list(np.cumsum([0] + counts[:-1]))
        displs = [int(d) for d in displs]
        if len(displs) != self.world_size:
            raise ValidationError(
                f"displs length {len(displs)} != world size {self.world_size}"
            )
        return counts, displs

    def _resolve_backend(self, name: str, family: OpFamily, nbytes: int) -> Backend:
        """Resolve an explicit name or the ``"auto"`` tuned choice (§V-F)."""
        if name != "auto":
            return self._backend(name)
        choice = None
        if self.tuning_table is not None:
            choice = self.tuning_table.lookup(family.value, self.world_size, nbytes)
            if choice is not None:
                canon = canonical_name(choice)
                if canon not in self.backends or canon in self._quarantined:
                    choice = None  # tuned for a backend we did not init
                    # (or one quarantined by a permanent fault)
        if choice is None:
            choice = self.config.fallback_backend or next(iter(self.backends))
        return self._backend(choice)

    # -- hierarchical composite dispatch (hier:<intra>+<inter>) -----------

    def _hier(self):
        """The lazily built hierarchical executor (sub-groups derived
        from ``SystemSpec.node_of`` on first use, cached here)."""
        if self._hier_exec is None:
            from repro.backends.hierarchical import HierarchicalExecutor

            self._hier_exec = HierarchicalExecutor(self)
        return self._hier_exec

    def _table_has_hier(self, table: TuningTable) -> bool:
        """Whether the tuning table contains any ``hier:*`` entry, memoized
        per (table identity, generation) so hier-free auto dispatch pays
        one tuple compare."""
        probe = self._hier_table_probe
        ident, gen = id(table), table.generation
        if probe is not None and probe[0] == ident and probe[1] == gen:
            return probe[2]
        has = any(
            choice[:5].lower() == "hier:"
            for by_ws in table.entries.values()
            for by_msg in by_ws.values()
            for choice in by_msg.values()
        )
        self._hier_table_probe = (ident, gen, has)
        return has

    def _hier_target(self, name: str, family: OpFamily, nbytes: int):
        """Resolve one dispatch to a hierarchical spec, or None for flat.

        Explicit ``hier:*`` spellings must parse and have both
        constituents initialized (errors otherwise, mirroring unknown
        backend names).  ``"auto"`` consults the tuned table; a hier
        entry that cannot run here — malformed, missing constituent, or
        a constituent quarantined by a permanent fault — silently falls
        back to flat resolution, matching ``_resolve_backend``'s
        treatment of unavailable tuned choices.
        """
        if name[:5].lower() == "hier:":
            from repro.backends.hierarchical import parse_hier

            spec = parse_hier(name)
            for part in (spec.intra, spec.inter):
                if part not in self.backends:
                    raise BackendError(
                        f"hierarchical target {name!r} needs backend "
                        f"{part!r}, which is not initialized on this "
                        f"communicator; have {list(self.backends)}"
                    )
            return spec
        if name != "auto":
            return None
        table = self._tuning_table
        if table is None or not self._table_has_hier(table):
            return None
        choice = table.lookup(family.value, self.world_size, nbytes)
        if choice is None or choice[:5].lower() != "hier:":
            return None
        from repro.backends.hierarchical import parse_hier

        try:
            spec = parse_hier(choice)
        except BackendError:
            return None
        for part in (spec.intra, spec.inter):
            if part not in self.backends or part in self._quarantined:
                return None
        return spec

    # -- fault handling (retry / quarantine / failover) -------------------
    #
    # Every decision below is a deterministic function of per-scope op
    # counters, so in an SPMD program all ranks of a group make identical
    # choices and rendezvous keys stay matched even in degraded mode —
    # the deadlock-freedom claim of §V-D extended to failures:
    #
    # * collectives count per (communicator, backend); every group rank
    #   posts the same Nth collective, so transient retries and permanent
    #   quarantines happen at the same logical op everywhere;
    # * p2p counts per directed channel (backend, src, dst, tag); the
    #   matched sender and receiver observe equal indices.  p2p never
    #   triggers quarantine — third-party ranks could not observe it
    #   symmetrically — it reroutes the single op instead.

    def _record_fault(self, kind: str, backend_name: str, detail: str = "") -> None:
        if self._fault_log is not None:
            self._fault_log.log_event(
                kind, self.ctx.rank, backend_name, self.ctx.now, detail
            )

    def _quarantine(self, backend: Backend, reason: str) -> None:
        if backend.name in self._quarantined:
            return
        self._quarantined.add(backend.name)
        backend.fail(reason)
        # a quarantine changes dispatch for every subsequent op (auto
        # resolution skips the backend, explicit dispatch reroutes), so
        # compiled plans must recompute from the degraded state
        self.invalidate_plans(f"quarantine({backend.name})")
        self._record_fault("quarantine", backend.name, reason)
        if self._retuner is not None:
            # probation: the retuner re-probes the backend at matched op
            # indexes and un-quarantines symmetrically on success
            self._retuner.on_quarantine(backend.name)
        # a backend the parent declares dead must not keep serving
        # hierarchical phases; each phase communicator degrades (and
        # fails over) independently.  Child-local quarantines do NOT
        # propagate upward — a fault observed only inside one phase
        # group is handled by that group's own failover.
        for child in self._hier_children:
            child_backend = child.backends.get(backend.name)
            if child_backend is not None and backend.name not in child._quarantined:
                child._quarantine(child_backend, f"parent: {reason}")
        if len(self._quarantined) == len(self.backends):
            raise BackendError(
                f"all backends permanently failed: {sorted(self._quarantined)}"
            )

    def _unquarantine(self, backend: Backend, reason: str) -> None:
        """Symmetric inverse of :meth:`_quarantine` (probation path).

        Only the adaptive probation protocol calls this, at matched op
        indexes on every rank (same agree-at-op discipline as the
        quarantine itself), so the quarantine set stays symmetric.
        Hierarchical phase children whose quarantine was inherited from
        the parent recover with it; a child-local quarantine — a fault
        observed only inside one phase group — stays put, mirroring the
        asymmetry of the quarantine cascade.
        """
        if backend.name not in self._quarantined:
            return
        self._quarantined.discard(backend.name)
        backend.recover(reason)
        # recovery changes dispatch exactly like quarantine did: auto
        # resolution may pick the backend again, explicit dispatch stops
        # rerouting — compiled plans must recompute
        self.invalidate_plans(f"unquarantine({backend.name})")
        self._record_fault("unquarantine", backend.name, reason)
        for child in self._hier_children:
            child_backend = child.backends.get(backend.name)
            if (
                child_backend is not None
                and backend.name in child._quarantined
                and (child_backend.failure_reason or "").startswith("parent: ")
            ):
                child._unquarantine(child_backend, f"parent: {reason}")

    def _failover_target(
        self, family: OpFamily, nbytes: int, exclude: frozenset = frozenset()
    ) -> Backend:
        """Deterministic survivor choice: tuning table, then the
        configured fallback, then init order (§V-F dispatch, restricted
        to live backends)."""
        survivors = [
            n
            for n in self.backends
            if n not in self._quarantined and n not in exclude
        ]
        if not survivors:
            raise BackendError(
                f"no surviving backend for {family.value}: "
                f"quarantined {sorted(self._quarantined)}"
            )
        choice = None
        if self.tuning_table is not None:
            tuned = self.tuning_table.lookup(family.value, self.world_size, nbytes)
            if tuned is not None and canonical_name(tuned) in survivors:
                choice = canonical_name(tuned)
        if choice is None:
            fb = self.config.fallback_backend
            if fb is not None and canonical_name(fb) in survivors:
                choice = canonical_name(fb)
        if choice is None:
            choice = survivors[0]
        return self.backends[choice]

    def _admit_backend(
        self,
        backend: Backend,
        family: OpFamily,
        nbytes: int,
        p2p_channel: Optional[tuple] = None,
    ) -> Backend:
        """Fault gate for one dispatch: consult the injector, retry
        transient faults with exponential backoff, quarantine and fail
        over on permanent ones.  Returns the backend that actually runs
        the operation."""
        inj = self._injector
        ctx = self.ctx
        cfg = self.config
        hops = 0
        while True:
            if backend.name in self._quarantined:
                old = backend.name
                backend = self._failover_target(family, nbytes)
                self._record_fault("failover", old, f"-> {backend.name}")
                continue
            if inj is None:
                return backend
            if hops > 3 * len(self.backends):  # pragma: no cover - safety valve
                raise BackendError(
                    f"fault failover did not converge for {family.value}"
                )
            scope = (
                ("p2p", backend.name, *p2p_channel)
                if p2p_channel is not None
                else ("coll", backend.name)
            )
            idx = self._fault_counters.get(scope, 0) + 1
            self._fault_counters[scope] = idx
            fault = inj.backend_fault(
                self.comm_id, backend.name, idx, p2p=p2p_channel is not None,
                rank=ctx.rank, now=ctx.now,
            )
            if fault is None:
                return backend
            if fault.kind == "transient":
                attempts = min(fault.fail_attempts, cfg.comm_max_retries)
                for attempt in range(attempts):
                    self._record_fault(
                        "retry",
                        backend.name,
                        f"op {idx} attempt {attempt + 1}/{cfg.comm_max_retries}",
                    )
                    ctx.sleep(
                        cfg.retry_backoff_us * (2.0 ** attempt),
                        reason=f"retry({backend.name})",
                    )
                if fault.fail_attempts <= cfg.comm_max_retries:
                    return backend  # cleared within the retry budget
                if p2p_channel is None:
                    # a collective that cannot clear its transient fault
                    # within the retry budget is treated as a permanent
                    # library failure (symmetric: same decision everywhere)
                    self._quarantine(
                        backend, f"transient fault persisted past {attempts} retries"
                    )
                    continue
                # p2p: reroute this one op, no global quarantine
                old = backend.name
                backend = self._failover_target(
                    family, nbytes, exclude=frozenset((backend.name,))
                )
                self._record_fault("failover", old, f"-> {backend.name} (p2p reroute)")
                hops += 1
                continue
            # permanent
            self._quarantine(backend, f"permanent fault at op {idx}")
            # loop re-enters the quarantined branch and fails over

    def _op_label(self, op, backend_name: str) -> tuple[str, str]:
        """Cached ``(label, dispatch reason)`` for one (op, backend) pair."""
        key = (op, backend_name)
        cached = self._op_labels.get(key)
        if cached is None:
            label = f"{op}:{backend_name}"
            if self._phase_tag:
                # phase communicators mark their intervals so chrome
                # traces show the intra/inter segments of a composite
                label = f"{label}@{self._phase_tag}"
            cached = self._op_labels[key] = (label, f"dispatch({label})")
        return cached

    def _next_seq(self, backend_name: str) -> int:
        # rendezvous sequence numbers are keyed per backend only:
        # collective calls are communicator-ordered within a library
        # regardless of op family, exactly like NCCL/MPI, so mixed-family
        # programs stay matched as long as every rank posts the same
        # op order (tests/test_plan_cache.py pins this down)
        self._seq[backend_name] += 1
        return self._seq[backend_name]

    def _dispatch_cost(self, backend: Backend) -> float:
        return self.config.dispatch_overhead_us + backend.call_overhead_us()

    def _plan_valid(self, plan: CommPlan) -> bool:
        if plan.epoch != self._plan_epoch:
            return False  # pragma: no cover - epoch bumps clear the dict
        if plan.table_generation >= 0:
            table = self._tuning_table
            if table is None or table.generation != plan.table_generation:
                self._plan_invalidations += 1
                return False
        return True

    def _compile_plan(
        self,
        backend_name: str,
        family: OpFamily,
        nbytes: int,
        meta: tuple,
        vector: bool,
        force_host: bool,
        compressible: bool,
        timing_only: bool,
    ) -> CommPlan:
        """Derive one dispatch plan from a call signature.

        Pure with respect to simulated time — resolution, label
        interning, codec arithmetic, and stream placement never advance
        the clock — and arithmetic-identical to the historical per-call
        derivation, so cached and uncached dispatch cannot diverge.
        """
        backend = self._resolve_backend(backend_name, family, nbytes)
        label, dispatch_reason = self._op_label(family, backend.name)
        # compression (§V-E): shrink the wire size, model codec kernels,
        # and apply the real quantization error to the data
        codec = None
        wire_bytes = nbytes
        codec_us = 0.0
        if (
            self._codec is not None
            and compressible
            and family.value in self.config.compression.families
        ):
            codec = self._codec
            wire_bytes = codec.compressed_nbytes(nbytes)
            codec_us = codec.codec_time_us(nbytes)
        stream_kind = self.sync.uses_streams(backend) and not force_host
        if self.config.synchronization == "naive":
            stream_kind = not force_host  # posted to the default stream
        table_generation = -1
        if backend_name == "auto" and self._tuning_table is not None:
            table_generation = self._tuning_table.generation
        return CommPlan(
            epoch=self._plan_epoch,
            table_generation=table_generation,
            backend=backend,
            resolved_name=backend.name,
            label=label,
            dispatch_reason=dispatch_reason,
            dispatch_kind="auto" if backend_name == "auto" else "explicit",
            dispatch_cost_us=self._dispatch_cost(backend),
            codec=codec,
            wire_bytes=wire_bytes,
            codec_us=codec_us,
            stream_kind=stream_kind,
            meta_tagged=(*meta, "virtual" if timing_only else "real"),
        )

    # -- persistent collectives (ext.persistent, §V-E) ---------------------

    def _capture_collective(self, post, backend_name: str, *args, **kwargs) -> tuple:
        """Init-time negotiation for a persistent collective: run the
        public op with ``_collective`` intercepted so argument validation
        happens once and the exact dispatch invocation is captured for
        replay.  Nothing is posted and the clock does not move."""
        captured: dict = {}

        def recorder(*a, **kw):
            captured["args"] = a
            captured["kwargs"] = kw
            return None

        self._collective = recorder  # shadow the bound method
        retuner = self._retuner
        was_quiet = retuner.quiet if retuner is not None else False
        if retuner is not None:
            # capture posts nothing and must not count as an adaptive op
            retuner.quiet = True
        try:
            post(backend_name, *args, async_op=True, **kwargs)
        finally:
            del self._collective
            if retuner is not None:
                retuner.quiet = was_quiet
        return captured["args"], captured["kwargs"]

    def _plan_for_call(self, args: tuple, kwargs: dict) -> CommPlan:
        """Compile (or fetch) the plan for a captured ``_collective``
        invocation — the pin a :class:`~repro.ext.persistent.
        PersistentCollective` holds."""
        backend_name, family, nbytes = args[0], args[1], args[2]
        meta = kwargs["meta"]
        vector = kwargs.get("vector", False)
        force_host = kwargs.get("force_host", False)
        compressible = kwargs.get("compressible", True)
        timing_only = any(
            t is not None and t.is_virtual for t in kwargs.get("tensors", ())
        )
        if not self._plan_cache_on:
            return self._compile_plan(
                backend_name, family, nbytes, meta,
                vector, force_host, compressible, timing_only,
            )
        pkey = (
            backend_name, family, meta, nbytes,
            vector, force_host, compressible, timing_only,
        )
        plan = self._plans.get(pkey)
        if plan is None or not self._plan_valid(plan):
            plan = self._compile_plan(
                backend_name, family, nbytes, meta,
                vector, force_host, compressible, timing_only,
            )
            self._plans[pkey] = plan
        return plan

    def _flush_plan_stats(self) -> None:
        """Report plan-cache effectiveness to the observability registry
        as aggregated events — one ``kind="plan"`` ObsEvent per outcome
        with the count carried in ``nbytes``, mirroring the sweep-cache
        reporting convention (zero events on the per-op hot path)."""
        obs = self._obs
        if obs is None:
            return
        from repro.obs.metrics import ObsEvent

        now = self.ctx.now
        for detail, count in (
            ("hit", self._plan_hits),
            ("miss", self._plan_misses),
            ("invalidate", self._plan_invalidations),
        ):
            if count:
                obs.observe(
                    ObsEvent(
                        kind="plan",
                        rank=self.ctx.rank,
                        stream="host",
                        backend="",
                        family="dispatch_plan",
                        nbytes=count,
                        step=-1,
                        start=now,
                        end=now,
                        detail=detail,
                    )
                )

    def _collective(
        self,
        backend_name: str,
        family: OpFamily,
        nbytes: int,
        inputs: list[np.ndarray],
        outputs: list[np.ndarray],
        move: Callable[[list[_Arrival]], None],
        meta: tuple,
        async_op: bool,
        vector: bool = False,
        force_host: bool = False,
        compressible: bool = True,
        extras: Optional[dict] = None,
        tensors: tuple = (),
        dispatch_scale: float = 1.0,
    ) -> Optional[WorkHandle]:
        # virtual (timing-only) tensors: charge full communication time
        # but skip the data plane (workload modeling; see SimTensor docs)
        timing_only = False
        for t in tensors:
            if t is not None and t.is_virtual:
                timing_only = True
                break
        if self._finalized:
            raise MCRError("communicator already finalized")
        ctx = self.ctx

        # adaptive hook for families that never route hierarchically
        # (the hier-capable entries already primed before resolution);
        # must precede the plan lookup so pending table edits apply to
        # this very op.  A probation canary (retuner.quiet) posts from
        # inside before_op and must not count as a new adaptive op.
        retuner = self._retuner
        if retuner is not None:
            if self._adapt_primed:
                self._adapt_primed = False
            elif not retuner.quiet:
                retuner.before_op(family, nbytes)

        # plan lookup: steady state pays one dict probe; first post (or
        # first post after an epoch bump) compiles.  The cache-off path
        # compiles a throwaway plan through the same code, which is what
        # keeps cached and uncached dispatch identical by construction.
        if self._plan_cache_on:
            pkey = (
                backend_name, family, meta, nbytes,
                vector, force_host, compressible, timing_only,
            )
            plan = self._plans.get(pkey)
            if plan is not None and self._plan_valid(plan):
                self._plan_hits += 1
            else:
                plan = self._compile_plan(
                    backend_name, family, nbytes, meta,
                    vector, force_host, compressible, timing_only,
                )
                self._plans[pkey] = plan
                self._plan_misses += 1
        else:
            plan = self._compile_plan(
                backend_name, family, nbytes, meta,
                vector, force_host, compressible, timing_only,
            )

        backend = plan.backend
        label = plan.label
        dispatch_reason = plan.dispatch_reason
        dispatch_cost = plan.dispatch_cost_us
        stream_kind = plan.stream_kind
        if self._fault_gate or self._quarantined:
            # the fault gate runs per call even on a plan hit: injector
            # op counters must advance exactly as in the uncached path,
            # and its retries/reroutes are call-local, never plan state
            admitted = self._admit_backend(backend, family, nbytes)
            if admitted is not backend:
                backend = admitted
                label, dispatch_reason = self._op_label(family, backend.name)
                dispatch_cost = self._dispatch_cost(backend)
                stream_kind = self.sync.uses_streams(backend) and not force_host
                if self.config.synchronization == "naive":
                    stream_kind = not force_host
        dispatch = (
            self._dispatch_kind(backend_name, plan.resolved_name, backend.name)
            if self.logger is not None
            else "explicit"
        )

        # host dispatch: thin Python layer + backend call overhead (C3);
        # persistent collectives replay at a discounted scale (§V-E)
        if dispatch_scale != 1.0:
            dispatch_cost *= dispatch_scale
        ctx.engine.sleep(dispatch_cost, dispatch_reason)

        codec = plan.codec
        wire_bytes = plan.wire_bytes
        codec_us = plan.codec_us

        if self.world_size == 1:
            if not timing_only:
                for a_in, a_out in zip(inputs, outputs):
                    if a_in is not a_out:
                        a_out[:] = a_in
            handle = CompletedHandle(ctx, backend.name, label)
            self._log(
                family, backend, nbytes, ctx.now, ctx.now, async_op,
                dispatch=dispatch, stream="host",
            )
            if async_op:
                return handle
            return None

    # rendezvous ---------------------------------------------------

        seq = self._next_seq(backend.name)
        key = (self.comm_id, backend.name, seq)
        rdv_table = self._shared["rdv"]
        meta = plan.meta_tagged
        rdv = rdv_table.get(key)
        if rdv is None:
            rdv = _Rendezvous(
                key, self.world_size, family, meta, ctx.new_flag(label), stream_kind
            )
            rdv_table[key] = rdv
        if rdv.meta != meta or rdv.family is not family:
            raise ValidationError(
                f"collective mismatch at {key}: rank {ctx.rank} posted "
                f"{family}/{meta}, expected {rdv.family}/{rdv.meta}"
            )
        if ctx.rank in rdv.arrivals:
            raise ValidationError(f"rank {ctx.rank} arrived twice at {key}")

        arrival = _Arrival(
            rank=ctx.rank,
            host_time=ctx.now,
            inputs=inputs,
            outputs=outputs,
            extras=extras or {},
        )
        rdv.arrivals[ctx.rank] = arrival

        member_node = None
        stream_label = "host"
        if stream_kind:
            self.sync.pre_post(backend)
            # pre_post may advance the host clock (naive-mode default
            # stream sync); the arrival timestamp must reflect when the
            # op was actually posted or flapping-link windows skew
            arrival.host_time = ctx.now
            stream = self.sync.pick_stream(backend, wire_bytes)
            stream_label = stream.name
            producer = ctx.gpu.default_stream.last
            member_node = stream.enqueue_collective_member(
                rdv.group,
                deps=[producer] if producer is not None else [],
                label=label,
                category="comm",
            )
        else:
            self.sync.pre_post(backend)
            arrival.host_time = ctx.now  # pre_post may have advanced time

        last = len(rdv.arrivals) == self.world_size and not rdv.claimed
        if last:
            rdv.claimed = True
            if vector and family is OpFamily.ALLTOALL:
                # an imbalanced alltoallv runs at the pace of its heaviest
                # sender or receiver (the straggler destination), not this
                # rank's own volume
                wire_bytes = max(wire_bytes, self._alltoallv_critical_bytes(rdv))
            duration = backend.collective_cost_us(
                family,
                wire_bytes,
                self.world_size,
                self._comm_path,
                vector=vector,
                nonblocking=async_op,
            )
            duration *= 1.0 + self.config.dispatch_fraction
            if self._link_faults:
                # degraded/flapping fabric window (repro.sim.faults):
                # decided once, by the resolving rank, at the transfer's
                # start time — per-rank clocks cannot split the decision
                duration *= ctx.system.link_time_factor(
                    max(a.host_time for a in rdv.arrivals.values()),
                    backend.name,
                )
            duration += codec_us
            if self.config.force_host_staging:
                # Listing-2 style device->host->device copies around the op
                duration += 2.0 * ctx.system.host_staging_us(wire_bytes)
            ordered = [rdv.arrivals[r] for r in self.group_ranks]

            def on_resolve() -> None:
                if not timing_only:
                    if codec is not None:
                        for a in ordered:
                            for buf in a.inputs:
                                codec.apply_quantization_error(buf)
                    move(ordered)
                rdv.resolved = True

            del rdv_table[key]
            # Bandwidth-bound ops serialize per wire lane (§V-C:
            # "concurrent large-message operations are bandwidth-bound and
            # show no benefit"); latency-bound small ops overlap freely.
            # Two lanes model the two injection paths of a GPU node:
            # GPU-initiated (NCCL-family) and host-initiated RDMA (MPI) —
            # which is also why mixing more than one backend of the same
            # kind buys nothing (paper §V-D footnote 4).
            is_large = wire_bytes >= self.config.large_message_threshold
            lane = (
                "wire:stream" if backend.properties.stream_aware else "wire:host"
            )
            interference = getattr(ctx.system, "cross_path_interference", 0.6)
            rdv.duration = duration  # before fire: deferred log emits read it
            if stream_kind:
                rdv.group.duration = duration
                rdv.group.on_resolve = on_resolve
                if is_large and family is not OpFamily.BARRIER:
                    rdv.group.channel_store = self._channel
                    rdv.group.channel_key = lane
                    rdv.group.interference = interference
                resolve(rdv.group, ctx.engine)
            else:
                from repro.sim.graph import apply_wire_lane

                channel = self._channel
                start = max(a.host_time for a in ordered)
                if is_large:
                    start = apply_wire_lane(
                        channel, lane, start, duration, interference
                    )
                end = start + duration
                on_resolve()
                self._trace_host_collective(ordered, label, start, end)
                rdv.flag.fire(end)
        elif member_node is not None and rdv.claimed:
            # the pre-post host sync separates arrival registration from
            # member enqueue, so the claiming rank can wake first and
            # resolve() an incomplete group (a silent no-op).  The rank
            # whose member completes the group must retry, or every host
            # parks on a flag nobody will fire.
            group = rdv.group
            if group is not None and group.complete and not group._resolved:
                resolve(group, ctx.engine)

        # wait() semantics: stream-aware libraries synchronize through
        # CUDA events (host never blocks); MPI libraries complete through
        # MPI_Wait on the host even when their traffic rides MCR-managed
        # streams (mcr-managed mode only changes *where* the transfer
        # overlaps, not how completion is observed).
        stream_semantics = (
            stream_kind
            and backend.properties.stream_aware
            and self.config.synchronization != "naive"
        )
        self._log_on_flag(
            family, backend, nbytes, rdv.flag, async_op, rdv,
            dispatch=dispatch, stream=stream_label,
        )
        if retuner is not None:
            # observation rides the rendezvous flag: fire() runs every
            # rank's callback at one instant with one shared duration,
            # keeping the per-rank observation streams identical
            retuner.attach(family, backend.name, nbytes, rdv, backend_name == "auto")
        deadline_us = self.config.op_deadline_us
        if async_op:
            handle = WorkHandle(
                ctx, backend.name, rdv.flag, member_node,
                stream_semantics=stream_semantics, label=label,
                deadline_us=deadline_us,
                timeout_info=(
                    self._timeout_info(label, rdv) if deadline_us is not None else None
                ),
            )
            self._outstanding[backend.name].append(handle)
            return handle
        # synchronous op: apply wait() semantics inline, no handle object
        if stream_semantics and member_node is not None:
            ctx.gpu.default_stream._gates.append(member_node)
        else:
            self._await_flag(rdv.flag, label, rdv, deadline_us)
        if self.config.synchronization == "naive":
            # naive scheme additionally host-blocks (Fig. 4a)
            ctx.engine.wait_flag(rdv.flag, reason=label)
        return None

    def _await_flag(
        self,
        flag: Flag,
        label: str,
        rdv: Optional[_Rendezvous],
        deadline_us: Optional[float],
    ) -> None:
        """Host-block on a completion flag, honoring the per-op deadline."""
        ctx = self.ctx
        if deadline_us is None:
            if flag.ready_time is None:
                ctx.engine.wait_flag(flag, reason=f"wait({label})")
            else:
                ctx.engine.wait_flag(flag, reason=label)
            return
        if not ctx.engine.wait_flag_deadline(
            flag, ctx.now + deadline_us, reason=f"wait({label})"
        ):
            detail = self._timeout_info(label, rdv)()
            raise CommTimeoutError(
                f"{label} exceeded the {deadline_us:.0f}us deadline on rank "
                f"{ctx.rank}: {detail}",
                label=label,
                rank=ctx.rank,
                deadline_us=deadline_us,
                detail=detail,
            )

    def _timeout_info(self, label: str, rdv: Optional[_Rendezvous]):
        """Deferred per-rank diagnostics for a CommTimeoutError: evaluated
        at timeout time, when the rendezvous shows who never arrived."""

        def info() -> str:
            if rdv is None:
                return "operation still pending"
            arrived = sorted(rdv.arrivals)
            missing = [r for r in self.group_ranks if r not in rdv.arrivals]
            if missing:
                posted = ", ".join(
                    f"rank {r}@{rdv.arrivals[r].host_time:.1f}us" for r in arrived
                )
                return f"ranks {missing} never posted {label} (arrived: {posted})"
            return "all ranks arrived; transfer still in flight"

        return info

    def _alltoallv_critical_bytes(self, rdv: _Rendezvous) -> int:
        """Heaviest per-rank send or receive volume of an alltoallv."""
        arrivals = [rdv.arrivals[r] for r in self.group_ranks if r in rdv.arrivals]
        if not arrivals or "scounts" not in arrivals[0].extras:
            return 0
        elem = arrivals[0].extras.get("_elem_size", 4)
        send_totals = [sum(a.extras["scounts"]) for a in arrivals]
        p = len(arrivals)
        recv_totals = [
            sum(a.extras["scounts"][j] for a in arrivals) for j in range(p)
        ]
        return max(max(send_totals), max(recv_totals)) * elem

    def _trace_host_collective(
        self, ordered: list[_Arrival], label: str, start: float, end: float
    ) -> None:
        tracer = self.ctx.gpu.tracer
        if tracer is None:
            return
        for a in ordered:
            tracer.record(
                rank=a.rank, stream="mpi-host", label=label, category="comm",
                start=start, end=end,
            )

    def _p2p(
        self,
        backend_name: str,
        tensor: SimTensor,
        peer: int,
        tag: int,
        is_send: bool,
        async_op: bool,
    ) -> Optional[WorkHandle]:
        ctx = self.ctx
        if not 0 <= peer < self.world_size:
            raise ValidationError(f"peer {peer} out of range")
        peer_global = self.group_ranks[peer]
        if peer_global == ctx.rank:
            raise ValidationError("p2p with self is not supported")
        backend = self._resolve_backend(backend_name, OpFamily.P2P, tensor.nbytes())
        resolved_name = backend.name
        src, dst = (ctx.rank, peer_global) if is_send else (peer_global, ctx.rank)
        if self._fault_gate or self._quarantined:
            backend = self._admit_backend(
                backend, OpFamily.P2P, tensor.nbytes(), p2p_channel=(src, dst, tag)
            )
        label, dispatch_reason = self._op_label(
            "send" if is_send else "recv", backend.name
        )
        ctx.sleep(self._dispatch_cost(backend), reason=dispatch_reason)

        chan = self._shared["p2p"][(backend.name, src, dst, tag)]
        mine, theirs = ("sends", "recvs") if is_send else ("recvs", "sends")
        buf = self._flat(tensor)

        if chan[theirs]:
            other_buf, other_time, flag, other_virtual = chan[theirs].popleft()
            timing_only = tensor.is_virtual or other_virtual
            send_buf, recv_buf = (buf, other_buf) if is_send else (other_buf, buf)
            if not timing_only and send_buf.size != recv_buf.size:
                raise ValidationError(
                    f"p2p size mismatch: send {send_buf.size} vs recv {recv_buf.size}"
                )
            cost = backend.p2p_cost_us(
                tensor.nbytes(), ctx.system.same_node(src, dst)
            ) * (1.0 + self.config.dispatch_fraction)
            start = max(ctx.now, other_time)
            if self._link_faults:
                cost *= ctx.system.link_time_factor(start, backend.name)
            end = start + cost
            if not timing_only:
                recv_buf[:] = send_buf
            if not flag.is_set:  # eager sends fire their flag at post time
                flag.fire(end)
            if not is_send:
                # the receiver's own completion is the transfer end
                my_flag = ctx.new_flag(label)
                my_flag.fire(end)
                flag = my_flag
            if self.logger is not None:
                # one record per endpoint (the queued peer cannot know the
                # transfer duration, so the matching side logs for both)
                dispatch = self._dispatch_kind(
                    backend_name, resolved_name, backend.name
                )
                for endpoint in (ctx.rank, peer):
                    self.logger.log(
                        rank=endpoint,
                        family=str(OpFamily.P2P),
                        backend=backend.name,
                        nbytes=tensor.nbytes(),
                        start=end - cost,
                        end=end,
                        async_op=async_op,
                        step=self._current_step(endpoint),
                        dispatch=dispatch,
                        stream="p2p",
                    )
            handle = WorkHandle(
                ctx, backend.name, flag, None, False, label,
                deadline_us=self.config.op_deadline_us,
            )
        else:
            flag = ctx.new_flag(label)
            if is_send and tensor.nbytes() <= self.config.eager_threshold:
                # eager protocol: buffer the payload so the sender can
                # return (and reuse its tensor) before the match
                if not tensor.is_virtual:
                    buf = buf.copy()
                flag.fire(ctx.now)
            chan[mine].append((buf, ctx.now, flag, tensor.is_virtual))
            handle = WorkHandle(
                ctx, backend.name, flag, None, False, label,
                deadline_us=self.config.op_deadline_us,
            )

        if async_op:
            self._outstanding[backend.name].append(handle)
            return handle
        handle.synchronize()
        return None

    # -- logging -----------------------------------------------------------

    @staticmethod
    def _dispatch_kind(requested: str, resolved_name: str, actual_name: str) -> str:
        """Attribution tag for one dispatch decision (ISSUE 4): how did
        this op end up on ``actual_name``?"""
        if actual_name != resolved_name:
            return "reroute"  # fault gate failed over / rerouted
        return "auto" if requested == "auto" else "explicit"

    def _current_step(self, rank: int) -> int:
        obs = self._obs
        return obs.current_step(rank) if obs is not None else -1

    def _log(
        self,
        family: OpFamily,
        backend: Backend,
        nbytes: int,
        start: float,
        end: float,
        async_op: bool,
        dispatch: str = "explicit",
        stream: str = "",
    ) -> None:
        if self.logger is not None:
            self.logger.log(
                rank=self.ctx.rank,
                family=family.value,
                backend=backend.name,
                nbytes=nbytes,
                start=start,
                end=end,
                async_op=async_op,
                step=self._current_step(self.ctx.rank),
                dispatch=dispatch,
                stream=stream,
                phase=self._phase_tag,
            )

    def _log_on_flag(
        self,
        family: OpFamily,
        backend: Backend,
        nbytes: int,
        flag: Flag,
        async_op: bool,
        rdv: Optional[_Rendezvous] = None,
        dispatch: str = "explicit",
        stream: str = "",
    ) -> None:
        """Log once the completion time is known (flag fired).

        Records the *transfer* interval (completion minus duration), not
        post-to-completion — queueing behind other traffic is not
        communication time (it would double-count in the breakdowns).
        The training step is captured at *post* time: a non-blocking op
        completing during step N+1 still belongs to the step that issued
        it.
        """
        if self.logger is None:
            return
        logger = self.logger
        rank = self.ctx.rank
        post_time = self.ctx.now
        step = self._current_step(rank)
        phase = self._phase_tag

        def emit() -> None:
            end = flag.ready_time
            duration = rdv.duration if rdv is not None and rdv.duration else None
            start = end - duration if duration is not None else post_time
            logger.log(
                rank=rank,
                family=family.value,
                backend=backend.name,
                nbytes=nbytes,
                start=start,
                end=end,
                async_op=async_op,
                step=step,
                dispatch=dispatch,
                stream=stream,
                phase=phase,
            )

        if flag.is_set:
            emit()
        else:
            logger.defer(flag, emit)
