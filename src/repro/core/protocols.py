"""The ``CommCore`` protocol: the narrow contract extensions program to.

``repro.core.comm`` is layered (see ``docs/INTERNALS.md`` §15):

* **op surface** (`repro.core.comm`) — the 16 public collectives as
  declarative :class:`~repro.core.comm.CollectiveSpec` table rows plus
  the shared pre-dispatch hook chain;
* **dispatch** (`repro.core.dispatch`) — backend resolution, fault
  quarantine/failover, and the compiled :class:`~repro.core.dispatch.
  CommPlan` cache;
* **execution** (`repro.core.rendezvous`) — rendezvous matching and the
  collective/p2p spines over the simulation engine.

Everything *outside* the core — ``ext/`` extensions, ``frameworks/``
baselines, ``backends/hierarchical``, the tuner and the adaptive
retuner — consumes this :class:`CommCore` protocol instead of importing
the concrete :class:`~repro.core.comm.MCRCommunicator`, which removes
the historical import cycle (six-plus deferred ``if TYPE_CHECKING`` /
function-local imports) and is enforced by
``scripts/check_imports.py``.

The protocol has two sections:

* the **public surface** — Listing 1 of the paper: lifecycle,
  introspection, collectives, point-to-point;
* the **extension hooks** — a small, explicitly documented set of
  internal attributes that in-tree extensions legitimately reach into
  (the fusion route table, the persistent-collective capture/replay
  pair, adaptive's fault-counter discipline).  They are underscored
  because user code must not touch them, but they are part of the
  stable contract for extension authors; anything not listed here is
  private to one layer and may change without notice.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.backends.ops import ReduceOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import Backend
    from repro.core.config import CompressionConfig, MCRConfig
    from repro.core.handles import WorkHandle
    from repro.core.sync import SyncManager
    from repro.core.tuning import TuningTable
    from repro.sim.process import RankContext
    from repro.tensor import SimTensor


@runtime_checkable
class CommCore(Protocol):
    """Structural type of a per-rank MCR-DL communicator."""

    # -- identity / wiring (read-only for consumers) -----------------------

    ctx: "RankContext"
    config: "MCRConfig"
    comm_id: str
    backends: dict[str, "Backend"]
    group_ranks: list[int]
    sync: "SyncManager"

    @property
    def rank(self) -> int: ...

    @property
    def group_rank(self) -> int: ...

    @property
    def world_size(self) -> int: ...

    @property
    def tuning_table(self) -> Optional["TuningTable"]: ...

    @property
    def retuner(self) -> Any: ...

    @property
    def plan_stats(self) -> dict: ...

    # -- lifecycle ---------------------------------------------------------

    def get_backends(self) -> list[str]: ...

    def get_size(self, backend: Optional[str] = None) -> int: ...

    def get_rank(self, backend: Optional[str] = None) -> int: ...

    def synchronize(self, backends: "str | Sequence[str] | None" = None) -> None: ...

    def finalize(self, backends: "str | Sequence[str] | None" = None) -> None: ...

    def invalidate_plans(self, reason: str = "") -> None: ...

    def set_compression(self, compression: "CompressionConfig") -> None: ...

    def set_synchronization(self, mode: str) -> None: ...

    def spawn_phase_comm(
        self, ranks: Sequence[int], comm_id: str, phase: str
    ) -> "CommCore": ...

    # -- collectives (Listing 1) -------------------------------------------

    def all_reduce(
        self,
        backend: str,
        tensor: "SimTensor",
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def reduce(
        self,
        backend: str,
        tensor: "SimTensor",
        root: int = 0,
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def bcast(
        self, backend: str, tensor: "SimTensor", root: int = 0, async_op: bool = False
    ) -> Optional["WorkHandle"]: ...

    def all_gather(
        self,
        backend: str,
        output: "SimTensor",
        input: "SimTensor",
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def reduce_scatter(
        self,
        backend: str,
        output: "SimTensor",
        input: "SimTensor",
        op: ReduceOp = ReduceOp.SUM,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def all_to_all_single(
        self,
        backend: str,
        output: "SimTensor",
        input: "SimTensor",
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def all_to_all(
        self,
        backend: str,
        output: Sequence["SimTensor"],
        input: Sequence["SimTensor"],
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def gather(
        self,
        backend: str,
        input: "SimTensor",
        output: Optional["SimTensor"] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def scatter(
        self,
        backend: str,
        output: "SimTensor",
        input: Optional["SimTensor"] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def gatherv(
        self,
        backend: str,
        input: "SimTensor",
        output: Optional["SimTensor"] = None,
        rcounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def scatterv(
        self,
        backend: str,
        output: "SimTensor",
        input: Optional["SimTensor"] = None,
        scounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        root: int = 0,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def all_gatherv(
        self,
        backend: str,
        output: "SimTensor",
        input: "SimTensor",
        rcounts: Optional[Sequence[int]] = None,
        displs: Optional[Sequence[int]] = None,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def all_to_allv(
        self,
        backend: str,
        output: "SimTensor",
        input: "SimTensor",
        scounts: Optional[Sequence[int]] = None,
        sdispls: Optional[Sequence[int]] = None,
        rcounts: Optional[Sequence[int]] = None,
        rdispls: Optional[Sequence[int]] = None,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def barrier(
        self, backend: Optional[str] = None, async_op: bool = False
    ) -> Optional["WorkHandle"]: ...

    # -- point-to-point ----------------------------------------------------

    def send(
        self,
        backend: str,
        tensor: "SimTensor",
        dst: int,
        tag: int = 0,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def recv(
        self,
        backend: str,
        tensor: "SimTensor",
        src: int,
        tag: int = 0,
        async_op: bool = False,
    ) -> Optional["WorkHandle"]: ...

    def isend(
        self, backend: str, tensor: "SimTensor", dst: int, tag: int = 0
    ) -> "WorkHandle": ...

    def irecv(
        self, backend: str, tensor: "SimTensor", src: int, tag: int = 0
    ) -> "WorkHandle": ...

    # -- extension hooks (stable contract for in-tree extensions) ----------
    #
    # ext/persistent: init-time capture + steady-state replay
    def _backend(self, name: str) -> "Backend": ...

    def _capture_collective(
        self, post: Callable, backend_name: str, *args, **kwargs
    ) -> tuple: ...

    def _plan_for_call(self, args: tuple, kwargs: dict) -> Any: ...

    def _collective(self, *args, **kwargs) -> Optional["WorkHandle"]: ...

    # ext/fusion (shared route table, stream-pressure probe, obs events),
    # backends/hierarchical (phase drain), adaptive (probation + symmetry)
    _shared: dict
    _outstanding: dict
    _obs: Any
    _quarantined: set
    _injector: Any
    _fault_counters: dict
    _tuning_table: Optional["TuningTable"]
    _comm_path: Any
    _phase_tag: str
    _hier_children: list

    def _quarantine(self, backend: "Backend", reason: str) -> None: ...

    def _unquarantine(self, backend: "Backend", reason: str) -> None: ...
