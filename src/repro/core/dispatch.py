"""Dispatch layer of the comm core: backend resolution, fault
quarantine/failover, and the compiled :class:`CommPlan` cache.

Steady-state dispatch runs through a compile-once plan cache
(:class:`CommPlan`): everything derivable from a call's signature alone
— resolved backend, interned labels, dispatch cost, codec arithmetic,
stream placement, tagged rendezvous meta — is snapshotted on first post
and re-used per call, the way MPI-4 persistent operations and pre-built
communication plans amortize per-call setup (paper §V-E).  A single
plan epoch, bumped on tuning-table installs, quarantines, and
codec/synchronization changes, keeps degraded-mode behavior and
simulated timings bit-identical to the uncached path.

Layering (``docs/INTERNALS.md`` §15): this module sits between the op
surface (:mod:`repro.core.comm`) and the execution spine
(:mod:`repro.core.rendezvous`).  It may import the execution layer but
never the op surface; :class:`DispatchLayer` is a mixin composed into
:class:`~repro.core.comm.MCRCommunicator`, whose ``__init__`` owns all
the state referenced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.backends.base import Backend, canonical_name
from repro.backends.ops import OpFamily
from repro.core.config import CompressionConfig
from repro.core.exceptions import BackendError
from repro.core.tuning import TuningTable


@dataclass(slots=True)
class CommPlan:
    """One compiled dispatch plan (paper §V-E persistent-op amortization).

    Snapshots everything the ``_collective`` spine can derive from the
    call signature alone, keyed per (requested backend, op family,
    rendezvous meta, nbytes, vector/force_host/compressible,
    timing-only) so a steady-state training step pays one dict lookup
    instead of re-deriving tuning choice, labels, codec arithmetic, and
    stream placement on every post.

    Validity is epoch-based: ``epoch`` must match the communicator's
    plan epoch (bumped on tuning-table installs, quarantines, and
    codec/synchronization changes), and plans compiled through the
    ``"auto"`` path additionally pin the tuning table's generation so
    in-place table edits (``add``/``merge``) recompile without an
    explicit reinstall.  Compilation itself never advances the virtual
    clock, so cached and uncached dispatch are byte-identical.
    """

    epoch: int
    #: tuning-table generation consulted at compile time; -1 when the
    #: plan did not go through the table (explicit backend, or no table)
    table_generation: int
    backend: Backend
    #: backend name after §V-F resolution but *before* the fault gate —
    #: the reference point for "reroute" dispatch attribution
    resolved_name: str
    label: str
    dispatch_reason: str
    #: dispatch attribution when the fault gate does not reroute
    dispatch_kind: str
    dispatch_cost_us: float
    codec: object
    wire_bytes: int
    codec_us: float
    stream_kind: bool
    #: rendezvous meta with the virtual/real data-plane tag appended
    meta_tagged: tuple


class DispatchLayer:
    """Mixin: decides *where* an operation runs and at what plan.

    Stateless by itself — every attribute it reads (``_plans``,
    ``_tuning_table``, ``_quarantined``, fault gates, ...) is
    initialized by :class:`~repro.core.comm.MCRCommunicator`.
    """

    # ------------------------------------------------------------------
    # dispatch plan cache (§V-E persistent-op amortization)
    # ------------------------------------------------------------------

    @property
    def tuning_table(self) -> Optional[TuningTable]:
        """The table consulted by ``"auto"`` dispatch (§V-F).

        Assigning a new table invalidates every compiled plan; in-place
        mutation of the installed table is caught per-lookup through the
        table's generation counter instead.
        """
        return self._tuning_table

    @tuning_table.setter
    def tuning_table(self, table: Optional[TuningTable]) -> None:
        self._tuning_table = table
        self.invalidate_plans("tuning-table install/swap")

    def invalidate_plans(self, reason: str = "") -> None:
        """Bump the plan epoch: every compiled plan recompiles on next use.

        Called automatically on tuning-table install/swap, backend
        quarantine, and codec/synchronization changes.  Call it manually
        after mutating state the communicator snapshots at construction
        or compile time — e.g. installing a link-degradation schedule on
        the SystemSpec mid-run — so the refreshed gates below take
        effect with the same invalidation discipline as the plans.
        """
        self._plan_epoch += 1
        self._plan_invalidations += 1
        self._plans.clear()
        self._link_faults = (
            getattr(self.ctx.system, "link_degradation", None) is not None
        )
        injector = self.ctx.shared.get("fault_injector")
        if injector is not None and not self._fault_gate:
            self._injector = injector
            self._fault_gate = True
            from repro.ext.logging_ext import CommLogger

            self._fault_log = CommLogger.shared(self.ctx)
        # hierarchical phase communicators snapshot the same state
        # (plans, fault gates); one epoch covers the whole family
        for child in self._hier_children:
            child.invalidate_plans(reason)

    def set_compression(self, compression: CompressionConfig) -> None:
        """Enable/disable/retune lossy compression mid-run (§V-E).

        Rebinds the codec and invalidates compiled plans so wire sizes
        and codec costs recompute; mutating ``config.compression`` in
        place would leave stale plans serving the old codec.
        """
        self.config.compression = compression
        self._codec = None
        if compression.enabled:
            from repro.ext.compression import FixedRateCodec

            self._codec = FixedRateCodec(compression.rate_bits)
        self.invalidate_plans("codec change")

    def set_synchronization(self, mode: str) -> None:
        """Switch the synchronization scheme mid-run (Fig. 4a vs 4b).

        Plan-invalidating: stream-vs-host placement is plan state.
        """
        self.config.synchronization = mode
        self.config.validate()
        self.invalidate_plans("synchronization change")

    @property
    def retuner(self):
        """This rank's :class:`repro.core.adaptive.AdaptiveRetuner`, or
        None when ``config.adaptive.enabled`` is off (the default)."""
        return self._retuner

    @property
    def plan_stats(self) -> dict:
        """Plan-cache effectiveness: hit/miss/invalidation counts, the
        number of resident plans, and the steady-state hit rate."""
        total = self._plan_hits + self._plan_misses
        return {
            "hits": self._plan_hits,
            "misses": self._plan_misses,
            "invalidations": self._plan_invalidations,
            "plans": len(self._plans),
            "hit_rate": self._plan_hits / total if total else 0.0,
        }

    # ------------------------------------------------------------------
    # backend resolution (§V-F)
    # ------------------------------------------------------------------

    def _backend(self, name: str) -> Backend:
        # the common case is a canonical name; only alias/odd-case misses
        # pay for normalization
        backend = self.backends.get(name)
        if backend is not None:
            return backend
        if name[:5].lower() == "hier:":
            # composite targets are dispatch spellings, not backends;
            # only the four decomposable collectives accept them
            raise BackendError(
                f"hierarchical target {name!r} is not valid for this "
                "operation; hier:* supports all_reduce, bcast, all_gather "
                "and all_to_all_single only"
            )
        canon = canonical_name(name)
        try:
            return self.backends[canon]
        except KeyError:
            raise BackendError(
                f"backend {name!r} not initialized on this communicator; "
                f"have {list(self.backends)}"
            ) from None

    def _resolve_backend(self, name: str, family: OpFamily, nbytes: int) -> Backend:
        """Resolve an explicit name or the ``"auto"`` tuned choice (§V-F)."""
        if name != "auto":
            return self._backend(name)
        choice = None
        if self.tuning_table is not None:
            choice = self.tuning_table.lookup(family.value, self.world_size, nbytes)
            if choice is not None:
                canon = canonical_name(choice)
                if canon not in self.backends or canon in self._quarantined:
                    choice = None  # tuned for a backend we did not init
                    # (or one quarantined by a permanent fault)
        if choice is None:
            choice = self.config.fallback_backend or next(iter(self.backends))
        return self._backend(choice)

    # -- hierarchical composite dispatch (hier:<intra>+<inter>) -----------

    def _hier(self):
        """The lazily built hierarchical executor (sub-groups derived
        from ``SystemSpec.node_of`` on first use, cached here)."""
        if self._hier_exec is None:
            from repro.backends.hierarchical import HierarchicalExecutor

            self._hier_exec = HierarchicalExecutor(self)
        return self._hier_exec

    def _table_has_hier(self, table: TuningTable) -> bool:
        """Whether the tuning table contains any ``hier:*`` entry, memoized
        per (table identity, generation) so hier-free auto dispatch pays
        one tuple compare."""
        probe = self._hier_table_probe
        ident, gen = id(table), table.generation
        if probe is not None and probe[0] == ident and probe[1] == gen:
            return probe[2]
        has = any(
            choice[:5].lower() == "hier:"
            for by_ws in table.entries.values()
            for by_msg in by_ws.values()
            for choice in by_msg.values()
        )
        self._hier_table_probe = (ident, gen, has)
        return has

    def _hier_target(self, name: str, family: OpFamily, nbytes: int):
        """Resolve one dispatch to a hierarchical spec, or None for flat.

        Explicit ``hier:*`` spellings must parse and have both
        constituents initialized (errors otherwise, mirroring unknown
        backend names).  ``"auto"`` consults the tuned table; a hier
        entry that cannot run here — malformed, missing constituent, or
        a constituent quarantined by a permanent fault — silently falls
        back to flat resolution, matching ``_resolve_backend``'s
        treatment of unavailable tuned choices.
        """
        if name[:5].lower() == "hier:":
            from repro.backends.hierarchical import parse_hier

            spec = parse_hier(name)
            for part in (spec.intra, spec.inter):
                if part not in self.backends:
                    raise BackendError(
                        f"hierarchical target {name!r} needs backend "
                        f"{part!r}, which is not initialized on this "
                        f"communicator; have {list(self.backends)}"
                    )
            return spec
        if name != "auto":
            return None
        table = self._tuning_table
        if table is None or not self._table_has_hier(table):
            return None
        choice = table.lookup(family.value, self.world_size, nbytes)
        if choice is None or choice[:5].lower() != "hier:":
            return None
        from repro.backends.hierarchical import parse_hier

        try:
            spec = parse_hier(choice)
        except BackendError:
            return None
        for part in (spec.intra, spec.inter):
            if part not in self.backends or part in self._quarantined:
                return None
        return spec

    # -- fault handling (retry / quarantine / failover) -------------------
    #
    # Every decision below is a deterministic function of per-scope op
    # counters, so in an SPMD program all ranks of a group make identical
    # choices and rendezvous keys stay matched even in degraded mode —
    # the deadlock-freedom claim of §V-D extended to failures:
    #
    # * collectives count per (communicator, backend); every group rank
    #   posts the same Nth collective, so transient retries and permanent
    #   quarantines happen at the same logical op everywhere;
    # * p2p counts per directed channel (backend, src, dst, tag); the
    #   matched sender and receiver observe equal indices.  p2p never
    #   triggers quarantine — third-party ranks could not observe it
    #   symmetrically — it reroutes the single op instead.

    def _record_fault(self, kind: str, backend_name: str, detail: str = "") -> None:
        if self._fault_log is not None:
            self._fault_log.log_event(
                kind, self.ctx.rank, backend_name, self.ctx.now, detail
            )

    def _quarantine(self, backend: Backend, reason: str) -> None:
        if backend.name in self._quarantined:
            return
        self._quarantined.add(backend.name)
        backend.fail(reason)
        # a quarantine changes dispatch for every subsequent op (auto
        # resolution skips the backend, explicit dispatch reroutes), so
        # compiled plans must recompute from the degraded state
        self.invalidate_plans(f"quarantine({backend.name})")
        self._record_fault("quarantine", backend.name, reason)
        if self._retuner is not None:
            # probation: the retuner re-probes the backend at matched op
            # indexes and un-quarantines symmetrically on success
            self._retuner.on_quarantine(backend.name)
        # a backend the parent declares dead must not keep serving
        # hierarchical phases; each phase communicator degrades (and
        # fails over) independently.  Child-local quarantines do NOT
        # propagate upward — a fault observed only inside one phase
        # group is handled by that group's own failover.
        for child in self._hier_children:
            child_backend = child.backends.get(backend.name)
            if child_backend is not None and backend.name not in child._quarantined:
                child._quarantine(child_backend, f"parent: {reason}")
        if len(self._quarantined) == len(self.backends):
            raise BackendError(
                f"all backends permanently failed: {sorted(self._quarantined)}"
            )

    def _unquarantine(self, backend: Backend, reason: str) -> None:
        """Symmetric inverse of :meth:`_quarantine` (probation path).

        Only the adaptive probation protocol calls this, at matched op
        indexes on every rank (same agree-at-op discipline as the
        quarantine itself), so the quarantine set stays symmetric.
        Hierarchical phase children whose quarantine was inherited from
        the parent recover with it; a child-local quarantine — a fault
        observed only inside one phase group — stays put, mirroring the
        asymmetry of the quarantine cascade.
        """
        if backend.name not in self._quarantined:
            return
        self._quarantined.discard(backend.name)
        backend.recover(reason)
        # recovery changes dispatch exactly like quarantine did: auto
        # resolution may pick the backend again, explicit dispatch stops
        # rerouting — compiled plans must recompute
        self.invalidate_plans(f"unquarantine({backend.name})")
        self._record_fault("unquarantine", backend.name, reason)
        for child in self._hier_children:
            child_backend = child.backends.get(backend.name)
            if (
                child_backend is not None
                and backend.name in child._quarantined
                and (child_backend.failure_reason or "").startswith("parent: ")
            ):
                child._unquarantine(child_backend, f"parent: {reason}")

    def _failover_target(
        self, family: OpFamily, nbytes: int, exclude: frozenset = frozenset()
    ) -> Backend:
        """Deterministic survivor choice: tuning table, then the
        configured fallback, then init order (§V-F dispatch, restricted
        to live backends)."""
        survivors = [
            n
            for n in self.backends
            if n not in self._quarantined and n not in exclude
        ]
        if not survivors:
            raise BackendError(
                f"no surviving backend for {family.value}: "
                f"quarantined {sorted(self._quarantined)}"
            )
        choice = None
        if self.tuning_table is not None:
            tuned = self.tuning_table.lookup(family.value, self.world_size, nbytes)
            if tuned is not None and canonical_name(tuned) in survivors:
                choice = canonical_name(tuned)
        if choice is None:
            fb = self.config.fallback_backend
            if fb is not None and canonical_name(fb) in survivors:
                choice = canonical_name(fb)
        if choice is None:
            choice = survivors[0]
        return self.backends[choice]

    def _admit_backend(
        self,
        backend: Backend,
        family: OpFamily,
        nbytes: int,
        p2p_channel: Optional[tuple] = None,
    ) -> Backend:
        """Fault gate for one dispatch: consult the injector, retry
        transient faults with exponential backoff, quarantine and fail
        over on permanent ones.  Returns the backend that actually runs
        the operation."""
        inj = self._injector
        ctx = self.ctx
        cfg = self.config
        hops = 0
        while True:
            if backend.name in self._quarantined:
                old = backend.name
                backend = self._failover_target(family, nbytes)
                self._record_fault("failover", old, f"-> {backend.name}")
                continue
            if inj is None:
                return backend
            if hops > 3 * len(self.backends):  # pragma: no cover - safety valve
                raise BackendError(
                    f"fault failover did not converge for {family.value}"
                )
            scope = (
                ("p2p", backend.name, *p2p_channel)
                if p2p_channel is not None
                else ("coll", backend.name)
            )
            idx = self._fault_counters.get(scope, 0) + 1
            self._fault_counters[scope] = idx
            fault = inj.backend_fault(
                self.comm_id, backend.name, idx, p2p=p2p_channel is not None,
                rank=ctx.rank, now=ctx.now,
            )
            if fault is None:
                return backend
            if fault.kind == "transient":
                attempts = min(fault.fail_attempts, cfg.comm_max_retries)
                for attempt in range(attempts):
                    self._record_fault(
                        "retry",
                        backend.name,
                        f"op {idx} attempt {attempt + 1}/{cfg.comm_max_retries}",
                    )
                    ctx.sleep(
                        cfg.retry_backoff_us * (2.0 ** attempt),
                        reason=f"retry({backend.name})",
                    )
                if fault.fail_attempts <= cfg.comm_max_retries:
                    return backend  # cleared within the retry budget
                if p2p_channel is None:
                    # a collective that cannot clear its transient fault
                    # within the retry budget is treated as a permanent
                    # library failure (symmetric: same decision everywhere)
                    self._quarantine(
                        backend, f"transient fault persisted past {attempts} retries"
                    )
                    continue
                # p2p: reroute this one op, no global quarantine
                old = backend.name
                backend = self._failover_target(
                    family, nbytes, exclude=frozenset((backend.name,))
                )
                self._record_fault("failover", old, f"-> {backend.name} (p2p reroute)")
                hops += 1
                continue
            # permanent
            self._quarantine(backend, f"permanent fault at op {idx}")
            # loop re-enters the quarantined branch and fails over

    # -- plan compilation --------------------------------------------------

    def _op_label(self, op, backend_name: str) -> tuple[str, str]:
        """Cached ``(label, dispatch reason)`` for one (op, backend) pair."""
        key = (op, backend_name)
        cached = self._op_labels.get(key)
        if cached is None:
            label = f"{op}:{backend_name}"
            if self._phase_tag:
                # phase communicators mark their intervals so chrome
                # traces show the intra/inter segments of a composite
                label = f"{label}@{self._phase_tag}"
            cached = self._op_labels[key] = (label, f"dispatch({label})")
        return cached

    def _dispatch_cost(self, backend: Backend) -> float:
        return self.config.dispatch_overhead_us + backend.call_overhead_us()

    def _plan_valid(self, plan: CommPlan) -> bool:
        if plan.epoch != self._plan_epoch:
            return False  # pragma: no cover - epoch bumps clear the dict
        if plan.table_generation >= 0:
            table = self._tuning_table
            if table is None or table.generation != plan.table_generation:
                self._plan_invalidations += 1
                return False
        return True

    def _compile_plan(
        self,
        backend_name: str,
        family: OpFamily,
        nbytes: int,
        meta: tuple,
        vector: bool,
        force_host: bool,
        compressible: bool,
        timing_only: bool,
    ) -> CommPlan:
        """Derive one dispatch plan from a call signature.

        Pure with respect to simulated time — resolution, label
        interning, codec arithmetic, and stream placement never advance
        the clock — and arithmetic-identical to the historical per-call
        derivation, so cached and uncached dispatch cannot diverge.
        """
        backend = self._resolve_backend(backend_name, family, nbytes)
        label, dispatch_reason = self._op_label(family, backend.name)
        # compression (§V-E): shrink the wire size, model codec kernels,
        # and apply the real quantization error to the data
        codec = None
        wire_bytes = nbytes
        codec_us = 0.0
        if (
            self._codec is not None
            and compressible
            and family.value in self.config.compression.families
        ):
            codec = self._codec
            wire_bytes = codec.compressed_nbytes(nbytes)
            codec_us = codec.codec_time_us(nbytes)
        stream_kind = self.sync.uses_streams(backend) and not force_host
        if self.config.synchronization == "naive":
            stream_kind = not force_host  # posted to the default stream
        table_generation = -1
        if backend_name == "auto" and self._tuning_table is not None:
            table_generation = self._tuning_table.generation
        return CommPlan(
            epoch=self._plan_epoch,
            table_generation=table_generation,
            backend=backend,
            resolved_name=backend.name,
            label=label,
            dispatch_reason=dispatch_reason,
            dispatch_kind="auto" if backend_name == "auto" else "explicit",
            dispatch_cost_us=self._dispatch_cost(backend),
            codec=codec,
            wire_bytes=wire_bytes,
            codec_us=codec_us,
            stream_kind=stream_kind,
            meta_tagged=(*meta, "virtual" if timing_only else "real"),
        )

    # -- persistent collectives (ext.persistent, §V-E) ---------------------

    def _capture_collective(self, post, backend_name: str, *args, **kwargs) -> tuple:
        """Init-time negotiation for a persistent collective: run the
        public op with ``_collective`` intercepted so argument validation
        happens once and the exact dispatch invocation is captured for
        replay.  Nothing is posted and the clock does not move."""
        captured: dict = {}

        def recorder(*a, **kw):
            captured["args"] = a
            captured["kwargs"] = kw
            return None

        self._collective = recorder  # shadow the bound method
        retuner = self._retuner
        was_quiet = retuner.quiet if retuner is not None else False
        if retuner is not None:
            # capture posts nothing and must not count as an adaptive op
            retuner.quiet = True
        try:
            post(backend_name, *args, async_op=True, **kwargs)
        finally:
            del self._collective
            if retuner is not None:
                retuner.quiet = was_quiet
        return captured["args"], captured["kwargs"]

    def _plan_for_call(self, args: tuple, kwargs: dict) -> CommPlan:
        """Compile (or fetch) the plan for a captured ``_collective``
        invocation — the pin a :class:`~repro.ext.persistent.
        PersistentCollective` holds."""
        backend_name, family, nbytes = args[0], args[1], args[2]
        meta = kwargs["meta"]
        vector = kwargs.get("vector", False)
        force_host = kwargs.get("force_host", False)
        compressible = kwargs.get("compressible", True)
        timing_only = any(
            t is not None and t.is_virtual for t in kwargs.get("tensors", ())
        )
        if not self._plan_cache_on:
            return self._compile_plan(
                backend_name, family, nbytes, meta,
                vector, force_host, compressible, timing_only,
            )
        pkey = (
            backend_name, family, meta, nbytes,
            vector, force_host, compressible, timing_only,
        )
        plan = self._plans.get(pkey)
        if plan is None or not self._plan_valid(plan):
            plan = self._compile_plan(
                backend_name, family, nbytes, meta,
                vector, force_host, compressible, timing_only,
            )
            self._plans[pkey] = plan
        return plan

    def _flush_plan_stats(self) -> None:
        """Report plan-cache effectiveness to the observability registry
        as aggregated events — one ``kind="plan"`` ObsEvent per outcome
        with the count carried in ``nbytes``, mirroring the sweep-cache
        reporting convention (zero events on the per-op hot path)."""
        obs = self._obs
        if obs is None:
            return
        from repro.obs.metrics import ObsEvent

        now = self.ctx.now
        for detail, count in (
            ("hit", self._plan_hits),
            ("miss", self._plan_misses),
            ("invalidate", self._plan_invalidations),
        ):
            if count:
                obs.observe(
                    ObsEvent(
                        kind="plan",
                        rank=self.ctx.rank,
                        stream="host",
                        backend="",
                        family="dispatch_plan",
                        nbytes=count,
                        step=-1,
                        start=now,
                        end=now,
                        detail=detail,
                    )
                )
