"""Per-backend communication-stream pools and synchronization strategy.

MCR-DL creates a pool of communication streams for *each* backend
(paper §V-C): multiple streams let small-message operations run
concurrently, while each backend owning its own streams is what enables
overlap *across* backends (§V-D).  Host-synchronized MPI backends are
handled according to the configured stream mode:

* ``mpi-managed`` — MPI owns its streams; MCR-DL synchronizes the
  default stream on the host before posting (safe, less overlap);
* ``mcr-managed`` — MCR-DL intercepts stream creation and runs MPI
  traffic on its own comm streams (full overlap, invalid if the MPI
  build uses internal multi-stream logic).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.backends.base import Backend
from repro.core.config import MCRConfig
from repro.core.exceptions import ConfigurationError
from repro.sim.streams import Stream

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import RankContext


class StreamPool:
    """Round-robin pool of communication streams for one backend."""

    def __init__(self, ctx: "RankContext", backend_name: str, size: int, large_threshold: int):
        self.ctx = ctx
        self.backend_name = backend_name
        self.streams = [
            ctx.stream(f"{backend_name}:comm{i}") for i in range(size)
        ]
        self.large_threshold = large_threshold
        self._next = 0

    def pick(self, nbytes: int) -> Stream:
        """Stream selection policy from §V-C: concurrent streams for
        small messages, a single stream for bandwidth-bound large ones."""
        if nbytes >= self.large_threshold:
            return self.streams[0]
        stream = self.streams[self._next % len(self.streams)]
        self._next += 1
        return stream

    def synchronize(self) -> None:
        for stream in self.streams:
            stream.synchronize()


class SyncManager:
    """Owns every backend's stream pool and the global sync policy."""

    def __init__(self, ctx: "RankContext", backends: dict[str, Backend], config: MCRConfig):
        self.ctx = ctx
        self.config = config
        self.pools: dict[str, StreamPool] = {}
        for name, backend in backends.items():
            if self._uses_mcr_streams(backend):
                self.pools[name] = StreamPool(
                    ctx, name, config.streams_per_backend, config.large_message_threshold
                )
        if (
            config.mpi_stream_mode == "mcr-managed"
            and config.mpi_internal_multistream
            and any(not b.properties.stream_aware for b in backends.values())
        ):
            raise ConfigurationError(
                "mcr-managed stream interception is unsafe for an MPI build "
                "with internal multi-stream logic (paper §V-D); use "
                "mpi_stream_mode='mpi-managed'"
            )

    def _uses_mcr_streams(self, backend: Backend) -> bool:
        """Whether this backend's traffic rides MCR-managed comm streams."""
        if backend.properties.stream_aware:
            return True
        return (
            self.config.mpi_stream_mode == "mcr-managed"
            and backend.properties.cuda_aware
        )

    def uses_streams(self, backend: Backend) -> bool:
        return backend.name in self.pools

    def pool(self, backend_name: str) -> StreamPool:
        return self.pools[backend_name]

    def pick_stream(self, backend: Backend, nbytes: int) -> Stream:
        if self.config.synchronization == "naive":
            # naive scheme (Fig. 4a): everything on the default stream
            return self.ctx.gpu.default_stream
        return self.pools[backend.name].pick(nbytes)

    def pre_post(self, backend: Backend) -> None:
        """Host-side synchronization required *before* posting an op.

        For non-stream-aware MPI under ``mpi-managed``, CUDA-aware MPI
        gives no stream-ordering guarantees, so MCR-DL synchronizes the
        default stream first — the safety/overlap trade-off of §V-D
        option 1.
        """
        if self.config.synchronization == "naive":
            self.ctx.gpu.default_stream.synchronize()
            return
        if not backend.properties.stream_aware and backend.name not in self.pools:
            self.ctx.gpu.default_stream.synchronize()

    def synchronize_backend(self, backend: Backend) -> None:
        """The per-backend piece of ``mcr_dl.synchronize()`` (§V-D): loop
        over each backend and apply its native synchronization."""
        if backend.name in self.pools:
            self.pools[backend.name].synchronize()
        # host-synchronized backends complete at their wait()s; any
        # outstanding requests are tracked and drained by the communicator.

    def least_busy_backend(
        self, names: list[str], outstanding: Optional[dict] = None
    ) -> str:
        """Pick the backend whose pending work is least loaded — used by
        the tensor-fusion timeout flush (§V-E) to overlap across
        backends' fusion buffers.

        Stream-pool backends are measured by their streams' remaining
        tail time.  Host-synchronized backends have no pool; their load
        comes from the communicator's ``outstanding`` handle lists (the
        un-waited ``MPI_Request``s) — without that term they would always
        report 0.0 and soak up every flush.
        """
        now = self.ctx.now

        def load(name: str) -> float:
            total = 0.0
            pool = self.pools.get(name)
            if pool is not None:
                for stream in pool.streams:
                    node = stream.last
                    if node is not None and node.resolved:
                        total += max(0.0, node.end - now)
                    elif node is not None:
                        total += 1e9  # unresolved: effectively busy
            elif outstanding:
                for handle in outstanding.get(name, ()):
                    ready = handle.flag.ready_time
                    if ready is None:
                        total += 1e9  # pending request, completion unknown
                    else:
                        total += max(0.0, ready - now)
            return total

        return min(names, key=load)
