"""MCR-DL error types."""

from __future__ import annotations


class MCRError(RuntimeError):
    """Base class for MCR-DL runtime errors."""


class BackendError(MCRError):
    """Backend missing, not initialized, or incompatible."""


class ValidationError(MCRError):
    """Cross-rank argument mismatch detected at a rendezvous.

    MCR-DL validates that every participant posted the same operation
    with compatible sizes — the "data validation issues" the paper's
    synchronization design promises to take off the programmer's plate
    (§V-C).
    """


class CommTimeoutError(MCRError):
    """A communication operation exceeded its configured deadline
    (``MCRConfig.op_deadline_us``).

    Carries per-rank diagnostics: which rank timed out, on which
    operation, and — when known — which peers had (not) arrived at the
    rendezvous, so a hung collective points at the culprit instead of
    surfacing as a generic deadlock.
    """

    def __init__(
        self,
        message: str,
        *,
        label: str = "",
        rank: int = -1,
        deadline_us: float = 0.0,
        detail: str = "",
    ):
        super().__init__(message)
        self.label = label
        self.rank = rank
        self.deadline_us = deadline_us
        self.detail = detail


class TuningError(MCRError):
    """Tuning-table lookup or construction failure."""


class ConfigurationError(MCRError):
    """Invalid MCR-DL configuration (e.g. intercepting streams of an MPI
    library that uses internal multi-stream logic, §V-D option 2)."""
