"""MCR-DL error types."""

from __future__ import annotations


class MCRError(RuntimeError):
    """Base class for MCR-DL runtime errors."""


class BackendError(MCRError):
    """Backend missing, not initialized, or incompatible."""


class ValidationError(MCRError):
    """Cross-rank argument mismatch detected at a rendezvous.

    MCR-DL validates that every participant posted the same operation
    with compatible sizes — the "data validation issues" the paper's
    synchronization design promises to take off the programmer's plate
    (§V-C).
    """


class TuningError(MCRError):
    """Tuning-table lookup or construction failure."""


class ConfigurationError(MCRError):
    """Invalid MCR-DL configuration (e.g. intercepting streams of an MPI
    library that uses internal multi-stream logic, §V-D option 2)."""
