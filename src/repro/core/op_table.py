"""The collective op table: one :class:`CollectiveSpec` row per public
collective of the paper's Listing 1.

Part of the op-surface layer (``docs/INTERNALS.md`` §15), split out of
:mod:`repro.core.comm` so the declarative table — op family, argument
validation/meta builder (``prepare``), datapath mover, hierarchical
capability, and the ``force_host``/``compressible``/``vector`` flags —
reads as data.  Adding an op family is one ``prepare`` builder plus one
table row here; the shared pre-dispatch hook chain and every dispatch/
execution feature (plan cache, fault failover, adaptive accounting)
apply automatically.

Layering: this module may import the execution layer (for the
:class:`~repro.core.rendezvous.Arrival` type the movers receive) but
never :mod:`repro.core.comm` or :mod:`repro.core.dispatch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.backends import datapath
from repro.backends.ops import OpFamily, ReduceOp
from repro.core.exceptions import ValidationError
from repro.core.rendezvous import Arrival
from repro.tensor import SimTensor

@dataclass(slots=True)
class _Prepared:
    """One validated collective call, ready for the dispatch layer:
    everything a :class:`CollectiveSpec`'s ``prepare`` derives from the
    public arguments."""

    nbytes: int
    inputs: list[np.ndarray]
    outputs: list[np.ndarray]
    move: Callable[[list[Arrival]], None]
    meta: tuple
    tensors: tuple = ()
    extras: Optional[dict] = None


@dataclass(frozen=True)
class CollectiveSpec:
    """Declarative description of one public collective.

    Adding an op family is one table row plus a ``prepare`` builder —
    validation, meta layout, and the datapath mover in one place — and
    the shared pre-dispatch hook chain applies automatically; no other
    layer changes.
    """

    name: str
    family: OpFamily
    #: ``prepare(comm, *args) -> _Prepared``: validate the public
    #: arguments and build buffers, rendezvous meta, and the mover
    prepare: Callable[..., _Prepared]
    #: method name on the HierarchicalExecutor when the family is
    #: hierarchically decomposable (hier:<intra>+<inter>); None = flat only
    hier_op: Optional[str] = None
    compressible: bool = True
    force_host: bool = False
    vector: bool = False


# ---------------------------------------------------------------------------
# per-op prepare builders (validation + meta + datapath mover)
# ---------------------------------------------------------------------------


def _prep_all_reduce(comm, tensor: SimTensor, op: ReduceOp) -> _Prepared:
    buf = comm._flat(tensor)

    def move(arrivals: list[Arrival]) -> None:
        datapath.all_reduce([a.inputs[0] for a in arrivals], [a.outputs[0] for a in arrivals], op)

    return _Prepared(
        tensor.nbytes(), [buf], [buf], move,
        meta=("allreduce", tensor.numel(), tensor.dtype.name, op.value),
        tensors=(tensor,),
    )


def _prep_reduce(comm, tensor: SimTensor, root: int, op: ReduceOp) -> _Prepared:
    comm._check_root(root)
    buf = comm._flat(tensor)

    def move(arrivals: list[Arrival]) -> None:
        datapath.reduce([a.inputs[0] for a in arrivals], arrivals[root].outputs[0], op)

    return _Prepared(
        tensor.nbytes(), [buf], [buf], move,
        meta=("reduce", tensor.numel(), tensor.dtype.name, op.value, root),
        tensors=(tensor,),
    )


def _prep_bcast(comm, tensor: SimTensor, root: int) -> _Prepared:
    comm._check_root(root)
    buf = comm._flat(tensor)

    def move(arrivals: list[Arrival]) -> None:
        datapath.broadcast(arrivals[root].inputs[0], [a.outputs[0] for a in arrivals])

    return _Prepared(
        tensor.nbytes(), [buf], [buf], move,
        meta=("bcast", tensor.numel(), tensor.dtype.name, root),
        tensors=(tensor,),
    )


def _prep_all_gather(comm, output: SimTensor, input: SimTensor) -> _Prepared:
    in_buf, out_buf = comm._flat(input), comm._flat(output)
    if output.numel() != input.numel() * comm.world_size:
        raise ValidationError(
            f"all_gather: output numel {output.numel()} != "
            f"{comm.world_size} * {input.numel()}"
        )

    def move(arrivals: list[Arrival]) -> None:
        datapath.all_gather([a.inputs[0] for a in arrivals], [a.outputs[0] for a in arrivals])

    return _Prepared(
        input.nbytes(), [in_buf], [out_buf], move,
        meta=("all_gather", input.numel(), input.dtype.name),
        tensors=(input, output),
    )


def _prep_reduce_scatter(
    comm, output: SimTensor, input: SimTensor, op: ReduceOp
) -> _Prepared:
    in_buf, out_buf = comm._flat(input), comm._flat(output)
    if input.numel() != output.numel() * comm.world_size:
        raise ValidationError(
            f"reduce_scatter: input numel {input.numel()} != "
            f"{comm.world_size} * {output.numel()}"
        )

    def move(arrivals: list[Arrival]) -> None:
        datapath.reduce_scatter(
            [a.inputs[0] for a in arrivals], [a.outputs[0] for a in arrivals], op
        )

    return _Prepared(
        input.nbytes(), [in_buf], [out_buf], move,
        meta=("reduce_scatter", input.numel(), input.dtype.name, op.value),
        tensors=(input, output),
    )


def _prep_all_to_all_single(comm, output: SimTensor, input: SimTensor) -> _Prepared:
    in_buf, out_buf = comm._flat(input), comm._flat(output)
    if input.numel() != output.numel():
        raise ValidationError("all_to_all_single: input/output numel differ")
    if input.numel() % comm.world_size != 0:
        raise ValidationError(
            f"all_to_all_single: numel {input.numel()} not divisible by "
            f"world size {comm.world_size}"
        )

    def move(arrivals: list[Arrival]) -> None:
        datapath.all_to_all_single(
            [a.inputs[0] for a in arrivals], [a.outputs[0] for a in arrivals]
        )

    return _Prepared(
        input.nbytes(), [in_buf], [out_buf], move,
        meta=("all_to_all_single", input.numel(), input.dtype.name),
        tensors=(input, output),
    )


def _prep_all_to_all(
    comm, output: Sequence[SimTensor], input: Sequence[SimTensor]
) -> _Prepared:
    if len(input) != comm.world_size or len(output) != comm.world_size:
        raise ValidationError(
            f"all_to_all: need {comm.world_size} tensors per list, got "
            f"{len(input)}/{len(output)}"
        )
    in_bufs = [comm._flat(t) for t in input]
    out_bufs = [comm._flat(t) for t in output]
    nbytes = sum(t.nbytes() for t in input)

    def move(arrivals: list[Arrival]) -> None:
        p = len(arrivals)
        for i in range(p):
            for j in range(p):
                src = arrivals[i].inputs[j]
                dst = arrivals[j].outputs[i]
                if src.size != dst.size:
                    raise ValidationError(
                        f"all_to_all: rank {i}->rank {j} size mismatch "
                        f"({src.size} vs {dst.size})"
                    )
        staged = [[np.array(b, copy=True) for b in a.inputs] for a in arrivals]
        for i in range(p):
            for j in range(p):
                arrivals[j].outputs[i][:] = staged[i][j]

    return _Prepared(
        nbytes, in_bufs, out_bufs, move,
        meta=("all_to_all", comm.world_size),
        tensors=(*input, *output),
    )


def _prep_gather(
    comm, input: SimTensor, output: Optional[SimTensor], root: int
) -> _Prepared:
    comm._check_root(root)
    in_buf = comm._flat(input)
    out_bufs = []
    if comm.rank == root:
        if output is None:
            raise ValidationError("gather: root must pass an output tensor")
        if output.numel() != input.numel() * comm.world_size:
            raise ValidationError("gather: root output numel mismatch")
        out_bufs = [comm._flat(output)]

    def move(arrivals: list[Arrival]) -> None:
        datapath.gather([a.inputs[0] for a in arrivals], arrivals[root].outputs[0])

    return _Prepared(
        input.nbytes(), [in_buf], out_bufs, move,
        meta=("gather", input.numel(), input.dtype.name, root),
        tensors=(input, output),
    )


def _prep_scatter(
    comm, output: SimTensor, input: Optional[SimTensor], root: int
) -> _Prepared:
    comm._check_root(root)
    out_buf = comm._flat(output)
    in_bufs = []
    if comm.rank == root:
        if input is None:
            raise ValidationError("scatter: root must pass an input tensor")
        if input.numel() != output.numel() * comm.world_size:
            raise ValidationError("scatter: root input numel mismatch")
        in_bufs = [comm._flat(input)]

    def move(arrivals: list[Arrival]) -> None:
        datapath.scatter(arrivals[root].inputs[0], [a.outputs[0] for a in arrivals])

    return _Prepared(
        output.nbytes(), in_bufs, [out_buf], move,
        meta=("scatter", output.numel(), output.dtype.name, root),
        tensors=(input, output),
    )


def _prep_gatherv(
    comm,
    input: SimTensor,
    output: Optional[SimTensor],
    rcounts: Optional[Sequence[int]],
    displs: Optional[Sequence[int]],
    root: int,
) -> _Prepared:
    comm._check_root(root)
    rcounts, displs = comm._check_v_args(rcounts, displs)
    in_buf = comm._flat(input)
    if input.numel() < rcounts[comm.rank]:
        raise ValidationError(
            f"gatherv: rank {comm.rank} input smaller than rcount"
        )
    out_bufs = []
    if comm.rank == root:
        if output is None:
            raise ValidationError("gatherv: root must pass an output tensor")
        out_bufs = [comm._flat(output)]

    def move(arrivals: list[Arrival]) -> None:
        datapath.gather_v(
            [a.inputs[0] for a in arrivals], arrivals[root].outputs[0], rcounts, displs
        )

    return _Prepared(
        max(rcounts) * input.element_size(), [in_buf], out_bufs, move,
        meta=("gatherv", tuple(rcounts), tuple(displs), input.dtype.name, root),
        tensors=(input, output),
    )


def _prep_scatterv(
    comm,
    output: SimTensor,
    input: Optional[SimTensor],
    scounts: Optional[Sequence[int]],
    displs: Optional[Sequence[int]],
    root: int,
) -> _Prepared:
    comm._check_root(root)
    scounts, displs = comm._check_v_args(scounts, displs)
    out_buf = comm._flat(output)
    if output.numel() < scounts[comm.rank]:
        raise ValidationError(
            f"scatterv: rank {comm.rank} output smaller than scount"
        )
    in_bufs = []
    if comm.rank == root:
        if input is None:
            raise ValidationError("scatterv: root must pass an input tensor")
        in_bufs = [comm._flat(input)]

    def move(arrivals: list[Arrival]) -> None:
        datapath.scatter_v(
            arrivals[root].inputs[0], [a.outputs[0] for a in arrivals], scounts, displs
        )

    return _Prepared(
        max(scounts) * output.element_size(), in_bufs, [out_buf], move,
        meta=("scatterv", tuple(scounts), tuple(displs), output.dtype.name, root),
        tensors=(input, output),
    )


def _prep_all_gatherv(
    comm,
    output: SimTensor,
    input: SimTensor,
    rcounts: Optional[Sequence[int]],
    displs: Optional[Sequence[int]],
) -> _Prepared:
    rcounts, displs = comm._check_v_args(rcounts, displs)
    in_buf, out_buf = comm._flat(input), comm._flat(output)

    def move(arrivals: list[Arrival]) -> None:
        datapath.all_gather_v(
            [a.inputs[0] for a in arrivals],
            [a.outputs[0] for a in arrivals],
            rcounts,
            displs,
        )

    return _Prepared(
        max(rcounts) * input.element_size(), [in_buf], [out_buf], move,
        meta=("all_gatherv", tuple(rcounts), tuple(displs), input.dtype.name),
        tensors=(input, output),
    )


def _prep_all_to_allv(
    comm,
    output: SimTensor,
    input: SimTensor,
    scounts: Optional[Sequence[int]],
    sdispls: Optional[Sequence[int]],
    rcounts: Optional[Sequence[int]],
    rdispls: Optional[Sequence[int]],
) -> _Prepared:
    scounts, sdispls = comm._check_v_args(scounts, sdispls)
    rcounts, rdispls = comm._check_v_args(rcounts, rdispls)
    in_buf, out_buf = comm._flat(input), comm._flat(output)

    def move(arrivals: list[Arrival]) -> None:
        datapath.all_to_all_v(
            [a.inputs[0] for a in arrivals],
            [a.outputs[0] for a in arrivals],
            [a.extras["scounts"] for a in arrivals],
            [a.extras["sdispls"] for a in arrivals],
            [a.extras["rcounts"] for a in arrivals],
            [a.extras["rdispls"] for a in arrivals],
        )

    return _Prepared(
        sum(scounts) * input.element_size(), [in_buf], [out_buf], move,
        meta=("all_to_allv", comm.world_size, input.dtype.name),
        tensors=(input, output),
        extras={
            "scounts": list(scounts),
            "sdispls": list(sdispls),
            "rcounts": list(rcounts),
            "rdispls": list(rdispls),
            "_elem_size": input.element_size(),
        },
    )


def _prep_barrier(comm) -> _Prepared:
    def move(arrivals: list[Arrival]) -> None:
        pass

    return _Prepared(0, [], [], move, meta=("barrier",))


# ---------------------------------------------------------------------------
# the op table (one row per public collective)
# ---------------------------------------------------------------------------

_ALL_REDUCE = CollectiveSpec(
    "all_reduce", OpFamily.ALLREDUCE, _prep_all_reduce, hier_op="all_reduce"
)
_REDUCE = CollectiveSpec("reduce", OpFamily.REDUCE, _prep_reduce)
_BCAST = CollectiveSpec(
    "bcast", OpFamily.BROADCAST, _prep_bcast, hier_op="bcast", compressible=False
)
_ALL_GATHER = CollectiveSpec(
    "all_gather", OpFamily.ALLGATHER, _prep_all_gather,
    hier_op="all_gather", compressible=False,
)
_REDUCE_SCATTER = CollectiveSpec(
    "reduce_scatter", OpFamily.REDUCE_SCATTER, _prep_reduce_scatter
)
_ALL_TO_ALL_SINGLE = CollectiveSpec(
    "all_to_all_single", OpFamily.ALLTOALL, _prep_all_to_all_single,
    hier_op="all_to_all_single", compressible=False,
)
_ALL_TO_ALL = CollectiveSpec(
    "all_to_all", OpFamily.ALLTOALL, _prep_all_to_all, compressible=False
)
_GATHER = CollectiveSpec("gather", OpFamily.GATHER, _prep_gather, compressible=False)
_SCATTER = CollectiveSpec(
    "scatter", OpFamily.SCATTER, _prep_scatter, compressible=False
)
_GATHERV = CollectiveSpec(
    "gatherv", OpFamily.GATHER, _prep_gatherv, compressible=False, vector=True
)
_SCATTERV = CollectiveSpec(
    "scatterv", OpFamily.SCATTER, _prep_scatterv, compressible=False, vector=True
)
_ALL_GATHERV = CollectiveSpec(
    "all_gatherv", OpFamily.ALLGATHER, _prep_all_gatherv,
    compressible=False, vector=True,
)
_ALL_TO_ALLV = CollectiveSpec(
    "all_to_allv", OpFamily.ALLTOALL, _prep_all_to_allv,
    compressible=False, vector=True,
)
_BARRIER = CollectiveSpec(
    "barrier", OpFamily.BARRIER, _prep_barrier, compressible=False, force_host=True
)
