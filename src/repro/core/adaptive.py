"""Online adaptive dispatch: feedback-driven retuning with backend
probation.

The offline tuner (§V-F) freezes one table from a one-time sweep; when
link quality drifts mid-run, or a quarantined backend recovers, "auto"
dispatch keeps serving stale choices forever.  This module closes the
loop: an :class:`AdaptiveRetuner` per top-level communicator watches
*completed* collective timings (EMA + log2 histogram per
``(op, world size, message bucket, backend)`` cell), detects drift
against the analytic cost-model expectation, re-tunes the cell through
bounded epsilon-greedy exploration, and commits the winner with an
in-place :meth:`~repro.core.tuning.TuningTable.add` — the table's
generation counter then recompiles only the affected "auto" dispatch
plans (see the plan cache, INTERNALS §12).  A probation path
periodically re-probes quarantined backends and symmetrically
un-quarantines on success.

SPMD symmetry (why this module is shaped the way it is)
-------------------------------------------------------

Every rank runs its own retuner, and any state that influences dispatch
must evolve identically on all ranks or rendezvous keys diverge and the
job deadlocks.  Two execution domains keep that invariant:

* the **post domain**: :meth:`AdaptiveRetuner.before_op` runs once per
  posted collective, at the same per-communicator op index on every
  rank (the same agree-at-op discipline as fault quarantine).  Table
  edits and probation probes apply here, so every rank's table is
  identical whenever the same logical op resolves.
* the **completion domain**: observations ride rendezvous completion
  flags, whose callbacks all run at one global instant with one shared
  duration — every rank ingests an *identical* observation stream and
  reaches identical decisions.  A decision made here cannot touch the
  table directly (ranks may have raced ahead posting ops), so its edit
  is deferred to effect index ``max_posted + 1``, a shared high-water
  mark no rank has reached yet; all ranks apply it in ``before_op``
  before posting that op.

Completion-domain code must never read per-rank post-domain state (op
counters, the live table, ``_quarantined``) — only shared single-copy
values (``max_posted``, the shared quarantine mirror) are safe, because
all callbacks at one fire instant read the same object.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.backends.ops import OpFamily
from repro.core.tuning import message_bucket
from repro.obs.metrics import LogHistogram, ObsEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocols import CommCore

#: action names mirrored into ``tuning.adapt.{name}`` counters
ACTIONS = ("drift", "explore", "retune", "probation")


@dataclass
class _Cell:
    """Per-(op family, message bucket) adaptive state on one rank.

    The communicator's group size is fixed, so the world-size coordinate
    of the paper's table key is implicit.  All fields live in the
    completion domain except nothing — cells are only touched from
    :meth:`AdaptiveRetuner.on_complete`.
    """

    family: OpFamily
    bucket: int
    #: "steady" | "explore" | "cooldown"
    mode: str = "steady"
    #: the backend this cell believes is serving "auto" dispatch,
    #: tracked purely from the completion stream (reading the live
    #: table here would break symmetry)
    current: Optional[str] = None
    #: completed ops observed for this cell (any backend)
    completions: int = 0
    #: trial completions already attributed to epsilon probes
    trials_seen: int = 0
    ema: dict = field(default_factory=dict)
    count: dict = field(default_factory=dict)
    hist: dict = field(default_factory=dict)
    #: pure analytic expectation per backend (cached)
    analytic: dict = field(default_factory=dict)
    #: drift reference per backend: starts analytic, reset to the
    #: observed EMA at each retune commit so a uniformly degraded
    #: fabric does not trigger endless re-exploration
    baseline: dict = field(default_factory=dict)
    #: sweep bookkeeping: samples still owed per flat candidate
    explore_remaining: dict = field(default_factory=dict)
    #: hier:* candidates of the running sweep (scored analytically)
    explore_hier: list = field(default_factory=list)
    #: completion count at which a stalled sweep force-commits
    explore_deadline: int = 0
    #: completion count at which cooldown re-arms the drift detector
    cooldown_until: int = 0


class AdaptiveRetuner:
    """One per rank per top-level communicator (``adaptive.enabled``).

    The owning communicator clones its tuning table at construction so
    in-place retuning edits stay rank-private; see the module docstring
    for the two-domain symmetry argument.
    """

    def __init__(self, comm: "CommCore"):
        self.comm = comm
        self.ctx = comm.ctx
        self.cfg = comm.config.adaptive
        self.table = comm._tuning_table
        self._cells: dict[tuple[str, int], _Cell] = {}
        #: posted-collective index on this communicator (post domain)
        self._op_index = 0
        #: pending actions: (effect op index, domain, seq, fn) heap.
        #: Identical on every rank at matched op indexes — post-domain
        #: entries are scheduled at matched indexes, completion-domain
        #: entries at shared fire instants — so draining the heap in
        #: before_op applies the same edits everywhere.
        self._pending: list = []
        self._post_seq = 0
        self._fire_seq = 0
        #: reentrancy guard: a probation canary posts a real collective
        #: from inside before_op; it must not count as a new op
        self.quiet = False
        shared = comm._shared
        self._sh = shared.setdefault(
            "adapt",
            {
                # max op index any rank has posted: the completion
                # domain's only view of post progress (single shared
                # copy, so all callbacks at one fire instant agree)
                "max_posted": 0,
                # shared mirror of the quarantine set, readable at fire
                # instants (per-rank _quarantined is post-domain state)
                "quarantined": set(),
                # epsilon trials posted per cell (marked once per
                # logical trial, not once per rank)
                "trials_posted": {},
                "trial_marks": set(),
            },
        )
        self._lead = comm.ctx.rank == comm.group_ranks[0]
        system = comm.ctx.system
        self._multinode = (
            len({system.node_of(r) for r in comm.group_ranks}) > 1
        )
        #: per-rank action counts (identical across ranks)
        self.stats = {name: 0 for name in ACTIONS}

    # -- post domain -------------------------------------------------------

    def before_op(self, family: OpFamily, nbytes: int) -> None:
        """Hook run once per posted collective, before backend
        resolution, so pending table edits affect the op being posted."""
        self._op_index += 1
        idx = self._op_index
        sh = self._sh
        if idx > sh["max_posted"]:
            sh["max_posted"] = idx
        pending = self._pending
        while pending and pending[0][0] <= idx:
            heapq.heappop(pending)[-1]()
        if self.cfg.epsilon > 0.0:
            self._maybe_trial(family, nbytes, idx)

    def _schedule_post(self, effect: int, fn: Callable[[], None]) -> None:
        """Schedule from the post domain (every rank schedules at the
        same op index, so immediate future indexes are symmetric)."""
        self._post_seq += 1
        heapq.heappush(self._pending, (effect, 0, self._post_seq, fn))

    def _schedule_fire(self, fn: Callable[[], None], offset: int = 0) -> int:
        """Schedule from the completion domain: the effect index is the
        shared posted high-water mark plus one — no rank has posted that
        op yet, so every rank applies the action before resolving it."""
        effect = self._sh["max_posted"] + 1 + offset
        self._fire_seq += 1
        heapq.heappush(self._pending, (effect, 1, self._fire_seq, fn))
        return effect

    def _hash(self, *parts) -> int:
        key = "|".join(
            str(p) for p in (self.cfg.seed, self.comm.comm_id, *parts)
        )
        return zlib.crc32(key.encode("utf-8"))

    def _maybe_trial(self, family: OpFamily, nbytes: int, idx: int) -> None:
        """Steady-state epsilon exploration: with probability ``epsilon``
        (a deterministic per-op hash, so all ranks draw identically),
        serve this one op on an alternate backend to keep its EMA fresh,
        restoring the table entry at the next op index."""
        op = family.value
        ws = self.comm.world_size
        bucket = message_bucket(nbytes)
        row = self.table.entries.get(op, {}).get(ws, {})
        cur = row.get(bucket)
        if cur is None:
            return  # only trial cells the table explicitly serves
        if self._hash(op, bucket, idx) / 2**32 >= self.cfg.epsilon:
            return
        quarantined = self._sh["quarantined"]
        alts = [
            name
            for name in self.comm.backends
            if name != cur and name not in quarantined
        ]
        if not alts:
            return
        alt = alts[self._hash(op, bucket, idx, "alt") % len(alts)]
        table = self.table
        table.add(op, ws, bucket, alt)
        self._schedule_post(idx + 1, lambda: table.add(op, ws, bucket, cur))
        mark = (op, bucket, idx)
        sh = self._sh
        if mark not in sh["trial_marks"]:
            # one logical trial, marked by whichever rank posts first
            sh["trial_marks"].add(mark)
            key = (op, bucket)
            sh["trials_posted"][key] = sh["trials_posted"].get(key, 0) + 1
        self._emit("explore", alt, detail=f"epsilon-trial@{op}/{bucket}")

    # -- probation (quarantine recovery) -----------------------------------

    def on_quarantine(self, backend_name: str) -> None:
        """Called by the dispatch layer's ``_quarantine`` — post domain,
        at the same op index on every rank."""
        self._sh["quarantined"].add(backend_name)
        interval = self.cfg.probation_interval
        if interval > 0:
            self._schedule_post(
                self._op_index + interval, lambda: self._probe(backend_name)
            )
            self._emit(
                "probation",
                backend_name,
                detail=f"scheduled@+{interval}",
            )

    def _probe(self, backend_name: str) -> None:
        """One probation probe (runs in before_op at a matched op index):
        consult the fault injector under the backend's own op counter;
        on a healthy verdict un-quarantine and post a timing-only canary
        that re-seeds the backend's observed latency."""
        comm = self.comm
        if backend_name not in comm._quarantined:
            self._sh["quarantined"].discard(backend_name)
            return
        self.stats["probation"] += 1
        inj = comm._injector
        healthy = True
        if inj is not None:
            scope = ("coll", backend_name)
            idx = comm._fault_counters.get(scope, 0) + 1
            comm._fault_counters[scope] = idx
            fault = inj.backend_fault(
                comm.comm_id, backend_name, idx,
                rank=self.ctx.rank, now=self.ctx.now,
            )
            healthy = fault is None
        if not healthy:
            self._emit(
                "probation", backend_name, detail=f"probe-failed@{self._op_index}"
            )
            if self.cfg.probation_interval > 0:
                self._schedule_post(
                    self._op_index + self.cfg.probation_interval,
                    lambda: self._probe(backend_name),
                )
            return
        self._sh["quarantined"].discard(backend_name)
        comm._unquarantine(
            comm.backends[backend_name],
            f"probation probe cleared at op {self._op_index}",
        )
        self._emit("probation", backend_name, detail="recovered")
        self._canary(backend_name)

    def _canary(self, backend_name: str) -> None:
        """Timing-only allreduce on the recovered backend: every rank
        posts it at the same op index (we are inside before_op), so the
        rendezvous matches; ``quiet`` keeps it from counting as a new
        adaptive op while its completion still feeds the EMA."""
        tensor = self.ctx.virtual_tensor(max(1, self.cfg.canary_bytes // 4))
        self.quiet = True
        try:
            self.comm.all_reduce(backend_name, tensor)
        finally:
            self.quiet = False

    # -- completion domain -------------------------------------------------

    def attach(
        self,
        family: OpFamily,
        backend_name: str,
        nbytes: int,
        rdv,
        auto: bool,
    ) -> None:
        """Register the observation for one posted collective on its
        rendezvous flag.  ``fire()`` runs all ranks' callbacks at one
        global instant with one shared duration, which is what makes the
        per-rank observation streams identical."""
        cell_key = (family.value, message_bucket(nbytes))
        flag = rdv.flag

        def emit() -> None:
            duration = rdv.duration
            if duration:
                self.on_complete(cell_key, family, backend_name, duration, auto)

        if flag.is_set:
            emit()
        else:
            flag.callbacks.append(emit)

    def on_complete(
        self,
        cell_key: tuple[str, int],
        family: OpFamily,
        backend_name: str,
        duration: float,
        auto: bool,
    ) -> None:
        cell = self._cells.get(cell_key)
        if cell is None:
            cell = self._cells[cell_key] = _Cell(family=family, bucket=cell_key[1])
        cell.completions += 1
        alpha = self.cfg.ema_alpha
        prev = cell.ema.get(backend_name)
        cell.ema[backend_name] = (
            duration if prev is None else alpha * duration + (1.0 - alpha) * prev
        )
        cell.count[backend_name] = cell.count.get(backend_name, 0) + 1
        hist = cell.hist.get(backend_name)
        if hist is None:
            hist = cell.hist[backend_name] = LogHistogram()
        hist.record(duration)
        if not auto:
            return  # explicit dispatch is measured but never retuned
        if cell.mode == "explore":
            self._explore_step(cell, cell_key, backend_name)
        elif cell.mode == "cooldown":
            if cell.completions >= cell.cooldown_until:
                cell.mode = "steady"
        else:
            self._steady_step(cell, cell_key, backend_name)

    def _steady_step(
        self, cell: _Cell, cell_key: tuple[str, int], backend_name: str
    ) -> None:
        cfg = self.cfg
        if cell.current is None:
            cell.current = backend_name
        elif backend_name != cell.current:
            posted = self._sh["trials_posted"].get(cell_key, 0)
            if cell.trials_seen < posted:
                cell.trials_seen += 1  # an epsilon trial, not a move
            else:
                # the dispatch layer itself moved (quarantine failover
                # or an external table edit): follow it
                cell.current = backend_name
            return
        cur = cell.current
        if cell.count[cur] < cfg.min_samples:
            return
        base = cell.baseline.get(cur)
        if base is None:
            base = cell.baseline[cur] = self._expected(cell, cur)
        ema = cell.ema[cur]
        trigger = None
        if base > 0.0 and (
            ema > cfg.drift_ratio * base or ema * cfg.drift_ratio < base
        ):
            trigger = f"{cur}:{ema:.1f}us vs expected {base:.1f}us"
        else:
            for alt, alt_ema in cell.ema.items():
                if alt == cur:
                    continue
                if (
                    cell.count.get(alt, 0) >= cfg.min_samples
                    and alt_ema * cfg.drift_ratio < ema
                ):
                    trigger = f"{alt}:{alt_ema:.1f}us beats {cur}:{ema:.1f}us"
                    break
        if trigger is None:
            return
        self.stats["drift"] += 1
        self._emit("drift", cur, detail=f"{cell_key[0]}/{cell_key[1]} {trigger}")
        self._start_explore(cell, cell_key)

    def _candidates(self, cell: _Cell) -> list[str]:
        """Exploration candidates: live flat backends first, then
        ``hier:*`` composites of live constituents, capped at
        ``max_candidates``.  Quarantine state comes from the shared
        mirror — this runs in the completion domain."""
        quarantined = self._sh["quarantined"]
        cur = cell.current
        live = [n for n in self.comm.backends if n not in quarantined]
        out = [n for n in live if n != cur]
        if (
            self.cfg.include_hier
            and self._multinode
            and cell.family in _hier_families()
        ):
            for intra in live:
                for inter in live:
                    if intra == inter:
                        continue
                    name = f"hier:{intra}+{inter}"
                    if name != cur:
                        out.append(name)
        return out[: self.cfg.max_candidates]

    def _start_explore(self, cell: _Cell, cell_key: tuple[str, int]) -> None:
        cfg = self.cfg
        candidates = self._candidates(cell)
        flats = [c for c in candidates if not c.startswith("hier:")]
        cell.explore_hier = [c for c in candidates if c.startswith("hier:")]
        if not candidates:
            # nowhere to go: accept the observed latency as the new
            # normal so drift does not re-fire every completion
            cell.baseline[cell.current] = cell.ema[cell.current]
            return
        if cell.current is not None and not cell.current.startswith("hier:"):
            # the incumbent competes on equal terms: its lifetime EMA
            # lags the very drift that triggered this sweep (a stale,
            # too-flattering score), so it gets a fresh window like
            # every other candidate
            flats = [cell.current, *flats][: cfg.max_candidates]
        cell.mode = "explore"
        for name in flats:
            cell.ema.pop(name, None)
            cell.count[name] = 0
        cell.explore_remaining = {c: cfg.explore_ops for c in flats}
        cell.explore_deadline = (
            cell.completions + (len(flats) + 2) * cfg.explore_ops + 8
        )
        op, ws, bucket = cell.family.value, self.comm.world_size, cell.bucket
        table = self.table
        for i, cand in enumerate(flats):
            # candidate i serves ops [base + i*E, base + (i+1)*E); the
            # last one keeps serving until the commit edit lands
            self._schedule_fire(
                lambda c=cand: table.add(op, ws, bucket, c),
                offset=i * cfg.explore_ops,
            )
        self.stats["explore"] += 1
        self._emit(
            "explore",
            ",".join(candidates),
            detail=f"sweep {cell_key[0]}/{cell_key[1]}",
        )
        if not flats:
            self._commit(cell, cell_key)  # hier-only: score analytically

    def _explore_step(
        self, cell: _Cell, cell_key: tuple[str, int], backend_name: str
    ) -> None:
        remaining = cell.explore_remaining
        owed = remaining.get(backend_name)
        if owed is not None and owed > 0:
            remaining[backend_name] = owed - 1
        done = all(v <= 0 for v in remaining.values())
        if done or cell.completions >= cell.explore_deadline:
            self._commit(cell, cell_key)

    def _commit(self, cell: _Cell, cell_key: tuple[str, int]) -> None:
        """Pick the sweep winner and schedule the table edit.  Flat
        candidates score by measured EMA; hier composites by analytic
        phase costs scaled with their constituents' observed drift
        (composite parents are never measured directly — phase timings
        land on the child communicators)."""
        cfg = self.cfg
        scores: dict[str, float] = {}
        for name, ema in cell.ema.items():
            if name == cell.current or name in cell.explore_remaining:
                if cell.count.get(name, 0) > 0:
                    scores[name] = ema
        for name in cell.explore_hier:
            score = self._hier_score(cell, name)
            if score is not None:
                scores[name] = score
        cell.explore_remaining = {}
        cell.explore_hier = []
        if not scores:
            cell.mode = "steady"
            return
        winner = min(sorted(scores), key=lambda name: scores[name])
        previous = cell.current
        op, ws, bucket = cell.family.value, self.comm.world_size, cell.bucket
        table = self.table
        self._schedule_fire(lambda: table.add(op, ws, bucket, winner))
        cell.current = winner
        cell.baseline[winner] = scores[winner]
        cell.mode = "cooldown"
        cell.cooldown_until = cell.completions + cfg.cooldown_ops
        self.stats["retune"] += 1
        self._emit("retune", winner, detail=f"{previous}->{winner}")

    # -- pricing -----------------------------------------------------------

    def _expected(self, cell: _Cell, backend_name: str) -> float:
        """Analytic expectation for one cell/backend, mirroring the
        simulated duration composition (raw cost x dispatch fraction;
        codec and staging extras are approximated away)."""
        cached = cell.analytic.get(backend_name)
        if cached is not None:
            return cached
        comm = self.comm
        backend = comm.backends.get(backend_name)
        if backend is None:
            return 0.0
        cost = backend.collective_cost_us(
            cell.family, cell.bucket, comm.world_size, comm._comm_path
        ) * (1.0 + comm.config.dispatch_fraction)
        cell.analytic[backend_name] = cost
        return cost

    def _hier_score(self, cell: _Cell, name: str) -> Optional[float]:
        from repro.backends.hierarchical import hier_cost_phases, parse_hier
        from repro.core.exceptions import BackendError

        try:
            spec = parse_hier(name)
        except BackendError:
            return None
        phases = hier_cost_phases(
            self.ctx.system, spec, cell.family, cell.bucket,
            self.comm.world_size, self.comm.config,
        )
        if phases is None:
            return None
        total = 0.0
        for phase in phases:
            total += phase.cost_us * self._drift_scale(cell, phase.backend)
            total += phase.overhead_us
        return total

    def _drift_scale(self, cell: _Cell, backend_name: str) -> float:
        """Observed/analytic latency ratio of a flat constituent — how a
        sweep's fresh flat measurements inform hier composite scores."""
        ema = cell.ema.get(backend_name)
        if ema is None or cell.count.get(backend_name, 0) < 1:
            return 1.0
        analytic = self._expected(cell, backend_name)
        return ema / analytic if analytic > 0.0 else 1.0

    # -- observability -----------------------------------------------------

    def _emit(self, action: str, backend: str, detail: str = "") -> None:
        """One ``kind="adapt"`` ObsEvent per logical action, emitted by
        the group's lead rank only so ``tuning.adapt.*`` counters read
        as one increment per decision."""
        obs = self.comm._obs
        if obs is None or not self._lead:
            return
        now = self.ctx.now
        obs.observe(
            ObsEvent(
                kind="adapt",
                rank=self.ctx.rank,
                stream="",
                backend=backend,
                family=action,
                nbytes=0,
                step=obs.current_step(self.ctx.rank),
                start=now,
                end=now,
                detail=detail,
            )
        )

    def snapshot(self) -> dict:
        """Debug/report view: per-cell EMA state and action counts."""
        return {
            "ops": self._op_index,
            "stats": dict(self.stats),
            "cells": {
                f"{key[0]}/{key[1]}": {
                    "mode": cell.mode,
                    "current": cell.current,
                    "completions": cell.completions,
                    "ema": {k: round(v, 3) for k, v in cell.ema.items()},
                    "count": dict(cell.count),
                }
                for key, cell in sorted(self._cells.items())
            },
        }


def _hier_families() -> frozenset:
    from repro.backends.hierarchical import HIER_FAMILIES

    return HIER_FAMILIES
