"""MCR-DL runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CompressionConfig:
    """Lossy communication compression (paper §V-E, zfp-style).

    ``rate_bits`` is the fixed number of bits per element after
    compression (a fixed-rate codec like zfp's fixed-rate mode); 8 means
    4x compression for float32 payloads.
    """

    enabled: bool = False
    rate_bits: int = 8
    #: ops eligible for compression (gradients tolerate loss; indices do not)
    families: tuple[str, ...] = ("allreduce", "reduce_scatter", "allgather")


@dataclass
class AdaptiveConfig:
    """Online adaptive dispatch (feedback-driven retuning + probation).

    Off by default: the static offline table of §V-F stays authoritative
    and healthy-path timings are byte-identical to a build without this
    subsystem.  When enabled, each top-level communicator grows an
    :class:`repro.core.adaptive.AdaptiveRetuner` that watches completed
    collective timings, re-tunes ``"auto"`` table cells whose observed
    latency drifts from expectation, and periodically re-probes
    quarantined backends (see docs/INTERNALS.md §14).
    """

    enabled: bool = False
    #: EMA smoothing for observed per-cell latencies (weight of the
    #: newest sample)
    ema_alpha: float = 0.25
    #: drift trigger: re-tune when observed EMA exceeds ``drift_ratio``
    #: times the expected cost (or an alternate's fresh EMA beats the
    #: serving choice by the same ratio)
    drift_ratio: float = 1.5
    #: samples a cell must accumulate before drift can trigger
    min_samples: int = 6
    #: consecutive ops each exploration candidate serves during a sweep
    explore_ops: int = 3
    #: steady-state exploration: probability (per posted op, decided by a
    #: deterministic per-op hash so every rank draws identically) of
    #: serving one op on the round-robin next alternate backend to keep
    #: its EMA fresh; 0 disables
    epsilon: float = 0.0
    #: cap on candidates per exploration sweep (flat backends first,
    #: then ``hier:*`` composites)
    max_candidates: int = 6
    #: score ``hier:<intra>+<inter>`` composites as sweep candidates
    #: (analytic phase costs scaled by the constituents' observed drift)
    include_hier: bool = True
    #: completed ops a cell waits after a retune commit before the drift
    #: detector re-arms
    cooldown_ops: int = 12
    #: posted collectives between probation probes of a quarantined
    #: backend; 0 disables probation (quarantine stays a one-way door)
    probation_interval: int = 25
    #: payload of the timing-only canary posted after an un-quarantine
    canary_bytes: int = 4096
    #: seed for the deterministic epsilon-exploration hash
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ValueError("adaptive.ema_alpha must be in (0, 1]")
        if self.drift_ratio <= 1.0:
            raise ValueError("adaptive.drift_ratio must be > 1")
        if self.min_samples < 1:
            raise ValueError("adaptive.min_samples must be >= 1")
        if self.explore_ops < 1:
            raise ValueError("adaptive.explore_ops must be >= 1")
        if not 0.0 <= self.epsilon < 1.0:
            raise ValueError("adaptive.epsilon must be in [0, 1)")
        if self.max_candidates < 1:
            raise ValueError("adaptive.max_candidates must be >= 1")
        if self.cooldown_ops < 0:
            raise ValueError("adaptive.cooldown_ops must be >= 0")
        if self.probation_interval < 0:
            raise ValueError("adaptive.probation_interval must be >= 0")
        if self.canary_bytes < 1:
            raise ValueError("adaptive.canary_bytes must be >= 1")


@dataclass
class MCRConfig:
    """Configuration of one MCR-DL communicator.

    The defaults model the paper's implementation: a C++ backbone under a
    thin Python layer (low fixed dispatch cost, tiny proportional cost)
    and fine-grained CUDA-event synchronization with a pool of
    communication streams per backend (§V-C).
    """

    #: fixed host-side cost of one MCR-DL API call, µs (C++ backbone,
    #: thin Python layer — paper C3)
    dispatch_overhead_us: float = 1.2
    #: proportional overhead on top of the raw backend time (argument
    #: checking / tensor introspection in the thin layer)
    dispatch_fraction: float = 0.01

    #: communication streams per stream-aware backend.  Multiple streams
    #: enable concurrent small-message operations; large messages are
    #: bandwidth-bound and always use stream 0 (§V-C).
    streams_per_backend: int = 4
    #: messages at or above this size are pinned to stream 0, bytes
    large_message_threshold: int = 64 * 1024
    #: point-to-point eager protocol threshold, bytes: a blocking send at
    #: or below this completes locally (buffered) without waiting for the
    #: matching receive, as in real MPI
    eager_threshold: int = 64 * 1024

    #: "mpi-managed": let the MPI library handle streams — the host
    #: synchronizes the default stream before posting, preserving any
    #: multi-stream logic inside MPI (§V-D option 1).
    #: "mcr-managed": intercept and manage streams inside MCR-DL — full
    #: overlap across backends, invalid for MPI builds with internal
    #: multi-stream logic (§V-D option 2).
    mpi_stream_mode: str = "mcr-managed"
    #: set when the MPI build is known to use internal multi-stream
    #: logic; combined with "mcr-managed" this raises ConfigurationError
    mpi_internal_multistream: bool = False

    #: "fine-grained": MCR-DL's CUDA-event scheme (Fig. 4b).
    #: "naive": every op posts to the default stream and host-blocks
    #: (Fig. 4a) — kept for the serialization/deadlock comparisons.
    synchronization: str = "fine-grained"

    #: per-backend library initialization cost, µs (paper §V-D notes the
    #: multi-library init overhead amortizes within <10 training steps)
    backend_init_us: float = 25.0

    #: record every communication op (drives Figures 1 and 12)
    enable_logging: bool = False

    #: compile-once dispatch plans (§V-E persistent-op amortization):
    #: steady-state collectives reuse a cached plan instead of
    #: re-deriving tuning choice, labels, codec arithmetic, and stream
    #: placement per call.  Simulated timings are identical either way
    #: (enforced by the dispatch_cache perfregress scenario); off is for
    #: differential testing, not a supported production mode.
    plan_cache: bool = True

    compression: CompressionConfig = field(default_factory=CompressionConfig)

    #: online adaptive dispatch (feedback-driven retuning + backend
    #: probation); off by default — see :class:`AdaptiveConfig`
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)

    #: backend used when "auto" is requested but no tuning table entry
    #: matches; None = first initialized backend
    fallback_backend: Optional[str] = None

    #: per-operation deadline, µs: a host-blocking wait (sync op, handle
    #: wait/synchronize) that exceeds it raises CommTimeoutError with
    #: per-rank rendezvous diagnostics instead of hanging; None disables
    op_deadline_us: Optional[float] = None
    #: dispatch attempts after the first for a transiently failing
    #: backend before the op fails over to a survivor
    comm_max_retries: int = 3
    #: base backoff between retry attempts, µs (doubles per attempt)
    retry_backoff_us: float = 50.0

    #: stage every tensor through host memory around each operation —
    #: the pre-CUDA-aware mpi4py pattern of the paper's Listing 2
    #: (cupy -> numpy -> MPI -> numpy -> cupy); used by the mpi4py
    #: baseline framework, not by MCR-DL itself
    force_host_staging: bool = False

    def validate(self) -> None:
        if self.mpi_stream_mode not in ("mpi-managed", "mcr-managed"):
            raise ValueError(f"bad mpi_stream_mode {self.mpi_stream_mode!r}")
        if self.synchronization not in ("fine-grained", "naive"):
            raise ValueError(f"bad synchronization {self.synchronization!r}")
        if self.streams_per_backend < 1:
            raise ValueError("streams_per_backend must be >= 1")
        if not 0 <= self.dispatch_fraction < 1:
            raise ValueError("dispatch_fraction must be in [0, 1)")
        if self.op_deadline_us is not None and self.op_deadline_us <= 0:
            raise ValueError("op_deadline_us must be positive (or None)")
        if self.comm_max_retries < 0:
            raise ValueError("comm_max_retries must be >= 0")
        if self.retry_backoff_us < 0:
            raise ValueError("retry_backoff_us must be >= 0")
        self.adaptive.validate()
