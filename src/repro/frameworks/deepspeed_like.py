"""DeepSpeed-style engine facade over MCR-DL.

The paper's runtime was adopted as DeepSpeed's communication module;
this facade shows what that integration surface looks like: a single
JSON-style config dict selects backends (including ``"auto"`` +
tuning table), gradient bucketing, tensor fusion, and compression, and
the returned engine drives any workload model through the standard
train-step protocol.

Example::

    engine = DeepSpeedLikeEngine(ctx, {
        "communication": {"backends": ["nccl", "mvapich2-gdr"],
                          "allreduce_backend": "nccl",
                          "alltoall_backend": "mvapich2-gdr"},
        "fusion": {"enabled": True, "max_buffer_mb": 4},
        "compression": {"enabled": False},
    })
    for _ in range(steps):
        engine.train_step(model)
    stats = engine.finalize()
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.config import CompressionConfig, MCRConfig
from repro.core.exceptions import ConfigurationError
from repro.core.tuning import TuningTable
from repro.ext.fusion import FusionConfig
from repro.models.plan import BackendPlan, CommDriver, PROFILES
from repro.sim.process import RankContext

DEFAULT_CONFIG: dict = {
    "communication": {
        "backends": ["nccl", "mvapich2-gdr"],
        "allreduce_backend": "nccl",
        "alltoall_backend": "mvapich2-gdr",
    },
    "fusion": {"enabled": True, "max_buffer_mb": 4, "max_wait_us": 50.0},
    "compression": {"enabled": False, "rate_bits": 8},
    "logging": {"enabled": True},
}


def _merge(base: dict, override: dict) -> dict:
    out = dict(base)
    for key, value in override.items():
        if isinstance(value, dict) and isinstance(out.get(key), dict):
            out[key] = _merge(out[key], value)
        else:
            out[key] = value
    return out


class DeepSpeedLikeEngine:
    """Config-driven training engine wired to MCR-DL."""

    def __init__(
        self,
        ctx: RankContext,
        config: Optional[dict] = None,
        tuning_table: Optional[TuningTable] = None,
    ):
        self.ctx = ctx
        self.config = _merge(DEFAULT_CONFIG, config or {})
        comm_cfg = self.config["communication"]
        backends = comm_cfg.get("backends") or []
        if not backends:
            raise ConfigurationError("communication.backends must be non-empty")
        for key in ("allreduce_backend", "alltoall_backend"):
            chosen = comm_cfg.get(key)
            if chosen and chosen != "auto" and chosen not in backends:
                raise ConfigurationError(
                    f"{key}={chosen!r} is not in communication.backends {backends}"
                )
        if comm_cfg.get("allreduce_backend") == "auto" and tuning_table is None:
            raise ConfigurationError('"auto" backends require a tuning_table')

        if tuning_table is not None:
            plan = BackendPlan.tuned(tuning_table, label="deepspeed-auto")
        else:
            plan = BackendPlan(
                label="deepspeed",
                default=comm_cfg.get("allreduce_backend", backends[0]),
                per_op={
                    "allreduce": comm_cfg.get("allreduce_backend", backends[0]),
                    "alltoall": comm_cfg.get("alltoall_backend", backends[0]),
                },
            )

        fusion_cfg = self.config["fusion"]
        fusion = None
        if fusion_cfg.get("enabled"):
            fusion = FusionConfig(
                max_buffer_bytes=int(fusion_cfg.get("max_buffer_mb", 4) * 1024 * 1024),
                max_wait_us=float(fusion_cfg.get("max_wait_us", 50.0)),
            )

        self.driver = CommDriver(
            ctx,
            plan,
            profile=PROFILES["mcr-dl"],
            fusion=fusion,
            enable_logging=bool(self.config["logging"].get("enabled", True)),
        )
        comp_cfg = self.config["compression"]
        if comp_cfg.get("enabled"):
            # compression applies inside the communicator's config; the
            # driver built it already, so install the codec directly
            self.driver.comm.config.compression = CompressionConfig(
                enabled=True, rate_bits=int(comp_cfg.get("rate_bits", 8))
            )
            from repro.ext.compression import FixedRateCodec

            self.driver.comm._codec = FixedRateCodec(
                int(comp_cfg.get("rate_bits", 8))
            )
        self.steps_completed = 0

    # -- training protocol --------------------------------------------------

    def train_step(self, model: Any) -> None:
        """Run one step of any workload model (DS-MoE, DLRM, ...)."""
        model.run_step(self.ctx, self.driver)
        self.driver.step_sync()
        self.steps_completed += 1

    def barrier(self) -> None:
        self.driver.barrier()

    def finalize(self) -> dict:
        """Shut down and return per-op communication totals (µs)."""
        logger = self.driver.comm.logger
        stats = {
            "steps": self.steps_completed,
            "comm_by_family_us": (
                logger.total_time_by_family() if logger is not None else {}
            ),
            "comm_by_backend_us": (
                logger.total_time_by_backend() if logger is not None else {}
            ),
        }
        self.driver.finalize()
        return stats
