"""Horovod-like baseline.

Data-parallel focus (paper §III-B): Allreduce / Allgather / Broadcast
only, with built-in tensor fusion, and an *experimental* mixed-backend
mode without deadlock avoidance (Table I) — modeled by running mixed
traffic under the naive synchronization scheme, so misordered
cross-backend programs genuinely deadlock.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.ops import ReduceOp
from repro.core.api import create_communicator
from repro.core.config import MCRConfig
from repro.core.exceptions import MCRError
from repro.core.handles import WorkHandle
from repro.ext.fusion import FusionConfig, TensorFusion
from repro.sim.process import RankContext
from repro.tensor import SimTensor

#: Horovod's dispatch is C++-backed like MCR-DL but adds a coordination
#: round (its background-thread negotiation protocol)
HOROVOD_DISPATCH_OVERHEAD_US = 4.5
HOROVOD_DISPATCH_FRACTION = 0.02


class UnsupportedOpError(MCRError):
    """Operation outside Horovod's data-parallel surface (Table I)."""


class HorovodLike:
    """Horovod: allreduce-centric data-parallel communication."""

    def __init__(
        self,
        ctx: RankContext,
        backend: str = "nccl",
        fusion: Optional[FusionConfig] = None,
        experimental_mixed: Optional[list[str]] = None,
    ):
        config = MCRConfig()
        config.dispatch_overhead_us = HOROVOD_DISPATCH_OVERHEAD_US
        config.dispatch_fraction = HOROVOD_DISPATCH_FRACTION
        backends = [backend]
        if experimental_mixed:
            backends = list(dict.fromkeys([backend, *experimental_mixed]))
            # "experimentally supports mixed communications without
            # deadlock-avoidance support" (§II-A): naive synchronization
            config.synchronization = "naive"
        self.backend = backend
        self._comm = create_communicator(ctx, backends, config=config, comm_id="horovod")
        self._fusion = TensorFusion(self._comm, fusion or FusionConfig())

    def allreduce(
        self, tensor: SimTensor, op: ReduceOp = ReduceOp.AVG, backend: Optional[str] = None
    ):
        """Fused allreduce (Horovod averages gradients by default)."""
        return self._fusion.all_reduce(backend or self.backend, tensor, op=op)

    def allgather(self, output: SimTensor, input: SimTensor) -> None:
        self._comm.all_gather(self.backend, output, input)

    def broadcast(self, tensor: SimTensor, root: int = 0) -> None:
        self._comm.bcast(self.backend, tensor, root)

    def barrier(self) -> None:
        self._comm.barrier(self.backend)

    def flush(self) -> None:
        """Flush pending fusion buffers (Horovod's cycle end)."""
        self._fusion.flush_all()

    def synchronize(self) -> None:
        self._fusion.flush_all()
        self._comm.synchronize()

    def finalize(self) -> None:
        self._fusion.flush_all()
        self._comm.finalize()

    @property
    def fusion_stats(self) -> dict:
        return dict(self._fusion.stats)

    # -- Table I gaps --------------------------------------------------------

    def send(self, *args, **kwargs):
        raise UnsupportedOpError("Horovod has no point-to-point operations (Table I)")

    recv = send

    def alltoall(self, *args, **kwargs):
        raise UnsupportedOpError(
            "Horovod's collective surface is allreduce/allgather/broadcast (Table I)"
        )

    all_to_all_single = alltoall

    def gatherv(self, *args, **kwargs):
        raise UnsupportedOpError("Horovod has no vectored collectives (Table I)")

    scatterv = gatherv
