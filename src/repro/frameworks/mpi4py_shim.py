"""mpi4py-like baseline.

The paper's "Option 2" (§I-A): transfer tensors between the DL framework
and an external MPI Python wrapper.  mpi4py offers the full MPI surface —
including vectored collectives — but in the pattern of the paper's
Listing 2 every GPU tensor is staged through host memory around each
call (cupy -> numpy -> MPI -> numpy -> cupy), every operation is
host-synchronized, and there is no tensor fusion.  That staging is what
opens the performance gap in Fig. 11.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.ops import ReduceOp
from repro.core.api import create_communicator
from repro.core.config import MCRConfig
from repro.core.handles import WorkHandle
from repro.sim.process import RankContext
from repro.tensor import SimTensor

#: interpreter-level wrapper cost per call (pickle-free buffer path)
MPI4PY_DISPATCH_OVERHEAD_US = 5.0
MPI4PY_DISPATCH_FRACTION = 0.03


class Mpi4pyLike:
    """mpi4py over one MPI library, with Listing-2 host staging."""

    def __init__(self, ctx: RankContext, backend: str = "mvapich2-gdr"):
        config = MCRConfig()
        config.dispatch_overhead_us = MPI4PY_DISPATCH_OVERHEAD_US
        config.dispatch_fraction = MPI4PY_DISPATCH_FRACTION
        config.force_host_staging = True
        # the external wrapper never sees MCR's comm streams
        config.mpi_stream_mode = "mpi-managed"
        self.backend = backend
        self._comm = create_communicator(ctx, [backend], config=config, comm_id="mpi4py")

    # mpi4py upper-case buffer API, MPI spellings

    def Allreduce(self, tensor: SimTensor, op: ReduceOp = ReduceOp.SUM) -> None:
        self._comm.all_reduce(self.backend, tensor, op)

    def Iallreduce(self, tensor: SimTensor, op: ReduceOp = ReduceOp.SUM) -> WorkHandle:
        return self._comm.all_reduce(self.backend, tensor, op, async_op=True)

    def Allgather(self, recvbuf: SimTensor, sendbuf: SimTensor) -> None:
        self._comm.all_gather(self.backend, recvbuf, sendbuf)

    def Allgatherv(self, recvbuf: SimTensor, sendbuf: SimTensor, rcounts, displs) -> None:
        self._comm.all_gatherv(self.backend, recvbuf, sendbuf, rcounts, displs)

    def Alltoall(self, recvbuf: SimTensor, sendbuf: SimTensor) -> None:
        self._comm.all_to_all_single(self.backend, recvbuf, sendbuf)

    def Alltoallv(self, recvbuf: SimTensor, sendbuf: SimTensor, scounts, sdispls, rcounts, rdispls) -> None:
        self._comm.all_to_allv(self.backend, recvbuf, sendbuf, scounts, sdispls, rcounts, rdispls)

    def Reduce(self, tensor: SimTensor, root: int = 0, op: ReduceOp = ReduceOp.SUM) -> None:
        self._comm.reduce(self.backend, tensor, root, op)

    def Reduce_scatter(self, recvbuf: SimTensor, sendbuf: SimTensor, op: ReduceOp = ReduceOp.SUM) -> None:
        self._comm.reduce_scatter(self.backend, recvbuf, sendbuf, op)

    def Bcast(self, tensor: SimTensor, root: int = 0) -> None:
        self._comm.bcast(self.backend, tensor, root)

    def Gatherv(self, sendbuf: SimTensor, recvbuf: Optional[SimTensor], rcounts, displs, root: int = 0) -> None:
        self._comm.gatherv(self.backend, sendbuf, recvbuf, rcounts, displs, root)

    def Scatterv(self, recvbuf: SimTensor, sendbuf: Optional[SimTensor], scounts, displs, root: int = 0) -> None:
        self._comm.scatterv(self.backend, recvbuf, sendbuf, scounts, displs, root)

    def Send(self, tensor: SimTensor, dest: int, tag: int = 0) -> None:
        self._comm.send(self.backend, tensor, dest, tag)

    def Recv(self, tensor: SimTensor, source: int, tag: int = 0) -> None:
        self._comm.recv(self.backend, tensor, source, tag)

    def Barrier(self) -> None:
        self._comm.barrier(self.backend)

    def Get_rank(self) -> int:
        return self._comm.rank

    def Get_size(self) -> int:
        return self._comm.world_size

    def synchronize(self) -> None:
        self._comm.synchronize()

    def finalize(self) -> None:
        self._comm.finalize()
