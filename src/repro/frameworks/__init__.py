"""Baseline distributed-DL frameworks (Table I comparators).

Each framework here models a competing PyTorch-compatible communication
layer the paper evaluates against — its API *surface* (which operations
exist), its overhead profile (Fig. 7), and its optimizations (tensor
fusion or the lack of it, Fig. 11):

* :class:`~repro.frameworks.torch_dist.TorchDistributed` — PyTorch's
  built-in distributed module: one backend at a time, no vectored
  collectives, non-blocking for NCCL only, heavier Python dispatch.
* :class:`~repro.frameworks.horovod.HorovodLike` — data-parallel focus:
  allreduce/allgather/bcast only, built-in tensor fusion, "experimental"
  mixed backends without deadlock avoidance.
* :class:`~repro.frameworks.mpi4py_shim.Mpi4pyLike` — full MPI surface
  (including vectored collectives) but every GPU tensor staged through
  host memory (the paper's Listing 2 pattern) and no fusion.
* :mod:`~repro.frameworks.features` — the Table I feature matrix as data.
"""

from repro.frameworks.torch_dist import TorchDistributed
from repro.frameworks.horovod import HorovodLike
from repro.frameworks.mpi4py_shim import Mpi4pyLike
from repro.frameworks.features import FEATURE_MATRIX, FrameworkFeatures, feature_table_rows
from repro.frameworks.deepspeed_like import DeepSpeedLikeEngine

__all__ = [
    "TorchDistributed",
    "HorovodLike",
    "Mpi4pyLike",
    "FEATURE_MATRIX",
    "FrameworkFeatures",
    "feature_table_rows",
    "DeepSpeedLikeEngine",
]
