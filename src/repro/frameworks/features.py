"""Table I: features offered by MCR-DL compared to existing frameworks.

``yes`` / ``no`` / ``partial`` mirror the check / cross / tilde marks of
the paper's table; the MCR-DL row is *verified programmatically* by the
Table I benchmark (it probes the real API surface instead of trusting
this data).
"""

from __future__ import annotations

from dataclasses import dataclass

YES, NO, PARTIAL = "yes", "no", "partial"


@dataclass(frozen=True)
class FrameworkFeatures:
    """One row of Table I."""

    name: str
    point_to_point: str
    collectives: str
    vector_collectives: str
    non_blocking: str  # yes / no / "nccl-only"
    mixed_backend: str  # yes / no / "experimental"
    backend_as_class: str


FEATURE_MATRIX: dict[str, FrameworkFeatures] = {
    "horovod": FrameworkFeatures(
        name="Horovod",
        point_to_point=NO,
        collectives=PARTIAL,
        vector_collectives=NO,
        non_blocking="nccl-only",
        mixed_backend="experimental",
        backend_as_class=NO,
    ),
    "torch-distributed": FrameworkFeatures(
        name="PyTorch Distributed Module",
        point_to_point=PARTIAL,
        collectives=PARTIAL,
        vector_collectives=NO,
        non_blocking="nccl-only",
        mixed_backend=NO,
        backend_as_class=PARTIAL,
    ),
    "lbann": FrameworkFeatures(
        name="LBANN",
        point_to_point=PARTIAL,
        collectives=PARTIAL,
        vector_collectives=NO,
        non_blocking=PARTIAL,
        mixed_backend=NO,
        backend_as_class=NO,
    ),
    "mpi4py": FrameworkFeatures(
        name="mpi4py",
        point_to_point=PARTIAL,
        collectives=PARTIAL,
        vector_collectives=PARTIAL,
        non_blocking=PARTIAL,
        mixed_backend=NO,
        backend_as_class=NO,
    ),
    "mcr-dl": FrameworkFeatures(
        name="Proposed MCR-DL",
        point_to_point=YES,
        collectives=YES,
        vector_collectives=YES,
        non_blocking=YES,
        mixed_backend=YES,
        backend_as_class=YES,
    ),
}


def feature_table_rows() -> list[tuple[str, ...]]:
    """Render the matrix as printable rows (header first)."""
    header = (
        "Framework",
        "Point-to-Point",
        "Collectives",
        "Vector Collectives",
        "Non-Blocking",
        "Mixed-Backend",
        "Backend as a Class",
    )
    rows = [header]
    for f in FEATURE_MATRIX.values():
        rows.append(
            (
                f.name,
                f.point_to_point,
                f.collectives,
                f.vector_collectives,
                f.non_blocking,
                f.mixed_backend,
                f.backend_as_class,
            )
        )
    return rows
