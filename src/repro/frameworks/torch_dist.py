"""PyTorch-distributed-like baseline.

Models ``torch.distributed``'s communication layer as the paper
characterizes it (Table I, Fig. 7):

* exactly **one** backend per process group — no mixing;
* **no vectored collectives** (the productivity gap motivating MCR-DL's
  Option-1/Option-2 discussion in §I-A);
* non-blocking operations for the **NCCL backend only**;
* a heavier Python dispatch path: ~18% overhead over OMB for small
  messages, converging to ~4% for large ones (Fig. 7), modeled as a
  larger fixed per-call cost plus a larger proportional term.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.backends.base import backend_class, canonical_name
from repro.backends.ops import ReduceOp
from repro.core.api import create_communicator
from repro.core.config import MCRConfig
from repro.core.exceptions import MCRError
from repro.core.handles import WorkHandle
from repro.sim.process import RankContext
from repro.tensor import SimTensor

#: Fig. 7 overhead profile for torch.distributed over MVAPICH2-GDR
TORCH_DISPATCH_OVERHEAD_US = 9.0
TORCH_DISPATCH_FRACTION = 0.035


class UnsupportedOpError(MCRError):
    """The framework does not offer this operation (Table I gap)."""


class TorchDistributed:
    """``torch.distributed`` built against a single backend."""

    def __init__(
        self,
        ctx: RankContext,
        backend: str,
        config: Optional[MCRConfig] = None,
    ):
        self.backend = canonical_name(backend)
        self._nccl_like = backend_class(self.backend).properties.stream_aware
        config = config or MCRConfig()
        config.dispatch_overhead_us = TORCH_DISPATCH_OVERHEAD_US
        config.dispatch_fraction = TORCH_DISPATCH_FRACTION
        self._comm = create_communicator(ctx, [self.backend], config=config, comm_id="torch")

    # -- capability gates ----------------------------------------------------

    def _check_async(self, async_op: bool) -> None:
        if async_op and not self._nccl_like:
            raise UnsupportedOpError(
                "torch.distributed supports non-blocking collectives for the "
                "NCCL backend only (Table I)"
            )

    # -- supported surface ------------------------------------------------------

    def all_reduce(self, tensor: SimTensor, op: ReduceOp = ReduceOp.SUM, async_op: bool = False) -> Optional[WorkHandle]:
        self._check_async(async_op)
        return self._comm.all_reduce(self.backend, tensor, op, async_op)

    def broadcast(self, tensor: SimTensor, root: int = 0, async_op: bool = False) -> Optional[WorkHandle]:
        self._check_async(async_op)
        return self._comm.bcast(self.backend, tensor, root, async_op)

    def all_gather(self, output: SimTensor, input: SimTensor, async_op: bool = False) -> Optional[WorkHandle]:
        self._check_async(async_op)
        return self._comm.all_gather(self.backend, output, input, async_op)

    def reduce_scatter(self, output: SimTensor, input: SimTensor, op: ReduceOp = ReduceOp.SUM, async_op: bool = False) -> Optional[WorkHandle]:
        self._check_async(async_op)
        return self._comm.reduce_scatter(self.backend, output, input, op, async_op)

    def all_to_all_single(self, output: SimTensor, input: SimTensor, async_op: bool = False) -> Optional[WorkHandle]:
        self._check_async(async_op)
        return self._comm.all_to_all_single(self.backend, output, input, async_op)

    def all_to_all(self, output: Sequence[SimTensor], input: Sequence[SimTensor], async_op: bool = False) -> Optional[WorkHandle]:
        self._check_async(async_op)
        return self._comm.all_to_all(self.backend, output, input, async_op)

    def reduce(self, tensor: SimTensor, root: int = 0, op: ReduceOp = ReduceOp.SUM, async_op: bool = False) -> Optional[WorkHandle]:
        self._check_async(async_op)
        return self._comm.reduce(self.backend, tensor, root, op, async_op)

    def send(self, tensor: SimTensor, dst: int, tag: int = 0) -> None:
        self._comm.send(self.backend, tensor, dst, tag)

    def recv(self, tensor: SimTensor, src: int, tag: int = 0) -> None:
        self._comm.recv(self.backend, tensor, src, tag)

    def barrier(self) -> None:
        self._comm.barrier(self.backend)

    def synchronize(self) -> None:
        self._comm.synchronize()

    def finalize(self) -> None:
        self._comm.finalize()

    # -- Table I gaps -----------------------------------------------------------

    def gather(self, *args, **kwargs):
        raise UnsupportedOpError("torch.distributed: gather on GPU tensors is not supported by the NCCL backend (Table I)")

    def gatherv(self, *args, **kwargs):
        raise UnsupportedOpError("torch.distributed has no vectored collectives (Table I)")

    scatterv = gatherv
    all_gatherv = gatherv
    all_to_allv = gatherv
