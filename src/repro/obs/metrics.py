"""The unified observability event schema and metrics registry.

The paper's communication-logging extension (§V-E) and its
compute-vs-communication breakdowns (Figures 1 and 12) presuppose one
coherent view of what every rank, stream, and backend did.  Before this
module the reproduction had three disjoint recorders — the
:class:`~repro.sim.trace.Tracer`, the
:class:`~repro.ext.logging_ext.CommLogger`, and the fault-event trail —
with no shared schema and no per-step attribution.  Everything now
funnels through one :class:`ObsEvent` shape into one
:class:`MetricsRegistry` per job.

Design constraints (enforced by ``scripts/perfgate.py``):

* **zero cost when off** — no registry is installed unless the caller
  opts in (``Simulator(observe=...)`` / ``Trainer(metrics=True)``), and
  every producer guards its emission behind a single ``is None`` check;
* **zero simulated-time cost when on** — observers only *record*; they
  never sleep, never advance the virtual clock, and never change a
  dispatch decision.  Instrumented runs produce byte-identical simulated
  timings (the perf gate bounds any drift at 5%, mirroring the paper's
  C3 overhead budget; the actual overhead is exactly zero).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

#: ``step`` value for events recorded outside any marked training step
UNATTRIBUTED_STEP = -1


@dataclass(slots=True)
class ObsEvent:
    """One observed interval or point event, in the unified schema.

    Every producer (comm logger, tracer, fault injector, fusion engine,
    tuner) tags its events with the same coordinate system so exporters
    can join them: ``(rank, stream, backend, op family, bytes, step)``.

    ``kind`` selects the producer namespace:

    * ``"comm"``   — one completed communication op (family = op family,
      ``detail`` = dispatch decision: ``explicit``/``auto``/``reroute``);
    * ``"trace"``  — one kernel/comm interval from the tracer
      (family = tracer category, ``detail`` = label);
    * ``"fault"``  — one fault-handling action (family = kind:
      retry/failover/quarantine/injected);
    * ``"fusion"`` — one fusion-buffer flush (family = trigger:
      full/timeout/boundary);
    * ``"tuning"`` — one tuning-suite sample (start..end = latency);
    * ``"adapt"``  — one adaptive-dispatch action (family =
      drift/explore/retune/probation, ``detail`` = transition).
    """

    kind: str
    rank: int
    stream: str
    backend: str
    family: str
    nbytes: int
    step: int
    start: float
    end: float
    detail: str = ""
    #: hierarchical decomposition phase for ``kind="comm"`` events:
    #: ``"intra"`` / ``"inter"`` / ``""`` (flat dispatch)
    phase: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(slots=True)
class StepMarker:
    """One training step's window on one rank."""

    rank: int
    step: int
    start: float
    end: Optional[float] = None


class LogHistogram:
    """Log2-bucketed histogram for latencies / sizes.

    Bucket ``e`` counts values in ``(2**(e-1), 2**e]``; values at or
    below 1 land in bucket 0.  Exact mean is kept alongside (``sum`` /
    ``count``), and :meth:`percentile` returns the conservative bucket
    upper bound.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts: dict[int, int] = defaultdict(int)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        e = 0 if value <= 1.0 else math.ceil(math.log2(value))
        self.counts[e] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the p-th percentile.

        ``p=0`` returns the exact tracked minimum: the bucket upper bound
        of the lowest occupied bucket can exceed the true minimum, which
        would make p0 report a value *above* an observed sample.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} not in [0, 100]")
        if not self.count:
            return 0.0
        if p == 0.0:
            return self.min
        target = p / 100.0 * self.count
        seen = 0
        edges = sorted(self.counts)
        for e in edges[:-1]:
            seen += self.counts[e]
            if seen >= target:
                return float(2**e)
        # everything past the second-to-last edge lands in the top bucket;
        # returning it unconditionally avoids an unreachable float-slack
        # fallback after the loop
        return float(2 ** edges[-1])

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {f"le_2^{e}": self.counts[e] for e in sorted(self.counts)},
        }


class MetricsRegistry:
    """Job-wide metrics: counters, gauges, log-bucketed histograms, the
    raw event stream, and per-rank training-step attribution.

    One registry is shared by every rank of a simulated job (installed
    into the shared state dict under the ``"obs"`` key by
    :class:`repro.sim.Simulator`); single-threaded execution of the
    discrete-event engine makes it safe without locks.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = defaultdict(float)
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, LogHistogram] = {}
        #: the raw unified event stream (``"trace"`` events update
        #: counters but are not retained here — the Tracer already holds
        #: every interval, and duplicating them would double memory)
        self.events: list[ObsEvent] = []
        #: completed (and in-flight) training-step windows
        self.steps: list[StepMarker] = []
        self._current_step: dict[int, int] = {}
        self._open_steps: dict[int, StepMarker] = {}

    # -- primitive metrics ------------------------------------------------

    def inc(self, name: str, by: float = 1.0) -> None:
        self.counters[name] += by

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str) -> LogHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LogHistogram()
        return hist

    # -- step attribution -------------------------------------------------

    def begin_step(self, rank: int, step: int, now: float) -> None:
        """Open step ``step`` on ``rank``; subsequent events posted by
        that rank are attributed to it (at *post* time — a non-blocking
        op completing during step N+1 still belongs to the step that
        issued it)."""
        self._current_step[rank] = step
        marker = StepMarker(rank=rank, step=step, start=now)
        self._open_steps[rank] = marker
        self.steps.append(marker)

    def end_step(self, rank: int, now: float) -> None:
        """Close the open step window on ``rank``.  The rank's *current*
        step is intentionally left in place so trailing work (fusion
        flushes, barriers, deferred completions posted between steps) is
        attributed to the step that caused it."""
        marker = self._open_steps.pop(rank, None)
        if marker is not None:
            marker.end = now

    def current_step(self, rank: int) -> int:
        return self._current_step.get(rank, UNATTRIBUTED_STEP)

    # -- the unified feed -------------------------------------------------

    def observe(self, event: ObsEvent) -> None:
        """Ingest one event: append it and update derived metrics."""
        kind = event.kind
        if kind == "trace":
            # counters only; the Tracer retains the raw intervals.  The
            # sum double-counts overlapping intervals by design (it is a
            # work total, not a union busy time).
            self.inc(f"trace.sum_us.{event.family}", event.duration)
            return
        self.events.append(event)
        if kind == "comm":
            fam = event.family
            dur = event.duration
            self.inc(f"comm.ops.{fam}")
            self.inc(f"comm.bytes.{fam}", event.nbytes)
            self.inc(f"comm.time_us.{fam}", dur)
            self.inc(f"comm.time_us.backend.{event.backend}", dur)
            self.inc(f"comm.dispatch.{event.detail or 'explicit'}")
            if event.phase:
                self.inc(f"comm.time_us.phase.{event.phase}", dur)
            self.histogram(f"comm.latency_us.{fam}").record(dur)
            self.histogram(f"comm.nbytes.{fam}").record(event.nbytes)
        elif kind == "plan":
            # dispatch-plan-cache effectiveness: one aggregated event per
            # communicator and outcome at finalize, count in ``nbytes``
            self.inc(f"comm.plan.{event.detail}", event.nbytes)
        elif kind == "fault":
            self.inc(f"fault.{event.family}")
        elif kind == "adapt":
            # adaptive-dispatch lifecycle: family is the action
            # (drift/explore/retune/probation), detail carries the
            # backend transition or probe verdict
            self.inc(f"tuning.adapt.{event.family}")
        elif kind == "fusion":
            self.inc(f"fusion.{event.family}")
            self.inc("fusion.bytes", event.nbytes)
        elif kind == "tuning":
            if event.family == "sweep_cache":
                # sweep-engine cache effectiveness: one aggregated event
                # per run and outcome, count carried in ``nbytes``
                self.inc(f"tuning.cache.{event.detail}", event.nbytes)
                return
            self.inc("tuning.samples")
            self.histogram(f"tuning.latency_us.{event.family}").record(
                event.duration
            )

    def clear_comm(self) -> None:
        """Drop comm and fault events plus their derived metrics.

        Mirrors :meth:`repro.ext.logging_ext.CommLogger.clear` (called
        at the warmup/measure boundary) so the registry's communication
        totals keep reconciling with the comm log's.
        """
        self.events = [e for e in self.events if e.kind not in ("comm", "fault")]
        for store in (self.counters, self.histograms):
            for key in [k for k in store if k.startswith(("comm.", "fault."))]:
                del store[key]

    # -- aggregation ------------------------------------------------------

    def comm_totals_by_family(self) -> dict[str, dict]:
        """Job-wide (summed over ranks) ops/bytes/time per op family."""
        out: dict[str, dict] = {}
        for event in self.events:
            if event.kind != "comm":
                continue
            cell = out.setdefault(
                event.family, {"ops": 0, "bytes": 0, "time_us": 0.0}
            )
            cell["ops"] += 1
            cell["bytes"] += event.nbytes
            cell["time_us"] += event.duration
        return out

    def per_step_comm(self) -> dict[int, dict]:
        """Per-step communication breakdown (summed over ranks).

        Returns ``{step: {"ops", "bytes", "time_us", "families":
        {family: time_us}}}``; ``UNATTRIBUTED_STEP`` collects everything
        posted outside a marked step.
        """
        out: dict[int, dict] = {}
        for event in self.events:
            if event.kind != "comm":
                continue
            cell = out.setdefault(
                event.step,
                {"ops": 0, "bytes": 0, "time_us": 0.0, "families": defaultdict(float)},
            )
            cell["ops"] += 1
            cell["bytes"] += event.nbytes
            cell["time_us"] += event.duration
            cell["families"][event.family] += event.duration
        for cell in out.values():
            cell["families"] = dict(cell["families"])
        return out

    def fault_counts(self) -> dict[str, int]:
        prefix = "fault."
        return {
            k[len(prefix):]: int(v)
            for k, v in self.counters.items()
            if k.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """Plain-dict view of every derived metric (JSON-serializable)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
        }
