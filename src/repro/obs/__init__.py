"""Unified observability: one event schema, one registry, shared exporters.

See :mod:`repro.obs.metrics` for the schema and
:mod:`repro.obs.export` for the Chrome-trace / metrics-JSON surfaces.
"""

from repro.obs.export import (
    chrome_trace_events,
    load_chrome_trace,
    metrics_to_json,
    save_chrome_trace,
    save_metrics,
    trace_breakdown,
)
from repro.obs.metrics import (
    UNATTRIBUTED_STEP,
    LogHistogram,
    MetricsRegistry,
    ObsEvent,
    StepMarker,
)

__all__ = [
    "UNATTRIBUTED_STEP",
    "LogHistogram",
    "MetricsRegistry",
    "ObsEvent",
    "StepMarker",
    "chrome_trace_events",
    "load_chrome_trace",
    "metrics_to_json",
    "save_chrome_trace",
    "save_metrics",
    "trace_breakdown",
]
