"""Exporters for the unified observability pipeline.

Three output surfaces (ISSUE 4 tentpole, part 3):

* **Chrome/Perfetto trace** — the Tracer's per-stream intervals plus, when
  a :class:`~repro.obs.metrics.MetricsRegistry` is supplied, training-step
  markers (one dedicated "steps" thread per rank) and cumulative
  per-family byte counter tracks (``"C"`` events).  The output stays the
  plain JSON array the existing ``Tracer.save_chrome_trace`` emitted, so
  anything that loaded old traces still loads new ones.
* **metrics JSON** — the registry snapshot plus per-family and per-step
  communication totals, with an optional reconciliation block computed
  from the :class:`~repro.ext.logging_ext.CommLogger` on the same run.
* **loaders/breakdowns** — the reverse direction for the ``repro trace``
  subcommand: load a saved trace (array or ``{"traceEvents": ...}``
  envelope) back into records and aggregate per-rank / per-category /
  per-step tables.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import MetricsRegistry, UNATTRIBUTED_STEP

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import Tracer

#: tid of the per-rank "steps" thread in exported traces.  High enough
#: to never collide with real stream tids (streams are numbered densely
#: from 0 per rank).
STEP_THREAD_ID = 1000

#: thread name marking the step track; the loader uses it to tell step
#: markers apart from ordinary intervals
STEP_THREAD_NAME = "steps"


# ----------------------------------------------------------------------
# chrome trace
# ----------------------------------------------------------------------


def step_marker_events(registry: MetricsRegistry) -> list[dict]:
    """Step windows as ``"X"`` events on a dedicated thread per rank."""
    events: list[dict] = []
    named: set[int] = set()
    for marker in registry.steps:
        if marker.end is None:
            continue
        if marker.rank not in named:
            named.add(marker.rank)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": marker.rank,
                    "tid": STEP_THREAD_ID,
                    "args": {"name": STEP_THREAD_NAME},
                }
            )
        events.append(
            {
                "ph": "X",
                "name": f"step {marker.step}",
                "cat": "step",
                "pid": marker.rank,
                "tid": STEP_THREAD_ID,
                "ts": marker.start,
                "dur": marker.end - marker.start,
                "args": {"step": marker.step},
            }
        )
    return events


def counter_track_events(registry: MetricsRegistry) -> list[dict]:
    """Cumulative communicated bytes per op family as ``"C"`` counter
    events, one track per rank, sampled at each comm op's completion."""
    events: list[dict] = []
    running: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    ordered = sorted(
        (e for e in registry.events if e.kind == "comm"), key=lambda e: e.end
    )
    for event in ordered:
        series = running[event.rank]
        series[event.family] += event.nbytes
        events.append(
            {
                "ph": "C",
                "name": "comm bytes",
                "pid": event.rank,
                "ts": event.end,
                "args": dict(series),
            }
        )
    return events


def chrome_trace_events(
    tracer: Optional["Tracer"], registry: Optional[MetricsRegistry] = None
) -> list[dict]:
    """The full exported event list: tracer intervals + step markers +
    counter tracks (the latter two only when a registry is given)."""
    steps = step_marker_events(registry) if registry is not None else None
    counters = counter_track_events(registry) if registry is not None else None
    if tracer is not None:
        return tracer.to_chrome_trace(steps=steps, counters=counters)
    return (steps or []) + (counters or [])


def save_chrome_trace(
    path,
    tracer: Optional["Tracer"],
    registry: Optional[MetricsRegistry] = None,
) -> None:
    Path(path).write_text(json.dumps(chrome_trace_events(tracer, registry)))


def load_chrome_trace(path) -> list[dict]:
    """Load a saved trace; accepts both the plain array this package
    writes and the ``{"traceEvents": [...]}`` envelope other tools emit."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        data = data.get("traceEvents", [])
    if not isinstance(data, list):
        raise ValueError(f"{path}: not a chrome trace (expected array of events)")
    return data


# ----------------------------------------------------------------------
# metrics JSON
# ----------------------------------------------------------------------


def metrics_to_json(
    registry: MetricsRegistry,
    world_size: Optional[int] = None,
    comm_logger=None,
) -> dict:
    """The metrics-dump payload for ``repro train --metrics``.

    When the run's :class:`CommLogger` is supplied, a ``comm_log`` block
    with its independently-accumulated totals is included so consumers
    (and the acceptance test) can reconcile the two pipelines.
    """
    payload = {
        "schema": "repro.obs.metrics/v1",
        "world_size": world_size,
        "metrics": registry.snapshot(),
        "comm_totals_by_family": registry.comm_totals_by_family(),
        "per_step_comm": {
            str(step): cell for step, cell in sorted(registry.per_step_comm().items())
        },
        "fault_counts": registry.fault_counts(),
        "steps": [
            {"rank": m.rank, "step": m.step, "start": m.start, "end": m.end}
            for m in registry.steps
        ],
    }
    if comm_logger is not None:
        payload["comm_log"] = {
            "op_counts": comm_logger.op_counts(),
            "bytes_by_family": comm_logger.bytes_by_family(),
            "total_time_by_family_per_rank": comm_logger.total_time_by_family(),
            "total_time_by_backend_per_rank": comm_logger.total_time_by_backend(),
            "event_counts": comm_logger.event_counts(),
        }
    return payload


def save_metrics(
    path,
    registry: MetricsRegistry,
    world_size: Optional[int] = None,
    comm_logger=None,
) -> None:
    Path(path).write_text(
        json.dumps(
            metrics_to_json(registry, world_size, comm_logger),
            indent=2,
            sort_keys=True,
        )
    )


# ----------------------------------------------------------------------
# trace breakdowns (the `repro trace` subcommand)
# ----------------------------------------------------------------------


def _union_us(spans: list[tuple[float, float]]) -> float:
    spans.sort()
    total, cur_end = 0.0, None
    cur_start = 0.0
    for start, end in spans:
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                total += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    if cur_end is not None:
        total += cur_end - cur_start
    return total


def trace_breakdown(events: list[dict]) -> dict:
    """Aggregate a loaded chrome trace into renderable tables.

    Returns::

        {
          "ranks": sorted rank ids,
          "categories": {category: {"events": n, "sum_us": s, "busy_us": u}},
          "per_rank": {rank: {category: sum_us}},
          "steps": [{"rank", "step", "start", "dur"}...],
          "per_step": {step: {"dur_us": max window, "comm_us": ..}},
          "span_us": trace end - trace start,
        }
    """
    ranks: set[int] = set()
    categories: dict[str, dict] = {}
    cat_spans: dict[str, list[tuple[float, float]]] = defaultdict(list)
    per_rank: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))
    steps: list[dict] = []
    t_min, t_max = None, None
    for event in events:
        if event.get("ph") != "X":
            continue
        ts = float(event.get("ts", 0.0))
        dur = float(event.get("dur", 0.0))
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = ts + dur if t_max is None else max(t_max, ts + dur)
        pid = int(event.get("pid", 0))
        cat = event.get("cat", "")
        if cat == "step":
            step_no = event.get("args", {}).get("step")
            if step_no is None:  # fall back to the "step N" name
                try:
                    step_no = int(str(event.get("name", "")).split()[-1])
                except (ValueError, IndexError):
                    step_no = UNATTRIBUTED_STEP
            steps.append({"rank": pid, "step": int(step_no), "start": ts, "dur": dur})
            continue
        ranks.add(pid)
        cell = categories.setdefault(cat, {"events": 0, "sum_us": 0.0})
        cell["events"] += 1
        cell["sum_us"] += dur
        cat_spans[cat].append((ts, ts + dur))
        per_rank[pid][cat] += dur
    for cat, cell in categories.items():
        cell["busy_us"] = _union_us(cat_spans[cat])

    per_step: dict[int, dict] = {}
    for marker in steps:
        cell = per_step.setdefault(marker["step"], {"dur_us": 0.0, "ranks": 0})
        cell["dur_us"] = max(cell["dur_us"], marker["dur"])
        cell["ranks"] += 1
    return {
        "ranks": sorted(ranks),
        "categories": categories,
        "per_rank": {r: dict(c) for r, c in sorted(per_rank.items())},
        "steps": steps,
        "per_step": per_step,
        "span_us": (t_max - t_min) if t_min is not None else 0.0,
    }
