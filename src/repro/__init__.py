"""repro — a reproduction of MCR-DL (IPDPS 2023) on a simulated GPU cluster.

MCR-DL is a mix-and-match communication runtime for deep learning: a thin,
unified interface between a DL framework and any set of communication
backends (NCCL, MVAPICH2-GDR, OpenMPI, MSCCL, ...), supporting every
point-to-point and collective operation (including vectored and
non-blocking variants), deadlock-free mixed-backend communication, and a
tuning suite that selects the best backend per (operation, message size,
world size).

Because no GPU cluster is available, the runtime here targets a
deterministic discrete-event simulation of a multi-node GPU system
(:mod:`repro.sim`, :mod:`repro.cluster`) instead of CUDA; every backend
moves real NumPy data and charges simulated time from a calibrated cost
model.  See DESIGN.md for the substitution table.

Quickstart::

    from repro import mcr_dl
    from repro.cluster import lassen
    from repro.sim import Simulator

    def main(ctx):
        comm = mcr_dl.init(ctx, ["nccl", "mvapich2-gdr"])
        x = ctx.full(1024, float(ctx.rank))
        h = comm.all_reduce("nccl", x, async_op=True)
        h.wait()
        comm.finalize()

    sim = Simulator(world_size=8, system=lassen())
    sim.run(main)
"""

from repro._version import __version__
from repro.core import api as mcr_dl

__all__ = ["__version__", "mcr_dl"]
