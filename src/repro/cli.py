"""Command-line interface.

A downstream user's entry points without writing a script::

    python -m repro backends                 # list backends + capabilities
    python -m repro systems                  # list modeled systems
    python -m repro tune --system lassen --world-sizes 16 32 \
        --out table.json                     # run the tuning suite
    python -m repro micro --system lassen --op alltoall --world 64
    python -m repro train --model ds-moe --system lassen --world 16 \
        --plan mixed                         # one training measurement
    python -m repro perf --out BENCH_simulator.json \
        --label after                        # wall-clock perf harness
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro._version import __version__


def _system(name: str):
    from repro.cluster import generic_cluster, lassen, thetagpu

    factories = {"lassen": lassen, "thetagpu": thetagpu, "generic": generic_cluster}
    try:
        return factories[name]()
    except KeyError:
        raise SystemExit(f"unknown system {name!r}; choose from {sorted(factories)}")


def _model(name: str):
    from repro.models import (
        DLRMModel,
        DSMoEModel,
        MegatronDenseModel,
        PipelineParallelModel,
        ResNet50Model,
    )

    factories = {
        "ds-moe": DSMoEModel,
        "dlrm": DLRMModel,
        "resnet50": ResNet50Model,
        "megatron-dense": MegatronDenseModel,
        "pipeline-gpt": PipelineParallelModel,
    }
    try:
        return factories[name]()
    except KeyError:
        raise SystemExit(f"unknown model {name!r}; choose from {sorted(factories)}")


def _plan(spec: str, table_path: Optional[str]):
    from repro.core import TuningTable
    from repro.models import BackendPlan

    if spec == "mixed":
        return BackendPlan.mixed(label="MCR-DL")
    if spec == "tuned":
        if not table_path:
            raise SystemExit("--plan tuned requires --table <file.json>")
        return BackendPlan.tuned(TuningTable.load(table_path), label="MCR-DL-T")
    return BackendPlan.pure(spec, label=spec)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_backends(args: argparse.Namespace) -> int:
    from repro.backends import available_backends, backend_class

    print(f"{'backend':<14} {'stream-aware':>12} {'cuda-aware':>10} "
          f"{'vectored':>8} {'gather':>7} {'abi':>6}")
    for name in available_backends():
        p = backend_class(name).properties
        print(
            f"{name:<14} {str(p.stream_aware):>12} {str(p.cuda_aware):>10} "
            f"{str(p.native_vector_collectives):>8} "
            f"{str(p.native_gather_scatter):>7} {p.abi:>6}"
        )
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    for name in ("lassen", "thetagpu", "generic"):
        system = _system(name)
        node = system.node
        print(
            f"{name:<10} {system.max_nodes:>4} nodes x {node.gpus_per_node} "
            f"{node.gpu.name:<16} intra={node.intra_link.name:<9} "
            f"inter={system.inter_link.name}"
        )
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from repro.backends.ops import OpFamily
    from repro.core import Tuner

    ops = [OpFamily(o) for o in args.ops]
    tuner = Tuner(_system(args.system), args.backends, mode=args.mode)
    sizes = [256 * (2**i) for i in range(args.num_sizes)]
    cache = None
    if args.cache:
        from repro.bench.sweep import SweepCache

        cache = SweepCache(args.cache)
    report = tuner.build_table(
        world_sizes=args.world_sizes, message_sizes=sizes, ops=ops,
        jobs=args.jobs, cache=cache,
    )
    report.table.save(args.out)
    print(
        f"tuned {report.table.num_entries()} cells "
        f"({len(ops)} ops x {len(args.world_sizes)} scales x {len(sizes)} sizes) "
        f"-> {args.out}"
    )
    stats = report.sweep_stats
    if stats is not None and (cache is not None or stats.jobs > 1):
        line = f"sweep: {stats.computed}/{stats.units} cells computed"
        if cache is not None:
            line += (
                f", cache {stats.cache_hits} hit(s) / "
                f"{stats.cache_misses} miss(es) in {args.cache}"
            )
        if stats.jobs > 1:
            line += f", {stats.jobs} worker(s)"
        print(line, file=sys.stderr)
    for op in args.ops:
        for ws in args.world_sizes:
            rows = report.table.rows(op, ws)
            winners = {backend for _, backend in rows}
            print(f"  {op} @ {ws} ranks: {len(winners)} backend(s) win bands: "
                  f"{sorted(winners)}")
    return 0


def cmd_micro(args: argparse.Namespace) -> int:
    from repro.backends.ops import OpFamily
    from repro.bench.microbench import omb_latency_us

    system = _system(args.system)
    family = OpFamily(args.op)
    sizes = [1024 * (4**i) for i in range(args.num_sizes)]
    print(f"{args.op} latency (us) at {args.world} ranks on {args.system}:")
    header = f"{'msg_bytes':>10}" + "".join(f"{b:>16}" for b in args.backends)
    print(header)
    for size in sizes:
        row = [omb_latency_us(system, b, family, size, args.world) for b in args.backends]
        print(f"{size:>10}" + "".join(f"{v:>16.2f}" for v in row))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.models import Trainer

    system = _system(args.system)
    model = _model(args.model)
    plan = _plan(args.plan, args.table)
    faults = None
    if args.faults:
        from repro.sim.faults import FaultSpec

        try:
            faults = FaultSpec.parse(args.faults)
        except (ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"bad --faults spec: {exc}")
    adaptive = None
    if args.adapt:
        from repro.core.config import AdaptiveConfig

        adaptive = AdaptiveConfig(enabled=True)
    want_obs = bool(args.trace or args.metrics)
    trainer = Trainer(
        system,
        steps=args.steps,
        warmup=args.warmup,
        faults=faults,
        trace=bool(args.trace),
        metrics=want_obs,
        adaptive=adaptive,
    )
    result = trainer.run(model, args.world, plan)
    payload = {
        "model": result.model,
        "plan": result.plan_label,
        "world_size": result.world_size,
        "step_time_us": result.step_time_us,
        "samples_per_sec": result.samples_per_sec,
        "comm_by_family_us": result.comm_by_family,
        "comm_by_backend_us": result.comm_by_backend,
    }
    if faults is not None:
        payload["fault_events"] = result.fault_events
    if args.trace:
        from repro.obs import save_chrome_trace

        save_chrome_trace(args.trace, result.tracer, result.metrics)
        print(f"trace -> {args.trace}", file=sys.stderr)
    if args.metrics:
        from repro.obs import save_metrics

        save_metrics(
            args.metrics, result.metrics, args.world, comm_logger=result.comm_log
        )
        print(f"metrics -> {args.metrics}", file=sys.stderr)
    # stdout stays pure JSON (scriptable; file notices go to stderr)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.obs import load_chrome_trace, trace_breakdown

    events = load_chrome_trace(args.trace_file)
    breakdown = trace_breakdown(events)
    print(
        f"{args.trace_file}: {len(breakdown['ranks'])} rank(s), "
        f"span {breakdown['span_us']:.1f} us"
    )
    cats = breakdown["categories"]
    if cats:
        print()
        print(format_table(
            ("category", "events", "sum_us", "busy_us"),
            [
                (c, cats[c]["events"], cats[c]["sum_us"], cats[c]["busy_us"])
                for c in sorted(cats)
            ],
        ))
    if breakdown["per_step"]:
        print()
        print(format_table(
            ("step", "ranks", "window_us"),
            [
                (step, cell["ranks"], cell["dur_us"])
                for step, cell in sorted(breakdown["per_step"].items())
            ],
        ))
    if args.per_rank and breakdown["per_rank"]:
        cats_order = sorted({c for pr in breakdown["per_rank"].values() for c in pr})
        print()
        print(format_table(
            ("rank", *cats_order),
            [
                (rank, *[pr.get(c, 0.0) for c in cats_order])
                for rank, pr in breakdown["per_rank"].items()
            ],
        ))
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.bench import perfregress

    results = perfregress.run_scenarios(
        args.scenarios, repeats=args.repeats, progress=print, jobs=args.jobs
    )
    data = perfregress.merge_results(args.out, args.label, results)
    print(f"[{args.label}] {len(results)} scenario(s) -> {args.out}")
    print(perfregress.render_comparison(data))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MCR-DL reproduction: simulated mix-and-match DL communication",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("backends", help="list registered backends").set_defaults(
        func=cmd_backends
    )
    sub.add_parser("systems", help="list modeled systems").set_defaults(
        func=cmd_systems
    )

    tune = sub.add_parser("tune", help="run the tuning suite (paper §V-F)")
    tune.add_argument("--system", default="lassen")
    tune.add_argument("--backends", nargs="+", default=["nccl", "mvapich2-gdr", "msccl"])
    tune.add_argument("--world-sizes", nargs="+", type=int, default=[16])
    tune.add_argument("--ops", nargs="+", default=["allreduce", "allgather", "alltoall"])
    tune.add_argument("--num-sizes", type=int, default=12)
    tune.add_argument("--mode", choices=["analytic", "simulated"], default="analytic")
    tune.add_argument("--out", default="tuning_table.json")
    tune.add_argument(
        "--jobs", type=int, default=1,
        help="fan sweep cells out over N spawn-pool workers (default: "
        "serial; results are byte-identical either way)",
    )
    tune.add_argument(
        "--cache", default=None, metavar="DIR", nargs="?", const=".sweep_cache",
        help="content-addressed on-disk sweep cache directory; re-tuning "
        "recomputes only cells whose system/calibration/config inputs "
        "changed (bare --cache uses ./.sweep_cache)",
    )
    tune.set_defaults(func=cmd_tune)

    micro = sub.add_parser("micro", help="OMB-style micro-benchmark (paper Fig. 2)")
    micro.add_argument("--system", default="lassen")
    micro.add_argument("--op", default="alltoall")
    micro.add_argument("--world", type=int, default=64)
    micro.add_argument("--backends", nargs="+", default=["nccl", "mvapich2-gdr", "msccl"])
    micro.add_argument("--num-sizes", type=int, default=9)
    micro.set_defaults(func=cmd_micro)

    train = sub.add_parser("train", help="measure one training configuration")
    train.add_argument("--model", default="ds-moe")
    train.add_argument("--system", default="lassen")
    train.add_argument("--world", type=int, default=16)
    train.add_argument(
        "--plan", default="mixed",
        help="'mixed', 'tuned', or a backend name for a pure plan",
    )
    train.add_argument("--table", help="tuning table JSON (for --plan tuned)")
    train.add_argument("--steps", type=int, default=2)
    train.add_argument("--warmup", type=int, default=1)
    train.add_argument(
        "--faults", default=None,
        help="seeded fault-injection spec, e.g. "
        "'seed=7;backend=nccl:transient:prob=0.1;link=2000:8000:1.8;"
        "straggler=1:1.4' (see repro.sim.faults.FaultSpec.parse)",
    )
    train.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome/Perfetto trace (stream timeline + step "
        "markers + comm-byte counter tracks) to FILE",
    )
    train.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the observability metrics dump (counters, "
        "histograms, per-step comm breakdown) to FILE as JSON",
    )
    train.add_argument(
        "--adapt", action="store_true",
        help="enable online adaptive dispatch: feedback-driven retuning "
        "of 'auto' table cells plus probation re-probes of quarantined "
        "backends (repro.core.adaptive)",
    )
    train.set_defaults(func=cmd_train)

    trace = sub.add_parser(
        "trace", help="render breakdown tables from a saved --trace file"
    )
    trace.add_argument("trace_file", help="chrome trace JSON written by train --trace")
    trace.add_argument(
        "--per-rank", action="store_true",
        help="also print a per-rank category table",
    )
    trace.set_defaults(func=cmd_trace)

    perf = sub.add_parser(
        "perf", help="wall-clock perf-regression harness for the simulator"
    )
    perf.add_argument("--out", default="BENCH_simulator.json")
    perf.add_argument(
        "--label", choices=["before", "after"], default="after",
        help="which side of the comparison this run records",
    )
    perf.add_argument("--repeats", type=int, default=3)
    perf.add_argument(
        "--jobs", type=int, default=1,
        help="run scenarios in parallel worker processes (quick smoke "
        "runs only — parallel wall numbers are contended)",
    )
    perf.add_argument(
        "--scenarios", nargs="+", default=None,
        help="subset of scenarios to run (default: all)",
    )
    perf.set_defaults(func=cmd_perf)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
