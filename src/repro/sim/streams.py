"""Simulated CUDA streams, events, and per-rank GPU device models.

The synchronization design of MCR-DL (paper §V-C) is entirely about
*ordering*: which stream a kernel is enqueued on, which events gate it,
and when the host blocks.  A stream here is a FIFO of
:class:`~repro.sim.graph.GpuOp` nodes whose timing may resolve *after*
enqueue (deferred, e.g. while a collective waits for peer ranks) —
exactly the asynchrony that lets a "blocking" NCCL call return before
its peers arrive, which is the mechanism behind MCR-DL's deadlock-free
backend mixing (§V-D).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.engine import Engine
from repro.sim.errors import SimError
from repro.sim.graph import CollectiveGroup, GpuOp, resolve
from repro.sim.trace import Tracer


class CudaEvent:
    """A recorded point in a stream's FIFO order.

    Completion time is the completion of the op the event was recorded
    after (or the record's host time on an idle stream); it may resolve
    later than the record call.
    """

    __slots__ = ("label", "_node", "_time")

    def __init__(self, label: str = "event"):
        self.label = label
        self._node: Optional[GpuOp] = None
        self._time: Optional[float] = None

    @property
    def is_recorded(self) -> bool:
        return self._node is not None or self._time is not None

    @property
    def is_resolved(self) -> bool:
        if self._node is not None:
            return self._node.resolved
        return self._time is not None

    def completion_time(self) -> float:
        """The event's timestamp; requires the underlying op resolved."""
        if self._node is not None:
            if not self._node.resolved:
                raise SimError(
                    f"event {self.label!r}: underlying op not yet resolved; "
                    "synchronize via Stream/host wait instead of polling"
                )
            return self._node.end
        if self._time is None:
            raise SimError(f"event {self.label!r} used before being recorded")
        return self._time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CudaEvent({self.label!r})"


class Stream:
    """An in-order execution queue on one simulated GPU."""

    __slots__ = ("gpu", "name", "last", "_gates")

    def __init__(self, gpu: "GPU", name: str):
        self.gpu = gpu
        self.name = name
        #: the most recently enqueued op (FIFO predecessor of the next)
        self.last: Optional[GpuOp] = None
        #: events the next enqueued op must wait on (cudaStreamWaitEvent)
        self._gates: list[GpuOp] = []

    # -- enqueue ----------------------------------------------------------

    def enqueue(
        self,
        duration: float,
        deps: Sequence[GpuOp] = (),
        label: str = "kernel",
        category: str = "compute",
    ) -> GpuOp:
        """Enqueue ``duration`` µs of work; returns its graph node.

        The work starts no earlier than the host's current time, the
        previous op on this stream, any pending event gates, and the
        explicit ``deps``.
        """
        if duration < 0:
            raise SimError(f"negative kernel duration {duration}")
        engine = self.gpu.engine
        if self._gates:
            deps = [d for d in deps if d is not None] + self._gates
            self._gates = []
        elif deps:
            deps = [d for d in deps if d is not None]
        prev = self.last
        node = GpuOp(
            stream=self,
            duration=duration,
            host_ready=engine.now,
            deps=deps,
            label=label,
            category=category,
            prev=prev,
        )
        self.last = node
        # fast path: everything the node waits on is already resolved, so
        # its timing is final right here — equivalent to resolve() for a
        # brand-new node (no flag, no successors) minus the worklist
        blocked = prev is not None and prev.end is None
        if not blocked:
            for d in node.deps:
                if d.end is None:
                    blocked = True
                    break
        if blocked:
            resolve(node, engine)
            return node
        start = node.host_ready
        if prev is not None and prev.end > start:
            start = prev.end
        for d in node.deps:
            if d.end > start:
                start = d.end
        node.start = start
        node.end = start + duration
        gpu = self.gpu
        tracer = gpu.tracer
        if tracer is not None:
            tracer.record(
                rank=gpu.index, stream=self.name, label=label,
                category=category, start=start, end=node.end,
            )
        return node

    def enqueue_collective_member(
        self,
        group: CollectiveGroup,
        deps: Sequence[GpuOp] = (),
        label: str = "collective",
        category: str = "comm",
    ) -> GpuOp:
        """Enqueue this rank's member of a collective ``group``."""
        engine = self.gpu.engine
        if self._gates:
            deps = [d for d in deps if d is not None] + self._gates
            self._gates = []
        elif deps:
            deps = [d for d in deps if d is not None]
        node = GpuOp(
            stream=self,
            duration=None,  # owned by the group
            host_ready=engine.now,
            deps=deps,
            label=label,
            category=category,
            prev=self.last,
            group=group,
        )
        self.last = node
        group.add_member(node)
        return node

    # -- events ------------------------------------------------------------

    def record_event(self, label: str = "event") -> CudaEvent:
        """cudaEventRecord: capture the current FIFO position."""
        event = CudaEvent(label)
        if self.last is not None:
            event._node = self.last
        else:
            event._time = self.gpu.engine.now
        return event

    def wait_event(self, event: CudaEvent) -> None:
        """cudaStreamWaitEvent: gate subsequent work on ``event``.

        Asynchronous — the host does not block, even if the event's op
        has not resolved yet.
        """
        if event._node is not None:
            self._gates.append(event._node)
        elif event._time is None:
            raise SimError(f"wait_event on unrecorded event {event.label!r}")
        # resolved-time-only events gate nothing in the future: any op
        # enqueued from now on already starts at >= host now >= that time.

    # -- host synchronization -------------------------------------------------

    def synchronize(self) -> None:
        """cudaStreamSynchronize: block the host until all enqueued work
        (including deferred collectives) completes."""
        engine = self.gpu.engine
        # Loop: waiting may allow *new* work to land on this stream from
        # collective resolution; in practice one round suffices because
        # only this rank's host enqueues onto its streams.
        node = self.last
        if node is None:
            return
        engine.wait_flag(
            node.completion_flag(engine), reason=f"streamSync({self.name})"
        )

    @property
    def tail_time(self) -> float:
        """Completion time of all *resolved* work (0 for an idle stream).

        Raises if the stream has unresolved (deferred) work — callers
        that may race a pending collective must synchronize instead.
        """
        if self.last is None:
            return 0.0
        if not self.last.resolved:
            raise SimError(
                f"stream {self.name} has unresolved pending work; "
                "synchronize instead of reading tail_time"
            )
        return self.last.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stream({self.gpu.index}:{self.name})"


class GPU:
    """One simulated GPU: a default stream plus named side streams.

    ``kernel_launch_overhead_us`` models the host-side cost of a kernel
    launch (what makes many tiny operations expensive and tensor fusion
    worthwhile).
    """

    def __init__(
        self,
        engine: Engine,
        index: int,
        tracer: Optional[Tracer] = None,
        kernel_launch_overhead_us: float = 4.0,
    ):
        self.engine = engine
        self.index = index
        self.tracer = tracer
        self.kernel_launch_overhead_us = kernel_launch_overhead_us
        self.default_stream = Stream(self, "default")
        self._streams: dict[str, Stream] = {"default": self.default_stream}

    def stream(self, name: str) -> Stream:
        """Get or create a named stream."""
        if name not in self._streams:
            self._streams[name] = Stream(self, name)
        return self._streams[name]

    @property
    def streams(self) -> dict[str, Stream]:
        return dict(self._streams)

    def synchronize(self) -> None:
        """cudaDeviceSynchronize: host waits for every stream."""
        for stream in list(self._streams.values()):
            stream.synchronize()
