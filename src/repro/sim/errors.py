"""Simulation error types."""

from __future__ import annotations


class SimError(RuntimeError):
    """Base class for simulation failures."""


class DeadlockError(SimError):
    """Every live rank is blocked and no timed event is pending.

    Carries per-rank diagnostics so the failing communication pattern can
    be identified — this is the error MCR-DL's mixed-backend
    synchronization (paper §V-D) is designed to prevent.
    """

    def __init__(self, blocked: dict[str, str]):
        self.blocked = dict(blocked)
        lines = "\n".join(f"  {name}: blocked on {why}" for name, why in blocked.items())
        super().__init__(f"simulation deadlock — all live ranks blocked:\n{lines}")


class SimAborted(SimError):
    """The simulation was torn down because another rank raised."""
