"""SPMD simulation entry point.

:class:`Simulator` runs the same user function on every simulated rank —
the analogue of ``mpiexec -n <world_size> python script.py`` — on top of
the discrete-event engine, and returns per-rank results together with the
simulated elapsed time and (optionally) the full stream trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.engine import Engine
from repro.sim.process import RankContext
from repro.sim.streams import GPU
from repro.sim.trace import Tracer


@dataclass
class SimResult:
    """Outcome of one simulated SPMD run."""

    #: simulated wall time of the whole job in microseconds
    elapsed_us: float
    #: each rank's return value, indexed by rank
    rank_results: list[Any]
    #: the timeline trace (None unless tracing was enabled)
    tracer: Optional[Tracer] = None
    #: free-form counters populated by the runtime
    stats: dict = field(default_factory=dict)
    #: the full cross-rank shared dictionary (comm logger, rendezvous
    #: tables, ...) as it stood at job end
    shared: dict = field(default_factory=dict)
    #: the unified :class:`repro.obs.MetricsRegistry` (None unless
    #: observability was enabled via ``observe=``)
    metrics: Optional[Any] = None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_us / 1e3

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6


class Simulator:
    """Runs an SPMD function across ``world_size`` simulated ranks.

    Args:
        world_size: number of ranks (one GPU each, densely packed onto
            the system's nodes).
        system: a :class:`repro.cluster.SystemSpec`; defaults to a small
            generic V100 cluster.
        trace: collect a full per-stream timeline (needed for the overlap
            tests and the breakdown figures; costs memory).
        seed: base RNG seed, combined with the rank for per-rank streams.
        kernel_launch_overhead_us: host cost of each kernel launch.
        max_events: engine safety valve against runaway simulations.
        stragglers: explicit {rank: compute slowdown factor} map.
        faults: a :class:`repro.sim.faults.FaultSpec`; its stragglers
            merge with the explicit map (explicit wins), its backend and
            link faults are injected deterministically via a
            :class:`~repro.sim.faults.FaultInjector` installed into the
            job's shared state.  None (the default) adds no fault
            machinery at all — simulated timings are bit-identical to a
            Simulator built without the argument.
        observe: enable the unified observability pipeline.  ``True``
            creates a fresh :class:`repro.obs.MetricsRegistry`; a
            registry instance can also be passed directly (to accumulate
            across runs).  The registry is installed into the job's
            shared state under ``"obs"`` where the comm logger, tracer,
            fault injector, and fusion engine find it.  Observers never
            sleep or alter dispatch, so simulated timings are
            bit-identical with and without this flag (perfgate-enforced).
    """

    def __init__(
        self,
        world_size: int,
        system: Any = None,
        trace: bool = False,
        seed: int = 0,
        kernel_launch_overhead_us: float = 4.0,
        max_events: int = 200_000_000,
        stragglers: "dict[int, float] | None" = None,
        faults: Any = None,
        observe: Any = False,
    ):
        if system is None:
            from repro.cluster import generic_cluster

            system = generic_cluster(max_nodes=max(64, (world_size + 3) // 4))
        system.validate_world_size(world_size)
        self.world_size = world_size
        self.system = system
        self.trace = trace
        self.seed = seed
        self.kernel_launch_overhead_us = kernel_launch_overhead_us
        self.max_events = max_events
        self.faults = faults
        if observe:
            from repro.obs.metrics import MetricsRegistry

            self.observer = observe if isinstance(observe, MetricsRegistry) else MetricsRegistry()
        else:
            self.observer = None
        #: {rank: compute slowdown factor}; ranks not listed run at 1.0
        self.stragglers = dict(stragglers or {})
        if faults is not None:
            faults.validate()
            for rank, factor in faults.straggler_map(world_size).items():
                self.stragglers.setdefault(rank, factor)
        for rank, factor in self.stragglers.items():
            if not 0 <= rank < world_size:
                raise ValueError(f"straggler rank {rank} out of range")
            if factor <= 0:
                raise ValueError(f"straggler factor must be positive, got {factor}")

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> SimResult:
        """Execute ``fn(ctx, *args, **kwargs)`` on every rank.

        Raises whatever any rank raised (first failure aborts the job),
        or :class:`repro.sim.DeadlockError` if all ranks block forever.
        """
        engine = Engine(max_events=self.max_events)
        tracer = Tracer() if self.trace else None
        shared: dict = {"stats": {}}
        if self.observer is not None:
            shared["obs"] = self.observer
            if tracer is not None:
                tracer.observer = self.observer
        injector = None
        if self.faults is not None and (
            self.faults.backend_faults or self.faults.link_faults
        ):
            from repro.sim.faults import FaultInjector

            injector = FaultInjector(self.faults)
            injector.observer = self.observer
            shared["fault_injector"] = injector
        contexts = []
        for rank in range(self.world_size):
            gpu = GPU(
                engine,
                rank,
                tracer=tracer,
                kernel_launch_overhead_us=self.kernel_launch_overhead_us,
            )
            ctx = RankContext(
                engine,
                rank,
                self.world_size,
                gpu,
                self.system,
                shared,
                seed=self.seed,
                compute_scale=self.stragglers.get(rank, 1.0),
            )
            contexts.append(ctx)

        results: list[Any] = [None] * self.world_size

        def make_body(ctx: RankContext) -> Callable[[], Any]:
            def body() -> Any:
                # bind the functional mcr_dl API (Listing 1) to this rank
                from repro.core import api as _mcr_api

                _mcr_api._bind_context(ctx)
                try:
                    results[ctx.rank] = fn(ctx, *args, **kwargs)
                    # a real job joins its device before exiting; this also
                    # surfaces dangling (never-matched) collectives as
                    # deadlocks instead of silently dropping them.
                    ctx.device_synchronize()
                finally:
                    _mcr_api._unbind_context()
                return results[ctx.rank]

            return body

        for ctx in contexts:
            engine.add_process(f"rank{ctx.rank}", make_body(ctx))
        if injector is not None and injector.link_schedule is not None:
            # hook the degradation window onto the topology for the run;
            # restored afterwards so a shared SystemSpec stays clean
            prior = getattr(self.system, "link_degradation", None)
            self.system.link_degradation = injector.link_schedule
            try:
                elapsed = engine.run()
            finally:
                self.system.link_degradation = prior
        else:
            elapsed = engine.run()
        if self.observer is not None:
            for name, value in engine.stats().items():
                self.observer.set_gauge(f"engine.{name}", value)
            self.observer.set_gauge("sim.elapsed_us", elapsed)
            self.observer.set_gauge("sim.world_size", self.world_size)
        return SimResult(
            elapsed_us=elapsed,
            rank_results=results,
            tracer=tracer,
            stats=shared["stats"],
            shared=shared,
            metrics=self.observer,
        )
