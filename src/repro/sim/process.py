"""Per-rank execution context.

A :class:`RankContext` is what the user's SPMD function receives — the
analogue of "this process" in an MPI program.  It exposes the rank's GPU
(streams/events), host-time primitives, deterministic per-rank RNG,
tensor factories on the rank's device, and a shared-state dictionary the
communication layer uses for rendezvous.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.sim.engine import Engine, Flag
from repro.sim.streams import GPU, CudaEvent, Stream
from repro.tensor import SimTensor, DType, float32
from repro.tensor.tensor import Device, from_numpy


class RankContext:
    """The view of the simulation from one rank."""

    def __init__(
        self,
        engine: Engine,
        rank: int,
        world_size: int,
        gpu: GPU,
        system: Any,
        shared: dict,
        seed: int = 0,
        compute_scale: float = 1.0,
    ):
        self.engine = engine
        self.rank = rank
        self.world_size = world_size
        self.gpu = gpu
        self.system = system
        #: shared mutable state visible to every rank (rendezvous tables,
        #: p2p match queues). Safe because only one rank runs at a time.
        self.shared = shared
        self.rng = np.random.default_rng((seed, rank))
        self.device = Device("cuda", rank)
        if compute_scale <= 0:
            raise ValueError(f"compute_scale must be positive, got {compute_scale}")
        #: straggler modeling: every launched kernel's duration is
        #: multiplied by this factor (>1 = a slow GPU / noisy neighbour)
        self.compute_scale = compute_scale

    # -- time ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self.engine.now

    def sleep(self, duration_us: float, reason: str = "host") -> None:
        """Occupy the host thread for ``duration_us`` virtual microseconds."""
        self.engine.sleep(duration_us, reason)

    def wait_flag(self, flag: Flag, reason: Optional[str] = None) -> None:
        self.engine.wait_flag(flag, reason)

    def new_flag(self, label: str = "flag") -> Flag:
        return self.engine.new_flag(label)

    # -- GPU / streams ---------------------------------------------------

    def stream(self, name: str) -> Stream:
        return self.gpu.stream(name)

    @property
    def default_stream(self) -> Stream:
        return self.gpu.default_stream

    def launch(
        self,
        duration_us: float,
        stream: Optional[Stream] = None,
        label: str = "kernel",
        category: str = "compute",
        deps: Sequence = (),
    ):
        """Launch an async kernel; charges the host launch overhead.

        Returns the kernel's graph node (a :class:`repro.sim.graph.GpuOp`).
        The host does *not* block for the kernel itself.
        """
        stream = stream or self.gpu.default_stream
        # plain label as the reason: launch overhead is a pure time advance
        # on the hot path and the f-string decoration was pure overhead
        self.engine.sleep(self.gpu.kernel_launch_overhead_us, label)
        return stream.enqueue(
            duration_us * self.compute_scale, deps=deps, label=label, category=category
        )

    def record_event(self, stream: Optional[Stream] = None, label: str = "event") -> CudaEvent:
        stream = stream or self.gpu.default_stream
        return stream.record_event(label)

    def event_synchronize(self, event: CudaEvent) -> None:
        """cudaEventSynchronize: host blocks until the event completes."""
        node = event._node
        if node is not None:
            self.engine.wait_flag(
                node.completion_flag(self.engine), reason=f"eventSync({event.label})"
            )
        else:
            self.engine.wait_until(
                event.completion_time(), reason=f"eventSync({event.label})"
            )

    def stream_synchronize(self, stream: Optional[Stream] = None) -> None:
        (stream or self.gpu.default_stream).synchronize()

    def device_synchronize(self) -> None:
        self.gpu.synchronize()

    # -- tensor factories (on this rank's device) -------------------------

    def zeros(self, shape: int | Sequence[int], dtype: DType = float32) -> SimTensor:
        return from_numpy(np.zeros(shape, dtype=dtype.numpy), self.device)

    def ones(self, shape: int | Sequence[int], dtype: DType = float32) -> SimTensor:
        return from_numpy(np.ones(shape, dtype=dtype.numpy), self.device)

    def full(self, shape: int | Sequence[int], value: float, dtype: DType = float32) -> SimTensor:
        return from_numpy(np.full(shape, value, dtype=dtype.numpy), self.device)

    def arange(self, n: int, dtype: DType = float32) -> SimTensor:
        return from_numpy(np.arange(n, dtype=dtype.numpy), self.device)

    def rand(self, shape: int | Sequence[int], dtype: DType = float32) -> SimTensor:
        return from_numpy(self.rng.random(shape).astype(dtype.numpy), self.device)

    def tensor(self, data, dtype: DType = float32) -> SimTensor:
        return from_numpy(np.asarray(data, dtype=dtype.numpy), self.device)

    def virtual_tensor(self, numel: int, dtype: DType = float32) -> SimTensor:
        """A timing-only tensor (declared size, no real storage) for
        workload modeling; see :class:`repro.tensor.SimTensor`."""
        from repro.tensor.tensor import virtual

        return virtual(numel, dtype, self.device)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankContext(rank={self.rank}/{self.world_size}, t={self.now:.1f}us)"
