"""Cooperative-thread discrete-event engine.

Each simulated rank runs user code on a dedicated OS thread, but a baton
protocol guarantees **exactly one** thread executes at any moment, so no
user-visible locking is needed and execution is fully deterministic.
Virtual time (microseconds, float) only advances when the running thread
blocks on a future event; ties are broken FIFO by a sequence counter.

This is the classic process-interaction DES style (as in SimPy), using
threads instead of generators so that deeply nested user code — a whole
training loop calling into MCR-DL collectives — can block naturally
anywhere in its call stack, exactly like an MPI program.

The baton is a raw ``_thread`` lock per process (a binary semaphore:
held while the process runs or is parked, released exactly once to wake
it) rather than a ``threading.Event`` — the handoff is the engine's
hottest path and the raw lock roughly halves its cost.  Two direct-
handoff fast paths avoid the cross-thread round-trip entirely when the
next event belongs to the process that is already running:

* :meth:`Engine.wait_until` advances the clock inline when no other
  event is scheduled before the requested wake time (no heap churn, no
  lock operations);
* :meth:`_Proc.park` continues inline when the popped event is its own
  (same pop order as a schedule/park round-trip, minus the baton).

Neither fast path reorders events: both fire only when the parking
process would have been popped next anyway, so simulated timestamps are
identical with and without them.
"""

from __future__ import annotations

import _thread
import itertools
import threading
from heapq import heappop, heappush
from typing import Callable, Optional

from repro.sim.errors import DeadlockError, SimAborted, SimError


class _Kill(BaseException):
    """Internal: unwinds a parked rank thread during teardown.

    Derives from BaseException so user ``except Exception`` blocks cannot
    swallow it.
    """


class Flag:
    """A one-shot completion signal with a *timestamped* fire.

    Work handles and rendezvous completions fire flags with the simulated
    time at which the underlying operation finishes (possibly in the
    future relative to the firing rank's clock); waiters resume at
    ``max(their local now, ready_time)``.
    """

    __slots__ = ("_engine", "ready_time", "_waiters", "label", "callbacks")

    def __init__(self, engine: "Engine", label: str = "flag"):
        self._engine = engine
        self.ready_time: Optional[float] = None
        self._waiters: list["_Proc"] = []
        self.label = label
        #: called synchronously at fire time with no arguments (used by
        #: deferred logging; keep callbacks free of blocking calls)
        self.callbacks: list[Callable[[], None]] = []

    @property
    def is_set(self) -> bool:
        return self.ready_time is not None

    def fire(self, ready_time: float) -> None:
        """Mark complete at ``ready_time`` and schedule all waiters."""
        if self.ready_time is not None:
            raise SimError(f"flag {self.label!r} fired twice")
        if ready_time < 0:
            raise SimError(f"flag {self.label!r} fired at negative time {ready_time}")
        self.ready_time = ready_time
        if self._waiters:
            engine = self._engine
            wake = max(ready_time, engine.now)
            for proc in self._waiters:
                engine._schedule(wake, proc)
            self._waiters.clear()
        for cb in self.callbacks:
            cb()
        self.callbacks.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Flag({self.label!r}, ready={self.ready_time})"


class _Proc:
    """One simulated process (rank or helper) backed by an OS thread.

    ``wake`` is a raw lock used as a binary semaphore: it is held (locked)
    from construction onward, both while the process runs and while it is
    parked; waking the process is exactly one ``release()``, and parking
    is exactly one blocking ``acquire()``.
    """

    __slots__ = (
        "engine",
        "name",
        "fn",
        "wake",
        "thread",
        "finished",
        "blocked_on",
        "result",
        "epoch",
        "_kill_sent",
    )

    def __init__(self, engine: "Engine", name: str, fn: Callable[[], object]):
        self.engine = engine
        self.name = name
        self.fn = fn
        self.wake = _thread.allocate_lock()
        self.wake.acquire()  # parked until first dispatched
        self.finished = False
        self.blocked_on: Optional[str] = None
        self.result: object = None
        #: dispatch generation; heap entries carry the epoch they were
        #: scheduled under, and entries from an older epoch are skipped
        #: (lazy cancellation — see wait_flag_deadline)
        self.epoch = 0
        #: teardown wake already delivered (guards double-release in _fail)
        self._kill_sent = False
        self.thread = threading.Thread(target=self._body, name=f"sim-{name}", daemon=True)

    def _body(self) -> None:
        self.wake.acquire()
        if self.engine._failure is not None:
            return
        try:
            self.result = self.fn()
        except _Kill:
            return
        except BaseException as exc:  # propagate user errors to run()
            self.finished = True
            self.engine._fail(exc)
            return
        self.finished = True
        self.engine._proc_exited(self)

    def park(self, reason: str) -> None:
        """Hand the baton off and sleep until re-scheduled.

        Direct handoff: when the earliest scheduled event is this very
        process, ``_dispatch_next`` returns True and no lock round-trip
        happens — execution continues inline with the clock advanced.
        """
        self.blocked_on = reason
        if not self.engine._dispatch_next(self):
            self.wake.acquire()
        self.blocked_on = None
        if self.engine._failure is not None:
            raise _Kill()


class Engine:
    """The virtual clock and scheduler.

    Not reentrant: one simulation per Engine. Time is in microseconds.
    """

    def __init__(self, max_events: int = 200_000_000):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, _Proc, int]] = []
        self._seq = itertools.count()
        self._procs: list[_Proc] = []
        self._failure: Optional[BaseException] = None
        self._main_baton = threading.Event()
        self._started = False
        self._events_dispatched = 0
        self._max_events = max_events
        self._current: Optional[_Proc] = None

    def stats(self) -> dict:
        """Engine-level counters for observability exports."""
        return {
            "events_dispatched": self._events_dispatched,
            "processes": len(self._procs),
            "now_us": self.now,
        }

    # -- process management -------------------------------------------

    def add_process(self, name: str, fn: Callable[[], object]) -> None:
        if self._started:
            raise SimError("cannot add processes after run() started")
        self._procs.append(_Proc(self, name, fn))

    def run(self) -> float:
        """Run to completion; return final simulated time (microseconds)."""
        if self._started:
            raise SimError("Engine.run() called twice")
        self._started = True
        if not self._procs:
            return self.now
        for proc in self._procs:
            proc.thread.start()
            self._schedule(0.0, proc)
        self._dispatch_next()
        self._main_baton.wait()
        for proc in self._procs:
            proc.thread.join(timeout=30.0)
            if proc.thread.is_alive():  # pragma: no cover - defensive
                raise SimError(f"simulation thread {proc.name} failed to exit")
        if self._failure is not None:
            raise self._failure
        return self.now

    # -- scheduling core (only ever touched by the single running
    #    thread, or by main before dispatch starts) --------------------

    def _schedule(self, time: float, proc: _Proc) -> None:
        heappush(self._heap, (time, next(self._seq), proc, proc.epoch))

    def _dispatch_next(self, parking: Optional[_Proc] = None) -> bool:
        """Hand the baton to the earliest scheduled process (or finish).

        Returns True when the caller (``parking``) must *not* block: the
        popped event was its own (direct handoff — continue inline) or the
        simulation is tearing down (the caller re-checks ``_failure`` and
        raises).  Returns False after waking another process.
        """
        if self._failure is not None:
            # teardown already in progress; wake main.
            self._main_baton.set()
            return True
        self._events_dispatched += 1
        if self._events_dispatched > self._max_events:
            self._fail(SimError(f"event budget exceeded ({self._max_events})"))
            return True
        while self._heap:
            time, _, proc, epoch = heappop(self._heap)
            if epoch != proc.epoch:
                # stale entry: the process was already woken through a
                # different event (e.g. a flag fired before its deadline
                # timer, or vice versa) — skip it.
                continue
            if time > self.now:
                self.now = time
            self._current = proc
            proc.epoch += 1
            if proc is parking:
                return True
            proc.wake.release()
            return False
        live = [p for p in self._procs if not p.finished]
        if not live:
            self._main_baton.set()
            return False
        self._fail(DeadlockError({p.name: p.blocked_on or "?" for p in live}))
        return True

    def _proc_exited(self, proc: _Proc) -> None:
        self._dispatch_next()

    def _fail(self, exc: BaseException) -> None:
        """Abort the simulation: record the error, unwind every thread."""
        if self._failure is None:
            self._failure = exc
        for proc in self._procs:
            # parked threads wake, see _failure, and raise _Kill; the
            # _kill_sent guard keeps the one-release-per-park invariant
            # if _fail is ever re-entered during teardown
            if not proc.finished and not proc._kill_sent:
                proc._kill_sent = True
                try:
                    proc.wake.release()
                except RuntimeError:  # pragma: no cover - mid-handoff race
                    pass
        self._main_baton.set()

    # -- blocking primitives (called from rank threads) -----------------

    def current_proc(self) -> _Proc:
        proc = self._current
        if proc is None:  # pragma: no cover - defensive
            raise SimError("no process is running")
        return proc

    def wait_until(self, time: float, reason: str = "timer") -> None:
        """Block the calling process until virtual ``time``."""
        proc = self._current
        if proc is None:  # pragma: no cover - defensive
            raise SimError("no process is running")
        if time <= self.now:
            return
        heap = self._heap
        if not heap or time < heap[0][0]:
            # direct handoff to self: no other event can run before
            # ``time``, so a schedule/park round-trip would pop this very
            # process — advance the clock inline instead.  The event
            # budget is still charged so runaway single-process loops are
            # caught exactly as before.
            self._events_dispatched += 1
            if self._events_dispatched > self._max_events:
                self._fail(SimError(f"event budget exceeded ({self._max_events})"))
                raise _Kill()
            self.now = time
            return
        self._schedule(time, proc)
        proc.park(reason)

    def sleep(self, duration: float, reason: str = "sleep") -> None:
        if duration < 0:
            raise SimError(f"negative sleep {duration}")
        self.wait_until(self.now + duration, reason)

    def wait_flag(self, flag: Flag, reason: Optional[str] = None) -> None:
        """Block until ``flag`` fires; resume at its ready_time."""
        ready = flag.ready_time
        if ready is not None:
            # already fired: either a pure time advance or a no-op
            if ready > self.now:
                self.wait_until(ready, reason or flag.label)
            return
        proc = self.current_proc()
        flag._waiters.append(proc)
        proc.park(reason or flag.label)

    def wait_flag_deadline(
        self, flag: Flag, deadline: float, reason: Optional[str] = None
    ) -> bool:
        """Block until ``flag`` fires or virtual ``deadline`` passes.

        Returns True when the flag completed at or before ``deadline``
        (the caller resumes at the usual wake time); returns False on
        timeout (the caller resumes at ``deadline`` and is no longer
        registered as a waiter, so a later fire cannot wake it).

        Implemented with *two* heap entries — the deadline timer and the
        eventual flag wake — relying on epoch-based lazy cancellation in
        :meth:`_dispatch_next` to discard whichever loses the race.
        """
        ready = flag.ready_time
        if ready is not None:
            if ready <= deadline:
                if ready > self.now:
                    self.wait_until(ready, reason or flag.label)
                return True
            if deadline > self.now:
                self.wait_until(deadline, reason or flag.label)
            return False
        if deadline <= self.now:
            return False
        proc = self.current_proc()
        flag._waiters.append(proc)
        self._schedule(deadline, proc)
        proc.park(reason or flag.label)
        ready = flag.ready_time
        if ready is not None and ready <= deadline:
            return True
        # timed out (or the flag fired past the deadline): deregister so
        # a later fire cannot deliver a spurious wake into an unrelated
        # park of this process.
        try:
            flag._waiters.remove(proc)
        except ValueError:
            pass
        return False

    def new_flag(self, label: str = "flag") -> Flag:
        return Flag(self, label)
