"""Discrete-event simulation substrate.

This package replaces the CUDA runtime and the physical cluster with a
deterministic discrete-event simulation:

* :class:`~repro.sim.engine.Engine` — virtual clock + cooperative rank
  threads (exactly one runs at a time, like an MPI job under a
  deterministic scheduler).
* :class:`~repro.sim.streams.GPU` / :class:`~repro.sim.streams.Stream` /
  :class:`~repro.sim.streams.CudaEvent` — the stream/event ordering
  semantics MCR-DL's synchronization design (paper §V-C/V-D, Fig. 4/5)
  is built on.
* :class:`~repro.sim.simulator.Simulator` — SPMD entry point: runs the
  same user function on every rank, returns per-rank results plus the
  simulated elapsed time and an optional timeline trace.

Deadlocks are *real* here: if every rank is blocked and no timed event
is pending, the engine raises :class:`~repro.sim.errors.DeadlockError`
with per-rank diagnostics.
"""

from repro.sim.errors import SimError, DeadlockError, SimAborted
from repro.sim.engine import Engine, Flag
from repro.sim.streams import GPU, Stream, CudaEvent
from repro.sim.process import RankContext
from repro.sim.trace import Tracer, TraceRecord
from repro.sim.simulator import Simulator, SimResult
from repro.sim.faults import (
    BackendFault,
    FaultInjector,
    FaultSpec,
    LinkFault,
    LinkSchedule,
)

__all__ = [
    "BackendFault",
    "FaultInjector",
    "FaultSpec",
    "LinkFault",
    "LinkSchedule",
    "SimError",
    "DeadlockError",
    "SimAborted",
    "Engine",
    "Flag",
    "GPU",
    "Stream",
    "CudaEvent",
    "RankContext",
    "Tracer",
    "TraceRecord",
    "Simulator",
    "SimResult",
]
