"""Deferred GPU task graph.

Real CUDA work is *asynchronous*: a kernel (or NCCL collective) is
enqueued now but its start time may depend on events that have not
happened yet — most importantly, on **other ranks arriving** at a
collective.  MCR-DL's deadlock-freedom (paper §V-D) relies exactly on
this: a blocking NCCL call returns once enqueued, so cross-backend
ordering mismatches cannot stall the host.

To model that faithfully, GPU work is a graph of :class:`GpuOp` nodes.
A node's timing resolves only when its stream predecessor, its explicit
dependencies, and (for collectives) *every* participating rank's member
node are ready.  Resolution propagates iteratively; host threads that
need a node's completion park on a :class:`~repro.sim.engine.Flag` fired
at resolution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.sim.engine import Engine, Flag
from repro.sim.errors import SimError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.streams import Stream


class GpuOp:
    """One unit of GPU work on one stream.

    Timing fields:

    * ``host_ready`` — host time of the launch (enqueue point);
    * ``end`` — completion time; ``None`` until resolved.

    Start time is ``max(host_ready, prev.end, dep ends)`` where ``prev``
    is the previous op on the same stream (FIFO order).
    """

    __slots__ = (
        "stream",
        "label",
        "category",
        "duration",
        "host_ready",
        "deps",
        "prev",
        "group",
        "end",
        "start",
        "_flag",
        "succs",
    )

    def __init__(
        self,
        stream: "Stream",
        duration: Optional[float],
        host_ready: float,
        deps: Sequence["GpuOp"],
        label: str,
        category: str,
        prev: Optional["GpuOp"],
        group: Optional["CollectiveGroup"] = None,
    ):
        self.stream = stream
        self.label = label
        self.category = category
        self.duration = duration
        self.host_ready = host_ready
        #: None-free and owned by this node; Stream.enqueue* sanitize
        self.deps = deps
        self.prev = prev
        self.group = group
        self.end: Optional[float] = None
        self.start: Optional[float] = None
        self._flag: Optional[Flag] = None
        self.succs: list[object] = []  # GpuOp | CollectiveGroup

    # -- flags ----------------------------------------------------------

    def completion_flag(self, engine: Engine) -> Flag:
        """A flag fired at this op's completion time (created lazily)."""
        if self._flag is None:
            self._flag = engine.new_flag(f"gpuop:{self.label}")
            if self.end is not None:
                self._flag.fire(self.end)
        return self._flag

    @property
    def resolved(self) -> bool:
        return self.end is not None

    # -- resolution -------------------------------------------------------

    def _blockers(self) -> list["GpuOp"]:
        out = []
        if self.prev is not None and not self.prev.resolved:
            out.append(self.prev)
        for d in self.deps:
            if not d.resolved:
                out.append(d)
        return out

    def _ready_time(self) -> float:
        t = self.host_ready
        if self.prev is not None:
            t = max(t, self.prev.end)
        for d in self.deps:
            t = max(t, d.end)
        return t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"end={self.end:.1f}" if self.resolved else "pending"
        return f"GpuOp({self.label!r} on {self.stream.name}, {state})"


class CollectiveGroup:
    """A collective's per-rank member nodes with a single joint start.

    All members start at the global max of their individual ready times
    (NCCL semantics: the kernel spins until every peer has arrived) and
    finish together ``duration`` later.  ``on_resolve`` performs the data
    movement exactly once.
    """

    __slots__ = (
        "expected",
        "members",
        "duration",
        "on_resolve",
        "flag",
        "_resolved",
        "label",
        "channel_store",
        "channel_key",
        "interference",
    )

    def __init__(self, expected: int, flag: Flag, label: str = "collective"):
        self.expected = expected
        self.members: list[GpuOp] = []
        self.duration: Optional[float] = None
        self.on_resolve: Optional[Callable[[], None]] = None
        self.flag = flag
        self._resolved = False
        self.label = label
        #: optional wire-lane serialization: bandwidth-bound collectives
        #: on the same injection path cannot run concurrently (paper §V-C
        #: notes concurrent large-message operations show no benefit).
        #: The group starts no earlier than channel_store[channel_key]
        #: and pushes that lane's tail to its end; it also advances the
        #: cross-lane "__shared__" tail by ``interference x duration`` so
        #: different lanes only partially overlap.
        self.channel_store: Optional[dict] = None
        self.channel_key: Optional[str] = None
        self.interference: float = 0.0

    @property
    def complete(self) -> bool:
        return len(self.members) == self.expected and self.duration is not None

    def add_member(self, member: GpuOp) -> None:
        if len(self.members) >= self.expected:
            raise SimError(f"collective {self.label!r}: too many members")
        self.members.append(member)


def resolve(seed: "GpuOp | CollectiveGroup", engine: Engine) -> None:
    """Resolve ``seed`` and propagate to everything it unblocks.

    Iterative worklist; registering on unresolved blockers guarantees a
    later resolution attempt when those blockers resolve.
    """
    work: list[object] = [seed]
    while work:
        item = work.pop()
        if isinstance(item, GpuOp):
            if item.group is not None:
                work.append(item.group)
                continue
            if item.resolved:
                continue
            blockers = item._blockers()
            if blockers:
                for b in blockers:
                    if item not in b.succs:
                        b.succs.append(item)
                continue
            start = item._ready_time()
            if item.duration is None:  # pragma: no cover - defensive
                raise SimError(f"plain op {item.label!r} has no duration")
            item.start = start
            item.end = start + item.duration
            _finish_node(item, engine)
            work.extend(item.succs)
        else:  # CollectiveGroup
            group = item
            if group._resolved or not group.complete:
                continue
            blockers: list[GpuOp] = []
            for m in group.members:
                blockers.extend(m._blockers())
            if blockers:
                for b in blockers:
                    if group not in b.succs:
                        b.succs.append(group)
                continue
            start = max(m._ready_time() for m in group.members)
            if group.channel_store is not None:
                start = apply_wire_lane(
                    group.channel_store,
                    group.channel_key,
                    start,
                    group.duration,
                    group.interference,
                )
            end = start + group.duration
            group._resolved = True
            for m in group.members:
                m.start = start
                m.end = end
                _finish_node(m, engine)
            if group.on_resolve is not None:
                group.on_resolve()
            group.flag.fire(end)
            for m in group.members:
                work.extend(m.succs)


def apply_wire_lane(
    store: dict, lane: str, ready: float, duration: float, interference: float
) -> float:
    """Admit a bandwidth-bound transfer onto a wire lane.

    Same-lane transfers serialize fully; transfers on other lanes are
    throttled through the ``__shared__`` tail, which every transfer
    advances by ``interference * duration`` — so the aggregate fabric
    sustains at most ``1/interference`` lanes' worth of concurrent
    bandwidth.  Returns the admitted start time and updates the store.
    """
    start = max(ready, store.get(lane, 0.0), store.get("__shared__", 0.0))
    store[lane] = start + duration
    store["__shared__"] = max(store.get("__shared__", 0.0), start) + (
        interference * duration
    )
    return start


def _finish_node(node: GpuOp, engine: Engine) -> None:
    """Trace the interval and fire any host waiters."""
    stream = node.stream
    tracer = stream.gpu.tracer
    if tracer is not None:
        tracer.record(
            rank=stream.gpu.index,
            stream=stream.name,
            label=node.label,
            category=node.category,
            start=node.start,
            end=node.end,
        )
    if node._flag is not None and not node._flag.is_set:
        node._flag.fire(node.end)
