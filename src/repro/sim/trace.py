"""Timeline tracing.

The tracer records every kernel/communication interval on every stream.
It backs three things: the overlap assertions in the synchronization
tests (Fig. 4's naive-vs-MCR-DL comparison), the communication-logging
extension (paper §V-E), and the compute-vs-communication breakdowns of
Figures 1 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One interval of work on one rank's stream."""

    rank: int
    stream: str
    label: str
    category: str  # "compute" | "comm" | "host" | ...
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects :class:`TraceRecord` entries during a simulation."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self.enabled = True
        #: optional :class:`repro.obs.MetricsRegistry`; when set, every
        #: recorded interval is forwarded as a ``kind="trace"`` event in
        #: the unified schema (duck-typed — this module stays free of an
        #: obs import so the simulator core has no upward dependency)
        self.observer = None

    def record(
        self, rank: int, stream: str, label: str, category: str, start: float, end: float
    ) -> None:
        if self.enabled:
            self.records.append(TraceRecord(rank, stream, label, category, start, end))
            if self.observer is not None:
                from repro.obs.metrics import ObsEvent

                self.observer.observe(
                    ObsEvent(
                        kind="trace",
                        rank=rank,
                        stream=stream,
                        backend="",
                        family=category,
                        nbytes=0,
                        step=self.observer.current_step(rank),
                        start=start,
                        end=end,
                        detail=label,
                    )
                )

    # -- queries -------------------------------------------------------

    def filter(
        self,
        rank: Optional[int] = None,
        category: Optional[str] = None,
        label_contains: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        out = []
        for r in self.records:
            if rank is not None and r.rank != rank:
                continue
            if category is not None and r.category != category:
                continue
            if label_contains is not None and label_contains not in r.label:
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return out

    def busy_time(self, records: Iterable[TraceRecord]) -> float:
        """Total *union* busy time of the given intervals (overlaps merged)."""
        spans = sorted((r.start, r.end) for r in records)
        total = 0.0
        cur_start, cur_end = None, None
        for start, end in spans:
            if cur_end is None or start > cur_end:
                if cur_end is not None:
                    total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_end is not None:
            total += cur_end - cur_start
        return total

    def overlap_time(
        self, a: Iterable[TraceRecord], b: Iterable[TraceRecord]
    ) -> float:
        """Total time during which intervals from both sets are active."""
        a_spans = sorted((r.start, r.end) for r in a)
        b_spans = sorted((r.start, r.end) for r in b)
        total, i, j = 0.0, 0, 0
        while i < len(a_spans) and j < len(b_spans):
            start = max(a_spans[i][0], b_spans[j][0])
            end = min(a_spans[i][1], b_spans[j][1])
            if end > start:
                total += end - start
            if a_spans[i][1] <= b_spans[j][1]:
                i += 1
            else:
                j += 1
        return total

    def category_totals(self, rank: Optional[int] = None) -> dict[str, float]:
        """Union busy time per category (per rank if given)."""
        cats = {r.category for r in self.records if rank is None or r.rank == rank}
        return {
            c: self.busy_time(self.filter(rank=rank, category=c)) for c in sorted(cats)
        }

    # -- export ----------------------------------------------------------

    def to_chrome_trace(
        self,
        steps: Optional[list[dict]] = None,
        counters: Optional[list[dict]] = None,
    ) -> list[dict]:
        """Export as Chrome trace-event JSON (load in chrome://tracing or
        Perfetto): one process per rank, one thread per stream, complete
        ("X") events in microseconds.

        ``steps`` and ``counters`` are pre-built event lists (training
        step markers and counter-track samples, see
        :mod:`repro.obs.export`) appended verbatim after the interval
        events."""
        events: list[dict] = []
        thread_ids: dict[tuple[int, str], int] = {}
        for record in self.records:
            key = (record.rank, record.stream)
            if key not in thread_ids:
                thread_ids[key] = len(
                    [k for k in thread_ids if k[0] == record.rank]
                )
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": record.rank,
                        "tid": thread_ids[key],
                        "args": {"name": record.stream},
                    }
                )
            events.append(
                {
                    "ph": "X",
                    "name": record.label,
                    "cat": record.category,
                    "pid": record.rank,
                    "tid": thread_ids[key],
                    "ts": record.start,
                    "dur": record.duration,
                }
            )
        if steps:
            events.extend(steps)
        if counters:
            events.extend(counters)
        return events

    def save_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` output as a JSON file."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_chrome_trace()))
