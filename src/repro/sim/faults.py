"""Deterministic fault injection for the discrete-event simulation.

Production runtimes must stay correct when a backend, link, or rank
misbehaves — not only when everything is healthy.  This module is the
*injection* side of MCR-DL's graceful-degradation story: a seeded
:class:`FaultSpec` describes stragglers, degraded/flapping links, and
per-backend transient or permanent failures; a :class:`FaultInjector`
turns the spec into deterministic per-operation decisions that the
communicator consults at dispatch time (see ``repro.core.comm``).

Determinism and deadlock-freedom
--------------------------------

Every decision is a pure function of ``(seed, communicator id, backend,
per-backend operation index)``, so the same seed always produces the
same fault trace, and — crucially — every rank of an SPMD program
observes the *same* fault at the *same* logical operation.  That
symmetry is what keeps degraded-mode dispatch deadlock-free (paper
§V-D): when a backend fails permanently, all ranks quarantine it at the
same collective and fail over to the same survivor.

Two deliberate scoping rules preserve the symmetry:

* **permanent** failures trigger on the per-backend *collective* index
  (every rank of a communicator posts the same Nth collective);
* point-to-point operations only see **transient** faults, decided on a
  per-directed-channel index shared by the matched sender/receiver pair.

Link degradation is time-windowed (the duration multiplier is applied
by the single rank that resolves each transfer, so per-rank clock skew
cannot split the decision).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, replace
from typing import NamedTuple, Optional

import numpy as np

#: domain-separation constants for the seeded decision streams
_BACKEND_STREAM = 0xFA01
_STRAGGLER_STREAM = 0x57A6


def _crc(text: str) -> int:
    """Stable 32-bit hash for seeding (``hash()`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


# ----------------------------------------------------------------------
# spec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackendFault:
    """Failure mode of one communication backend.

    ``kind="transient"``: each operation independently faults with
    probability ``prob``; a faulted op fails between 1 and
    ``max_consecutive`` consecutive dispatch attempts before clearing
    (the runtime retries with exponential backoff).

    ``kind="permanent"``: the backend fails hard at its ``at_op``-th
    collective (1-based) and every one after.  ``until_op`` bounds the
    outage: indices at/after it are healthy again, so probation probes
    (see :mod:`repro.core.adaptive`) can observe the recovery and
    un-quarantine the backend.  The runtime quarantines it and fails
    over to a surviving backend either way.
    """

    backend: str
    kind: str  # "transient" | "permanent"
    prob: float = 0.0
    max_consecutive: int = 2
    at_op: Optional[int] = None
    until_op: Optional[int] = None

    def validate(self) -> None:
        if self.kind not in ("transient", "permanent"):
            raise ValueError(f"bad backend fault kind {self.kind!r}")
        if self.kind == "transient":
            if not 0.0 <= self.prob <= 1.0:
                raise ValueError(f"transient fault prob {self.prob} not in [0, 1]")
            if self.max_consecutive < 1:
                raise ValueError("max_consecutive must be >= 1")
        else:
            if self.at_op is None or self.at_op < 1:
                raise ValueError("permanent fault needs at_op >= 1")
            if self.until_op is not None and self.until_op <= self.at_op:
                raise ValueError("permanent fault until_op must be > at_op")


@dataclass(frozen=True)
class LinkFault:
    """A fabric degradation window.

    While active, every transfer's simulated duration is multiplied by
    ``factor`` (>1 = slower).  ``period_us`` > 0 makes the link *flap*:
    within the window it is degraded for the first ``duty`` fraction of
    each period and healthy for the rest.  A non-empty ``backend``
    scopes the window to transfers dispatched through that backend's
    fabric lane (e.g. only NVLink/IB paths driven by ``nccl``), which is
    how a degradation can *reorder* backends instead of slowing all of
    them uniformly; the default ``""`` degrades every backend.
    """

    start_us: float = 0.0
    end_us: float = float("inf")
    factor: float = 2.0
    period_us: float = 0.0
    duty: float = 0.5
    backend: str = ""

    def validate(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"link fault factor must be positive, got {self.factor}")
        if self.end_us <= self.start_us:
            raise ValueError("link fault window is empty")
        if self.period_us < 0:
            raise ValueError("link fault period must be >= 0")
        if not 0.0 < self.duty <= 1.0:
            raise ValueError("link fault duty must be in (0, 1]")

    def factor_at(self, t_us: float, backend: str = "") -> float:
        if self.backend and self.backend != backend:
            return 1.0
        if not self.start_us <= t_us < self.end_us:
            return 1.0
        if self.period_us > 0:
            phase = ((t_us - self.start_us) % self.period_us) / self.period_us
            if phase >= self.duty:
                return 1.0
        return self.factor


class LinkSchedule:
    """Composed duration multiplier over a set of link fault windows."""

    __slots__ = ("faults",)

    def __init__(self, faults: "tuple[LinkFault, ...]"):
        self.faults = tuple(faults)

    def factor_at(self, t_us: float, backend: str = "") -> float:
        factor = 1.0
        for f in self.faults:
            factor *= f.factor_at(t_us, backend)
        return factor


@dataclass
class FaultSpec:
    """Declarative, seeded description of everything that goes wrong."""

    seed: int = 0
    backend_faults: "tuple[BackendFault, ...]" = ()
    link_faults: "tuple[LinkFault, ...]" = ()
    #: explicit {rank: compute slowdown factor} stragglers
    stragglers: dict = field(default_factory=dict)
    #: additionally pick this many random ranks (seeded) as stragglers
    random_stragglers: int = 0
    straggler_scale: float = 1.5

    @property
    def enabled(self) -> bool:
        return bool(
            self.backend_faults
            or self.link_faults
            or self.stragglers
            or self.random_stragglers
        )

    def validate(self) -> None:
        for bf in self.backend_faults:
            bf.validate()
        for lf in self.link_faults:
            lf.validate()
        for rank, scale in self.stragglers.items():
            if scale <= 0:
                raise ValueError(f"straggler scale for rank {rank} must be positive")
        if self.random_stragglers < 0:
            raise ValueError("random_stragglers must be >= 0")
        if self.straggler_scale <= 0:
            raise ValueError("straggler_scale must be positive")

    def straggler_map(self, world_size: int) -> dict:
        """Resolve explicit + seeded-random stragglers for one job."""
        out = {int(r): float(s) for r, s in self.stragglers.items()}
        if self.random_stragglers:
            rng = np.random.default_rng((self.seed, _STRAGGLER_STREAM))
            count = min(self.random_stragglers, world_size)
            for rank in rng.choice(world_size, size=count, replace=False):
                out.setdefault(int(rank), self.straggler_scale)
        return {r: s for r, s in out.items() if 0 <= r < world_size}

    # -- parsing (the CLI --faults spec) --------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a compact fault spec.

        Semicolon-separated clauses::

            seed=7
            backend=nccl:transient:prob=0.2[:max=3]
            backend=mvapich2-gdr:permanent:at=5[:until=50]
            link=START:END:FACTOR[:period=P][:duty=D][:backend=NAME]
                                                        (END may be 'inf')
            straggler=RANK:SCALE
            stragglers=COUNT:SCALE                      (seeded random picks)

        A string starting with ``{`` is parsed as JSON with the same
        field names as the dataclasses.
        """
        text = text.strip()
        if text.startswith("{"):
            return cls._from_json(json.loads(text))
        seed = 0
        backend_faults: list[BackendFault] = []
        link_faults: list[LinkFault] = []
        stragglers: dict = {}
        random_stragglers = 0
        straggler_scale = 1.5
        for clause in filter(None, (c.strip() for c in text.split(";"))):
            key, _, value = clause.partition("=")
            key = key.strip().lower()
            if not value:
                raise ValueError(f"bad fault clause {clause!r}")
            if key == "seed":
                seed = int(value)
            elif key == "backend":
                backend_faults.append(cls._parse_backend(value))
            elif key == "link":
                link_faults.append(cls._parse_link(value))
            elif key == "straggler":
                rank_s, _, scale_s = value.partition(":")
                stragglers[int(rank_s)] = float(scale_s or 1.5)
            elif key == "stragglers":
                count_s, _, scale_s = value.partition(":")
                random_stragglers = int(count_s)
                if scale_s:
                    straggler_scale = float(scale_s)
            else:
                raise ValueError(f"unknown fault clause {key!r} in {clause!r}")
        spec = cls(
            seed=seed,
            backend_faults=tuple(backend_faults),
            link_faults=tuple(link_faults),
            stragglers=stragglers,
            random_stragglers=random_stragglers,
            straggler_scale=straggler_scale,
        )
        spec.validate()
        return spec

    @staticmethod
    def _parse_backend(value: str) -> BackendFault:
        parts = value.split(":")
        if len(parts) < 2:
            raise ValueError(f"bad backend fault {value!r} (need NAME:KIND)")
        name, kind, *opts = parts
        prob, max_consecutive, at_op, until_op = 0.0, 2, None, None
        for opt in opts:
            okey, _, oval = opt.partition("=")
            if okey == "prob":
                prob = float(oval)
            elif okey == "at":
                at_op = int(oval)
            elif okey == "until":
                until_op = int(oval)
            elif okey == "max":
                max_consecutive = int(oval)
            else:
                raise ValueError(f"unknown backend fault option {opt!r}")
        return BackendFault(
            backend=name, kind=kind, prob=prob,
            max_consecutive=max_consecutive, at_op=at_op, until_op=until_op,
        )

    @staticmethod
    def _parse_link(value: str) -> LinkFault:
        parts = value.split(":")
        if len(parts) < 3:
            raise ValueError(f"bad link fault {value!r} (need START:END:FACTOR)")
        start, end, factor = parts[0], parts[1], parts[2]
        kwargs = {
            "start_us": float(start),
            "end_us": float("inf") if end in ("inf", "") else float(end),
            "factor": float(factor.lstrip("x")),
        }
        for opt in parts[3:]:
            okey, _, oval = opt.partition("=")
            if okey == "period":
                kwargs["period_us"] = float(oval)
            elif okey == "duty":
                kwargs["duty"] = float(oval)
            elif okey == "backend":
                from repro.backends.base import canonical_name

                kwargs["backend"] = canonical_name(oval)
            else:
                raise ValueError(f"unknown link fault option {opt!r}")
        return LinkFault(**kwargs)

    @classmethod
    def _from_json(cls, data: dict) -> "FaultSpec":
        spec = cls(
            seed=int(data.get("seed", 0)),
            backend_faults=tuple(
                BackendFault(**bf) for bf in data.get("backend_faults", ())
            ),
            link_faults=tuple(LinkFault(**lf) for lf in data.get("link_faults", ())),
            stragglers={int(r): float(s) for r, s in data.get("stragglers", {}).items()},
            random_stragglers=int(data.get("random_stragglers", 0)),
            straggler_scale=float(data.get("straggler_scale", 1.5)),
        )
        spec.validate()
        return spec


# ----------------------------------------------------------------------
# injector
# ----------------------------------------------------------------------


class FaultDecision(NamedTuple):
    """One operation's injected failure."""

    kind: str  # "transient" | "permanent"
    #: transient only: dispatch attempts that fail before the op clears
    fail_attempts: int


class FaultInjector:
    """Turns a :class:`FaultSpec` into deterministic per-op decisions.

    One injector is shared by every rank of a job (installed into the
    simulation's shared state by :class:`repro.sim.Simulator`); it is
    stateless with respect to callers, so identical queries from
    different ranks always agree.
    """

    def __init__(self, spec: FaultSpec):
        spec.validate()
        self.spec = spec
        from repro.backends.base import canonical_name

        self._by_backend: dict[str, list[BackendFault]] = {}
        for bf in spec.backend_faults:
            self._by_backend.setdefault(canonical_name(bf.backend), []).append(bf)
        self.link_schedule: Optional[LinkSchedule] = (
            LinkSchedule(
                tuple(
                    replace(lf, backend=canonical_name(lf.backend))
                    if lf.backend
                    else lf
                    for lf in spec.link_faults
                )
            )
            if spec.link_faults
            else None
        )
        #: optional :class:`repro.obs.MetricsRegistry` (installed by the
        #: Simulator); injected decisions are reported into the unified
        #: event schema.  Recording never changes a decision.
        self.observer = None

    def backend_fault(
        self,
        comm_id: str,
        backend: str,
        op_index: int,
        p2p: bool = False,
        rank: int = -1,
        now: float = 0.0,
    ) -> Optional[FaultDecision]:
        """The fault (if any) injected into one dispatch.

        ``op_index`` is the caller's per-(communicator, backend) counter:
        the collective index for collectives, the per-directed-channel
        index for point-to-point — both symmetric across the ranks that
        must agree (see module docstring).  ``rank`` and ``now`` are
        observability tags only (who asked, at what simulated time).
        """
        decision = self._decide(comm_id, backend, op_index, p2p)
        if decision is not None and self.observer is not None:
            from repro.obs.metrics import ObsEvent

            self.observer.observe(
                ObsEvent(
                    kind="fault",
                    rank=rank,
                    stream="",
                    backend=backend,
                    family=f"injected.{decision.kind}",
                    nbytes=0,
                    step=self.observer.current_step(rank),
                    start=now,
                    end=now,
                    detail=f"{comm_id}#{op_index}",
                )
            )
        return decision

    def _decide(
        self, comm_id: str, backend: str, op_index: int, p2p: bool
    ) -> Optional[FaultDecision]:
        specs = self._by_backend.get(backend)
        if not specs:
            return None
        if not p2p:
            for bf in specs:
                if (
                    bf.kind == "permanent"
                    and op_index >= bf.at_op
                    and (bf.until_op is None or op_index < bf.until_op)
                ):
                    return FaultDecision("permanent", 0)
        for bf in specs:
            if bf.kind == "transient" and bf.prob > 0.0:
                rng = np.random.default_rng(
                    (self.spec.seed, _BACKEND_STREAM, _crc(comm_id), _crc(backend), op_index)
                )
                if rng.random() < bf.prob:
                    attempts = 1
                    if bf.max_consecutive > 1:
                        attempts = 1 + int(rng.integers(0, bf.max_consecutive))
                    return FaultDecision("transient", attempts)
        return None
