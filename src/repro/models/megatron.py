"""Dense Megatron-DeepSpeed model (paper §VI-4, Figure 10).

The paper's dense configuration: 6.7B parameters, tensor (model)
parallelism degree 2, ZeRO stage 2, trained on ThetaGPU with a mixture
of MSCCL and MVAPICH2-GDR.  Communication per step:

* **tensor-parallel Allreduce** of activations — two per layer in
  forward and two in backward, within each TP pair (latency-sensitive,
  medium messages);
* **ZeRO-2 Reduce-Scatter** of gradients across the data-parallel group
  (each rank keeps only its shard);
* **Allgather** of updated parameters after the sharded optimizer step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.common import (
    chunk_bytes,
    gemm_us,
    transformer_layer_forward_flops,
    transformer_layer_params,
    validate_positive,
)
from repro.models.plan import CommDriver
from repro.sim.process import RankContext


@dataclass(frozen=True)
class MegatronConfig:
    """6.7B dense GPT (Megatron-LM shapes) with TP=2, ZeRO-2."""

    hidden: int = 4096
    layers: int = 32
    seq_len: int = 2048
    micro_batch: int = 1
    tensor_parallel: int = 2
    dtype_bytes: int = 2
    grad_bucket_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        validate_positive(
            hidden=self.hidden, layers=self.layers, tensor_parallel=self.tensor_parallel
        )

    @property
    def tokens_per_rank(self) -> int:
        return self.micro_batch * self.seq_len

    def params(self) -> int:
        return transformer_layer_params(self.hidden) * self.layers

    def shard_param_bytes(self) -> int:
        """Per-rank parameter shard after TP split."""
        return self.params() * self.dtype_bytes // self.tensor_parallel

    def tp_message_bytes(self) -> int:
        """One TP activation allreduce: tokens x hidden."""
        return self.tokens_per_rank * self.hidden * self.dtype_bytes


class MegatronDenseModel:
    """One dense Megatron-DeepSpeed training step."""

    name = "megatron-dense"

    def __init__(self, config: MegatronConfig = MegatronConfig()):
        self.config = config

    def samples_per_step(self, world_size: int) -> float:
        # data-parallel degree = world / TP
        return self.config.micro_batch * world_size / self.config.tensor_parallel

    def run_step(self, ctx: RankContext, driver: CommDriver) -> None:
        cfg = self.config
        gpu = ctx.system.node.gpu
        tp = cfg.tensor_parallel
        if ctx.world_size % tp != 0:
            raise ValueError(
                f"world size {ctx.world_size} not divisible by TP degree {tp}"
            )
        # process groups: consecutive ranks form a TP group; equal TP
        # positions across groups form the data-parallel group
        tp_base = (ctx.rank // tp) * tp
        tp_group = driver.subgroup(
            list(range(tp_base, tp_base + tp)), comm_id=f"tp{tp_base}"
        )
        dp_group = driver.subgroup(
            list(range(ctx.rank % tp, ctx.world_size, tp)),
            comm_id=f"dp{ctx.rank % tp}",
        )
        # each rank computes 1/TP of every layer
        layer_fwd = gemm_us(
            gpu,
            transformer_layer_forward_flops(cfg.hidden, cfg.tokens_per_rank)
            / cfg.tensor_parallel,
        )
        tp_msg = ctx.virtual_tensor(max(1, cfg.tp_message_bytes() // 4))

        # ---- forward: per layer, compute + 2 TP allreduces ----------------
        for layer in range(cfg.layers):
            ctx.launch(layer_fwd / 2.0, label=f"fwd:attn:{layer}")
            tp_group.all_reduce(tp_msg)  # attention output allreduce
            ctx.launch(layer_fwd / 2.0, label=f"fwd:mlp:{layer}")
            tp_group.all_reduce(tp_msg)  # MLP output allreduce

        # ---- backward: 2x compute + 2 TP allreduces per layer, plus
        # ZeRO-2 gradient reduce-scatter buckets overlapped ------------------
        shard_bytes = cfg.shard_param_bytes()
        buckets = chunk_bytes(shard_bytes, cfg.grad_bucket_bytes)
        handles = []
        per_layers = max(1, cfg.layers // max(len(buckets), 1))
        bucket_idx = 0
        dp_size = max(1, ctx.world_size // tp)

        def post_zero2_bucket(bucket_bytes: int):
            numel = max(dp_size, bucket_bytes // 4)
            numel -= numel % dp_size
            grad_in = ctx.virtual_tensor(numel)
            grad_out = ctx.virtual_tensor(numel // dp_size)
            return dp_group.reduce_scatter(grad_out, grad_in, async_op=True)

        for layer in reversed(range(cfg.layers)):
            ctx.launch(layer_fwd, label=f"bwd:attn:{layer}")
            tp_group.all_reduce(tp_msg)
            ctx.launch(layer_fwd, label=f"bwd:mlp:{layer}")
            tp_group.all_reduce(tp_msg)
            if bucket_idx < len(buckets) and (cfg.layers - layer) % per_layers == 0:
                handles.append(post_zero2_bucket(buckets[bucket_idx]))
                bucket_idx += 1
        while bucket_idx < len(buckets):
            handles.append(post_zero2_bucket(buckets[bucket_idx]))
            bucket_idx += 1
        for h in handles:
            h.wait()

        # ---- sharded optimizer + parameter allgather (ZeRO-2) -------------
        ctx.launch(
            3.0 * shard_bytes / dp_size / (gpu.memory_bw_gbps * 1e3),
            label="optimizer",
        )
        ag_numel = max(dp_size, shard_bytes // 4)
        ag_numel -= ag_numel % dp_size
        own = ctx.virtual_tensor(ag_numel // dp_size)
        full = ctx.virtual_tensor(ag_numel)
        h = dp_group.all_gather(full, own, async_op=True)
        h.wait()
