"""Training-run harness: steps, timing, and communication breakdowns.

Runs a workload model under a backend plan + framework profile on a
simulated system and reports the numbers the paper's figures plot:
throughput (samples/s), step time, and per-op / per-backend
communication time from the logging extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ext.fusion import FusionConfig
from repro.models.plan import BackendPlan, CommDriver, FrameworkProfile, PROFILES
from repro.sim.simulator import SimResult, Simulator


@dataclass
class TrainResult:
    """Measured outcome of one training configuration."""

    model: str
    plan_label: str
    framework: str
    world_size: int
    steps: int
    step_time_us: float
    samples_per_sec: float
    #: average per-rank communication time per step, by op family (µs)
    comm_by_family: dict = field(default_factory=dict)
    #: average per-rank communication time per step, by backend (µs)
    comm_by_backend: dict = field(default_factory=dict)
    #: average per-rank GPU busy time per step by tracer category (µs);
    #: empty unless tracing was enabled
    busy_by_category: dict = field(default_factory=dict)
    #: fault-handling events during the measured steps, by kind
    #: (retry/failover/quarantine); empty for a healthy run
    fault_events: dict = field(default_factory=dict)
    #: the run's Tracer (None unless ``trace=True``)
    tracer: Optional[object] = None
    #: the run's :class:`repro.obs.MetricsRegistry` (None unless
    #: ``metrics=True``)
    metrics: Optional[object] = None
    #: the run's shared :class:`repro.ext.logging_ext.CommLogger`
    comm_log: Optional[object] = None

    @property
    def comm_time_us(self) -> float:
        return sum(self.comm_by_family.values())

    @property
    def comm_fraction(self) -> float:
        """Exposed communication share of the step (union busy time when
        a trace is available, summed log durations otherwise)."""
        if self.busy_by_category:
            comm = self.busy_by_category.get("comm", 0.0)
            return min(1.0, comm / self.step_time_us) if self.step_time_us else 0.0
        return (
            min(1.0, self.comm_time_us / self.step_time_us) if self.step_time_us else 0.0
        )


class Trainer:
    """Runs N measured training steps of a model on a simulated system."""

    def __init__(
        self,
        system,
        steps: int = 3,
        warmup: int = 1,
        fusion: Optional[FusionConfig] = None,
        trace: bool = False,
        faults=None,
        metrics: bool = False,
        adaptive=None,
    ):
        if steps < 1:
            raise ValueError("need at least one measured step")
        self.system = system
        self.steps = steps
        self.warmup = warmup
        self.fusion = fusion
        self.trace = trace
        #: optional repro.sim.faults.FaultSpec injected into the run
        self.faults = faults
        #: enable the unified observability registry (repro.obs) with
        #: per-step attribution of every comm interval
        self.metrics = metrics
        #: optional repro.core.config.AdaptiveConfig enabling online
        #: adaptive dispatch (feedback-driven retuning + probation)
        self.adaptive = adaptive

    def run(
        self,
        model,
        world_size: int,
        plan: BackendPlan,
        profile: FrameworkProfile = PROFILES["mcr-dl"],
    ) -> TrainResult:
        steps, warmup = self.steps, self.warmup
        fusion = self.fusion
        adaptive = self.adaptive

        def rank_main(ctx):
            driver = CommDriver(
                ctx, plan, profile=profile, fusion=fusion, enable_logging=True,
                adaptive=adaptive,
            )
            logger = driver.comm.logger
            # step attribution (repro.obs): steps are numbered globally
            # 0..warmup+steps-1 across warmup and measured phases; the
            # "train.first_measured_step" gauge marks the boundary
            obs = ctx.shared.get("obs")
            for i in range(warmup):
                if obs is not None:
                    obs.begin_step(ctx.rank, i, ctx.now)
                model.run_step(ctx, driver)
                driver.step_sync()
                if obs is not None:
                    obs.end_step(ctx.rank, ctx.now)
            driver.barrier()
            if ctx.rank == 0 and logger is not None:
                logger.clear()  # measure steady state only
            t0 = ctx.now
            for i in range(steps):
                if obs is not None:
                    obs.begin_step(ctx.rank, warmup + i, ctx.now)
                model.run_step(ctx, driver)
                driver.step_sync()
                if obs is not None:
                    obs.end_step(ctx.rank, ctx.now)
            driver.barrier()
            elapsed = ctx.now - t0
            driver.finalize()
            return elapsed

        sim = Simulator(
            world_size,
            system=self.system,
            trace=self.trace,
            faults=self.faults,
            observe=self.metrics,
        )
        result: SimResult = sim.run(rank_main)
        if result.metrics is not None:
            result.metrics.set_gauge("train.first_measured_step", warmup)
            result.metrics.set_gauge("train.measured_steps", steps)
        elapsed_us = max(result.rank_results)
        step_time = elapsed_us / steps
        samples_per_sec = model.samples_per_step(world_size) / (step_time / 1e6)

        comm_by_family: dict = {}
        comm_by_backend: dict = {}
        fault_events: dict = {}
        shared_logger = result.shared.get("comm_logger")
        if shared_logger is not None:
            comm_by_family = {
                k: v / steps for k, v in shared_logger.total_time_by_family().items()
            }
            comm_by_backend = {
                k: v / steps for k, v in shared_logger.total_time_by_backend().items()
            }
            fault_events = shared_logger.event_counts()

        busy: dict = {}
        if result.tracer is not None:
            per_rank = result.tracer.category_totals(rank=0)
            busy = {k: v / (steps + warmup) for k, v in per_rank.items()}

        return TrainResult(
            model=model.name,
            plan_label=plan.label,
            framework=profile.name,
            world_size=world_size,
            steps=steps,
            step_time_us=step_time,
            samples_per_sec=samples_per_sec,
            comm_by_family=comm_by_family,
            comm_by_backend=comm_by_backend,
            busy_by_category=busy,
            fault_events=fault_events,
            tracer=result.tracer,
            metrics=result.metrics,
            comm_log=shared_logger,
        )


def scaling_efficiency(results: "list[TrainResult]") -> dict[int, float]:
    """Efficiency vs the smallest scale: T(p) / (T(p0) * p / p0)."""
    if not results:
        return {}
    ordered = sorted(results, key=lambda r: r.world_size)
    base = ordered[0]
    out = {}
    for r in ordered:
        ideal = base.samples_per_sec * (r.world_size / base.world_size)
        out[r.world_size] = r.samples_per_sec / ideal
    return out
