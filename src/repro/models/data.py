"""Synthetic data generators for the workload models.

The paper trains DS-MoE on the Pile and DLRM on "synthetic data batches"
(§VI-4).  Neither dataset is needed for communication fidelity — only
the *distributional* properties that shape communication volumes are:

* DLRM's categorical features follow heavy-tailed (Zipf-like)
  popularity, which determines how many unique embedding rows a batch
  touches (lookup volume) and how lookups spread across table shards
  (alltoallv imbalance);
* MoE gating follows a peaked softmax, which determines per-expert
  token counts (alltoallv imbalance and capacity overflow).

These generators produce real index/probability arrays with those
properties, deterministic under a seed.
"""

from __future__ import annotations

import numpy as np


def zipfian_indices(
    rng: np.random.Generator,
    n_rows: int,
    n_lookups: int,
    exponent: float = 1.05,
) -> np.ndarray:
    """Sample ``n_lookups`` embedding-row indices with Zipf popularity.

    Uses inverse-CDF sampling over a truncated Zipf distribution (NumPy's
    ``zipf`` is unbounded); exponent ~1.05 matches published DLRM traces'
    heavy tails.
    """
    if n_rows < 1 or n_lookups < 0:
        raise ValueError("n_rows must be >= 1 and n_lookups >= 0")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    ranks = np.arange(1, n_rows + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(n_lookups)
    return np.searchsorted(cdf, draws).astype(np.int64)


def unique_row_fraction(indices: np.ndarray, n_rows: int) -> float:
    """Fraction of the table a batch actually touches (drives the
    memory-bound lookup volume)."""
    if indices.size == 0:
        return 0.0
    return float(np.unique(indices).size) / n_rows


def shard_counts(indices: np.ndarray, n_shards: int) -> np.ndarray:
    """How many lookups land on each of ``n_shards`` row-range shards —
    the per-destination counts of DLRM's embedding alltoallv."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if indices.size == 0:
        return np.zeros(n_shards, dtype=np.int64)
    hi = int(indices.max()) + 1
    rows_per_shard = max(1, -(-hi // n_shards))
    shard = np.minimum(indices // rows_per_shard, n_shards - 1)
    return np.bincount(shard, minlength=n_shards).astype(np.int64)


def gating_token_counts(
    rng: np.random.Generator,
    n_tokens: int,
    n_experts: int,
    temperature: float = 1.0,
) -> np.ndarray:
    """Token count per expert from a softmax gate over random logits.

    Lower ``temperature`` = peakier gate = more imbalance (the effect
    MoE capacity factors exist to absorb).  Counts sum to ``n_tokens``.
    """
    if n_tokens < 0 or n_experts < 1:
        raise ValueError("need n_tokens >= 0 and n_experts >= 1")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    logits = rng.normal(size=n_experts) / temperature
    probs = np.exp(logits - logits.max())
    probs /= probs.sum()
    counts = rng.multinomial(n_tokens, probs)
    return counts.astype(np.int64)


def imbalance_factor(counts: np.ndarray) -> float:
    """max/mean load — 1.0 is perfectly balanced."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0 or counts.sum() == 0:
        return 1.0
    return float(counts.max() / counts.mean())


def synthetic_token_batch(
    rng: np.random.Generator, batch: int, seq_len: int, vocab: int = 50_257
) -> np.ndarray:
    """A Pile-like token-id batch (uniform ids; content is irrelevant to
    communication, only the shape matters)."""
    if batch < 1 or seq_len < 1:
        raise ValueError("batch and seq_len must be >= 1")
    return rng.integers(0, vocab, size=(batch, seq_len), dtype=np.int64)
