"""DeepSpeed-MoE training-step model (paper §III-D, §VI-4, Figure 8).

The paper trains a 4B-parameter ``350M+PR-MoE-32/64`` model: a 350M
dense GPT base (24 layers, hidden 1024) where half the layers carry a
Pyramid-Residual MoE FFN (32 experts in the shallow half, 64 in the
deep half).  Communication per step:

* **Alltoall** twice per MoE layer per direction (token dispatch to the
  owning expert and result combine), with volume ``tokens x hidden`` —
  the cost that grows with device count and dominates at scale;
* **Allreduce** of the dense (non-expert) gradients across the data
  parallel group, bucketed DDP-style and overlapped with backward
  (expert gradients stay inside expert-parallel groups and need no
  global allreduce);
* a small gating softmax before each dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.common import (
    chunk_bytes,
    gemm_us,
    skewed_counts,
    transformer_layer_forward_flops,
    transformer_layer_params,
    validate_positive,
)
from repro.models.plan import CommDriver
from repro.sim.process import RankContext


@dataclass(frozen=True)
class MoEConfig:
    """350M+PR-MoE-32/64 defaults from the paper."""

    hidden: int = 1024
    layers: int = 24
    seq_len: int = 2048
    micro_batch: int = 6
    #: every ``moe_every``-th layer is an MoE layer (PR-MoE: half)
    moe_every: int = 2
    #: bytes per element (fp16 activations/gradients)
    dtype_bytes: int = 2
    #: DDP gradient bucket size
    grad_bucket_bytes: int = 25 * 1024 * 1024
    #: token duplication from top-2 gating / capacity slack: multiplies
    #: the Alltoall payload (DeepSpeed-MoE defaults route each token to
    #: its top expert plus the shared residual path with capacity slack)
    capacity_factor: float = 1.2
    #: gating imbalance in [0, 1]; > 0 switches dispatch to all_to_allv
    gating_skew: float = 0.0

    def __post_init__(self) -> None:
        validate_positive(
            hidden=self.hidden,
            layers=self.layers,
            seq_len=self.seq_len,
            micro_batch=self.micro_batch,
            moe_every=self.moe_every,
        )

    @property
    def tokens_per_rank(self) -> int:
        return self.micro_batch * self.seq_len

    @property
    def moe_layers(self) -> int:
        return self.layers // self.moe_every

    @property
    def dense_layers(self) -> int:
        return self.layers - self.moe_layers

    def dense_param_bytes(self) -> int:
        """Gradient bytes that cross the data-parallel allreduce."""
        return transformer_layer_params(self.hidden) * self.layers * self.dtype_bytes

    def alltoall_bytes(self) -> int:
        """Per-rank Alltoall payload for one dispatch/combine."""
        return int(
            self.tokens_per_rank * self.hidden * self.dtype_bytes * self.capacity_factor
        )


class DSMoEModel:
    """One training step of DeepSpeed-MoE under a CommDriver."""

    name = "ds-moe"

    def __init__(self, config: MoEConfig = MoEConfig()):
        self.config = config

    def samples_per_step(self, world_size: int) -> float:
        """Global sequences per step (throughput numerator)."""
        return self.config.micro_batch * world_size

    # -- per-piece compute costs ---------------------------------------------

    def _layer_forward_us(self, ctx: RankContext) -> float:
        gpu = ctx.system.node.gpu
        flops = transformer_layer_forward_flops(self.config.hidden, self.config.tokens_per_rank)
        return gemm_us(gpu, flops)

    def _gate_us(self, ctx: RankContext) -> float:
        # softmax gate over experts: tiny GEMM + top-1 select
        gpu = ctx.system.node.gpu
        flops = 2.0 * self.config.tokens_per_rank * self.config.hidden * 64
        return gemm_us(gpu, flops)

    # -- the step ---------------------------------------------------------------

    def run_step(self, ctx: RankContext, driver: CommDriver) -> None:
        cfg = self.config
        layer_fwd = self._layer_forward_us(ctx)
        gate = self._gate_us(ctx)
        a2a_elems = max(ctx.world_size, cfg.alltoall_bytes() // 4)
        a2a_elems -= a2a_elems % ctx.world_size
        a2a_in = ctx.virtual_tensor(a2a_elems)
        a2a_out = ctx.virtual_tensor(a2a_elems)

        def moe_alltoall(tag: str) -> None:
            if cfg.gating_skew > 0 and a2a_in.numel() >= ctx.world_size:
                counts = skewed_counts(
                    a2a_in.numel(), ctx.world_size, cfg.gating_skew,
                    seed_row=[(ctx.rank * 31 + i * 17) % 97 / 97.0 for i in range(ctx.world_size)],
                )
                # imbalanced token routing needs the vectored form (§V-A)
                h = driver.all_to_allv(
                    a2a_out, a2a_in,
                    scounts=counts, sdispls=None, rcounts=counts, rdispls=None,
                    async_op=True,
                )
            else:
                h = driver.all_to_all_single(a2a_out, a2a_in, async_op=True)
            h.wait()

        # ---- forward -----------------------------------------------------
        for layer in range(cfg.layers):
            is_moe = (layer % cfg.moe_every) == cfg.moe_every - 1
            if is_moe:
                # attention half of the layer
                ctx.launch(layer_fwd / 3.0, label=f"fwd:attn:{layer}")
                ctx.launch(gate, label=f"fwd:gate:{layer}")
                moe_alltoall(f"dispatch:{layer}")
                # expert FFN (top-1: same active FLOPs as the dense FFN)
                ctx.launch(2.0 * layer_fwd / 3.0, label=f"fwd:expert:{layer}")
                moe_alltoall(f"combine:{layer}")
            else:
                ctx.launch(layer_fwd, label=f"fwd:dense:{layer}")

        # ---- backward (2x forward compute), gradient buckets overlap -----
        buckets = chunk_bytes(cfg.dense_param_bytes(), cfg.grad_bucket_bytes)
        grad_handles = []
        bucket_idx = 0
        layers_per_bucket = max(1, cfg.layers // max(len(buckets), 1))
        for layer in reversed(range(cfg.layers)):
            is_moe = (layer % cfg.moe_every) == cfg.moe_every - 1
            if is_moe:
                moe_alltoall(f"bwd-combine:{layer}")
                ctx.launch(4.0 * layer_fwd / 3.0, label=f"bwd:expert:{layer}")
                moe_alltoall(f"bwd-dispatch:{layer}")
                ctx.launch(2.0 * layer_fwd / 3.0, label=f"bwd:attn:{layer}")
            else:
                ctx.launch(2.0 * layer_fwd, label=f"bwd:dense:{layer}")
            # a bucket of dense gradients becomes ready every few layers
            if bucket_idx < len(buckets) and (cfg.layers - layer) % layers_per_bucket == 0:
                grad = ctx.virtual_tensor(max(1, buckets[bucket_idx] // 4))
                grad_handles.append(driver.grad_all_reduce(grad))
                bucket_idx += 1
        while bucket_idx < len(buckets):
            grad = ctx.virtual_tensor(max(1, buckets[bucket_idx] // 4))
            grad_handles.append(driver.grad_all_reduce(grad))
            bucket_idx += 1
        for h in grad_handles:
            h.wait()

        # ---- optimizer (memory-bound over local params) -------------------
        gpu = ctx.system.node.gpu
        local_param_bytes = cfg.dense_param_bytes()  # Adam touches p, m, v
        ctx.launch(
            3.0 * local_param_bytes / (gpu.memory_bw_gbps * 1e3),
            label="optimizer",
        )
