"""Workload models from the paper's evaluation.

Communication-faithful training-step models: each issues the exact
collective sequence its parallelism scheme requires (the paper's
§III-D/E descriptions) with analytic compute costs for the configured
GPU, so throughput and scaling behaviour emerge from the interplay of
compute, communication, and overlap — which is what Figures 1 and 8-12
measure.

* :class:`~repro.models.moe.DSMoEModel` — DeepSpeed-MoE transformer
  (350M base + PR-MoE-32/64, ~4B params): Allreduce + Alltoall.
* :class:`~repro.models.dlrm.DLRMModel` — embedding tables + MLPs:
  non-blocking Alltoall overlapped with the top MLP, plus Allreduce.
* :class:`~repro.models.resnet.ResNet50Model` — data-parallel baseline:
  Allreduce only, compute dominated.
* :class:`~repro.models.megatron.MegatronDenseModel` — 6.7B dense
  Megatron-DeepSpeed with tensor parallelism (degree 2) and ZeRO-2.
* :class:`~repro.models.pipeline.PipelineParallelModel` — 1F1B pipeline
  parallelism over point-to-point sends (beyond the paper's figures).
* :class:`~repro.models.trainer.Trainer` — runs steps under a
  :class:`~repro.models.plan.BackendPlan` + framework profile and
  reports throughput / scaling efficiency / comm breakdowns.
"""

from repro.models.plan import BackendPlan, FrameworkProfile, CommDriver, PROFILES
from repro.models.moe import DSMoEModel, MoEConfig
from repro.models.dlrm import DLRMModel, DLRMConfig
from repro.models.resnet import ResNet50Model, ResNetConfig
from repro.models.megatron import MegatronDenseModel, MegatronConfig
from repro.models.pipeline import PipelineParallelModel, PipelineConfig
from repro.models.trainer import Trainer, TrainResult

__all__ = [
    "BackendPlan",
    "FrameworkProfile",
    "CommDriver",
    "PROFILES",
    "DSMoEModel",
    "MoEConfig",
    "DLRMModel",
    "DLRMConfig",
    "ResNet50Model",
    "ResNetConfig",
    "MegatronDenseModel",
    "MegatronConfig",
    "PipelineParallelModel",
    "PipelineConfig",
    "Trainer",
    "TrainResult",
]
