"""Backend plans, framework profiles, and the model-facing comm driver.

A :class:`BackendPlan` is the experiment axis of Figures 8-10: which
backend serves which operation.

* ``pure("nccl")`` / ``pure("mvapich2-gdr")`` — the single-backend
  baselines;
* ``mixed(...)`` — coarse-grained mix-and-match (one backend per
  collective), plotted as **MCR-DL**;
* ``tuned(table)`` — fine-grained mix-and-match (one backend per
  (collective, message size) pair via the tuning table), plotted as
  **MCR-DL-T**.

A :class:`FrameworkProfile` is the experiment axis of Figure 11: the
overhead/capability profile of the communication layer issuing the ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.backends.ops import OpFamily, ReduceOp
from repro.core.comm import MCRCommunicator
from repro.core.config import AdaptiveConfig, MCRConfig
from repro.core.handles import WorkHandle
from repro.core.tuning import TuningTable
from repro.ext.fusion import FusionConfig, TensorFusion
from repro.sim.process import RankContext
from repro.tensor import SimTensor


@dataclass(frozen=True)
class BackendPlan:
    """Maps operation families to backend names."""

    label: str
    default: str
    per_op: dict = field(default_factory=dict)
    tuning_table: Optional[TuningTable] = None

    @classmethod
    def pure(cls, backend: str, label: Optional[str] = None) -> "BackendPlan":
        return cls(label=label or backend, default=backend)

    @classmethod
    def mixed(
        cls,
        allreduce: str = "nccl",
        alltoall: str = "mvapich2-gdr",
        label: str = "MCR-DL",
        **other_ops: str,
    ) -> "BackendPlan":
        per_op = {"allreduce": allreduce, "alltoall": alltoall, **other_ops}
        return cls(label=label, default=allreduce, per_op=per_op)

    @classmethod
    def tuned(cls, table: TuningTable, label: str = "MCR-DL-T") -> "BackendPlan":
        return cls(label=label, default="auto", tuning_table=table)

    def backend_for(self, family: "OpFamily | str") -> str:
        return self.per_op.get(str(family), self.default)

    def backends(self) -> list[str]:
        """Every concrete backend the plan can dispatch to."""
        names = [self.default, *self.per_op.values()]
        if self.default == "auto":
            # a tuned plan may route to anything in its table
            tuned = {
                b
                for scales in (self.tuning_table.entries if self.tuning_table else {}).values()
                for buckets in scales.values()
                for b in buckets.values()
            }
            names = [*tuned, *self.per_op.values()]
            if not names:
                raise ValueError("tuned plan has an empty tuning table")
        return list(dict.fromkeys(n for n in names if n != "auto"))


@dataclass(frozen=True)
class FrameworkProfile:
    """Overhead/capability profile of one communication layer (Fig. 11)."""

    name: str
    dispatch_overhead_us: float
    dispatch_fraction: float
    supports_mixing: bool
    supports_fusion: bool
    host_staging: bool

    def to_config(self) -> MCRConfig:
        config = MCRConfig()
        config.dispatch_overhead_us = self.dispatch_overhead_us
        config.dispatch_fraction = self.dispatch_fraction
        config.force_host_staging = self.host_staging
        return config


PROFILES: dict[str, FrameworkProfile] = {
    "mcr-dl": FrameworkProfile(
        name="MCR-DL",
        dispatch_overhead_us=1.2,
        dispatch_fraction=0.01,
        supports_mixing=True,
        supports_fusion=True,
        host_staging=False,
    ),
    "torch-distributed": FrameworkProfile(
        name="PyTorch Distributed",
        dispatch_overhead_us=9.0,
        dispatch_fraction=0.035,
        supports_mixing=False,
        supports_fusion=True,
        host_staging=False,
    ),
    "horovod": FrameworkProfile(
        name="Horovod",
        dispatch_overhead_us=4.5,
        dispatch_fraction=0.02,
        supports_mixing=False,
        supports_fusion=True,
        host_staging=False,
    ),
    "mpi4py": FrameworkProfile(
        name="mpi4py",
        dispatch_overhead_us=5.0,
        dispatch_fraction=0.03,
        supports_mixing=False,
        supports_fusion=False,
        host_staging=True,
    ),
}


class CommDriver:
    """What a workload model talks to: a plan- and profile-aware wrapper
    over one MCR communicator, with optional gradient fusion."""

    def __init__(
        self,
        ctx: RankContext,
        plan: BackendPlan,
        profile: FrameworkProfile = PROFILES["mcr-dl"],
        fusion: Optional[FusionConfig] = None,
        enable_logging: bool = False,
        ranks: Optional[Sequence[int]] = None,
        comm_id: Optional[str] = None,
        adaptive: "Optional[AdaptiveConfig]" = None,
    ):
        self.ctx = ctx
        self.plan = plan
        self.profile = profile
        self._enable_logging = enable_logging
        self._fusion_config = fusion
        self._adaptive = adaptive
        config = profile.to_config()
        config.enable_logging = enable_logging
        if adaptive is not None:
            # online adaptive dispatch (repro.core.adaptive); the
            # communicator clones the plan's table so retuning never
            # mutates the shared BackendPlan artifact
            config.adaptive = adaptive
        backends = plan.backends()
        if not profile.supports_mixing and len(backends) > 1:
            # single-backend frameworks run everything on the plan default
            backends = [plan.backend_for("allreduce")]
        self.comm = MCRCommunicator(
            ctx,
            backends,
            config=config,
            tuning_table=plan.tuning_table,
            comm_id=comm_id or f"driver:{profile.name}:{plan.label}",
            ranks=ranks,
        )
        self._single_backend = backends[0] if len(backends) == 1 else None
        self.fusion = (
            TensorFusion(self.comm, fusion) if profile.supports_fusion and fusion else None
        )
        self._subgroups: dict[tuple, "CommDriver"] = {}

    def subgroup(self, ranks: Sequence[int], comm_id: str) -> "CommDriver":
        """A driver over a process group (TP pair, DP slice, ...), sharing
        this driver's plan/profile; drained by this driver's step_sync."""
        key = (comm_id, tuple(ranks))
        if key not in self._subgroups:
            self._subgroups[key] = CommDriver(
                self.ctx,
                self.plan,
                profile=self.profile,
                fusion=self._fusion_config,
                enable_logging=self._enable_logging,
                ranks=ranks,
                comm_id=comm_id,
                adaptive=self._adaptive,
            )
        return self._subgroups[key]

    def _backend(self, family: str) -> str:
        if self._single_backend is not None:
            return self._single_backend
        return self.plan.backend_for(family)

    # -- operations models use -------------------------------------------------

    def grad_all_reduce(self, tensor: SimTensor) -> "WorkHandle":
        """Gradient allreduce: fused when the framework supports it."""
        backend = self._backend("allreduce")
        if self.fusion is not None:
            return self.fusion.all_reduce(backend, tensor, op=ReduceOp.SUM)
        return self.comm.all_reduce(backend, tensor, op=ReduceOp.SUM, async_op=True)

    def all_reduce(self, tensor: SimTensor, async_op: bool = False):
        return self.comm.all_reduce(self._backend("allreduce"), tensor, async_op=async_op)

    def all_to_all_single(self, output: SimTensor, input: SimTensor, async_op: bool = False):
        return self.comm.all_to_all_single(
            self._backend("alltoall"), output, input, async_op=async_op
        )

    def all_to_allv(self, output, input, scounts, sdispls, rcounts, rdispls, async_op=False):
        return self.comm.all_to_allv(
            self._backend("alltoall"), output, input, scounts, sdispls, rcounts, rdispls,
            async_op=async_op,
        )

    def reduce_scatter(self, output: SimTensor, input: SimTensor, async_op: bool = False):
        return self.comm.reduce_scatter(
            self._backend("reduce_scatter"), output, input, async_op=async_op
        )

    def all_gather(self, output: SimTensor, input: SimTensor, async_op: bool = False):
        return self.comm.all_gather(self._backend("allgather"), output, input, async_op=async_op)

    def bcast(self, tensor: SimTensor, root: int = 0):
        return self.comm.bcast(self._backend("broadcast"), tensor, root)

    def barrier(self) -> None:
        self.comm.barrier(self._backend("barrier"))

    def step_sync(self) -> None:
        """End-of-step: flush fusion, drain all backends, join the GPU."""
        if self.fusion is not None:
            self.fusion.flush_all()
        for child in self._subgroups.values():
            child.step_sync()
        self.comm.synchronize()
        self.ctx.device_synchronize()

    def finalize(self) -> None:
        if self.fusion is not None:
            self.fusion.flush_all()
        for child in self._subgroups.values():
            child.finalize()
        self.comm.finalize()
