"""Pipeline-parallel transformer model (GPipe/1F1B-style).

The paper motivates MCR-DL with the communication diversity of advanced
parallelism schemes — "sharding, pipeline and model parallelism, tensor
slicing" (§I).  This model exercises the **point-to-point** half of the
API in a realistic schedule: the network is split into stages (one per
rank), micro-batches stream through with activations sent stage-to-stage
(`isend`/`irecv`), and gradients flow back — the classic 1F1B pattern.

Communication per step:

* ``2 x (stages - 1) x micro_batches`` point-to-point activation /
  gradient transfers between neighbouring stages;
* an optional data-parallel Allreduce when ``world > stages`` (hybrid
  pipeline + data parallelism, using process groups).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.common import (
    gemm_us,
    transformer_layer_forward_flops,
    transformer_layer_params,
    validate_positive,
)
from repro.models.plan import CommDriver
from repro.sim.process import RankContext


@dataclass(frozen=True)
class PipelineConfig:
    """A GPT-style model split into pipeline stages."""

    hidden: int = 2048
    layers: int = 24
    seq_len: int = 1024
    micro_batch: int = 1
    micro_batches: int = 8
    #: pipeline depth; None = one stage per rank (pure pipeline)
    stages: int | None = None
    dtype_bytes: int = 2
    grad_bucket_bytes: int = 32 * 1024 * 1024

    def __post_init__(self) -> None:
        validate_positive(
            hidden=self.hidden,
            layers=self.layers,
            seq_len=self.seq_len,
            micro_batches=self.micro_batches,
        )

    def activation_bytes(self) -> int:
        """One micro-batch's activations at a stage boundary."""
        return self.micro_batch * self.seq_len * self.hidden * self.dtype_bytes

    def stage_param_bytes(self, n_stages: int) -> int:
        return (
            transformer_layer_params(self.hidden)
            * self.layers
            * self.dtype_bytes
            // n_stages
        )


class PipelineParallelModel:
    """One 1F1B pipeline training step."""

    name = "pipeline-gpt"

    def __init__(self, config: PipelineConfig = PipelineConfig()):
        self.config = config

    def samples_per_step(self, world_size: int) -> float:
        cfg = self.config
        stages = cfg.stages or world_size
        dp = max(1, world_size // stages)
        return cfg.micro_batch * cfg.micro_batches * dp

    def run_step(self, ctx: RankContext, driver: CommDriver) -> None:
        cfg = self.config
        stages = cfg.stages or ctx.world_size
        if ctx.world_size % stages != 0:
            raise ValueError(
                f"world size {ctx.world_size} not divisible by {stages} stages"
            )
        dp = ctx.world_size // stages
        # rank layout: pipeline-major (ranks s*dp + d)
        stage, dp_index = divmod(ctx.rank, dp)
        pipe_group_ranks = [s * dp + dp_index for s in range(stages)]
        pipe = driver.subgroup(pipe_group_ranks, comm_id=f"pipe{dp_index}")
        dp_group = None
        if dp > 1:
            dp_group = driver.subgroup(
                [stage * dp + d for d in range(dp)], comm_id=f"dp{stage}"
            )

        gpu = ctx.system.node.gpu
        layers_here = max(1, cfg.layers // stages)
        fwd_us = layers_here * gemm_us(
            gpu, transformer_layer_forward_flops(cfg.hidden, cfg.micro_batch * cfg.seq_len)
        )
        act = ctx.virtual_tensor(max(1, cfg.activation_bytes() // 4))
        backend = driver.plan.backend_for("p2p") if hasattr(driver.plan, "backend_for") else "nccl"
        # group-local neighbours on the pipe communicator
        prev_stage, next_stage = stage - 1, stage + 1

        # ---- 1F1B: warmup forwards -----------------------------------
        def recv_activation():
            h = pipe.comm.irecv(backend, act, src=prev_stage)
            h.synchronize()

        def send_activation():
            # the payload must exist before it can leave: join the compute
            # stream, then fire-and-forget (a blocking rendezvous send
            # would deadlock the 1F1B schedule — the engine catches that)
            ctx.stream_synchronize()
            pipe.comm.isend(backend, act, dst=next_stage)

        def recv_grad():
            h = pipe.comm.irecv(backend, act, src=next_stage)
            h.synchronize()

        def send_grad():
            ctx.stream_synchronize()
            pipe.comm.isend(backend, act, dst=prev_stage)

        in_flight = min(stages - stage, cfg.micro_batches)
        fwd_done = bwd_done = 0
        # warmup: fill the pipeline
        for _ in range(in_flight):
            if stage > 0:
                recv_activation()
            ctx.launch(fwd_us, label=f"fwd:mb{fwd_done}")
            if stage < stages - 1:
                send_activation()
            fwd_done += 1
        # steady state: one forward, one backward
        while fwd_done < cfg.micro_batches:
            if stage < stages - 1:
                recv_grad()
            ctx.launch(2.0 * fwd_us, label=f"bwd:mb{bwd_done}")
            if stage > 0:
                send_grad()
            bwd_done += 1
            if stage > 0:
                recv_activation()
            ctx.launch(fwd_us, label=f"fwd:mb{fwd_done}")
            if stage < stages - 1:
                send_activation()
            fwd_done += 1
        # drain: remaining backwards
        while bwd_done < cfg.micro_batches:
            if stage < stages - 1:
                recv_grad()
            ctx.launch(2.0 * fwd_us, label=f"bwd:mb{bwd_done}")
            if stage > 0:
                send_grad()
            bwd_done += 1

        # ---- hybrid data parallelism: gradient allreduce per stage ----
        if dp_group is not None:
            grads = ctx.virtual_tensor(
                max(1, cfg.stage_param_bytes(stages) // 4)
            )
            h = dp_group.grad_all_reduce(grads)
            h.wait()

        # optimizer over this stage's parameters
        ctx.launch(
            3.0 * cfg.stage_param_bytes(stages) / (gpu.memory_bw_gbps * 1e3),
            label="optimizer",
        )
