"""DLRM training-step model (paper §III-E, §VI-4, Figure 9).

The paper's configuration: 100 synthetic batches of size 8k, bottom MLP
512-512-64, top MLP 1024-1024-1024-1, embedding table of ``1e6 x
num_ranks`` rows split one shard per rank (model parallelism for the
sparse half, data parallelism for the dense half).

Communication per batch:

* **non-blocking Alltoall** to shuffle looked-up embedding vectors from
  table shards to the ranks that own the samples — overlapped with the
  *previous* batch's top-MLP computation (§III-E), which is why DLRM
  needs non-blocking Alltoall support;
* **Allreduce** of the MLP gradients (the dense half is data-parallel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.common import MLPSpec, memory_bound_us, validate_positive
from repro.models.plan import CommDriver
from repro.sim.process import RankContext


@dataclass(frozen=True)
class DLRMConfig:
    """Paper's DLRM settings (§VI-4)."""

    #: per-rank batch (the paper's 8k batches, interpreted per GPU for
    #: weak scaling as in standard DLRM benchmarking)
    batch_size: int = 2048
    bottom_mlp: tuple[int, ...] = (13, 512, 512, 64)
    top_mlp: tuple[int, ...] = (512, 1024, 1024, 1024, 1)
    embedding_dim: int = 64
    embedding_rows_per_rank: int = 1_000_000
    #: embedding tables striped across ranks (each rank serves the whole
    #: global batch for its share of tables); scales the Alltoall volume
    num_tables: int = 26
    #: average multi-hot lookups pooled per table per sample
    pooling: int = 8
    dtype_bytes: int = 4  # DLRM trains fp32
    #: sample real Zipf-distributed categorical indices each batch and
    #: exchange embeddings with the imbalanced all_to_allv those indices
    #: imply (includes the count-exchange round real DLRM performs);
    #: False uses the balanced all_to_all_single fast path
    synthetic_data: bool = False
    #: Zipf popularity exponent for the synthetic categorical features
    zipf_exponent: float = 1.05

    def __post_init__(self) -> None:
        validate_positive(
            batch_size=self.batch_size,
            embedding_dim=self.embedding_dim,
            embedding_rows_per_rank=self.embedding_rows_per_rank,
        )

    def alltoall_bytes(self) -> int:
        """Per-rank embedding-shuffle volume for one batch."""
        return (
            self.batch_size * self.embedding_dim * self.dtype_bytes * self.num_tables
        )

    def mlp_grad_bytes(self) -> int:
        bottom = MLPSpec(self.bottom_mlp).params()
        top = MLPSpec(self.top_mlp).params()
        return (bottom + top) * self.dtype_bytes


class DLRMModel:
    """One DLRM batch (with the previous batch's top MLP overlapped)."""

    name = "dlrm"

    def __init__(self, config: DLRMConfig = DLRMConfig()):
        self.config = config

    def samples_per_step(self, world_size: int) -> float:
        return float(self.config.batch_size * world_size)

    def _compute_costs(self, ctx: RankContext) -> dict[str, float]:
        cfg = self.config
        gpu = ctx.system.node.gpu
        local_batch = cfg.batch_size
        bottom = MLPSpec(cfg.bottom_mlp)
        top = MLPSpec(cfg.top_mlp)
        # embedding lookups are memory-bound: this rank serves the whole
        # global batch against its table shard
        lookup_bytes = (
            local_batch * cfg.embedding_dim * cfg.dtype_bytes
            * cfg.num_tables * cfg.pooling
        )
        return {
            "bottom_fwd": bottom.forward_us(gpu, local_batch, fp16=False),
            "bottom_bwd": bottom.backward_us(gpu, local_batch, fp16=False),
            "top_fwd": top.forward_us(gpu, local_batch, fp16=False),
            "top_bwd": top.backward_us(gpu, local_batch, fp16=False),
            "lookup": memory_bound_us(gpu, lookup_bytes),
            "interact": memory_bound_us(
                gpu, local_batch * cfg.embedding_dim * cfg.embedding_dim * cfg.dtype_bytes
            ),
        }

    def _shuffle_with_real_indices(self, ctx, driver, shuffle_in):
        """Sample Zipf categorical indices, exchange per-destination
        counts (the metadata round real DLRM runs), then post the
        imbalanced embedding all_to_allv they imply."""
        import numpy as np

        from repro.models.data import shard_counts, zipfian_indices

        cfg = self.config
        p = ctx.world_size
        lookups = cfg.batch_size * cfg.pooling
        indices = zipfian_indices(
            ctx.rng, cfg.embedding_rows_per_rank * p, lookups, cfg.zipf_exponent
        )
        # one pooled embedding vector leaves for the shard owning its
        # rows; normalize to the balanced volume so the *imbalance*, not
        # extra volume, is what the vectored path carries
        per_dest = shard_counts(indices, p).astype(np.float64)
        scale = shuffle_in.numel() / max(per_dest.sum(), 1.0)
        scounts = np.floor(per_dest * scale).astype(np.int64)
        scounts[0] += shuffle_in.numel() - int(scounts.sum())
        # metadata round: every rank learns what it will receive
        counts_in = ctx.tensor(scounts.astype(np.float64))
        counts_out = ctx.zeros(p)
        driver.all_to_all_single(counts_out, counts_in, async_op=True).synchronize()
        rcounts = [int(round(v)) for v in counts_out.data]
        out = ctx.virtual_tensor(max(sum(rcounts), 1))
        return driver.all_to_allv(
            out,
            shuffle_in,
            scounts=[int(v) for v in scounts],
            sdispls=None,
            rcounts=rcounts,
            rdispls=None,
            async_op=True,
        )

    def run_step(self, ctx: RankContext, driver: CommDriver) -> None:
        cfg = self.config
        costs = self._compute_costs(ctx)
        a2a_elems = max(ctx.world_size, cfg.alltoall_bytes() // 4)
        a2a_elems -= a2a_elems % ctx.world_size  # keep divisible
        shuffle_in = ctx.virtual_tensor(a2a_elems)
        shuffle_out = ctx.virtual_tensor(a2a_elems)

        # ---- forward ------------------------------------------------------
        # embedding lookups for this batch, then the non-blocking Alltoall
        # that is overlapped with the previous batch's top MLP (§III-E)
        ctx.launch(costs["lookup"], label="emb:lookup")
        if cfg.synthetic_data:
            shuffle = self._shuffle_with_real_indices(
                ctx, driver, shuffle_in
            )
        else:
            shuffle = driver.all_to_all_single(shuffle_out, shuffle_in, async_op=True)
        # bottom MLP on dense features and the overlapped top MLP both run
        # while the shuffle is in flight
        ctx.launch(costs["bottom_fwd"], label="fwd:bottom")
        ctx.launch(costs["top_fwd"], label="fwd:top(prev-batch)")
        shuffle.wait()
        # feature interaction + this batch's top MLP need the shuffle
        ctx.launch(costs["interact"], label="fwd:interact")
        ctx.launch(costs["top_fwd"], label="fwd:top")

        # ---- backward ----------------------------------------------------
        ctx.launch(costs["top_bwd"], label="bwd:top")
        # gradient shuffle back to the table shards (non-blocking again)
        grad_shuffle = driver.all_to_all_single(shuffle_in, shuffle_out, async_op=True)
        ctx.launch(costs["bottom_bwd"], label="bwd:bottom")
        grad_shuffle.wait()
        ctx.launch(costs["lookup"], label="emb:grad-scatter")

        # dense-half gradients are data-parallel: allreduce
        grads = ctx.virtual_tensor(max(1, cfg.mlp_grad_bytes() // 4))
        h = driver.grad_all_reduce(grads)
        h.wait()

        # optimizer over MLP params + local embedding rows touched
        gpu = ctx.system.node.gpu
        ctx.launch(
            memory_bound_us(gpu, 3 * cfg.mlp_grad_bytes()),
            label="optimizer",
        )
