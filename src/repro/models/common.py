"""Shared compute-cost arithmetic for the workload models.

All models charge GPU compute analytically: GEMM-shaped work runs at the
GPU's sustained FLOP rate, lookup/elementwise work at its memory
bandwidth.  The numbers only need to be *relatively* right — the figures
compare communication strategies on identical compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.hardware import GpuSpec


def gemm_us(gpu: GpuSpec, flops: float, fp16: bool = True) -> float:
    """Duration of ``flops`` of dense math on ``gpu``, µs."""
    rate = gpu.effective_fp16_flops() if fp16 else gpu.effective_fp32_flops()
    return flops / rate * 1e6


def memory_bound_us(gpu: GpuSpec, nbytes: float) -> float:
    """Duration of ``nbytes`` of bandwidth-bound work on ``gpu``, µs."""
    return nbytes / (gpu.memory_bw_gbps * 1e9) * 1e6


@dataclass(frozen=True)
class MLPSpec:
    """A multilayer perceptron described by its layer widths."""

    widths: tuple[int, ...]  # e.g. (13, 512, 512, 64)

    def params(self) -> int:
        return sum(a * b + b for a, b in zip(self.widths, self.widths[1:]))

    def forward_flops(self, batch: int) -> float:
        return sum(2.0 * batch * a * b for a, b in zip(self.widths, self.widths[1:]))

    def backward_flops(self, batch: int) -> float:
        # dgrad + wgrad: ~2x forward
        return 2.0 * self.forward_flops(batch)

    def forward_us(self, gpu: GpuSpec, batch: int, fp16: bool = True) -> float:
        return gemm_us(gpu, self.forward_flops(batch), fp16)

    def backward_us(self, gpu: GpuSpec, batch: int, fp16: bool = True) -> float:
        return gemm_us(gpu, self.backward_flops(batch), fp16)


def transformer_layer_params(hidden: int) -> int:
    """Dense transformer layer: attention (4h^2) + FFN (8h^2)."""
    return 12 * hidden * hidden


def transformer_layer_forward_flops(hidden: int, tokens: int) -> float:
    """2 * active-params * tokens (ignoring the small attention-score term)."""
    return 2.0 * transformer_layer_params(hidden) * tokens


def chunk_bytes(total_bytes: int, bucket_bytes: int) -> list[int]:
    """Split a gradient volume into DDP-style buckets."""
    if total_bytes <= 0:
        return []
    full, rem = divmod(total_bytes, bucket_bytes)
    out = [bucket_bytes] * full
    if rem:
        out.append(rem)
    return out


def validate_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def even_counts(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` near-equal integer counts."""
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def skewed_counts(total: int, parts: int, skew: float, seed_row: Sequence[float]) -> list[int]:
    """Imbalanced split (MoE gating skew): ``skew=0`` is even, ``skew=1``
    doubles the weight of the heaviest part.  ``seed_row`` supplies the
    deterministic per-part weights in [0, 1)."""
    if not 0.0 <= skew <= 1.0:
        raise ValueError(f"skew must be in [0, 1], got {skew}")
    weights = [1.0 + skew * float(w) for w in seed_row[:parts]]
    scale = total / sum(weights)
    counts = [int(w * scale) for w in weights]
    counts[0] += total - sum(counts)  # fix rounding drift
    return counts
