"""ResNet-50 data-parallel model (paper Figure 1 baseline).

Pure data parallelism: each rank computes forward/backward over its
local batch and allreduces ~25.6M parameters of gradients, bucketed and
overlapped with backward.  The paper uses it to show that data-parallel
workloads are compute-dominated with Allreduce-only communication —
the regime where MCR-DL's benefit is marginal (§I-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.common import chunk_bytes, gemm_us, validate_positive
from repro.models.plan import CommDriver
from repro.sim.process import RankContext


@dataclass(frozen=True)
class ResNetConfig:
    """ResNet-50 on ImageNet-style input."""

    local_batch: int = 64
    #: forward FLOPs per image (ResNet-50 @ 224x224)
    forward_flops_per_sample: float = 4.1e9
    params: int = 25_600_000
    dtype_bytes: int = 2  # fp16 gradients
    grad_bucket_bytes: int = 25 * 1024 * 1024

    def __post_init__(self) -> None:
        validate_positive(local_batch=self.local_batch, params=self.params)

    def grad_bytes(self) -> int:
        return self.params * self.dtype_bytes


class ResNet50Model:
    """One data-parallel ResNet-50 training step."""

    name = "resnet50"

    def __init__(self, config: ResNetConfig = ResNetConfig()):
        self.config = config

    def samples_per_step(self, world_size: int) -> float:
        return float(self.config.local_batch * world_size)

    def run_step(self, ctx: RankContext, driver: CommDriver) -> None:
        cfg = self.config
        gpu = ctx.system.node.gpu
        # convolutions sustain roughly fp32-path throughput on V100-era
        # tensor cores (layout transforms, small channel counts)
        fwd_us = gemm_us(gpu, cfg.forward_flops_per_sample * cfg.local_batch, fp16=False)
        # forward in ~16 stage chunks (conv blocks)
        stages = 16
        for i in range(stages):
            ctx.launch(fwd_us / stages, label=f"fwd:stage{i}")
        # backward (2x forward), bucketed allreduce overlapped
        buckets = chunk_bytes(cfg.grad_bytes(), cfg.grad_bucket_bytes)
        handles = []
        per_stage = max(1, stages // max(len(buckets), 1))
        bucket_idx = 0
        for i in reversed(range(stages)):
            ctx.launch(2.0 * fwd_us / stages, label=f"bwd:stage{i}")
            if bucket_idx < len(buckets) and (stages - i) % per_stage == 0:
                grad = ctx.virtual_tensor(max(1, buckets[bucket_idx] // 4))
                handles.append(driver.grad_all_reduce(grad))
                bucket_idx += 1
        while bucket_idx < len(buckets):
            grad = ctx.virtual_tensor(max(1, buckets[bucket_idx] // 4))
            handles.append(driver.grad_all_reduce(grad))
            bucket_idx += 1
        for h in handles:
            h.wait()
        # SGD + momentum update, memory bound
        ctx.launch(
            2.0 * cfg.params * 4 / (gpu.memory_bw_gbps * 1e3), label="optimizer"
        )
