"""MVAPICH2-GDR backend model.

A CUDA-aware MPI (paper §III-C) with GPUDirect RDMA: the best
small-message latency of the lineup and the best Alltoall at scale
(pairwise exchange), but a large-message Allreduce that trails NCCL's
ring (paper §VI-B: "NCCL's Allreduce collective is more performant than
MVAPICH2-GDR's at this message range").  Host-synchronized: completion
is observed by the host (MPI_Wait), not a CUDA stream.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendProperties, register_backend
from repro.backends.calibration import MVAPICH_GDR_TUNING
from repro.backends.ops import OpFamily

_ALLREDUCE_RD_THRESHOLD = 32 * 1024
_ALLGATHER_RD_THRESHOLD = 64 * 1024
_BCAST_VDG_THRESHOLD = 128 * 1024


class MvapichGdrBackend(Backend):
    """MVAPICH2-GDR CUDA-aware MPI."""

    properties = BackendProperties(
        name="mvapich2-gdr",
        display_name="MVAPICH2-GDR",
        stream_aware=False,
        cuda_aware=True,
        native_vector_collectives=True,
        native_nonblocking=True,
        native_gather_scatter=True,
        abi="mpich",
        mpi_compliant=True,
    )
    tuning = MVAPICH_GDR_TUNING

    def tuning_key(self, family, nbytes, p):
        if family is OpFamily.ALLREDUCE and p == 2:
            return "allreduce_pair"
        return str(family)

    def algorithm_for(self, family: OpFamily, nbytes: int, p: int) -> str:
        if family is OpFamily.ALLREDUCE:
            if p == 2:
                # two-rank groups (tensor-parallel pairs) take the CUDA
                # IPC direct-copy path: one near-peak-bandwidth exchange
                return "direct_pair_allreduce"
            if nbytes < _ALLREDUCE_RD_THRESHOLD:
                return "recursive_doubling_allreduce"
            return "rabenseifner_allreduce"
        if family is OpFamily.ALLGATHER:
            if nbytes < _ALLGATHER_RD_THRESHOLD:
                return "recursive_doubling_allgather"
            return "ring_allgather"
        if family is OpFamily.REDUCE_SCATTER:
            return "pairwise_reduce_scatter"
        if family is OpFamily.BROADCAST:
            if nbytes < _BCAST_VDG_THRESHOLD:
                return "binomial_broadcast"
            return "scatter_allgather_broadcast"
        if family is OpFamily.REDUCE:
            if nbytes < _ALLREDUCE_RD_THRESHOLD:
                return "binomial_reduce"
            return "reduce_scatter_gather_reduce"
        if family is OpFamily.ALLTOALL:
            # device buffers always take the pairwise GPUDirect path —
            # Bruck's log-round staging costs extra GPU copies, so the
            # CUDA-aware path avoids it even for small messages
            return "pairwise_alltoall"
        if family is OpFamily.GATHER:
            return "binomial_gather"
        if family is OpFamily.SCATTER:
            return "binomial_scatter"
        if family is OpFamily.P2P:
            return "p2p_send"
        raise ValueError(f"MVAPICH2-GDR: no algorithm for {family}")


register_backend(MvapichGdrBackend, aliases=("mv2-gdr", "mvapich", "mvapich2", "mpi"))
