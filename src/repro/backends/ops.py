"""Operation vocabulary shared by the API layer and the backends."""

from __future__ import annotations

import enum

import numpy as np


class ReduceOp(enum.Enum):
    """Reduction operators (the MPI/NCCL common subset)."""

    SUM = "sum"
    PROD = "prod"
    MIN = "min"
    MAX = "max"
    AVG = "avg"

    def apply(self, arrays: list[np.ndarray]) -> np.ndarray:
        """Reduce a list of equally-shaped arrays element-wise."""
        if not arrays:
            raise ValueError("reduce of empty list")
        stack = np.stack(arrays)
        if self is ReduceOp.SUM:
            return stack.sum(axis=0, dtype=stack.dtype)
        if self is ReduceOp.PROD:
            return stack.prod(axis=0, dtype=stack.dtype)
        if self is ReduceOp.MIN:
            return stack.min(axis=0)
        if self is ReduceOp.MAX:
            return stack.max(axis=0)
        if self is ReduceOp.AVG:
            return (stack.sum(axis=0, dtype=np.float64) / len(arrays)).astype(
                stack.dtype
            )
        raise AssertionError(f"unhandled ReduceOp {self}")  # pragma: no cover


class OpFamily(enum.Enum):
    """Collective operation families (tuning / cost-model granularity)."""

    ALLREDUCE = "allreduce"
    REDUCE = "reduce"
    BROADCAST = "broadcast"
    ALLGATHER = "allgather"
    REDUCE_SCATTER = "reduce_scatter"
    ALLTOALL = "alltoall"
    GATHER = "gather"
    SCATTER = "scatter"
    P2P = "p2p"
    BARRIER = "barrier"

    def __str__(self) -> str:
        return self.value
