"""Collective algorithm cost models.

Standard alpha-beta(-gamma) formulas for the classic collective
algorithms (Thakur et al., "Optimization of Collective Communication
Operations in MPICH", and the NCCL ring model).  A backend picks an
algorithm per (op, message size, world size) and these functions price
it against the system's :class:`~repro.cluster.CommPath`.

Size conventions (``n`` is always **bytes**):

========== =====================================================
op         meaning of ``n``
========== =====================================================
allreduce  full vector (input == output size per rank)
reduce     full vector
broadcast  full vector
allgather  *local contribution* (every rank receives ``p * n``)
reduce_scatter  full input vector (output is ``n / p``)
alltoall   *local input total* (``n / p`` goes to each peer)
gather     per-rank chunk (root receives ``p * n``)
scatter    per-rank chunk (root sends ``p * n``)
========== =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.backends.calibration import REDUCE_GAMMA_US_PER_BYTE


@dataclass(frozen=True)
class CostParams:
    """Inputs to one cost evaluation."""

    alpha_us: float  # effective per-message latency
    beta_us_per_byte: float  # effective inverse bandwidth
    p: int  # communicator size
    n: int  # bytes, per the table above
    gamma_us_per_byte: float = REDUCE_GAMMA_US_PER_BYTE


def _log2p(p: int) -> float:
    return math.ceil(math.log2(p)) if p > 1 else 0.0


# -- allreduce ----------------------------------------------------------


def ring_allreduce(c: CostParams) -> float:
    """Ring: 2(p-1) steps, 2n(p-1)/p bytes per rank; bandwidth-optimal."""
    if c.p == 1:
        return 0.0
    steps = 2 * (c.p - 1)
    volume = 2.0 * c.n * (c.p - 1) / c.p
    return steps * c.alpha_us + volume * c.beta_us_per_byte + c.n * c.gamma_us_per_byte


def direct_pair_allreduce(c: CostParams) -> float:
    """Two-rank allreduce via direct peer copy (CUDA IPC) + local
    reduction: one exchange of the full vector."""
    if c.p == 1:
        return 0.0
    return c.alpha_us + c.n * c.beta_us_per_byte + c.n * c.gamma_us_per_byte


def recursive_doubling_allreduce(c: CostParams) -> float:
    """log2(p) rounds exchanging the full vector; latency-optimal."""
    if c.p == 1:
        return 0.0
    rounds = _log2p(c.p)
    return rounds * (c.alpha_us + c.n * c.beta_us_per_byte) + c.n * c.gamma_us_per_byte


def tree_allreduce(c: CostParams) -> float:
    """Pipelined double binary tree (NCCL): log-depth latency with a
    ~2n bandwidth term thanks to chunk pipelining."""
    if c.p == 1:
        return 0.0
    rounds = 2 * _log2p(c.p)
    return (
        rounds * c.alpha_us
        + 2.0 * c.n * c.beta_us_per_byte
        + c.n * c.gamma_us_per_byte
    )


def rabenseifner_allreduce(c: CostParams) -> float:
    """Reduce-scatter + allgather; bandwidth-optimal with log latency."""
    if c.p == 1:
        return 0.0
    rounds = 2 * _log2p(c.p)
    volume = 2.0 * c.n * (c.p - 1) / c.p
    return rounds * c.alpha_us + volume * c.beta_us_per_byte + c.n * c.gamma_us_per_byte


# -- reduce / broadcast --------------------------------------------------


def binomial_reduce(c: CostParams) -> float:
    if c.p == 1:
        return 0.0
    rounds = _log2p(c.p)
    return rounds * (c.alpha_us + c.n * c.beta_us_per_byte) + c.n * c.gamma_us_per_byte


def reduce_scatter_gather_reduce(c: CostParams) -> float:
    """Large-message reduce: reduce-scatter then gather to root."""
    if c.p == 1:
        return 0.0
    rounds = 2 * _log2p(c.p)
    volume = 2.0 * c.n * (c.p - 1) / c.p
    return rounds * c.alpha_us + volume * c.beta_us_per_byte + c.n * c.gamma_us_per_byte


def binomial_broadcast(c: CostParams) -> float:
    rounds = _log2p(c.p)
    return rounds * (c.alpha_us + c.n * c.beta_us_per_byte)


def scatter_allgather_broadcast(c: CostParams) -> float:
    """Van de Geijn large-message broadcast."""
    if c.p == 1:
        return 0.0
    rounds = _log2p(c.p) + (c.p - 1)
    volume = 2.0 * c.n * (c.p - 1) / c.p
    return rounds * c.alpha_us + volume * c.beta_us_per_byte


# -- allgather / reduce_scatter -------------------------------------------


def ring_allgather(c: CostParams) -> float:
    """(p-1) steps, receives (p-1)n bytes."""
    if c.p == 1:
        return 0.0
    return (c.p - 1) * c.alpha_us + (c.p - 1) * c.n * c.beta_us_per_byte


def recursive_doubling_allgather(c: CostParams) -> float:
    if c.p == 1:
        return 0.0
    rounds = _log2p(c.p)
    return rounds * c.alpha_us + (c.p - 1) * c.n * c.beta_us_per_byte


def ring_reduce_scatter(c: CostParams) -> float:
    if c.p == 1:
        return 0.0
    volume = c.n * (c.p - 1) / c.p
    return (c.p - 1) * c.alpha_us + volume * c.beta_us_per_byte + (
        volume * c.gamma_us_per_byte
    )


def pairwise_reduce_scatter(c: CostParams) -> float:
    if c.p == 1:
        return 0.0
    rounds = _log2p(c.p)
    volume = c.n * (c.p - 1) / c.p
    return rounds * c.alpha_us + volume * c.beta_us_per_byte + volume * c.gamma_us_per_byte


# -- alltoall -------------------------------------------------------------


def pairwise_alltoall(c: CostParams) -> float:
    """(p-1) pairwise exchanges of n/p bytes each; the MPI large-message
    workhorse. Total bytes moved per rank: n(p-1)/p."""
    if c.p == 1:
        return 0.0
    per_pair = c.n / c.p
    return (c.p - 1) * (c.alpha_us + per_pair * c.beta_us_per_byte)


def bruck_alltoall(c: CostParams) -> float:
    """log2(p) rounds moving n/2 bytes per round; small-message optimal."""
    if c.p == 1:
        return 0.0
    rounds = _log2p(c.p)
    return rounds * (c.alpha_us + (c.n / 2.0) * c.beta_us_per_byte)


def p2p_alltoall(c: CostParams) -> float:
    """Alltoall emulated with per-peer send/recv (how NCCL does it):
    every peer costs a full alpha (kernel/channel setup), which is why
    NCCL's Alltoall falls behind at scale (paper Fig. 2b)."""
    if c.p == 1:
        return 0.0
    per_pair = c.n / c.p
    # sends are pipelined across channels: bandwidth term is the same
    # volume as pairwise, but each peer still pays full setup latency.
    return (c.p - 1) * c.alpha_us + (c.p - 1) * per_pair * c.beta_us_per_byte * 1.0 + (
        _log2p(c.p) * c.alpha_us  # channel coordination
    )


# -- gather / scatter ------------------------------------------------------


def binomial_gather(c: CostParams) -> float:
    """Binomial tree gather of p chunks of n bytes to the root."""
    if c.p == 1:
        return 0.0
    rounds = _log2p(c.p)
    # root receives (p-1) chunks in total; tree pipelines them
    return rounds * c.alpha_us + (c.p - 1) * c.n * c.beta_us_per_byte


def linear_gather(c: CostParams) -> float:
    if c.p == 1:
        return 0.0
    return (c.p - 1) * (c.alpha_us + c.n * c.beta_us_per_byte)


binomial_scatter = binomial_gather
linear_scatter = linear_gather


# -- p2p / barrier -----------------------------------------------------------


def p2p_send(c: CostParams) -> float:
    """One message of n bytes (rendezvous protocol above eager threshold)."""
    return c.alpha_us + c.n * c.beta_us_per_byte


def dissemination_barrier(c: CostParams) -> float:
    return _log2p(c.p) * c.alpha_us


#: registry used by backends to name their algorithm choices
ALGORITHMS = {
    "ring_allreduce": ring_allreduce,
    "direct_pair_allreduce": direct_pair_allreduce,
    "recursive_doubling_allreduce": recursive_doubling_allreduce,
    "tree_allreduce": tree_allreduce,
    "rabenseifner_allreduce": rabenseifner_allreduce,
    "binomial_reduce": binomial_reduce,
    "reduce_scatter_gather_reduce": reduce_scatter_gather_reduce,
    "binomial_broadcast": binomial_broadcast,
    "scatter_allgather_broadcast": scatter_allgather_broadcast,
    "ring_allgather": ring_allgather,
    "recursive_doubling_allgather": recursive_doubling_allgather,
    "ring_reduce_scatter": ring_reduce_scatter,
    "pairwise_reduce_scatter": pairwise_reduce_scatter,
    "pairwise_alltoall": pairwise_alltoall,
    "bruck_alltoall": bruck_alltoall,
    "p2p_alltoall": p2p_alltoall,
    "binomial_gather": binomial_gather,
    "linear_gather": linear_gather,
    "binomial_scatter": binomial_scatter,
    "linear_scatter": linear_scatter,
    "p2p_send": p2p_send,
    "dissemination_barrier": dissemination_barrier,
}


def evaluate(algorithm: str, params: CostParams) -> float:
    """Price ``algorithm`` under ``params``; raises on unknown names."""
    try:
        fn = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown collective algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    cost = fn(params)
    if cost < 0:  # pragma: no cover - defensive
        raise ValueError(f"negative cost from {algorithm}: {cost}")
    return cost


# -- composite (hierarchical) collectives ------------------------------------


@dataclass(frozen=True)
class PhaseCost:
    """One phase of a composite collective, priced independently.

    ``cost_us`` is the phase's collective cost on its own backend and
    comm path; ``overhead_us`` carries the per-dispatch fixed costs
    (runtime dispatch + backend call overhead) the phase pays on top.
    Phases of a hierarchical collective are host-synchronized — the next
    phase reads what the previous one wrote — so they serialize.
    """

    phase: str  # "intra" / "inter" / "flat"
    backend: str
    family: str
    cost_us: float
    overhead_us: float = 0.0

    @property
    def total_us(self) -> float:
        return self.cost_us + self.overhead_us


def composite_cost_us(phases: list[PhaseCost]) -> float:
    """End-to-end cost of a phase schedule (serial sum — see
    :class:`PhaseCost` for why phases cannot overlap)."""
    return sum(p.total_us for p in phases)
