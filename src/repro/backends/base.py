"""Backend base class and registry ("Backend as a Class", Table I).

A Backend is the per-rank handle to one communication library.  It owns
the library's *semantics* (stream-aware vs host-synchronized, CUDA-aware
or host-staged, which operations are native) and its *performance
character* (algorithm selection + calibrated cost multipliers).  The
MCR-DL core treats backends uniformly through this interface, which is
what makes new libraries pluggable (paper §V-B).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Type

from repro.backends.calibration import (
    BackendTuning,
    NONBLOCKING_OVERHEAD_US,
    VECTOR_VARIANT_OVERHEAD_US,
)
from repro.backends.cost import CostParams, evaluate
from repro.backends.ops import OpFamily
from repro.cluster.topology import CommPath, SystemSpec


# -- cost memoization ------------------------------------------------------
#
# Cost models are deterministic functions of pure values: the backend
# class (tuning tables and algorithm selection are class attributes),
# the system spec (treated as immutable once built), and the call
# arguments.  Backends of the same class share one memo table per
# system, so every rank — and every communicator/tuner re-instantiating
# backends — hits the same cache.  A system spec mutated after use must
# be followed by :func:`clear_cost_caches`.

_COST_CACHE_LIMIT = 1 << 17


@lru_cache(maxsize=256)
def _cost_cache_for(cls: type, system: "SystemSpec") -> dict:
    """The shared memo table for one (backend class, system) pair."""
    return {}


def clear_cost_caches() -> None:
    """Drop every memoized cost (after mutating a SystemSpec in place)."""
    _cost_cache_for.cache_clear()


@dataclass(frozen=True)
class BackendProperties:
    """Static capabilities of a communication library (Table I columns)."""

    name: str
    display_name: str
    #: ops enqueue on CUDA streams; host never blocks for completion
    stream_aware: bool
    #: accepts device buffers directly (no host staging)
    cuda_aware: bool
    #: library-native vectored collectives (gatherv/scatterv/alltoallv)
    native_vector_collectives: bool
    #: library-native non-blocking operations for all collectives
    native_nonblocking: bool
    #: library-native gather/scatter (NCCL lacks them; MCR-DL emulates)
    native_gather_scatter: bool
    #: runtime convention family for ABI-compatibility checks (§V-D):
    #: backends sharing an ABI family can be mixed freely; at most one
    #: non-stream-aware family is recommended for overlap (footnote 4)
    abi: str
    mpi_compliant: bool


class Backend(abc.ABC):
    """One rank's handle to one communication library.

    Subclasses define class-level ``properties`` and ``tuning`` and
    implement :meth:`algorithm_for`.  Cost evaluation, staging cost, and
    capability queries are shared.
    """

    properties: BackendProperties
    tuning: BackendTuning

    def __init__(self, rank: int, world_size: int, system: SystemSpec):
        self.rank = rank
        self.world_size = world_size
        self.system = system
        self.initialized = False
        #: monotonically increasing op counter (rendezvous keys)
        self.op_sequence = 0
        #: failure latch: set via fail() when the library suffers a
        #: permanent fault; a failed backend stays usable for draining
        #: already-posted work but must not accept new dispatches
        self.failed = False
        self.failure_reason: Optional[str] = None
        #: shared per-(class, system) cost memo table (see module header)
        self._cost_cache = _cost_cache_for(type(self), system)
        #: canonical name, bound per instance (attribute reads sit on the
        #: per-op hot path; a property lookup there is measurable)
        self.name = self.properties.name

    # -- lifecycle -------------------------------------------------------

    def init(self) -> None:
        """Library initialization (communicator setup, bootstrap)."""
        self.initialized = True

    def finalize(self) -> None:
        self.initialized = False

    # -- failure modes (fault injection / graceful degradation) ----------

    def fail(self, reason: str = "injected permanent fault") -> None:
        """Latch a permanent library failure.

        Called by the communicator when the fault injector declares this
        backend permanently down; the communicator quarantines the
        backend and fails over, while in-flight operations drain.
        """
        self.failed = True
        self.failure_reason = reason

    def recover(self, reason: str = "probation probe cleared") -> None:
        """Release the permanent-failure latch.

        Called by the communicator's probation path
        (:mod:`repro.core.adaptive`) when a timing-only probe observes
        the library healthy again; the communicator un-quarantines the
        backend symmetrically on every rank at the same logical op.
        """
        self.failed = False
        self.failure_reason = None

    @property
    def usable(self) -> bool:
        """Whether new operations may be dispatched on this backend."""
        return self.initialized and not self.failed

    # -- capability queries ----------------------------------------------

    def supports(self, family: OpFamily, vector: bool = False) -> bool:
        """Whether the *library itself* supports the operation natively.

        MCR-DL still exposes unsupported ops by emulating them over the
        backend's point-to-point layer — the emulation penalty is baked
        into the tuning multipliers.
        """
        if vector and not self.properties.native_vector_collectives:
            return False
        if family in (OpFamily.GATHER, OpFamily.SCATTER):
            return self.properties.native_gather_scatter
        return True

    # -- performance model --------------------------------------------------

    @abc.abstractmethod
    def algorithm_for(self, family: OpFamily, nbytes: int, p: int) -> str:
        """Name of the collective algorithm this library runs for the
        given op family / message size / communicator size."""

    def tuning_key(self, family: OpFamily, nbytes: int, p: int) -> str:
        """Calibration-table key for this operation; backends override it
        when a special-cased path (e.g. a two-rank direct-copy allreduce)
        has a different performance character than the generic family."""
        return str(family)

    def collective_cost_us(
        self,
        family: OpFamily,
        nbytes: int,
        p: int,
        comm_path: CommPath,
        vector: bool = False,
        nonblocking: bool = False,
    ) -> float:
        """Simulated duration of one collective on this backend.

        ``nbytes`` follows the per-op size conventions documented in
        :mod:`repro.backends.cost`.
        """
        if p < 1:
            raise ValueError(f"invalid communicator size {p}")
        cache = self._cost_cache
        key = (family, nbytes, p, comm_path, vector, nonblocking)
        cost = cache.get(key)
        if cost is not None:
            return cost
        cost = self._collective_cost_uncached(
            family, nbytes, p, comm_path, vector, nonblocking
        )
        if len(cache) >= _COST_CACHE_LIMIT:  # pragma: no cover - safety valve
            cache.clear()
        cache[key] = cost
        return cost

    def _collective_cost_uncached(
        self,
        family: OpFamily,
        nbytes: int,
        p: int,
        comm_path: CommPath,
        vector: bool,
        nonblocking: bool,
    ) -> float:
        op = self.tuning.op(self.tuning_key(family, nbytes, p))
        extra = 0.0
        if vector:
            extra += VECTOR_VARIANT_OVERHEAD_US
            if not self.properties.native_vector_collectives:
                # emulated vectored collective: per-rank p2p setup
                extra += 0.5 * p
        if nonblocking:
            extra += NONBLOCKING_OVERHEAD_US
        if family is OpFamily.BARRIER:
            params = CostParams(
                alpha_us=comm_path.alpha_us * op.latency_x,
                beta_us_per_byte=0.0,
                p=p,
                n=0,
            )
            return evaluate("dissemination_barrier", params) + extra
        algorithm = self.algorithm_for(family, nbytes, p)
        params = CostParams(
            alpha_us=comm_path.alpha_us * op.latency_x,
            beta_us_per_byte=comm_path.beta_us_per_byte * op.bandwidth_x,
            p=p,
            n=nbytes,
        )
        return evaluate(algorithm, params) + extra + self.staging_cost_us(nbytes)

    def p2p_cost_us(self, nbytes: int, same_node: bool) -> float:
        """Simulated duration of one point-to-point message."""
        cache = self._cost_cache
        key = ("p2p", nbytes, same_node)
        cost = cache.get(key)
        if cost is not None:
            return cost
        op = self.tuning.op("p2p")
        link = self.system.node.intra_link if same_node else self.system.inter_link
        params = CostParams(
            alpha_us=link.latency_us * op.latency_x,
            beta_us_per_byte=link.beta_us_per_byte * op.bandwidth_x,
            p=2,
            n=nbytes,
        )
        cost = evaluate("p2p_send", params) + self.staging_cost_us(nbytes)
        if len(cache) >= _COST_CACHE_LIMIT:  # pragma: no cover - safety valve
            cache.clear()
        cache[key] = cost
        return cost

    def staging_cost_us(self, nbytes: int) -> float:
        """Host staging penalty for non-CUDA-aware libraries (one copy
        down, one copy up)."""
        if self.properties.cuda_aware:
            return 0.0
        return 2.0 * self.system.host_staging_us(nbytes)

    def call_overhead_us(self) -> float:
        """Fixed host-side cost of posting one operation."""
        return self.tuning.call_overhead_us

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rank={self.rank}/{self.world_size})"


# -- registry -------------------------------------------------------------

_REGISTRY: dict[str, Type[Backend]] = {}
_ALIASES: dict[str, str] = {}


def register_backend(
    cls: Type[Backend], aliases: tuple[str, ...] = ()
) -> Type[Backend]:
    """Register a Backend subclass under its canonical name and aliases.

    Extending MCR-DL with a new library (paper C6) is: subclass
    :class:`Backend`, define properties/tuning/algorithms, register.
    """
    name = cls.properties.name
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"backend name {name!r} already registered")
    _REGISTRY[name] = cls
    for alias in aliases:
        _ALIASES[alias] = name
    return cls


def canonical_name(name: str) -> str:
    name = name.lower()
    return _ALIASES.get(name, name)


def available_backends() -> list[str]:
    """Canonical names of all registered backends."""
    return sorted(_REGISTRY)


def create_backend(
    name: str, rank: int, world_size: int, system: SystemSpec
) -> Backend:
    """Instantiate a registered backend for one rank."""
    canon = canonical_name(name)
    try:
        cls = _REGISTRY[canon]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
    return cls(rank, world_size, system)


def backend_class(name: str) -> Type[Backend]:
    canon = canonical_name(name)
    try:
        return _REGISTRY[canon]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
