"""Hierarchical mixed-backend collectives (``hier:<intra>+<inter>``).

MCR-DL mixes backends *across* operations (paper §V-F); this module
mixes them *within* one operation: a two-level collective whose
intra-node phase runs on the best intra-node backend (typically NCCL
over NVLink) and whose inter-node phase runs on the best inter-node
backend (typically an MPI over host-initiated RDMA) — the MPI-vs-NCCL
split Awan et al. measured for broadcast, generalized to allreduce,
allgather, and alltoall.

A hierarchical target is not a registered :class:`~repro.backends.base.
Backend`; it is a *dispatch* spelling, ``hier:<intra>+<inter>``, whose
constituents must both be initialized on the communicator.  The
communicator routes supported collectives through a
:class:`HierarchicalExecutor`, which decomposes each op into phases
over auto-derived process groups:

* one **intra-node group** per node (the member ranks placed on it);
* ``ppn`` **shard groups**, each holding the rank at one local index on
  every node (shard group 0 = the node leaders).

Decompositions (uniform ranks-per-node, ``k`` nodes, ``m`` = ppn):

* ``all_reduce``      — intra reduce_scatter → shard all_reduce
  (1/m of the vector across k leaders-per-shard) → intra all_gather;
* ``bcast``           — intra bcast on the root's node → leader bcast →
  intra bcast on the other nodes;
* ``all_gather``      — intra all_gather → shard all_gather (+ a local
  chunk permutation when the group is not node-contiguous);
* ``all_to_all_single`` — local pack → intra alltoall → local transpose
  → shard alltoall → local unpack into source-rank order.

Uneven placements fall back to a leader scheme (reduce-to-leader /
bcast-from-leader) where it is correct, and to flat dispatch on the
inter constituent otherwise; single-node or one-rank-per-node groups
degenerate to flat dispatch on the matching constituent.

Every phase runs through an ordinary sub-communicator (spawned via
:meth:`~repro.core.protocols.CommCore.spawn_phase_comm`), so it gets
the full stack for free: its own dispatch
plan (one :class:`~repro.core.dispatch.CommPlan` per phase), rendezvous
matching, fault retry/quarantine/failover per phase backend, and
phase-tagged comm records (``phase="intra"``/``"inter"``) for the
observability pipeline.

The analytic composite cost model (:func:`hier_collective_cost_us`)
prices the same phase schedule against the constituents' cost models —
the intra phases on the single-node path, the inter phase on the
leaders' :meth:`~repro.cluster.topology.SystemSpec.comm_path_for_ranks`
path (one rank per node → the full NIC per leader, which is the
physical mechanism behind the large-message crossover) — so the tuner
can sweep ``hier:*`` candidates next to flat backends and ``"auto"``
can pick the composite per (op, message size).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.backends.base import available_backends, canonical_name, create_backend
from repro.backends.cost import PhaseCost, composite_cost_us
from repro.backends.ops import OpFamily, ReduceOp
from repro.core.exceptions import BackendError, ValidationError

from repro.core.protocols import CommCore

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import SystemSpec
    from repro.core.config import MCRConfig
    from repro.core.handles import WorkHandle
    from repro.tensor import SimTensor

_PREFIX = "hier:"

#: op families a hierarchical target decomposes; anything else must be
#: dispatched to a flat backend explicitly
HIER_FAMILIES = frozenset(
    (OpFamily.ALLREDUCE, OpFamily.BROADCAST, OpFamily.ALLGATHER, OpFamily.ALLTOALL)
)


@dataclass(frozen=True)
class HierSpec:
    """One parsed ``hier:<intra>+<inter>`` target (canonical names)."""

    name: str
    intra: str
    inter: str


def is_hier_name(name: str) -> bool:
    """Whether ``name`` spells a hierarchical dispatch target."""
    return isinstance(name, str) and name[: len(_PREFIX)].lower() == _PREFIX


def parse_hier(name: str) -> HierSpec:
    """Parse and canonicalize ``hier:<intra>+<inter>``.

    Raises :class:`BackendError` on malformed spellings.  Constituent
    names go through the normal backend alias map, so
    ``hier:nccl+mvapich`` and ``hier:nccl+mvapich2-gdr`` are the same
    target.
    """
    if not is_hier_name(name):
        raise BackendError(f"{name!r} is not a hierarchical backend target")
    body = name[len(_PREFIX):]
    parts = body.split("+")
    if len(parts) != 2 or not all(p.strip() for p in parts):
        raise BackendError(
            f"malformed hierarchical target {name!r}; expected "
            "'hier:<intra>+<inter>' (e.g. 'hier:nccl+mvapich')"
        )
    intra = canonical_name(parts[0].strip())
    inter = canonical_name(parts[1].strip())
    known = available_backends()
    for level, backend in (("intra", intra), ("inter", inter)):
        if backend not in known:
            raise BackendError(
                f"unknown {level}-level backend {backend!r} in {name!r}; "
                f"available: {known}"
            )
    return HierSpec(name=f"{_PREFIX}{intra}+{inter}", intra=intra, inter=inter)


# ---------------------------------------------------------------------------
# group layout
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HierLayout:
    """Node placement of one communicator's group, in group order.

    ``node_members[i]`` lists the global ranks placed on the i-th node
    (nodes ordered by first appearance in the parent's ``group_ranks``;
    members in parent group order).  ``uniform`` means every node hosts
    the same number of member ranks.
    """

    node_members: tuple[tuple[int, ...], ...]
    uniform: bool
    ppn: int

    @property
    def n_nodes(self) -> int:
        return len(self.node_members)

    def locate(self, rank: int) -> tuple[int, int]:
        """(node index, local index) of one member rank."""
        for n, members in enumerate(self.node_members):
            if rank in members:
                return n, members.index(rank)
        raise ValueError(f"rank {rank} not in layout")  # pragma: no cover

    def node_contiguous(self, group_ranks: list[int]) -> bool:
        """Whether parent group order equals node-major order (node by
        node, members in order) — the case where no output permutation
        is needed for allgather."""
        flat = [r for members in self.node_members for r in members]
        return flat == list(group_ranks)


def derive_layout(system: "SystemSpec", group_ranks) -> HierLayout:
    """Group the member ranks by node, preserving parent group order."""
    by_node: dict[int, list[int]] = {}
    order: list[int] = []
    for r in group_ranks:
        node = system.node_of(r)
        if node not in by_node:
            by_node[node] = []
            order.append(node)
        by_node[node].append(r)
    members = tuple(tuple(by_node[n]) for n in order)
    sizes = {len(m) for m in members}
    return HierLayout(
        node_members=members,
        uniform=len(sizes) == 1,
        ppn=max(len(m) for m in members),
    )


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


class HierarchicalExecutor:
    """Per-communicator engine running ``hier:*`` dispatches.

    Holds the derived :class:`HierLayout`, the lazily constructed
    sub-communicators (one intra-node group, this rank's shard group),
    cached scratch tensors, and cached permutation index arrays.  All
    construction is SPMD-symmetric: every member rank derives the same
    layout and builds its sub-communicators at the same logical point
    (the first hierarchical dispatch).
    """

    def __init__(self, comm: CommCore):
        self.comm = comm
        self.ctx = comm.ctx
        self.layout = derive_layout(comm.ctx.system, comm.group_ranks)
        self.my_node, self.my_local = self.layout.locate(comm.ctx.rank)
        self._intra: Optional[CommCore] = None
        self._shards: dict[int, CommCore] = {}
        self._scratch: dict[tuple, "SimTensor"] = {}
        self._perms: dict[tuple, np.ndarray] = {}

    # -- sub-communicators ------------------------------------------------

    def _make_sub(self, ranks, comm_id: str, phase: str) -> CommCore:
        # construction, phase tagging, quarantine inheritance, and child
        # registration all live behind the protocol's spawn hook
        return self.comm.spawn_phase_comm(ranks, comm_id, phase)

    def intra_comm(self) -> CommCore:
        """The sub-communicator over this rank's node members."""
        if self._intra is None:
            self._intra = self._make_sub(
                self.layout.node_members[self.my_node],
                f"{self.comm.comm_id}|hier-intra",
                "intra",
            )
        return self._intra

    def shard_comm(self, local_index: int) -> CommCore:
        """The sub-communicator over the ranks at ``local_index`` on
        every node (local index 0 = the node leaders).  Only callable by
        a member of that shard."""
        sub = self._shards.get(local_index)
        if sub is None:
            ranks = [members[local_index] for members in self.layout.node_members]
            sub = self._shards[local_index] = self._make_sub(
                ranks, f"{self.comm.comm_id}|hier-inter{local_index}", "inter"
            )
        return sub

    @property
    def is_leader(self) -> bool:
        return self.my_local == 0

    # -- helpers ----------------------------------------------------------

    def _scratch_tensor(self, numel: int, dtype, virtual: bool, slot: str) -> "SimTensor":
        key = (slot, numel, dtype.name, virtual)
        buf = self._scratch.get(key)
        if buf is None:
            ctx = self.ctx
            if virtual:
                buf = ctx.virtual_tensor(numel, dtype)
            else:
                buf = ctx.zeros(numel, dtype)
            self._scratch[key] = buf
        return buf

    @staticmethod
    def _sync(sub: CommCore, handle: "WorkHandle") -> None:
        """Host-block on one phase and retire its handle.

        Phases *must* host-synchronize before the next post: collective
        data movement executes when the rendezvous resolves, so a later
        phase posted early could read a buffer the earlier phase has not
        produced yet.
        """
        handle.synchronize()
        pending = sub._outstanding.get(handle.backend_name)
        if pending:
            try:
                pending.remove(handle)
            except ValueError:  # pragma: no cover - already drained
                pass

    def _finish(
        self, sub: CommCore, handle: "WorkHandle", async_op: bool
    ) -> Optional["WorkHandle"]:
        """Apply the caller's async contract to the final phase."""
        if async_op:
            return handle
        self._sync(sub, handle)
        return None

    @staticmethod
    def _on_complete(handle: "WorkHandle", fn) -> None:
        """Run ``fn`` after the collective's data movement.

        The rendezvous resolves eagerly when the last participant
        arrives, so the flag may already have fired by the time the
        posting call returns — in which case the movement has happened
        and ``fn`` runs immediately (same pattern as DDP's copy-back).
        """
        if handle.flag.is_set:
            fn()
        else:
            handle.flag.callbacks.append(fn)

    def _completed(self, backend_name: str, label: str, async_op: bool):
        from repro.core.handles import CompletedHandle

        if async_op:
            return CompletedHandle(self.ctx, backend_name, label)
        return None

    # -- all_reduce -------------------------------------------------------

    def all_reduce(
        self, spec: HierSpec, tensor: "SimTensor", op: ReduceOp, async_op: bool
    ) -> Optional["WorkHandle"]:
        comm, lay = self.comm, self.layout
        k, ppn = lay.n_nodes, lay.ppn
        if k == 1:
            return comm.all_reduce(spec.intra, tensor, op=op, async_op=async_op)
        if ppn == 1:
            return comm.all_reduce(spec.inter, tensor, op=op, async_op=async_op)
        numel = tensor.numel()
        if lay.uniform and numel % ppn == 0:
            return self._allreduce_sharded(spec, tensor, op, async_op)
        if op is ReduceOp.AVG and not lay.uniform:
            # AVG-of-AVG is only exact over equal-sized groups; the flat
            # path stays correct for weighted placements
            return comm.all_reduce(spec.inter, tensor, op=op, async_op=async_op)
        return self._allreduce_leader(spec, tensor, op, async_op)

    def _allreduce_sharded(
        self, spec: HierSpec, tensor: "SimTensor", op: ReduceOp, async_op: bool
    ) -> Optional["WorkHandle"]:
        """reduce_scatter (intra) → all_reduce (shard) → all_gather (intra).

        After the intra reduce_scatter, the rank at local index ``l``
        holds shard ``l`` reduced over its node; the shard-group
        all_reduce completes the reduction across nodes; the intra
        all_gather reassembles the full vector in local-index order —
        which is exactly the scatter order, so no permutation is needed.
        """
        intra = self.intra_comm()
        shard = self.shard_comm(self.my_local)
        shard_numel = tensor.numel() // self.layout.ppn
        shard_buf = self._scratch_tensor(
            shard_numel, tensor.dtype, tensor.is_virtual, "ar-shard"
        )
        self._sync(
            intra,
            intra.reduce_scatter(spec.intra, shard_buf, tensor, op=op, async_op=True),
        )
        self._sync(shard, shard.all_reduce(spec.inter, shard_buf, op=op, async_op=True))
        handle = intra.all_gather(spec.intra, tensor, shard_buf, async_op=True)
        return self._finish(intra, handle, async_op)

    def _allreduce_leader(
        self, spec: HierSpec, tensor: "SimTensor", op: ReduceOp, async_op: bool
    ) -> Optional["WorkHandle"]:
        """reduce-to-leader (intra) → all_reduce (leaders) → bcast (intra).

        Correct for any vector length and uneven placements (AVG
        excepted — the caller routes that to the flat path)."""
        intra = self.intra_comm()
        self._sync(
            intra, intra.reduce(spec.intra, tensor, root=0, op=op, async_op=True)
        )
        if self.is_leader:
            leaders = self.shard_comm(0)
            self._sync(
                leaders, leaders.all_reduce(spec.inter, tensor, op=op, async_op=True)
            )
        handle = intra.bcast(spec.intra, tensor, root=0, async_op=True)
        return self._finish(intra, handle, async_op)

    # -- bcast ------------------------------------------------------------

    def bcast(
        self, spec: HierSpec, tensor: "SimTensor", root: int, async_op: bool
    ) -> Optional["WorkHandle"]:
        comm, lay = self.comm, self.layout
        if not 0 <= root < comm.world_size:
            raise ValidationError(
                f"root {root} out of range [0, {comm.world_size})"
            )
        if lay.n_nodes == 1:
            return comm.bcast(spec.intra, tensor, root=root, async_op=async_op)
        if lay.ppn == 1:
            return comm.bcast(spec.inter, tensor, root=root, async_op=async_op)
        root_global = comm.group_ranks[root]
        root_node, root_local = lay.locate(root_global)
        intra = self.intra_comm()
        if self.my_node == root_node:
            # hoist the payload to this node's leader (and everyone else
            # on the node) in one intra bcast
            self._sync(
                intra,
                intra.bcast(spec.intra, tensor, root=root_local, async_op=True),
            )
        if self.is_leader:
            leaders = self.shard_comm(0)
            self._sync(
                leaders,
                leaders.bcast(spec.inter, tensor, root=root_node, async_op=True),
            )
        if self.my_node == root_node:
            # this node already holds the payload; its part is done
            return self._completed(spec.intra, f"bcast:{spec.name}", async_op)
        handle = intra.bcast(spec.intra, tensor, root=0, async_op=True)
        return self._finish(intra, handle, async_op)

    # -- all_gather -------------------------------------------------------

    def all_gather(
        self, spec: HierSpec, output: "SimTensor", input: "SimTensor", async_op: bool
    ) -> Optional["WorkHandle"]:
        comm, lay = self.comm, self.layout
        if output.numel() != input.numel() * comm.world_size:
            raise ValidationError(
                f"all_gather: output numel {output.numel()} != "
                f"{comm.world_size} * {input.numel()}"
            )
        if lay.n_nodes == 1:
            return comm.all_gather(spec.intra, output, input, async_op=async_op)
        if lay.ppn == 1:
            return comm.all_gather(spec.inter, output, input, async_op=async_op)
        if not lay.uniform:
            # gathering uneven node blocks needs vectored phases; the
            # flat inter path stays correct
            return comm.all_gather(spec.inter, output, input, async_op=async_op)
        intra = self.intra_comm()
        shard = self.shard_comm(self.my_local)
        virtual = input.is_virtual or output.is_virtual
        node_buf = self._scratch_tensor(
            input.numel() * lay.ppn, input.dtype, virtual, "ag-node"
        )
        self._sync(
            intra, intra.all_gather(spec.intra, node_buf, input, async_op=True)
        )
        handle = shard.all_gather(spec.inter, output, node_buf, async_op=True)
        # the shard all_gather lands chunks in node-major order; groups
        # whose parent order interleaves nodes need one local permutation
        if not virtual and not lay.node_contiguous(comm.group_ranks):
            perm = self._allgather_perm()
            chunk = input.numel()
            flat = output.contiguous().view_flat()

            def reorder() -> None:
                flat[:] = flat.reshape(len(perm), chunk)[perm].reshape(-1)

            self._on_complete(handle, reorder)
        return self._finish(shard, handle, async_op)

    def _allgather_perm(self) -> np.ndarray:
        """``perm[j]`` = node-major position of parent group rank j."""
        key = ("ag-perm",)
        perm = self._perms.get(key)
        if perm is None:
            lay = self.comm.group_ranks
            node_major = [
                r for members in self.layout.node_members for r in members
            ]
            pos = {r: i for i, r in enumerate(node_major)}
            perm = np.array([pos[r] for r in lay], dtype=np.intp)
            self._perms[key] = perm
        return perm

    # -- all_to_all_single -------------------------------------------------

    def all_to_all_single(
        self, spec: HierSpec, output: "SimTensor", input: "SimTensor", async_op: bool
    ) -> Optional["WorkHandle"]:
        comm, lay = self.comm, self.layout
        p = comm.world_size
        if input.numel() != output.numel():
            raise ValidationError("all_to_all_single: input/output numel differ")
        if input.numel() % p != 0:
            raise ValidationError(
                f"all_to_all_single: numel {input.numel()} not divisible by "
                f"world size {p}"
            )
        if lay.n_nodes == 1:
            return comm.all_to_all_single(spec.intra, output, input, async_op=async_op)
        if lay.ppn == 1:
            return comm.all_to_all_single(spec.inter, output, input, async_op=async_op)
        if not lay.uniform:
            return comm.all_to_all_single(spec.inter, output, input, async_op=async_op)
        k, m = lay.n_nodes, lay.ppn
        chunk = input.numel() // p
        virtual = input.is_virtual or output.is_virtual
        tmp_a = self._scratch_tensor(input.numel(), input.dtype, virtual, "a2a-a")
        tmp_b = self._scratch_tensor(input.numel(), input.dtype, virtual, "a2a-b")
        pack, transpose, unpack = self._a2a_perms(k, m)
        if not virtual:
            src = input.contiguous().view_flat().reshape(p, chunk)
            tmp_a.view_flat().reshape(p, chunk)[:] = src[pack]
        intra = self.intra_comm()
        shard = self.shard_comm(self.my_local)
        self._sync(
            intra, intra.all_to_all_single(spec.intra, tmp_b, tmp_a, async_op=True)
        )
        if not virtual:
            b = tmp_b.view_flat().reshape(p, chunk)
            tmp_a.view_flat().reshape(p, chunk)[:] = b[transpose]
        handle = shard.all_to_all_single(spec.inter, tmp_b, tmp_a, async_op=True)
        if not virtual:
            out_flat = output.contiguous().view_flat()
            b_flat = tmp_b.view_flat()

            def deliver() -> None:
                out_flat.reshape(p, chunk)[:] = b_flat.reshape(p, chunk)[unpack]

            self._on_complete(handle, deliver)
        else:
            deliver = None
        if async_op:
            return handle
        self._sync(shard, handle)
        return None

    def _a2a_perms(self, k: int, m: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Index arrays for the three local shuffles of the two-phase
        alltoall.  All are permutations of the ``p = k*m`` chunk slots:

        * ``pack``: gather input chunks (keyed by destination parent
          rank) into intra-phase send order — for local destination
          ``l``, the ``k`` chunks bound for local index ``l`` on each
          node, in node order;
        * ``transpose``: regroup the intra-phase result (local source
          major) into inter-phase send order (destination node major);
        * ``unpack``: scatter the inter-phase result (source node major)
          into parent source-rank order.
        """
        key = ("a2a", k, m)
        cached = self._perms.get(key)
        if cached is not None:
            return cached
        lay = self.layout
        group_ranks = self.comm.group_ranks
        # parent index of the member at (node n, local l)
        idx = {
            (n, l): group_ranks.index(lay.node_members[n][l])
            for n in range(k)
            for l in range(len(lay.node_members[n]))
        }
        pack = np.empty(k * m, dtype=np.intp)
        for l in range(m):
            for n in range(k):
                pack[l * k + n] = idx[(n, l)]
        # after the intra alltoall, slot (l_src * k + n_dst) holds the
        # chunk from local source l_src bound for node n_dst (at my
        # local index); regroup to (n_dst * m + l_src)
        transpose = np.empty(k * m, dtype=np.intp)
        for n in range(k):
            for l in range(m):
                transpose[n * m + l] = l * k + n
        # after the inter alltoall, slot (n_src * m + l_src) holds the
        # chunk from the member at (n_src, l_src); parent rank j reads
        # its chunk from that slot
        unpack = np.empty(k * m, dtype=np.intp)
        for j, r in enumerate(group_ranks):
            n_src, l_src = lay.locate(r)
            unpack[j] = n_src * m + l_src
        cached = self._perms[key] = (pack, transpose, unpack)
        return cached


# ---------------------------------------------------------------------------
# composite analytic cost (tuner / microbench support)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=512)
def _phase_backend(name: str, p: int, system: "SystemSpec"):
    """Analytic backend instance for one phase (shared cost memo per
    (class, system) makes this cheap to cache by coordinates)."""
    return create_backend(name, 0, p, system)


def _dense_layout(system: "SystemSpec", world_size: int) -> tuple[int, int, bool]:
    """(n_nodes, ppn, uniform) for densely packed ranks 0..ws-1."""
    ppn = min(world_size, system.gpus_per_node)
    n_nodes = system.nodes_for(world_size)
    uniform = world_size % system.gpus_per_node == 0 or n_nodes == 1
    return n_nodes, ppn, uniform


def hier_cost_phases(
    system: "SystemSpec",
    spec: HierSpec,
    family: OpFamily,
    nbytes: int,
    world_size: int,
    config: Optional["MCRConfig"] = None,
) -> Optional[list[PhaseCost]]:
    """Phase-by-phase analytic cost of one hierarchical collective for
    densely packed ranks ``0..world_size-1``, or ``None`` when the
    family is not hierarchically decomposable.

    Mirrors the executor's schedule: every phase is a full MCR-DL
    dispatch (non-blocking post + host synchronize), so each carries the
    constituent's cost scaled by the dispatch fraction plus the
    per-phase dispatch and call overheads — the same accounting the
    tuner applies to flat backends.
    """
    if family not in HIER_FAMILIES:
        return None
    from repro.core.config import MCRConfig

    cfg = config or MCRConfig()
    k, ppn, uniform = _dense_layout(system, world_size)

    def phase(tag: str, name: str, fam: OpFamily, n: int, p: int, path) -> PhaseCost:
        backend = _phase_backend(name, p, system)
        raw = backend.collective_cost_us(fam, n, p, path, nonblocking=True)
        raw *= 1.0 + cfg.dispatch_fraction
        overhead = cfg.dispatch_overhead_us + backend.call_overhead_us()
        return PhaseCost(
            phase=tag, backend=name, family=fam.value, cost_us=raw,
            overhead_us=overhead,
        )

    def flat(name: str) -> list[PhaseCost]:
        path = system.comm_path(world_size)
        return [phase("flat", name, family, nbytes, world_size, path)]

    if k == 1:
        return flat(spec.intra)
    if ppn == 1:
        return flat(spec.inter)
    intra_path = system.comm_path(ppn)
    leader_path = system.comm_path_for_ranks(
        [n * system.gpus_per_node for n in range(k)]
    )
    if family is OpFamily.ALLREDUCE:
        if uniform:
            return [
                phase("intra", spec.intra, OpFamily.REDUCE_SCATTER, nbytes, ppn, intra_path),
                phase("inter", spec.inter, OpFamily.ALLREDUCE, nbytes // ppn, k, leader_path),
                phase("intra", spec.intra, OpFamily.ALLGATHER, nbytes // ppn, ppn, intra_path),
            ]
        return [
            phase("intra", spec.intra, OpFamily.REDUCE, nbytes, ppn, intra_path),
            phase("inter", spec.inter, OpFamily.ALLREDUCE, nbytes, k, leader_path),
            phase("intra", spec.intra, OpFamily.BROADCAST, nbytes, ppn, intra_path),
        ]
    if family is OpFamily.BROADCAST:
        return [
            phase("intra", spec.intra, OpFamily.BROADCAST, nbytes, ppn, intra_path),
            phase("inter", spec.inter, OpFamily.BROADCAST, nbytes, k, leader_path),
            phase("intra", spec.intra, OpFamily.BROADCAST, nbytes, ppn, intra_path),
        ]
    if family is OpFamily.ALLGATHER:
        if not uniform:
            return flat(spec.inter)
        return [
            phase("intra", spec.intra, OpFamily.ALLGATHER, nbytes, ppn, intra_path),
            phase("inter", spec.inter, OpFamily.ALLGATHER, nbytes * ppn, k, leader_path),
        ]
    # ALLTOALL: each rank moves its full local volume in both phases
    if not uniform:
        return flat(spec.inter)
    return [
        phase("intra", spec.intra, OpFamily.ALLTOALL, nbytes, ppn, intra_path),
        phase("inter", spec.inter, OpFamily.ALLTOALL, nbytes, k, leader_path),
    ]


def hier_collective_cost_us(
    system: "SystemSpec",
    spec: HierSpec,
    family: OpFamily,
    nbytes: int,
    world_size: int,
    config: Optional["MCRConfig"] = None,
) -> float:
    """End-to-end analytic latency of one hierarchical collective; +inf
    for families a hierarchical target cannot run (so tuner sweeps never
    select it there)."""
    phases = hier_cost_phases(system, spec, family, nbytes, world_size, config)
    if phases is None:
        return math.inf
    return composite_cost_us(phases)
