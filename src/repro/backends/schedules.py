"""Executable collective schedules.

The cost models in :mod:`repro.backends.cost` are closed-form formulas;
this module implements the *actual algorithms* — ring allreduce,
recursive-doubling allgather, binomial-tree broadcast, and friends — as
step-by-step schedules executed over MCR-DL's point-to-point layer with
real data movement.

Two purposes:

* **validation by construction**: tests execute a schedule end-to-end
  and check (a) the data matches the one-shot collective, and (b) the
  measured time tracks the analytic formula's round/volume structure;
* **Option 1 from the paper's problem statement** (§I-A): when a
  framework lacks a collective, users build it from point-to-point
  operations.  These schedules are exactly that path, so the
  "collectives from p2p" productivity/performance trade-off the paper
  describes is reproducible (see ``benchmarks/test_ablations.py``).

Schedules are lists of rounds; each round is a list of
:class:`Transfer` steps some subset of ranks participates in.  Within a
round every rank posts its receives, then its sends, then waits — the
standard deadlock-free pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.ops import ReduceOp
from repro.core.protocols import CommCore

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import RankContext


@dataclass(frozen=True)
class Transfer:
    """One point-to-point move within a round.

    ``src_chunk``/``dst_chunk`` index equal-size chunks of the working
    buffer; ``reduce`` folds the payload into the destination chunk
    instead of overwriting it.
    """

    src: int
    dst: int
    src_chunk: int
    dst_chunk: int
    reduce: bool = False


Schedule = list[list[Transfer]]


def _require_power_of_two(p: int, what: str) -> None:
    if p & (p - 1):
        raise ValueError(f"{what} requires a power-of-two rank count, got {p}")


# ----------------------------------------------------------------------
# schedule builders
# ----------------------------------------------------------------------


def ring_allreduce_schedule(p: int) -> Schedule:
    """Baidu-style ring: p-1 reduce-scatter rounds + p-1 allgather rounds
    over p chunks."""
    if p == 1:
        return []
    rounds: Schedule = []
    # reduce-scatter phase: in round k, rank r sends chunk (r - k) mod p
    for k in range(p - 1):
        rounds.append(
            [
                Transfer(
                    src=r,
                    dst=(r + 1) % p,
                    src_chunk=(r - k) % p,
                    dst_chunk=(r - k) % p,
                    reduce=True,
                )
                for r in range(p)
            ]
        )
    # allgather phase: circulate the finished chunks
    for k in range(p - 1):
        rounds.append(
            [
                Transfer(
                    src=r,
                    dst=(r + 1) % p,
                    src_chunk=(r + 1 - k) % p,
                    dst_chunk=(r + 1 - k) % p,
                    reduce=False,
                )
                for r in range(p)
            ]
        )
    return rounds


def ring_allgather_schedule(p: int) -> Schedule:
    """p-1 rounds circulating each rank's contribution around the ring."""
    if p == 1:
        return []
    rounds: Schedule = []
    for k in range(p - 1):
        rounds.append(
            [
                Transfer(
                    src=r,
                    dst=(r + 1) % p,
                    src_chunk=(r - k) % p,
                    dst_chunk=(r - k) % p,
                )
                for r in range(p)
            ]
        )
    return rounds


def recursive_doubling_allgather_schedule(p: int) -> Schedule:
    """log2(p) rounds; in round k each rank exchanges its accumulated
    2^k chunks with its partner at distance 2^k."""
    if p == 1:
        return []
    _require_power_of_two(p, "recursive doubling")
    rounds: Schedule = []
    for k in range(int(math.log2(p))):
        dist = 1 << k
        transfers = []
        for r in range(p):
            partner = r ^ dist
            # rank r owns chunks [base, base + dist) where base aligns to dist
            base = (r // dist) * dist
            for offset in range(dist):
                transfers.append(
                    Transfer(
                        src=r,
                        dst=partner,
                        src_chunk=base + offset,
                        dst_chunk=base + offset,
                    )
                )
        rounds.append(transfers)
    return rounds


def binomial_broadcast_schedule(p: int, root: int = 0) -> Schedule:
    """ceil(log2(p)) rounds; the informed set doubles each round."""
    if p == 1:
        return []
    rounds: Schedule = []
    informed = 1
    while informed < p:
        transfers = []
        for i in range(min(informed, p - informed)):
            src = (root + i) % p
            dst = (root + i + informed) % p
            transfers.append(Transfer(src=src, dst=dst, src_chunk=0, dst_chunk=0))
        rounds.append(transfers)
        informed *= 2
    return rounds


def schedule_stats(schedule: Schedule, p: int) -> dict:
    """Round count and per-rank peak transfer count — the quantities the
    alpha-beta formulas charge."""
    per_round_peak = []
    for transfers in schedule:
        sends: dict[int, int] = {}
        for t in transfers:
            sends[t.src] = sends.get(t.src, 0) + 1
        per_round_peak.append(max(sends.values()) if sends else 0)
    return {
        "rounds": len(schedule),
        "total_transfers": sum(len(r) for r in schedule),
        "peak_sends_per_rank_round": max(per_round_peak, default=0),
    }


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------


class ScheduleExecutor:
    """Runs a schedule on one rank over a communicator's p2p layer.

    The working buffer is divided into ``n_chunks`` equal chunks; every
    rank calls :meth:`run` with its local buffer.  Tags encode
    (round, destination chunk) so concurrent transfers never mis-match.
    """

    def __init__(self, ctx: "RankContext", comm: CommCore, backend: str):
        self.ctx = ctx
        self.comm = comm
        self.backend = backend

    def run(
        self,
        schedule: Schedule,
        buffer: np.ndarray,
        n_chunks: int,
        op: ReduceOp = ReduceOp.SUM,
    ) -> None:
        rank = self.comm.rank
        if buffer.size % n_chunks:
            raise ValueError(
                f"buffer size {buffer.size} not divisible into {n_chunks} chunks"
            )
        chunk = buffer.size // n_chunks
        from repro.tensor.tensor import from_numpy

        def view(index: int) -> np.ndarray:
            return buffer[index * chunk : (index + 1) * chunk]

        for round_id, transfers in enumerate(schedule):
            recvs = []
            for t in transfers:
                if t.dst != rank:
                    continue
                tag = (round_id << 8) | t.dst_chunk
                scratch = np.empty(chunk, dtype=buffer.dtype)
                handle = self.comm.irecv(
                    self.backend, from_numpy(scratch, self.ctx.device), src=t.src, tag=tag
                )
                recvs.append((handle, scratch, t))
            for t in transfers:
                if t.src != rank:
                    continue
                tag = (round_id << 8) | t.dst_chunk
                payload = from_numpy(view(t.src_chunk).copy(), self.ctx.device)
                self.comm.isend(self.backend, payload, dst=t.dst, tag=tag)
            for handle, scratch, t in recvs:
                handle.synchronize()
                target = view(t.dst_chunk)
                if t.reduce:
                    target[:] = op.apply([target, scratch])
                else:
                    target[:] = scratch


def emulated_all_reduce(
    ctx: "RankContext",
    comm: CommCore,
    backend: str,
    buffer: np.ndarray,
    op: ReduceOp = ReduceOp.SUM,
) -> None:
    """Allreduce built purely from p2p (the paper's §I-A Option 1)."""
    p = comm.world_size
    if p == 1:
        return
    ScheduleExecutor(ctx, comm, backend).run(
        ring_allreduce_schedule(p), buffer, n_chunks=p, op=op
    )


def emulated_all_gather(
    ctx: "RankContext",
    comm: CommCore,
    backend: str,
    buffer: np.ndarray,
) -> None:
    """Ring allgather from p2p: rank r's contribution pre-loaded in
    chunk r of ``buffer``."""
    p = comm.world_size
    if p == 1:
        return
    ScheduleExecutor(ctx, comm, backend).run(
        ring_allgather_schedule(p), buffer, n_chunks=p
    )


def emulated_broadcast(
    ctx: "RankContext",
    comm: CommCore,
    backend: str,
    buffer: np.ndarray,
    root: int = 0,
) -> None:
    """Binomial-tree broadcast from p2p."""
    p = comm.world_size
    if p == 1:
        return
    ScheduleExecutor(ctx, comm, backend).run(
        binomial_broadcast_schedule(p, root), buffer, n_chunks=1
    )
