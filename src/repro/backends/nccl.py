"""NCCL backend model.

NCCL (paper §III-C): stream-aware, CUDA-native collectives with
excellent large-message ring Allreduce, but no gather/scatter, no
vectored collectives, and an Alltoall built from per-peer point-to-point
sends whose setup latency scales with the communicator size — the reason
it loses Alltoall at scale (Fig. 2b).
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendProperties, register_backend
from repro.backends.calibration import NCCL_TUNING
from repro.backends.ops import OpFamily

#: below this, NCCL uses its LL (low-latency) protocol
_LL_THRESHOLD_BYTES = 64 * 1024
#: between LL and this, the pipelined double binary tree; ring above
_TREE_THRESHOLD_BYTES = 4 * 1024 * 1024


class NcclBackend(Backend):
    """NVIDIA Collective Communications Library."""

    properties = BackendProperties(
        name="nccl",
        display_name="NCCL",
        stream_aware=True,
        cuda_aware=True,
        native_vector_collectives=False,
        native_nonblocking=True,  # via stream semantics
        native_gather_scatter=False,
        abi="nccl",
        mpi_compliant=False,
    )
    tuning = NCCL_TUNING

    def algorithm_for(self, family: OpFamily, nbytes: int, p: int) -> str:
        if family is OpFamily.ALLREDUCE:
            if nbytes < _LL_THRESHOLD_BYTES:
                return "recursive_doubling_allreduce"
            if nbytes < _TREE_THRESHOLD_BYTES:
                return "tree_allreduce"
            return "ring_allreduce"
        if family is OpFamily.ALLGATHER:
            # aggregated LL protocol keeps step count logarithmic for
            # small/medium sizes; bandwidth-optimal ring for large
            if nbytes < 256 * 1024:
                return "recursive_doubling_allgather"
            return "ring_allgather"
        if family is OpFamily.REDUCE_SCATTER:
            return "ring_reduce_scatter"
        if family is OpFamily.BROADCAST:
            return "binomial_broadcast"
        if family is OpFamily.REDUCE:
            return "binomial_reduce"
        if family is OpFamily.ALLTOALL:
            return "p2p_alltoall"
        if family in (OpFamily.GATHER, OpFamily.SCATTER):
            # not native: MCR-DL emulates over p2p (linear pattern)
            return "linear_gather" if family is OpFamily.GATHER else "linear_scatter"
        if family is OpFamily.P2P:
            return "p2p_send"
        raise ValueError(f"NCCL: no algorithm for {family}")


register_backend(NcclBackend)
