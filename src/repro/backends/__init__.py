"""Communication backends.

Each library the paper uses (NCCL, MVAPICH2-GDR, OpenMPI, MSCCL, plus a
Gloo fallback) is a :class:`~repro.backends.base.Backend` subclass — the
"backend as a class" design of Table I.  A backend contributes three
things:

* **semantics** — stream-aware (enqueue on CUDA streams, host never
  blocks) vs host-synchronized MPI; CUDA-awareness; native vector
  collective support (:class:`~repro.backends.base.BackendProperties`);
* **algorithms** — which collective algorithm it runs at a given
  (op, message size, world size), from the standard menu in
  :mod:`repro.backends.cost`;
* **performance character** — per-op latency/bandwidth multipliers from
  :mod:`repro.backends.calibration`, applied to the system's
  :class:`~repro.cluster.CommPath`.

Data movement itself (:mod:`repro.backends.datapath`) is shared: every
backend produces bit-identical results, they differ only in time and
synchronization — exactly the property that makes mix-and-match safe.
"""

from repro.backends.base import (
    Backend,
    BackendProperties,
    available_backends,
    backend_class,
    canonical_name,
    create_backend,
    register_backend,
)
from repro.backends.nccl import NcclBackend
from repro.backends.mvapich import MvapichGdrBackend
from repro.backends.openmpi import OpenMpiBackend
from repro.backends.msccl import MscclBackend
from repro.backends.gloo import GlooBackend
from repro.backends.ucc import UccBackend

__all__ = [
    "Backend",
    "BackendProperties",
    "available_backends",
    "backend_class",
    "canonical_name",
    "create_backend",
    "register_backend",
    "NcclBackend",
    "MvapichGdrBackend",
    "OpenMpiBackend",
    "MscclBackend",
    "GlooBackend",
    "UccBackend",
]
