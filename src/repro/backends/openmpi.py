"""OpenMPI (UCX) backend model.

A CUDA-aware generalist MPI (paper §VI-2 used OpenMPI v5.1.0 with UCX
1.13.1): full MPI surface, decent latency, but without GDR-grade small
message paths or NCCL-grade ring bandwidth.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendProperties, register_backend
from repro.backends.calibration import OPENMPI_TUNING
from repro.backends.ops import OpFamily

_SMALL = 16 * 1024


class OpenMpiBackend(Backend):
    """OpenMPI with UCX transport."""

    properties = BackendProperties(
        name="openmpi",
        display_name="OpenMPI",
        stream_aware=False,
        cuda_aware=True,
        native_vector_collectives=True,
        native_nonblocking=True,
        native_gather_scatter=True,
        abi="ompi",
        mpi_compliant=True,
    )
    tuning = OPENMPI_TUNING

    def algorithm_for(self, family: OpFamily, nbytes: int, p: int) -> str:
        if family is OpFamily.ALLREDUCE:
            if nbytes < _SMALL:
                return "recursive_doubling_allreduce"
            return "ring_allreduce"
        if family is OpFamily.ALLGATHER:
            if nbytes < _SMALL:
                return "recursive_doubling_allgather"
            return "ring_allgather"
        if family is OpFamily.REDUCE_SCATTER:
            return "ring_reduce_scatter"
        if family is OpFamily.BROADCAST:
            return "binomial_broadcast"
        if family is OpFamily.REDUCE:
            return "binomial_reduce"
        if family is OpFamily.ALLTOALL:
            # device buffers avoid Bruck's staging copies (see mvapich.py)
            return "pairwise_alltoall"
        if family is OpFamily.GATHER:
            return "binomial_gather"
        if family is OpFamily.SCATTER:
            return "binomial_scatter"
        if family is OpFamily.P2P:
            return "p2p_send"
        raise ValueError(f"OpenMPI: no algorithm for {family}")


register_backend(OpenMpiBackend, aliases=("ompi",))
