"""Gloo backend model.

PyTorch's CPU fallback backend: not CUDA-aware (every GPU tensor is
staged through host memory), host-synchronized, ring-based algorithms.
Included to exercise MCR-DL's extensibility claim (§V-B lists Gloo as a
candidate backend class) and as a conservative baseline.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendProperties, register_backend
from repro.backends.calibration import GLOO_TUNING
from repro.backends.ops import OpFamily


class GlooBackend(Backend):
    """Gloo host-based collectives."""

    properties = BackendProperties(
        name="gloo",
        display_name="Gloo",
        stream_aware=False,
        cuda_aware=False,
        native_vector_collectives=False,
        native_nonblocking=False,
        native_gather_scatter=True,
        abi="host",
        mpi_compliant=False,
    )
    tuning = GLOO_TUNING

    def algorithm_for(self, family: OpFamily, nbytes: int, p: int) -> str:
        if family is OpFamily.ALLREDUCE:
            return "ring_allreduce"
        if family is OpFamily.ALLGATHER:
            return "ring_allgather"
        if family is OpFamily.REDUCE_SCATTER:
            return "ring_reduce_scatter"
        if family is OpFamily.BROADCAST:
            return "binomial_broadcast"
        if family is OpFamily.REDUCE:
            return "binomial_reduce"
        if family is OpFamily.ALLTOALL:
            return "pairwise_alltoall"
        if family is OpFamily.GATHER:
            return "linear_gather"
        if family is OpFamily.SCATTER:
            return "linear_scatter"
        if family is OpFamily.P2P:
            return "p2p_send"
        raise ValueError(f"Gloo: no algorithm for {family}")


register_backend(GlooBackend)
