"""Collective data movement (the correctness half of every backend).

These functions perform the actual NumPy data movement for each
collective once all participants have arrived at the rendezvous.  Every
backend shares them: backends differ in *time* and *synchronization*,
never in the bytes they deliver — which is precisely what makes
mix-and-match (and this reproduction's correctness tests) possible.

Inputs arrive as per-rank flat NumPy views, ordered by rank.  Outputs
are written **in place** into the per-rank output views.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backends.ops import ReduceOp


def _check_equal_sizes(buffers: Sequence[np.ndarray], what: str) -> int:
    sizes = {b.size for b in buffers}
    if len(sizes) != 1:
        raise ValueError(f"{what}: mismatched sizes across ranks: {sorted(sizes)}")
    return sizes.pop()


def _stage_if_aliased(
    sources: Sequence[np.ndarray], destinations: Sequence[np.ndarray]
) -> list[np.ndarray]:
    """Sources that are safe to read while the destinations are written.

    The movement loops below interleave reads of the inputs with writes
    to the outputs, so an output view overlapping an input view would
    corrupt later reads.  ``np.shares_memory`` proves (exactly, and
    cheaply for these flat views) whether any such overlap exists; only
    then are the inputs staged through copies.  The common case — every
    rank on its own buffer, or disjoint views of one shared pool — moves
    data with zero staging copies.
    """
    if any(np.shares_memory(s, d) for s in sources for d in destinations):
        return [np.array(s, copy=True) for s in sources]
    return list(sources)


def all_reduce(
    inputs: Sequence[np.ndarray], outputs: Sequence[np.ndarray], op: ReduceOp
) -> None:
    _check_equal_sizes(inputs, "all_reduce inputs")
    # ReduceOp.apply materializes into a fresh array (np.stack copies)
    # before any output is written, so aliased outputs need no staging.
    reduced = op.apply(list(inputs))
    for out in outputs:
        if out.size != reduced.size:
            raise ValueError("all_reduce: output size mismatch")
        out[:] = reduced


def reduce(
    inputs: Sequence[np.ndarray],
    root_output: np.ndarray,
    op: ReduceOp,
) -> None:
    _check_equal_sizes(inputs, "reduce inputs")
    reduced = op.apply(list(inputs))
    if root_output.size != reduced.size:
        raise ValueError("reduce: root output size mismatch")
    root_output[:] = reduced


def broadcast(root_input: np.ndarray, outputs: Sequence[np.ndarray]) -> None:
    src = _stage_if_aliased([root_input], outputs)[0]
    for out in outputs:
        if out.size != src.size:
            raise ValueError("broadcast: output size mismatch")
        out[:] = src


def all_gather(inputs: Sequence[np.ndarray], outputs: Sequence[np.ndarray]) -> None:
    """Each rank contributes ``n``; every output receives ``p * n`` in
    rank order."""
    n = _check_equal_sizes(inputs, "all_gather inputs")
    # np.concatenate materializes the gathered vector before any write
    gathered = np.concatenate(list(inputs))
    for out in outputs:
        if out.size != n * len(inputs):
            raise ValueError(
                f"all_gather: output size {out.size} != {n * len(inputs)}"
            )
        out[:] = gathered


def all_gather_v(
    inputs: Sequence[np.ndarray],
    outputs: Sequence[np.ndarray],
    rcounts: Sequence[int],
    displs: Sequence[int],
) -> None:
    """Vectored allgather: rank i contributes ``rcounts[i]`` elements,
    placed at ``displs[i]`` in every output."""
    if len(rcounts) != len(inputs) or len(displs) != len(inputs):
        raise ValueError("all_gather_v: counts/displs length mismatch")
    for i, buf in enumerate(inputs):
        if buf.size < rcounts[i]:
            raise ValueError(
                f"all_gather_v: rank {i} buffer ({buf.size}) < rcount {rcounts[i]}"
            )
    staged = _stage_if_aliased(list(inputs), outputs)
    contributions = [buf[: rcounts[i]] for i, buf in enumerate(staged)]
    for out in outputs:
        for i, chunk in enumerate(contributions):
            end = displs[i] + rcounts[i]
            if end > out.size:
                raise ValueError("all_gather_v: displacement past output end")
            out[displs[i] : end] = chunk


def reduce_scatter(
    inputs: Sequence[np.ndarray], outputs: Sequence[np.ndarray], op: ReduceOp
) -> None:
    """Reduce full vectors, scatter contiguous 1/p chunks."""
    n = _check_equal_sizes(inputs, "reduce_scatter inputs")
    p = len(inputs)
    if n % p != 0:
        raise ValueError(f"reduce_scatter: size {n} not divisible by ranks {p}")
    reduced = op.apply(list(inputs))
    chunk = n // p
    for i, out in enumerate(outputs):
        if out.size != chunk:
            raise ValueError("reduce_scatter: output size mismatch")
        out[:] = reduced[i * chunk : (i + 1) * chunk]


def all_to_all_single(
    inputs: Sequence[np.ndarray], outputs: Sequence[np.ndarray]
) -> None:
    """Element shuffle: rank i's chunk j goes to rank j's slot i."""
    n = _check_equal_sizes(inputs, "all_to_all inputs")
    p = len(inputs)
    if n % p != 0:
        raise ValueError(f"all_to_all: size {n} not divisible by ranks {p}")
    chunk = n // p
    staged = _stage_if_aliased(list(inputs), outputs)
    for j, out in enumerate(outputs):
        if out.size != n:
            raise ValueError("all_to_all: output size mismatch")
        for i in range(p):
            out[i * chunk : (i + 1) * chunk] = staged[i][j * chunk : (j + 1) * chunk]


def all_to_all_v(
    inputs: Sequence[np.ndarray],
    outputs: Sequence[np.ndarray],
    scounts: Sequence[Sequence[int]],
    sdispls: Sequence[Sequence[int]],
    rcounts: Sequence[Sequence[int]],
    rdispls: Sequence[Sequence[int]],
) -> None:
    """Fully vectored alltoall.

    ``scounts[i][j]`` elements leave rank i for rank j from offset
    ``sdispls[i][j]``; they land in rank j at offset ``rdispls[j][i]``
    (which must expect ``rcounts[j][i] == scounts[i][j]`` elements).
    """
    p = len(inputs)
    staged = _stage_if_aliased(list(inputs), outputs)
    for i in range(p):
        for j in range(p):
            cnt = scounts[i][j]
            if cnt != rcounts[j][i]:
                raise ValueError(
                    f"all_to_all_v: scounts[{i}][{j}]={cnt} != "
                    f"rcounts[{j}][{i}]={rcounts[j][i]}"
                )
            if cnt == 0:
                continue
            src = staged[i][sdispls[i][j] : sdispls[i][j] + cnt]
            dst = outputs[j]
            if rdispls[j][i] + cnt > dst.size:
                raise ValueError("all_to_all_v: receive past output end")
            dst[rdispls[j][i] : rdispls[j][i] + cnt] = src


def gather(inputs: Sequence[np.ndarray], root_output: np.ndarray) -> None:
    n = _check_equal_sizes(inputs, "gather inputs")
    if root_output.size != n * len(inputs):
        raise ValueError("gather: root output size mismatch")
    # np.concatenate materializes before the root output is written
    root_output[:] = np.concatenate(list(inputs))


def gather_v(
    inputs: Sequence[np.ndarray],
    root_output: np.ndarray,
    rcounts: Sequence[int],
    displs: Sequence[int],
) -> None:
    staged = _stage_if_aliased(list(inputs), [root_output])
    for i, buf in enumerate(staged):
        cnt = rcounts[i]
        if buf.size < cnt:
            raise ValueError(f"gather_v: rank {i} buffer smaller than rcount")
        if displs[i] + cnt > root_output.size:
            raise ValueError("gather_v: displacement past root output end")
        root_output[displs[i] : displs[i] + cnt] = buf[:cnt]


def scatter(root_input: np.ndarray, outputs: Sequence[np.ndarray]) -> None:
    p = len(outputs)
    if root_input.size % p != 0:
        raise ValueError("scatter: root size not divisible by ranks")
    chunk = root_input.size // p
    staged = _stage_if_aliased([root_input], outputs)[0]
    for i, out in enumerate(outputs):
        if out.size != chunk:
            raise ValueError("scatter: output size mismatch")
        out[:] = staged[i * chunk : (i + 1) * chunk]


def scatter_v(
    root_input: np.ndarray,
    outputs: Sequence[np.ndarray],
    scounts: Sequence[int],
    displs: Sequence[int],
) -> None:
    staged = _stage_if_aliased([root_input], outputs)[0]
    for i, out in enumerate(outputs):
        cnt = scounts[i]
        if displs[i] + cnt > staged.size:
            raise ValueError("scatter_v: displacement past root input end")
        if out.size < cnt:
            raise ValueError(f"scatter_v: rank {i} output smaller than scount")
        out[:cnt] = staged[displs[i] : displs[i] + cnt]
