"""Calibration constants for the simulated communication backends.

Every performance constant in the simulation lives here so calibration
stays auditable (DESIGN.md §5.4).  The multipliers are tuned **only** to
reproduce the paper's *qualitative* orderings — who wins at which
message size / scale — never fitted per benchmark:

* MVAPICH2-GDR has the best small-message latency (GPUDirect RDMA) and
  the best Alltoall at scale (pairwise exchange) — paper §I-C, Fig. 2(b),
  §V-F "MVAPICH2-GDR consistently performs the best for small messages".
* NCCL has the best large-message Allreduce (ring with high link
  utilization) but high per-call launch latency and a point-to-point
  based Alltoall that scales poorly — paper §I-C, Fig. 2.
* MSCCL/SCCL synthesizes topology-aware algorithms: best large Allgather
  (Table II), competitive mid-size Allreduce.
* OpenMPI (UCX) is a solid generalist but trails the tuned libraries.
* Gloo stages through the host (no CUDA-awareness).

``latency_x`` multiplies the topology's per-hop alpha; ``bandwidth_x``
multiplies the topology's per-byte beta (so <1.0 means *better* than the
nominal link); ``call_overhead_us`` is the fixed host-side cost of
posting one operation to the backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OpTuning:
    """Per-(backend, op-family) performance character."""

    latency_x: float = 1.0
    bandwidth_x: float = 1.0


@dataclass(frozen=True)
class BackendTuning:
    """The full performance character of one backend."""

    #: fixed host cost per posted operation, µs
    call_overhead_us: float
    #: per-op multipliers; key is the op family name
    ops: dict[str, OpTuning] = field(default_factory=dict)
    #: default for ops not listed
    default: OpTuning = OpTuning()

    def op(self, family: str) -> OpTuning:
        return self.ops.get(family, self.default)


# Op families used for tuning lookup.  Vectored collectives share their
# base family (gatherv -> gather) plus a small constant handled by the
# cost layer.

NCCL_TUNING = BackendTuning(
    call_overhead_us=7.0,  # CUDA kernel enqueue + comm setup per call
    ops={
        # pipelined ring with aggressive chunking: per-step latency below
        # nominal link latency and the best sustained ring bandwidth of
        # the lineup — NCCL's headline strength (Fig. 2a, §VI-B)
        "allreduce": OpTuning(latency_x=0.90, bandwidth_x=0.92),
        "reduce_scatter": OpTuning(latency_x=0.95, bandwidth_x=0.95),
        "allgather": OpTuning(latency_x=0.90, bandwidth_x=0.75),
        "broadcast": OpTuning(latency_x=1.2, bandwidth_x=1.00),
        "reduce": OpTuning(latency_x=1.1, bandwidth_x=1.00),
        # NCCL alltoall = p2p send/recv per peer: per-peer setup latency
        # makes it fall behind as world size grows (Fig. 2b), while its
        # bandwidth term is only moderately worse than pairwise MPI
        "alltoall": OpTuning(latency_x=10.0, bandwidth_x=1.10),
        "gather": OpTuning(latency_x=2.6, bandwidth_x=1.25),  # emulated
        "scatter": OpTuning(latency_x=2.6, bandwidth_x=1.25),  # emulated
        "p2p": OpTuning(latency_x=1.8, bandwidth_x=1.00),
        "barrier": OpTuning(latency_x=2.0),
    },
)

MVAPICH_GDR_TUNING = BackendTuning(
    call_overhead_us=2.5,  # host-side MPI call, no kernel enqueue
    ops={
        "allreduce": OpTuning(latency_x=0.75, bandwidth_x=1.85),
        # CUDA-IPC direct pair exchange: near-peak peer-copy bandwidth
        "allreduce_pair": OpTuning(latency_x=0.75, bandwidth_x=1.00),
        # reduce-scatter is a pairwise-exchange pattern — the same GDR
        # path that makes MV2's Alltoall the best of the lineup
        "reduce_scatter": OpTuning(latency_x=0.75, bandwidth_x=1.00),
        "allgather": OpTuning(latency_x=0.65, bandwidth_x=1.70),
        "broadcast": OpTuning(latency_x=0.70, bandwidth_x=1.15),
        "reduce": OpTuning(latency_x=0.75, bandwidth_x=1.25),
        # pairwise-exchange Alltoall with GPUDirect: the backend's
        # headline strength at scale
        "alltoall": OpTuning(latency_x=0.80, bandwidth_x=0.92),
        "gather": OpTuning(latency_x=0.70, bandwidth_x=1.10),
        "scatter": OpTuning(latency_x=0.70, bandwidth_x=1.10),
        "p2p": OpTuning(latency_x=0.65, bandwidth_x=1.05),
        "barrier": OpTuning(latency_x=0.70),
    },
)

OPENMPI_TUNING = BackendTuning(
    call_overhead_us=3.0,
    ops={
        "allreduce": OpTuning(latency_x=1.1, bandwidth_x=1.60),
        "reduce_scatter": OpTuning(latency_x=1.1, bandwidth_x=1.55),
        "allgather": OpTuning(latency_x=1.0, bandwidth_x=1.60),
        "broadcast": OpTuning(latency_x=1.0, bandwidth_x=1.40),
        "reduce": OpTuning(latency_x=1.1, bandwidth_x=1.45),
        "alltoall": OpTuning(latency_x=1.1, bandwidth_x=1.25),
        "gather": OpTuning(latency_x=1.0, bandwidth_x=1.30),
        "scatter": OpTuning(latency_x=1.0, bandwidth_x=1.30),
        "p2p": OpTuning(latency_x=0.95, bandwidth_x=1.20),
        "barrier": OpTuning(latency_x=1.0),
    },
)

MSCCL_TUNING = BackendTuning(
    call_overhead_us=6.0,  # stream-aware like NCCL, slightly leaner launch
    ops={
        "allreduce": OpTuning(latency_x=1.6, bandwidth_x=1.12),
        "reduce_scatter": OpTuning(latency_x=1.6, bandwidth_x=1.30),
        # synthesized hierarchical allgather: best large-message bandwidth
        # (Table II: SCCL wins >= 16 KiB)
        "allgather": OpTuning(latency_x=1.40, bandwidth_x=0.62),
        "broadcast": OpTuning(latency_x=1.8, bandwidth_x=0.95),
        "reduce": OpTuning(latency_x=1.8, bandwidth_x=1.00),
        "alltoall": OpTuning(latency_x=2.4, bandwidth_x=1.10),
        "gather": OpTuning(latency_x=2.8, bandwidth_x=1.15),
        "scatter": OpTuning(latency_x=2.8, bandwidth_x=1.15),
        "p2p": OpTuning(latency_x=2.0, bandwidth_x=1.00),
        "barrier": OpTuning(latency_x=2.4),
    },
)

GLOO_TUNING = BackendTuning(
    call_overhead_us=5.0,
    # Gloo is host-based: the datapath adds explicit host staging on top
    # of these multipliers, so even 2.0x understates its total GPU cost.
    default=OpTuning(latency_x=2.5, bandwidth_x=2.0),
)


#: gamma: reduction compute cost per byte on the GPU (SUM on fp32),
#: shared by every backend — the arithmetic is the same silicon.
REDUCE_GAMMA_US_PER_BYTE = 1.0 / (250.0 * 1e3)  # 250 GB/s effective reduce

#: extra fixed cost for the vectored variant of a collective (argument
#: marshalling for counts/displacements), µs
VECTOR_VARIANT_OVERHEAD_US = 1.5

#: extra fixed cost for a non-blocking variant (request object setup), µs
NONBLOCKING_OVERHEAD_US = 0.8
