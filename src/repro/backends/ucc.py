"""UCC (Unified Collective Communication) backend model.

The in-tree demonstration of the paper's extensibility claim (§V-B:
"The MCR-DL Backend class can be easily extended to new communication
backends such as MSCCL, Gloo, oneAPI, etc."): UCC is the
UCF consortium's collective library that PyTorch exposes as the
``ucc`` process-group backend.  Modeled as a CUDA-aware generalist —
triggered-operation execution engines give it decent overlap, with
performance between OpenMPI and the vendor-tuned libraries.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendProperties, register_backend
from repro.backends.calibration import BackendTuning, OpTuning
from repro.backends.ops import OpFamily

_SMALL = 16 * 1024

UCC_TUNING = BackendTuning(
    call_overhead_us=3.5,
    ops={
        "allreduce": OpTuning(latency_x=1.0, bandwidth_x=1.40),
        "reduce_scatter": OpTuning(latency_x=1.0, bandwidth_x=1.35),
        "allgather": OpTuning(latency_x=0.95, bandwidth_x=1.45),
        "broadcast": OpTuning(latency_x=0.95, bandwidth_x=1.25),
        "reduce": OpTuning(latency_x=1.0, bandwidth_x=1.30),
        "alltoall": OpTuning(latency_x=1.0, bandwidth_x=1.15),
        "gather": OpTuning(latency_x=0.95, bandwidth_x=1.20),
        "scatter": OpTuning(latency_x=0.95, bandwidth_x=1.20),
        "p2p": OpTuning(latency_x=0.9, bandwidth_x=1.10),
        "barrier": OpTuning(latency_x=0.9),
    },
)


class UccBackend(Backend):
    """UCC collectives over UCX transports."""

    properties = BackendProperties(
        name="ucc",
        display_name="UCC",
        stream_aware=False,
        cuda_aware=True,
        native_vector_collectives=True,
        native_nonblocking=True,
        native_gather_scatter=True,
        abi="ucc",
        mpi_compliant=False,
    )
    tuning = UCC_TUNING

    def algorithm_for(self, family: OpFamily, nbytes: int, p: int) -> str:
        if family is OpFamily.ALLREDUCE:
            if nbytes < _SMALL:
                return "recursive_doubling_allreduce"
            return "ring_allreduce"
        if family is OpFamily.ALLGATHER:
            if nbytes < _SMALL:
                return "recursive_doubling_allgather"
            return "ring_allgather"
        if family is OpFamily.REDUCE_SCATTER:
            return "ring_reduce_scatter"
        if family is OpFamily.BROADCAST:
            return "binomial_broadcast"
        if family is OpFamily.REDUCE:
            return "binomial_reduce"
        if family is OpFamily.ALLTOALL:
            return "pairwise_alltoall"
        if family is OpFamily.GATHER:
            return "binomial_gather"
        if family is OpFamily.SCATTER:
            return "binomial_scatter"
        if family is OpFamily.P2P:
            return "p2p_send"
        raise ValueError(f"UCC: no algorithm for {family}")


register_backend(UccBackend)
