"""MSCCL (a.k.a. SCCL) backend model.

Microsoft's Synthesized Collective Communication Library (paper §III-C,
[27]): NCCL-derived runtime executing *synthesized*, topology-aware
algorithms.  Its synthesized hierarchical Allgather is the best
large-message Allgather in the lineup (Table II: SCCL wins >= 16 KiB);
its Allreduce is competitive with NCCL; launch latency is NCCL-like.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendProperties, register_backend
from repro.backends.calibration import MSCCL_TUNING
from repro.backends.ops import OpFamily

_SMALL = 32 * 1024


class MscclBackend(Backend):
    """MSCCL / SCCL synthesized collectives."""

    properties = BackendProperties(
        name="msccl",
        display_name="MSCCL",
        stream_aware=True,
        cuda_aware=True,
        native_vector_collectives=False,
        native_nonblocking=True,
        native_gather_scatter=False,
        abi="nccl",  # NCCL-derived runtime conventions
        mpi_compliant=False,
    )
    tuning = MSCCL_TUNING

    def algorithm_for(self, family: OpFamily, nbytes: int, p: int) -> str:
        if family is OpFamily.ALLREDUCE:
            if nbytes < _SMALL:
                return "recursive_doubling_allreduce"
            return "rabenseifner_allreduce"  # synthesized 2-phase schedule
        if family is OpFamily.ALLGATHER:
            # synthesized hierarchical schedule: log-depth, high bandwidth
            return "recursive_doubling_allgather"
        if family is OpFamily.REDUCE_SCATTER:
            return "pairwise_reduce_scatter"
        if family is OpFamily.BROADCAST:
            return "binomial_broadcast"
        if family is OpFamily.REDUCE:
            return "binomial_reduce"
        if family is OpFamily.ALLTOALL:
            return "pairwise_alltoall"  # synthesized all-pairs schedule
        if family in (OpFamily.GATHER, OpFamily.SCATTER):
            return "linear_gather" if family is OpFamily.GATHER else "linear_scatter"
        if family is OpFamily.P2P:
            return "p2p_send"
        raise ValueError(f"MSCCL: no algorithm for {family}")


register_backend(MscclBackend, aliases=("sccl",))
