"""Framework-tensor substrate.

MCR-DL operates on PyTorch tensors; this package provides the minimal
torch-like tensor the runtime needs — NumPy storage plus the metadata a
communication runtime actually consumes (element count, element size,
device placement, contiguity) — so the full API from the paper's
Listing 1 can be implemented and tested without PyTorch.
"""

from repro.tensor.dtypes import DType, float16, float32, float64, int32, int64, uint8
from repro.tensor.tensor import SimTensor, Device, empty, full, zeros, ones, arange, from_numpy

__all__ = [
    "DType",
    "float16",
    "float32",
    "float64",
    "int32",
    "int64",
    "uint8",
    "SimTensor",
    "Device",
    "empty",
    "full",
    "zeros",
    "ones",
    "arange",
    "from_numpy",
]
