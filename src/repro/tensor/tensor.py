"""SimTensor: the torch-like tensor MCR-DL communicates.

A :class:`SimTensor` wraps a NumPy array together with a simulated
:class:`Device`.  The communication runtime consumes only the metadata a
real runtime would (``numel``, ``element_size``, ``device``, contiguity)
plus the raw buffer for data movement, so every collective is testable
for *correctness*, not just timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.tensor.dtypes import DType, dtype_from_numpy, float32


@dataclass(frozen=True)
class Device:
    """A simulated device: ``cpu`` or ``cuda:<index>``.

    In the simulation each rank owns exactly one GPU, so ``cuda:<rank>``
    identifies the owning rank's device.
    """

    kind: str  # "cpu" | "cuda"
    index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "cuda"):
            raise ValueError(f"unknown device kind {self.kind!r}")

    @property
    def is_cuda(self) -> bool:
        return self.kind == "cuda"

    def __str__(self) -> str:
        return self.kind if self.kind == "cpu" else f"cuda:{self.index}"

    @staticmethod
    def parse(spec: "str | Device") -> "Device":
        """Parse ``"cpu"`` / ``"cuda"`` / ``"cuda:3"`` into a Device."""
        if isinstance(spec, Device):
            return spec
        if spec == "cpu":
            return Device("cpu")
        if spec == "cuda":
            return Device("cuda", 0)
        if spec.startswith("cuda:"):
            return Device("cuda", int(spec.split(":", 1)[1]))
        raise ValueError(f"cannot parse device {spec!r}")


CPU = Device("cpu")


class SimTensor:
    """A dense tensor on a simulated device.

    Unlike a NumPy array, a SimTensor knows where it lives; the runtime
    charges host<->device staging time when a backend (e.g. a non
    CUDA-aware path, or the mpi4py baseline) must move it.

    A tensor may be *virtual*: it declares a logical element count
    (``virtual_numel``) far larger than its actual storage.  Virtual
    tensors exist for workload modeling — communication is *timed* from
    the declared size but no data is moved (a 600 MB gradient bucket in
    a 256-rank simulation would otherwise copy terabytes).  Correctness
    tests always use real tensors.
    """

    __slots__ = ("_data", "_device", "_virtual_numel", "_dtype")

    def __init__(
        self,
        data: np.ndarray,
        device: Device = CPU,
        virtual_numel: "int | None" = None,
    ):
        if not isinstance(data, np.ndarray):
            raise TypeError(f"SimTensor wraps numpy arrays, got {type(data).__name__}")
        # validates the dtype is supported; cached because metadata reads
        # (dtype/element_size/nbytes) run once or more per communication op
        self._dtype = dtype_from_numpy(data.dtype)
        if virtual_numel is not None and virtual_numel < data.size:
            raise ValueError(
                f"virtual_numel {virtual_numel} smaller than storage {data.size}"
            )
        self._data = data
        self._device = device
        self._virtual_numel = virtual_numel

    # -- metadata -----------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying NumPy buffer (shared, not copied)."""
        return self._data

    @property
    def device(self) -> Device:
        return self._device

    @property
    def is_virtual(self) -> bool:
        return self._virtual_numel is not None

    @property
    def dtype(self) -> DType:
        return self._dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    def numel(self) -> int:
        if self._virtual_numel is not None:
            return self._virtual_numel
        return int(self._data.size)

    def element_size(self) -> int:
        return self._dtype.itemsize

    def nbytes(self) -> int:
        return self.numel() * self.element_size()

    def is_contiguous(self) -> bool:
        return bool(self._data.flags["C_CONTIGUOUS"])

    @property
    def is_cuda(self) -> bool:
        return self._device.is_cuda

    # -- construction / movement --------------------------------------

    def clone(self) -> "SimTensor":
        return SimTensor(self._data.copy(), self._device, self._virtual_numel)

    def contiguous(self) -> "SimTensor":
        if self.is_contiguous():
            return self
        return SimTensor(
            np.ascontiguousarray(self._data), self._device, self._virtual_numel
        )

    def to(self, device: "str | Device") -> "SimTensor":
        """Return a tensor on ``device``.

        Data is copied when the device changes (real staging time is
        charged by the runtime, not here — this is the data plane).
        """
        device = Device.parse(device)
        if device == self._device:
            return self
        return SimTensor(self._data.copy(), device)

    def cuda(self, index: int = 0) -> "SimTensor":
        return self.to(Device("cuda", index))

    def cpu(self) -> "SimTensor":
        return self.to(CPU)

    def view_flat(self) -> np.ndarray:
        """1-D view of the buffer (requires contiguity)."""
        if not self.is_contiguous():
            raise ValueError("view_flat requires a contiguous tensor")
        return self._data.reshape(-1)

    def reshape(self, *shape: int) -> "SimTensor":
        return SimTensor(self._data.reshape(*shape), self._device)

    def copy_(self, other: "SimTensor") -> "SimTensor":
        """In-place copy of ``other``'s values into this tensor."""
        if other.numel() != self.numel():
            raise ValueError(
                f"copy_ size mismatch: {other.numel()} into {self.numel()}"
            )
        self._data.reshape(-1)[:] = other._data.reshape(-1)
        return self

    def fill_(self, value: float) -> "SimTensor":
        self._data.fill(value)
        return self

    def chunk(self, chunks: int) -> list["SimTensor"]:
        """Split the flattened tensor into ``chunks`` equal parts."""
        flat = self.view_flat()
        if flat.size % chunks != 0:
            raise ValueError(f"numel {flat.size} not divisible by {chunks}")
        step = flat.size // chunks
        return [
            SimTensor(flat[i * step : (i + 1) * step], self._device)
            for i in range(chunks)
        ]

    # -- arithmetic (element-wise, same-device) ------------------------

    def _binary(self, other, op) -> "SimTensor":
        if isinstance(other, SimTensor):
            other = other._data
        return SimTensor(op(self._data, other), self._device)

    def __add__(self, other):
        return self._binary(other, np.add)

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    def __truediv__(self, other):
        return self._binary(other, np.divide)

    def __eq__(self, other) -> bool:  # identity-style equality like torch
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def allclose(self, other: "SimTensor | np.ndarray", **kw) -> bool:
        other_data = other._data if isinstance(other, SimTensor) else other
        return bool(np.allclose(self._data, other_data, **kw))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimTensor(shape={self.shape}, dtype={self.dtype.name}, "
            f"device={self._device})"
        )


# -- factory helpers ---------------------------------------------------


def _np_dtype(dtype: DType) -> np.dtype:
    return dtype.numpy


def empty(
    shape: int | Sequence[int], dtype: DType = float32, device: "str | Device" = CPU
) -> SimTensor:
    """Uninitialized tensor (zero-filled for determinism)."""
    return zeros(shape, dtype, device)


def zeros(
    shape: int | Sequence[int], dtype: DType = float32, device: "str | Device" = CPU
) -> SimTensor:
    return SimTensor(np.zeros(shape, dtype=_np_dtype(dtype)), Device.parse(device))


def ones(
    shape: int | Sequence[int], dtype: DType = float32, device: "str | Device" = CPU
) -> SimTensor:
    return SimTensor(np.ones(shape, dtype=_np_dtype(dtype)), Device.parse(device))


def full(
    shape: int | Sequence[int],
    value: float,
    dtype: DType = float32,
    device: "str | Device" = CPU,
) -> SimTensor:
    return SimTensor(
        np.full(shape, value, dtype=_np_dtype(dtype)), Device.parse(device)
    )


def arange(
    n: int, dtype: DType = float32, device: "str | Device" = CPU
) -> SimTensor:
    return SimTensor(np.arange(n, dtype=_np_dtype(dtype)), Device.parse(device))


def from_numpy(array: np.ndarray, device: "str | Device" = CPU) -> SimTensor:
    """Wrap an existing NumPy array (shares memory)."""
    return SimTensor(array, Device.parse(device))


def virtual(
    numel: int, dtype: DType = float32, device: "str | Device" = CPU
) -> SimTensor:
    """A timing-only tensor: declared size ``numel``, one-element storage."""
    return SimTensor(
        np.zeros(1, dtype=_np_dtype(dtype)), Device.parse(device), virtual_numel=numel
    )


def cat(tensors: Iterable[SimTensor]) -> SimTensor:
    """Concatenate flattened tensors (used by tensor fusion).

    If any input is virtual the result is virtual with the summed
    declared size.
    """
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cat of empty sequence")
    device = tensors[0].device
    if any(t.is_virtual for t in tensors):
        total = sum(t.numel() for t in tensors)
        return virtual(total, tensors[0].dtype, device)
    return SimTensor(
        np.concatenate([t.view_flat() for t in tensors]), device
    )
