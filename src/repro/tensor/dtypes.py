"""Tensor dtypes with explicit byte sizes.

Communication cost is a function of *bytes*, so dtypes carry their
element size explicitly (NumPy's float16 stands in for CUDA half).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DType:
    """A tensor element type.

    Attributes:
        name: canonical torch-style name, e.g. ``"float32"``.
        numpy: the NumPy dtype used for storage.
        itemsize: bytes per element.
        is_floating: whether the type is a float type (affects which
            reduce ops are exact and whether compression applies).
    """

    name: str
    numpy: np.dtype
    itemsize: int
    is_floating: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"repro.{self.name}"


float16 = DType("float16", np.dtype(np.float16), 2, True)
float32 = DType("float32", np.dtype(np.float32), 4, True)
float64 = DType("float64", np.dtype(np.float64), 8, True)
int32 = DType("int32", np.dtype(np.int32), 4, False)
int64 = DType("int64", np.dtype(np.int64), 8, False)
uint8 = DType("uint8", np.dtype(np.uint8), 1, False)

_ALL = {d.name: d for d in (float16, float32, float64, int32, int64, uint8)}
_BY_NUMPY = {d.numpy: d for d in _ALL.values()}


def dtype_from_name(name: str) -> DType:
    """Look up a :class:`DType` by its canonical name."""
    try:
        return _ALL[name]
    except KeyError:
        raise ValueError(f"unknown dtype {name!r}; known: {sorted(_ALL)}") from None


def dtype_from_numpy(np_dtype: np.dtype) -> DType:
    """Map a NumPy dtype to the matching :class:`DType`."""
    np_dtype = np.dtype(np_dtype)
    try:
        return _BY_NUMPY[np_dtype]
    except KeyError:
        raise ValueError(f"unsupported numpy dtype {np_dtype}") from None
