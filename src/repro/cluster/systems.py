"""Concrete systems from the paper's evaluation (§VI-1)."""

from __future__ import annotations

from repro.cluster.hardware import (
    A100,
    IB_EDR,
    IB_HDR,
    NVLINK2,
    NVSWITCH,
    V100,
    NodeSpec,
)
from repro.cluster.topology import SystemSpec


def lassen(max_nodes: int = 792, detailed_fabric: bool = False) -> SystemSpec:
    """Lassen @ LLNL: 792 nodes x 4 V100 (Power9), IB EDR fat-tree.

    ``detailed_fabric=True`` swaps the linear contention heuristic for
    an explicit leaf/spine fat-tree model (18 nodes per leaf, 2:1
    tapered uplinks — Lassen's CORAL-era fabric shape).
    """
    node = NodeSpec(
        name="lassen-node",
        gpu=V100,
        gpus_per_node=4,
        intra_link=NVLINK2,
        host_staging_gbps=10.0,  # PCIe gen3-era staging on Power9
        host_staging_latency_us=8.0,
    )
    fabric = None
    if detailed_fabric:
        from repro.cluster.fattree import FatTreeFabric

        fabric = FatTreeFabric(nodes_per_leaf=18, taper=0.5)
    return SystemSpec(
        name="lassen",
        node=node,
        inter_link=IB_EDR,
        max_nodes=max_nodes,
        fabric_contention=0.6,
        fabric=fabric,
    )


def thetagpu(max_nodes: int = 24) -> SystemSpec:
    """ThetaGPU @ ALCF: 24 DGX-A100 nodes (8 GPUs, NVSwitch), IB HDR."""
    node = NodeSpec(
        name="dgx-a100",
        gpu=A100,
        gpus_per_node=8,
        intra_link=NVSWITCH,
        host_staging_gbps=20.0,  # PCIe gen4 staging
        host_staging_latency_us=6.0,
    )
    return SystemSpec(
        name="thetagpu",
        node=node,
        inter_link=IB_HDR,
        max_nodes=max_nodes,
        fabric_contention=0.4,
    )


def generic_cluster(
    gpus_per_node: int = 4, max_nodes: int = 64
) -> SystemSpec:
    """A small generic V100 cluster used as the default test system."""
    node = NodeSpec(
        name="generic-node",
        gpu=V100,
        gpus_per_node=gpus_per_node,
        intra_link=NVLINK2,
    )
    return SystemSpec(
        name="generic",
        node=node,
        inter_link=IB_EDR,
        max_nodes=max_nodes,
        fabric_contention=0.5,
    )
