"""Explicit fat-tree fabric model.

The default :class:`~repro.cluster.topology.SystemSpec` folds fabric
effects into one linear ``fabric_contention`` heuristic.  This module
models the actual structure both paper systems have — nodes under leaf
switches, leaves under a (possibly tapered) spine — so per-hop latency
and oversubscription emerge from the topology instead of a constant.

Pass a :class:`FatTreeFabric` to ``SystemSpec(fabric=...)`` (or use
``lassen(detailed_fabric=True)``) to switch a system onto it; the
default ``None`` keeps the calibrated heuristic, so the paper figures
are unaffected unless explicitly opted in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import LinkSpec


@dataclass(frozen=True)
class FatTreeFabric:
    """A two-level (leaf/spine) fat tree.

    Attributes:
        nodes_per_leaf: compute nodes under one leaf switch.
        switch_latency_us: per-switch traversal latency (each hop adds
            this on top of the link's base latency).
        taper: uplink oversubscription factor in (0, 1]: the ratio of a
            leaf's uplink bandwidth to its downlink bandwidth.  1.0 is a
            full-bisection fabric; 0.5 means 2:1 oversubscribed.
    """

    nodes_per_leaf: int = 18
    switch_latency_us: float = 0.3
    taper: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes_per_leaf < 1:
            raise ValueError("nodes_per_leaf must be >= 1")
        if not 0 < self.taper <= 1.0:
            raise ValueError(f"taper must be in (0, 1], got {self.taper}")
        if self.switch_latency_us < 0:
            raise ValueError("switch_latency_us must be >= 0")

    # -- structure ---------------------------------------------------------

    def leaf_of(self, node: int) -> int:
        return node // self.nodes_per_leaf

    def same_leaf(self, node_a: int, node_b: int) -> bool:
        return self.leaf_of(node_a) == self.leaf_of(node_b)

    def switch_hops(self, node_a: int, node_b: int) -> int:
        """Switches traversed: 1 within a leaf, 3 via the spine."""
        if node_a == node_b:
            return 0
        return 1 if self.same_leaf(node_a, node_b) else 3

    def path_latency_us(self, link: LinkSpec, node_a: int, node_b: int) -> float:
        """End-to-end latency between two nodes over ``link``."""
        hops = self.switch_hops(node_a, node_b)
        if hops == 0:
            return 0.0
        return link.latency_us + hops * self.switch_latency_us

    # -- contention -----------------------------------------------------------

    def leaves_spanned(self, n_nodes: int) -> int:
        return (n_nodes + self.nodes_per_leaf - 1) // self.nodes_per_leaf

    def cross_leaf_fraction(self, n_nodes: int) -> float:
        """Fraction of node pairs whose traffic crosses the spine
        (dense packing)."""
        if n_nodes <= 1:
            return 0.0
        full, rem = divmod(n_nodes, self.nodes_per_leaf)
        sizes = [self.nodes_per_leaf] * full + ([rem] if rem else [])
        same = sum(s * (s - 1) for s in sizes)
        total = n_nodes * (n_nodes - 1)
        return 1.0 - same / total

    def contention(self, n_nodes: int) -> float:
        """Effective slowdown of inter-node traffic for a densely packed
        job of ``n_nodes`` nodes.

        Intra-leaf traffic rides the non-blocking leaf; the cross-leaf
        fraction is throttled by the taper.  A full-bisection fabric
        (taper=1) has contention 1.0 at every scale.
        """
        cross = self.cross_leaf_fraction(n_nodes)
        if cross == 0.0:
            return 1.0
        # cross-leaf bytes pay 1/taper; the blend weights by traffic share
        return 1.0 + cross * (1.0 / self.taper - 1.0)

    def effective_inter_latency_us(self, link: LinkSpec, n_nodes: int) -> float:
        """Worst-case per-hop alpha for a job of ``n_nodes`` nodes."""
        if self.leaves_spanned(n_nodes) <= 1:
            return link.latency_us + self.switch_latency_us
        return link.latency_us + 3 * self.switch_latency_us
