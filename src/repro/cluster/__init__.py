"""Cluster substrate: hardware specs and system topologies.

Models the two machines the paper evaluates on — Lassen (LLNL) and
ThetaGPU (ALCF) — as parameterized node/link specifications.  The
communication cost models in :mod:`repro.backends` read interconnect
latency/bandwidth from here; the workload models in :mod:`repro.models`
read compute throughput.
"""

from repro.cluster.hardware import GpuSpec, LinkSpec, NodeSpec, V100, A100, NVLINK2, NVSWITCH, IB_EDR, IB_HDR
from repro.cluster.topology import SystemSpec, CommPath
from repro.cluster.systems import lassen, thetagpu, generic_cluster
from repro.cluster.fattree import FatTreeFabric

__all__ = [
    "GpuSpec",
    "LinkSpec",
    "NodeSpec",
    "SystemSpec",
    "CommPath",
    "V100",
    "A100",
    "NVLINK2",
    "NVSWITCH",
    "IB_EDR",
    "IB_HDR",
    "lassen",
    "thetagpu",
    "generic_cluster",
    "FatTreeFabric",
]
