"""Hardware building blocks: GPUs, links, nodes.

Numbers are public datasheet values; where the paper's systems deviate
(e.g. effective achievable bandwidth vs peak), the effective fraction is
explicit so calibration stays auditable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Compute characteristics of one GPU model."""

    name: str
    #: peak dense half-precision throughput (tensor cores), TFLOP/s
    fp16_tflops: float
    #: peak single-precision throughput, TFLOP/s
    fp32_tflops: float
    #: HBM capacity, GB
    memory_gb: float
    #: HBM bandwidth, GB/s
    memory_bw_gbps: float
    #: fraction of peak FLOPs a real training kernel sustains
    compute_efficiency: float = 0.45

    def effective_fp16_flops(self) -> float:
        """Sustained half-precision FLOP/s."""
        return self.fp16_tflops * 1e12 * self.compute_efficiency

    def effective_fp32_flops(self) -> float:
        return self.fp32_tflops * 1e12 * self.compute_efficiency


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect between two endpoints.

    ``latency_us`` is the one-way small-message latency; ``bandwidth_gbps``
    is the achievable (not peak) unidirectional bandwidth in GB/s.
    """

    name: str
    latency_us: float
    bandwidth_gbps: float

    def transfer_us(self, nbytes: int) -> float:
        """alpha-beta time for one message of ``nbytes``."""
        return self.latency_us + nbytes / (self.bandwidth_gbps * 1e3)  # GB/s -> B/us

    @property
    def beta_us_per_byte(self) -> float:
        return 1.0 / (self.bandwidth_gbps * 1e3)


@dataclass(frozen=True)
class NodeSpec:
    """One node: a GPU model, count, and the intra-node fabric."""

    name: str
    gpu: GpuSpec
    gpus_per_node: int
    intra_link: LinkSpec
    #: host staging bandwidth (PCIe, used by non-CUDA-aware paths), GB/s
    host_staging_gbps: float = 12.0
    #: host staging latency per copy, µs
    host_staging_latency_us: float = 8.0


# -- concrete parts ----------------------------------------------------

#: NVIDIA V100 (Lassen variant: 16 GB SXM2)
V100 = GpuSpec(
    name="V100-SXM2-16GB",
    fp16_tflops=125.0,
    fp32_tflops=15.7,
    memory_gb=16.0,
    memory_bw_gbps=900.0,
)

#: NVIDIA A100 (ThetaGPU DGX variant: 40 GB SXM4)
A100 = GpuSpec(
    name="A100-SXM4-40GB",
    fp16_tflops=312.0,
    fp32_tflops=19.5,
    memory_gb=40.0,
    memory_bw_gbps=1555.0,
)

#: NVLink 2.0 as wired on Power9/Lassen (per-GPU-pair effective)
NVLINK2 = LinkSpec(name="NVLink2", latency_us=1.8, bandwidth_gbps=62.0)

#: NVSwitch fabric inside a DGX-A100 (all-to-all, per-GPU effective)
NVSWITCH = LinkSpec(name="NVSwitch", latency_us=1.5, bandwidth_gbps=230.0)

#: Mellanox InfiniBand EDR (Lassen fat-tree), per-node effective
IB_EDR = LinkSpec(name="IB-EDR", latency_us=2.8, bandwidth_gbps=21.0)

#: Mellanox InfiniBand HDR (ThetaGPU, 8 NICs per DGX), per-node effective
IB_HDR = LinkSpec(name="IB-HDR", latency_us=2.2, bandwidth_gbps=150.0)
