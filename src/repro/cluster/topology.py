"""System topology: how ranks map to nodes and what links connect them.

A :class:`SystemSpec` answers the only questions a collective cost model
needs:

* which ranks share a node (rank -> node via dense packing, ppn =
  gpus_per_node);
* the latency/bandwidth of the path between two ranks
  (:meth:`SystemSpec.path`);
* aggregate quantities for a communicator of ``p`` ranks — the slowest
  per-hop latency, the per-rank bottleneck bandwidth, and the fraction of
  traffic crossing node boundaries (:meth:`SystemSpec.comm_path`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import LinkSpec, NodeSpec


@dataclass(frozen=True)
class CommPath:
    """Effective communication characteristics for a communicator.

    This is the alpha-beta abstraction the backend cost models consume:

    Attributes:
        alpha_us: worst-case per-message latency on the critical path.
        beta_us_per_byte: per-rank bottleneck inverse bandwidth.
        intra_fraction: fraction of peer pairs reachable intra-node.
        n_nodes: number of nodes spanned.
        ppn: ranks per node.
    """

    alpha_us: float
    beta_us_per_byte: float
    intra_fraction: float
    n_nodes: int
    ppn: int

    @property
    def spans_nodes(self) -> bool:
        return self.n_nodes > 1


class SystemSpec:
    """A full system: homogeneous nodes plus an inter-node fabric."""

    def __init__(
        self,
        name: str,
        node: NodeSpec,
        inter_link: LinkSpec,
        max_nodes: int,
        #: fat-tree contention factor: >1 inflates effective inter-node
        #: traffic time as the job grows (tapering / adaptive-routing loss)
        fabric_contention: float = 1.0,
        #: interference between the node's two injection paths
        #: (GPU-initiated NCCL-style vs host-initiated MPI RDMA): 0 means
        #: fully independent lanes, 1 means one shared wire.  Concurrent
        #: large transfers on *different* paths each still consume this
        #: fraction of the common fabric.
        cross_path_interference: float = 0.6,
        #: optional explicit fat-tree model (repro.cluster.fattree); when
        #: set, contention and inter-node alpha come from the tree's
        #: structure instead of the linear heuristic above
        fabric=None,
    ):
        self.name = name
        self.node = node
        self.inter_link = inter_link
        self.max_nodes = max_nodes
        self.fabric_contention = fabric_contention
        self.cross_path_interference = cross_path_interference
        self.fabric = fabric
        #: optional time-varying fabric degradation (an object with a
        #: ``factor_at(t_us) -> float`` method, e.g.
        #: repro.sim.faults.LinkSchedule); installed by the fault
        #: injector, consulted per transfer via link_time_factor()
        self.link_degradation = None
        # comm_path(ws) is pure in the spec's (post-construction
        # immutable) topology and sits under every analytic cost query
        self._comm_path_cache: dict[int, CommPath] = {}

    # -- rank placement (dense packing) ---------------------------------

    @property
    def gpus_per_node(self) -> int:
        return self.node.gpus_per_node

    def node_of(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def nodes_for(self, world_size: int) -> int:
        ppn = self.gpus_per_node
        return (world_size + ppn - 1) // ppn

    def validate_world_size(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if self.nodes_for(world_size) > self.max_nodes:
            raise ValueError(
                f"{self.name} has {self.max_nodes} nodes "
                f"({self.max_nodes * self.gpus_per_node} GPUs); "
                f"cannot place {world_size} ranks"
            )

    # -- pairwise path ---------------------------------------------------

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)

    def path(self, rank_a: int, rank_b: int) -> LinkSpec:
        """The link a message between two ranks traverses."""
        if rank_a == rank_b:
            # loopback: device-local copy, model as very fast link
            intra = self.node.intra_link
            return LinkSpec("loopback", 0.5, intra.bandwidth_gbps * 4)
        if self.same_node(rank_a, rank_b):
            return self.node.intra_link
        return self.inter_link

    # -- communicator-level aggregate -------------------------------------

    def comm_path(self, world_size: int) -> CommPath:
        """Effective alpha/beta for a communicator of ``world_size`` ranks.

        With dense packing, a communicator spanning ``n`` nodes sends the
        fraction ``(p - ppn) / (p - 1)``-ish of its ring/pairwise traffic
        over the inter-node fabric.  The per-rank bottleneck bandwidth is
        the inter-node link shared by the node's ppn ranks (the classic
        reason scaling efficiency drops when crossing the node boundary),
        inflated by fat-tree contention as the node count grows.
        """
        cached = self._comm_path_cache.get(world_size)
        if cached is not None:
            return cached
        return self._comm_path_uncached(world_size)

    def _comm_path_uncached(self, world_size: int) -> CommPath:
        self.validate_world_size(world_size)
        ppn = min(world_size, self.gpus_per_node)
        n_nodes = self.nodes_for(world_size)
        intra = self.node.intra_link
        if n_nodes == 1:
            path = self._comm_path_cache[world_size] = CommPath(
                alpha_us=intra.latency_us,
                beta_us_per_byte=intra.beta_us_per_byte,
                intra_fraction=1.0,
                n_nodes=1,
                ppn=ppn,
            )
            return path
        # fraction of ordered peer pairs that are intra-node
        p = world_size
        intra_pairs = p * (ppn - 1)
        all_pairs = p * (p - 1)
        intra_fraction = intra_pairs / all_pairs if all_pairs else 1.0
        if self.fabric is not None:
            contention = self.fabric.contention(n_nodes)
            alpha = self.fabric.effective_inter_latency_us(self.inter_link, n_nodes)
        else:
            contention = 1.0 + self.fabric_contention * (n_nodes - 1) / max(
                self.max_nodes - 1, 1
            )
            alpha = self.inter_link.latency_us
        # each node's inter link is shared by its ppn ranks
        inter_bw_per_rank = self.inter_link.bandwidth_gbps / ppn / contention
        beta_inter = 1.0 / (inter_bw_per_rank * 1e3)
        # blended beta: intra traffic still rides NVLink
        beta = intra_fraction * intra.beta_us_per_byte + (1 - intra_fraction) * beta_inter
        path = self._comm_path_cache[world_size] = CommPath(
            alpha_us=alpha,
            beta_us_per_byte=beta,
            intra_fraction=intra_fraction,
            n_nodes=n_nodes,
            ppn=ppn,
        )
        return path

    def comm_path_for_ranks(self, ranks) -> CommPath:
        """Effective alpha/beta for a communicator over an explicit rank
        subset (process groups: tensor-parallel pairs, data-parallel
        slices).  Uses the actual node placement of the members."""
        ranks = list(ranks)
        if not ranks:
            raise ValueError("empty rank group")
        per_node: dict[int, int] = {}
        for r in ranks:
            node = self.node_of(r)
            per_node[node] = per_node.get(node, 0) + 1
        n_nodes = len(per_node)
        p = len(ranks)
        intra = self.node.intra_link
        if n_nodes == 1:
            return CommPath(
                alpha_us=intra.latency_us,
                beta_us_per_byte=intra.beta_us_per_byte,
                intra_fraction=1.0,
                n_nodes=1,
                ppn=p,
            )
        intra_pairs = sum(c * (c - 1) for c in per_node.values())
        all_pairs = p * (p - 1)
        intra_fraction = intra_pairs / all_pairs if all_pairs else 1.0
        # same fabric model as _comm_path_uncached: an explicit group
        # crossing the spine pays detailed-fabric contention and hop
        # latency, not the linear heuristic
        if self.fabric is not None:
            contention = self.fabric.contention(n_nodes)
            alpha = self.fabric.effective_inter_latency_us(self.inter_link, n_nodes)
        else:
            contention = 1.0 + self.fabric_contention * (n_nodes - 1) / max(
                self.max_nodes - 1, 1
            )
            alpha = self.inter_link.latency_us
        max_occupancy = max(per_node.values())
        inter_bw_per_rank = self.inter_link.bandwidth_gbps / max_occupancy / contention
        beta_inter = 1.0 / (inter_bw_per_rank * 1e3)
        beta = intra_fraction * intra.beta_us_per_byte + (1 - intra_fraction) * beta_inter
        return CommPath(
            alpha_us=alpha,
            beta_us_per_byte=beta,
            intra_fraction=intra_fraction,
            n_nodes=n_nodes,
            ppn=max_occupancy,
        )

    # -- fault injection ---------------------------------------------------

    def link_time_factor(self, t_us: float, backend: str = "") -> float:
        """Duration multiplier for fabric transfers at virtual time
        ``t_us`` (1.0 = healthy; >1 = degraded link window active).

        ``backend`` scopes the query to one library's injection path:
        backend-scoped fault windows (``LinkFault.backend``) only apply
        to transfers posted by that backend, modeling NIC/port-level
        degradation that a different library's path does not cross.
        Unscoped windows apply regardless of the value passed here.
        """
        sched = self.link_degradation
        return 1.0 if sched is None else sched.factor_at(t_us, backend)

    # -- host staging (non-CUDA-aware paths) -------------------------------

    def host_staging_us(self, nbytes: int) -> float:
        """Time to copy a buffer device<->host once (PCIe staging)."""
        node = self.node
        return node.host_staging_latency_us + nbytes / (node.host_staging_gbps * 1e3)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SystemSpec({self.name}: {self.max_nodes}x{self.gpus_per_node} "
            f"{self.node.gpu.name})"
        )
