"""Shared fixtures for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation: it prints the same rows/series the paper reports, persists
them under ``results/``, and asserts the paper's *shape* (who wins, by
roughly what factor, where crossovers fall) — absolute numbers are
simulated time, not the authors' testbed.
"""

from __future__ import annotations

import pytest

from repro.backends.ops import OpFamily
from repro.bench.reporting import Report, save_report
from repro.cluster import lassen, thetagpu
from repro.core import Tuner


def pytest_collection_modifyitems(items):
    """Every figure/table reproduction is a long multi-rank simulation;
    mark the whole directory ``slow`` so ``-m "not slow"`` keeps quick
    iterations to the unit suite."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def lassen_system():
    return lassen()


@pytest.fixture(scope="session")
def thetagpu_system():
    return thetagpu()


@pytest.fixture(scope="session")
def lassen_tuning_table(lassen_system):
    """The static tuning table the paper's suite generates for Lassen
    (used by the MCR-DL-T configurations)."""
    tuner = Tuner(lassen_system, ["nccl", "mvapich2-gdr", "msccl"], mode="analytic")
    report = tuner.build_table(
        world_sizes=[16, 32, 64, 128, 256],
        ops=[
            OpFamily.ALLREDUCE,
            OpFamily.ALLTOALL,
            OpFamily.ALLGATHER,
            OpFamily.REDUCE_SCATTER,
            OpFamily.BROADCAST,
        ],
    )
    return report.table


@pytest.fixture(scope="session")
def thetagpu_tuning_table(thetagpu_system):
    tuner = Tuner(thetagpu_system, ["nccl", "mvapich2-gdr", "msccl"], mode="analytic")
    report = tuner.build_table(
        world_sizes=[2, 4, 8, 16, 32],
        ops=[
            OpFamily.ALLREDUCE,
            OpFamily.ALLTOALL,
            OpFamily.ALLGATHER,
            OpFamily.REDUCE_SCATTER,
            OpFamily.BROADCAST,
        ],
    )
    return report.table


@pytest.fixture
def publish(capsys):
    """Print a Report (bypassing capture) and persist it to results/."""

    def _publish(report: Report):
        path = save_report(report)
        with capsys.disabled():
            print()
            print(report.render())
            print(f"[saved to {path}]")
        return path

    return _publish


@pytest.fixture
def publish_chart(capsys):
    """Render an ASCII chart of a figure's series next to its report."""
    from repro.bench.plotting import ascii_chart
    from repro.bench.reporting import results_dir

    def _publish_chart(experiment: str, series: dict, **chart_kw):
        chart = ascii_chart(series, **chart_kw)
        path = results_dir() / f"{experiment}.chart.txt"
        path.write_text(chart + "\n")
        with capsys.disabled():
            print()
            print(chart)
        return path

    return _publish_chart
