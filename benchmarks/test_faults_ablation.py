"""Fault-injection ablation: training throughput under degraded modes.

Not a paper figure — this quantifies the graceful-degradation story:
the same DS-MoE configuration run healthy, with a flaky transient
backend, through a degraded-fabric window, and across a permanent
backend failure.  Every degraded run must still complete (retry /
failover, never deadlock) at a throughput no better than healthy.
"""

import pytest

from repro.bench.reporting import Report
from repro.models import BackendPlan, DSMoEModel, Trainer
from repro.sim.faults import BackendFault, FaultSpec, LinkFault

WORLD = 8

MODES = {
    "healthy": None,
    "transient-nccl": FaultSpec(
        seed=7,
        backend_faults=(
            BackendFault("nccl", "transient", prob=0.05, max_consecutive=2),
        ),
    ),
    "degraded-link": FaultSpec(
        link_faults=(LinkFault(factor=2.5),),
    ),
    "nccl-dies": FaultSpec(
        backend_faults=(BackendFault("nccl", "permanent", at_op=20),),
    ),
    "straggler": FaultSpec(stragglers={1: 1.5}),
}


def run_modes(system):
    model = DSMoEModel()
    plan = BackendPlan.mixed(label="MCR-DL")
    results = {}
    for label, spec in MODES.items():
        trainer = Trainer(system, steps=2, warmup=1, faults=spec)
        results[label] = trainer.run(model, WORLD, plan)
    return results


@pytest.mark.benchmark(group="faults")
def test_faults_ablation_degraded_modes_complete(
    benchmark, thetagpu_system, publish
):
    results = benchmark.pedantic(
        lambda: run_modes(thetagpu_system), rounds=1, iterations=1
    )

    report = Report(
        experiment="faults_ablation",
        title=f"DS-MoE under injected faults ({WORLD} ranks, ThetaGPU, mixed plan)",
        header=["mode", "samples_per_sec", "step_us", "retries", "failovers",
                "quarantines"],
    )
    for label, r in results.items():
        ev = r.fault_events
        report.add_row(
            label,
            round(r.samples_per_sec, 1),
            round(r.step_time_us, 1),
            ev.get("retry", 0),
            ev.get("failover", 0),
            ev.get("quarantine", 0),
        )
    report.add_note("degraded modes retry/failover instead of deadlocking")
    publish(report)

    healthy = results["healthy"]
    assert not healthy.fault_events

    # every degraded mode completed, and none runs *faster* than healthy
    for label, r in results.items():
        assert r.samples_per_sec > 0
        if label != "healthy":
            assert r.samples_per_sec <= healthy.samples_per_sec * 1.001

    # the injected failure modes leave their fingerprints in the log
    # (the quarantine itself lands in warmup and is cleared with it; the
    # per-op failovers keep appearing through the measured steps)
    assert results["transient-nccl"].fault_events.get("retry", 0) > 0
    assert results["nccl-dies"].fault_events.get("failover", 0) > 0
    assert results["degraded-link"].step_time_us > healthy.step_time_us
    assert results["straggler"].step_time_us > healthy.step_time_us
