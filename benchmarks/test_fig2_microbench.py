"""Figure 2: backend collective micro-benchmarks at 64 GPUs on Lassen.

(a) non-blocking iAllreduce latency, (b) Alltoall latency, per backend,
across message sizes — the motivating observation that no single
backend wins everywhere.
"""

import pytest

from repro.backends.ops import OpFamily
from repro.bench.microbench import omb_latency_us
from repro.bench.reporting import Report

BACKENDS = ["mvapich2-gdr", "nccl", "msccl", "openmpi"]
SIZES = [1024 * (4**i) for i in range(9)]  # 1 KiB .. 64 MiB
WORLD = 64  # 16 nodes x 4 ppn


def run_series(system, family, nonblocking):
    series = {}
    for backend in BACKENDS:
        series[backend] = [
            omb_latency_us(system, backend, family, size, WORLD, nonblocking)
            for size in SIZES
        ]
    return series


@pytest.mark.benchmark(group="fig2")
def test_fig2a_iallreduce(benchmark, lassen_system, publish):
    series = benchmark.pedantic(
        lambda: run_series(lassen_system, OpFamily.ALLREDUCE, nonblocking=True),
        rounds=1, iterations=1,
    )
    report = Report(
        experiment="fig2a",
        title="iAllreduce latency (us), 64 V100 GPUs on Lassen (16 nodes x 4 ppn)",
        header=["msg_bytes"] + BACKENDS + ["winner"],
    )
    for i, size in enumerate(SIZES):
        row = [series[b][i] for b in BACKENDS]
        winner = BACKENDS[row.index(min(row))]
        report.add_row(size, *row, winner)
    publish(report)

    # paper shape: MV2-GDR wins small messages; NCCL wins the MB range
    small = {b: series[b][0] for b in BACKENDS}
    assert min(small, key=small.get) == "mvapich2-gdr"
    large = {b: series[b][-1] for b in BACKENDS}
    assert min(large, key=large.get) == "nccl"


@pytest.mark.benchmark(group="fig2")
def test_fig2b_alltoall(benchmark, lassen_system, publish, publish_chart):
    series = benchmark.pedantic(
        lambda: run_series(lassen_system, OpFamily.ALLTOALL, nonblocking=False),
        rounds=1, iterations=1,
    )
    publish_chart(
        "fig2b",
        {b: list(zip(SIZES, series[b])) for b in BACKENDS},
        log_x=True, log_y=True,
        title="Fig 2(b): Alltoall latency vs message size, 64 GPUs (log-log)",
    )
    report = Report(
        experiment="fig2b",
        title="Alltoall latency (us), 64 V100 GPUs on Lassen (16 nodes x 4 ppn)",
        header=["msg_bytes"] + BACKENDS + ["winner"],
    )
    for i, size in enumerate(SIZES):
        row = [series[b][i] for b in BACKENDS]
        winner = BACKENDS[row.index(min(row))]
        report.add_row(size, *row, winner)
    publish(report)

    # paper shape: MVAPICH2-GDR's pairwise Alltoall dominates at this
    # scale across the sweep, and NCCL trails by a growing factor
    for i in range(len(SIZES)):
        row = {b: series[b][i] for b in BACKENDS}
        assert min(row, key=row.get) == "mvapich2-gdr", SIZES[i]
    assert series["nccl"][0] / series["mvapich2-gdr"][0] > 2.0
