"""Figure 7: framework overhead over OMB for a fixed backend
(MVAPICH2-GDR Alltoall, 32 A100 GPUs on ThetaGPU).

MCR-DL's C++ backbone keeps Python overhead to ~5% for small messages
and ~1% for large; PyTorch-distributed pays ~18% and ~4%.
"""

import pytest

from repro.backends.ops import OpFamily
from repro.bench.microbench import (
    effective_nbytes,
    framework_latency_us,
    omb_latency_us,
    overhead_pct,
)
from repro.bench.reporting import Report
from repro.core import MCRConfig
from repro.frameworks.torch_dist import (
    TORCH_DISPATCH_FRACTION,
    TORCH_DISPATCH_OVERHEAD_US,
)

#: OMB alltoall message sizes are per destination pair
PAIR_SIZES = [1024 * (4**i) for i in range(7)]  # 1 KiB .. 4 MiB per pair
WORLD = 32
BACKEND = "mvapich2-gdr"


def torch_config() -> MCRConfig:
    config = MCRConfig()
    config.dispatch_overhead_us = TORCH_DISPATCH_OVERHEAD_US
    config.dispatch_fraction = TORCH_DISPATCH_FRACTION
    return config


def run_sweep(system):
    rows = []
    for pair_size in PAIR_SIZES:
        # one effective payload feeds both sides of the comparison (the
        # framework rounds element counts to a multiple of world size)
        total = effective_nbytes(pair_size * WORLD, WORLD)
        omb = omb_latency_us(system, BACKEND, OpFamily.ALLTOALL, total, WORLD)
        mcr = framework_latency_us(
            system, BACKEND, OpFamily.ALLTOALL, total, WORLD, config=MCRConfig()
        )
        torch = framework_latency_us(
            system, BACKEND, OpFamily.ALLTOALL, total, WORLD, config=torch_config()
        )
        rows.append(
            (pair_size, omb, overhead_pct(mcr, omb), overhead_pct(torch, omb))
        )
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_framework_overhead(benchmark, thetagpu_system, publish):
    rows = benchmark.pedantic(
        lambda: run_sweep(thetagpu_system), rounds=1, iterations=1
    )
    report = Report(
        experiment="fig7",
        title="Overhead over OMB, MVAPICH2-GDR Alltoall, 32 A100 (ThetaGPU)",
        header=["msg_bytes", "omb_us", "mcr_dl_overhead_%", "torch_dist_overhead_%"],
    )
    for row in rows:
        report.add_row(*row)
    report.add_note("paper: MCR-DL ~5% small -> ~1% large; torch ~18% -> ~4%")
    publish(report)

    small_mcr, small_torch = rows[0][2], rows[0][3]
    large_mcr, large_torch = rows[-1][2], rows[-1][3]

    # paper shape: torch is several x more expensive at both ends, and
    # both overheads shrink as messages grow
    assert small_torch > 2.0 * small_mcr
    assert large_torch > 2.0 * large_mcr
    assert small_mcr > large_mcr
    assert small_torch > large_torch
    # rough magnitudes (generous bands around 5/1 and 18/4)
    assert 1.0 < small_mcr < 12.0
    assert large_mcr < 3.0
    assert 8.0 < small_torch < 40.0
    assert large_torch < 8.0
