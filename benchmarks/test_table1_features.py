"""Table I: features offered by MCR-DL compared to existing frameworks.

The MCR-DL row is verified by probing the *actual* API, not just data:
every claimed capability is demonstrated against the runtime, and every
competitor gap is demonstrated against the baseline facades.
"""

import pytest

from repro import mcr_dl
from repro.bench.reporting import Report
from repro.frameworks import FEATURE_MATRIX, HorovodLike, TorchDistributed, feature_table_rows
from repro.frameworks.horovod import UnsupportedOpError as HvdUnsupported
from repro.frameworks.torch_dist import UnsupportedOpError as TorchUnsupported
from repro.sim import Simulator


def probe_mcr_dl_row() -> dict:
    """Exercise each Table-I capability through the real MCR-DL API."""
    outcome = {}

    def main(ctx):
        comm = mcr_dl.init(["nccl", "mvapich2-gdr"])
        p = ctx.world_size
        # point-to-point
        if ctx.rank == 0:
            mcr_dl.send("nccl", ctx.zeros(4), dst=1)
        elif ctx.rank == 1:
            mcr_dl.recv("nccl", ctx.zeros(4), src=0)
        outcome["point_to_point"] = "yes"
        # collectives
        mcr_dl.all_reduce("nccl", ctx.zeros(8))
        mcr_dl.all_to_all_single("mvapich2-gdr", ctx.zeros(p), ctx.zeros(p))
        outcome["collectives"] = "yes"
        # vector collectives on a backend WITHOUT native support (NCCL)
        mcr_dl.all_gatherv("nccl", ctx.zeros(p), ctx.zeros(1), rcounts=[1] * p)
        outcome["vector_collectives"] = "yes"
        # non-blocking on every backend, including MPI
        h1 = mcr_dl.all_reduce("nccl", ctx.zeros(8), async_op=True)
        h2 = mcr_dl.all_reduce("mvapich2-gdr", ctx.zeros(8), async_op=True)
        h1.wait()
        h2.wait()
        outcome["non_blocking"] = "yes"
        # mixed-backend (the two ops above already mixed); deadlock-free
        outcome["mixed_backend"] = "yes"
        # backend as a class
        from repro.backends import Backend, backend_class

        assert issubclass(backend_class("nccl"), Backend)
        outcome["backend_as_class"] = "yes"
        mcr_dl.finalize()

    Simulator(2).run(main)
    return outcome


def probe_competitor_gaps() -> dict:
    gaps = {}

    def main(ctx):
        dist = TorchDistributed(ctx, "nccl")
        try:
            dist.gatherv()
        except TorchUnsupported:
            gaps["torch_vector"] = "no"
        dist.finalize()
        dist_mpi = TorchDistributed(ctx, "mvapich2-gdr")
        try:
            dist_mpi.all_reduce(ctx.zeros(4), async_op=True)
        except TorchUnsupported:
            gaps["torch_nonblocking_mpi"] = "nccl-only"
        dist_mpi.finalize()
        hvd = HorovodLike(ctx, "nccl")
        try:
            hvd.send()
        except HvdUnsupported:
            gaps["horovod_p2p"] = "no"
        hvd.finalize()

    Simulator(1).run(main)
    return gaps


@pytest.mark.benchmark(group="table1")
def test_table1_feature_matrix(benchmark, publish):
    probed = benchmark.pedantic(probe_mcr_dl_row, rounds=1, iterations=1)
    gaps = probe_competitor_gaps()

    report = Report(
        experiment="table1",
        title="Features offered by MCR-DL compared to existing frameworks",
        header=feature_table_rows()[0],
    )
    for row in feature_table_rows()[1:]:
        report.add_row(*row)
    report.add_note(f"MCR-DL row verified against the live API: {probed}")
    report.add_note(f"competitor gaps verified against baseline facades: {gaps}")
    publish(report)

    # the probed row must match the claimed matrix exactly
    claimed = FEATURE_MATRIX["mcr-dl"]
    assert probed == {
        "point_to_point": claimed.point_to_point,
        "collectives": claimed.collectives,
        "vector_collectives": claimed.vector_collectives,
        "non_blocking": claimed.non_blocking,
        "mixed_backend": claimed.mixed_backend,
        "backend_as_class": claimed.backend_as_class,
    }
    assert gaps == {
        "torch_vector": "no",
        "torch_nonblocking_mpi": "nccl-only",
        "horovod_p2p": "no",
    }
