"""Ablations of MCR-DL's design choices (DESIGN.md §5).

Not figures from the paper — these isolate the effect of each design
decision the paper's §V argues for: the per-backend stream pools, the
two MPI stream modes, tensor fusion's B/T policy, the compression rate,
and the fabric-sharing (cross-path interference) model.
"""

import numpy as np
import pytest

from repro.bench.reporting import Report
from repro.core import CompressionConfig, MCRCommunicator, MCRConfig
from repro.ext.compression import FixedRateCodec
from repro.ext.fusion import FusionConfig, TensorFusion
from repro.sim import Simulator


# ----------------------------------------------------------------------
# stream-pool size (§V-C: multiple streams help concurrent small ops)
# ----------------------------------------------------------------------


def run_stream_pool(pool_size: int, n_ops: int = 8) -> float:
    def main(ctx):
        config = MCRConfig(streams_per_backend=pool_size)
        comm = MCRCommunicator(ctx, ["nccl"], config=config)
        handles = [
            comm.all_reduce("nccl", ctx.zeros(15000), async_op=True)
            for _ in range(n_ops)
        ]
        for h in handles:
            h.synchronize()
        comm.finalize()
        return ctx.now

    return max(Simulator(8).run(main).rank_results)


@pytest.mark.benchmark(group="ablation")
def test_ablation_stream_pool_size(benchmark, publish):
    rows = benchmark.pedantic(
        lambda: [(size, run_stream_pool(size)) for size in (1, 2, 4, 8)],
        rounds=1, iterations=1,
    )
    report = Report(
        experiment="ablation_stream_pool",
        title="8 concurrent small allreduces vs comm-stream pool size (8 ranks)",
        header=["streams_per_backend", "elapsed_us"],
    )
    for size, elapsed in rows:
        report.add_row(size, elapsed)
    report.add_note("paper §V-C: multiple streams enable concurrent small-message ops")
    publish(report)
    times = dict(rows)
    assert times[4] < times[1]  # the pool pays off
    assert times[8] <= times[1]


# ----------------------------------------------------------------------
# MPI stream modes (§V-D options 1 and 2)
# ----------------------------------------------------------------------


def run_mpi_mode(mode: str) -> float:
    def main(ctx):
        config = MCRConfig(mpi_stream_mode=mode)
        comm = MCRCommunicator(ctx, ["mvapich2-gdr"], config=config)
        for _ in range(4):
            ctx.launch(500.0, label="producer")
            h = comm.all_reduce(
                "mvapich2-gdr", ctx.virtual_tensor(1 << 14), async_op=True
            )
            # host-side pipeline work (data loading / batch prep): under
            # mpi-managed the *post* above already stalled the host until
            # the producer kernel finished, pushing this (and everything
            # after it) out; under mcr-managed the host stays free
            ctx.sleep(400.0, reason="host data prep")
            h.wait()
        comm.synchronize()
        comm.finalize()
        return ctx.now

    return max(Simulator(8).run(main).rank_results)


@pytest.mark.benchmark(group="ablation")
def test_ablation_mpi_stream_mode(benchmark, publish):
    rows = benchmark.pedantic(
        lambda: [(mode, run_mpi_mode(mode)) for mode in ("mpi-managed", "mcr-managed")],
        rounds=1, iterations=1,
    )
    report = Report(
        experiment="ablation_mpi_mode",
        title="MPI stream handling: library-managed vs MCR-intercepted",
        header=["mpi_stream_mode", "elapsed_us"],
    )
    for mode, elapsed in rows:
        report.add_row(mode, elapsed)
    report.add_note(
        "paper §V-D: option 2 (mcr-managed) exploits overlap across backends; "
        "option 1 host-synchronizes before posting"
    )
    publish(report)
    times = dict(rows)
    assert times["mcr-managed"] < times["mpi-managed"]


# ----------------------------------------------------------------------
# tensor fusion (§V-E: B and T)
# ----------------------------------------------------------------------


def run_fusion(enabled: bool, n_tensors: int = 64) -> float:
    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl"])
        tensors = [ctx.zeros(64) for _ in range(n_tensors)]
        if enabled:
            fusion = TensorFusion(comm, FusionConfig())
            handles = [fusion.all_reduce("nccl", t) for t in tensors]
            fusion.flush_all()
        else:
            handles = [comm.all_reduce("nccl", t, async_op=True) for t in tensors]
        for h in handles:
            h.synchronize()
        comm.finalize()
        return ctx.now

    return max(Simulator(8).run(main).rank_results)


@pytest.mark.benchmark(group="ablation")
def test_ablation_tensor_fusion(benchmark, publish):
    fused, unfused = benchmark.pedantic(
        lambda: (run_fusion(True), run_fusion(False)), rounds=1, iterations=1
    )
    report = Report(
        experiment="ablation_fusion",
        title="64 small gradient allreduces: fused vs unfused (8 ranks)",
        header=["configuration", "elapsed_us", "speedup_x"],
    )
    report.add_row("unfused", unfused, 1.0)
    report.add_row("fused (B=4MiB, T=50us)", fused, unfused / fused)
    publish(report)
    assert fused < unfused
    assert unfused / fused > 2.0  # per-op launch cost dominates tiny ops


# ----------------------------------------------------------------------
# compression rate (§V-E)
# ----------------------------------------------------------------------


def run_compression(rate_bits):
    def main(ctx):
        config = MCRConfig()
        if rate_bits is not None:
            config.compression = CompressionConfig(enabled=True, rate_bits=rate_bits)
        comm = MCRCommunicator(ctx, ["nccl"], config=config)
        h = comm.all_reduce("nccl", ctx.virtual_tensor(16 << 20), async_op=True)
        h.synchronize()
        comm.finalize()
        return ctx.now

    elapsed = max(Simulator(8).run(main).rank_results)
    if rate_bits is None:
        return elapsed, 0.0
    codec = FixedRateCodec(rate_bits)
    rng = np.random.default_rng(0)
    data = rng.normal(size=4096).astype(np.float32)
    original = data.copy()
    codec.apply_quantization_error(data)
    err = float(np.abs(data - original).max() / np.abs(original).max())
    return elapsed, err


@pytest.mark.benchmark(group="ablation")
def test_ablation_compression_rate(benchmark, publish):
    cases = [None, 12, 8, 4]
    rows = benchmark.pedantic(
        lambda: [(bits, *run_compression(bits)) for bits in cases],
        rounds=1, iterations=1,
    )
    report = Report(
        experiment="ablation_compression",
        title="64 MiB allreduce vs compression rate (8 ranks)",
        header=["rate_bits", "elapsed_us", "max_rel_error"],
    )
    for bits, elapsed, err in rows:
        report.add_row("off" if bits is None else bits, elapsed, err)
    publish(report)
    times = {bits: elapsed for bits, elapsed, _ in rows}
    errs = {bits: err for bits, _, err in rows}
    assert times[4] < times[8] < times[12] < times[None]
    assert errs[12] < errs[8] < errs[4]


# ----------------------------------------------------------------------
# cross-path interference (fabric-sharing model)
# ----------------------------------------------------------------------


def run_interference(factor: float) -> float:
    from repro.cluster import lassen

    system = lassen()
    system.cross_path_interference = factor

    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
        h1 = comm.all_reduce("nccl", ctx.virtual_tensor(8 << 20), async_op=True)
        h2 = comm.all_reduce("mvapich2-gdr", ctx.virtual_tensor(8 << 20), async_op=True)
        h1.synchronize()
        h2.synchronize()
        comm.finalize()
        return ctx.now

    return max(Simulator(8, system=system).run(main).rank_results)


@pytest.mark.benchmark(group="ablation")
def test_ablation_cross_path_interference(benchmark, publish):
    factors = [0.0, 0.3, 0.6, 1.0]
    rows = benchmark.pedantic(
        lambda: [(f, run_interference(f)) for f in factors], rounds=1, iterations=1
    )
    report = Report(
        experiment="ablation_interference",
        title="Two concurrent 32 MiB allreduces on different backends vs "
        "cross-path interference",
        header=["interference", "elapsed_us"],
    )
    for f, elapsed in rows:
        report.add_row(f, elapsed)
    report.add_note(
        "0 = independent injection paths, 1 = one shared wire; the repo "
        "default (0.6) sits between — see DESIGN.md §5.6"
    )
    publish(report)
    times = dict(rows)
    assert times[0.0] < times[0.6] < times[1.0]


# ----------------------------------------------------------------------
# persistent collectives (§V-E future optimization, ext.persistent)
# ----------------------------------------------------------------------


def run_persistent(persistent: bool, n_steps: int = 64) -> float:
    from repro.ext.persistent import PersistentCollective

    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl"])
        x = ctx.zeros(256)
        if persistent:
            op = PersistentCollective(comm, "all_reduce", "nccl", x)
            for _ in range(n_steps):
                op.start().synchronize()
        else:
            for _ in range(n_steps):
                comm.all_reduce("nccl", x, async_op=True).synchronize()
        comm.finalize()
        return ctx.now

    return max(Simulator(4).run(main).rank_results)


@pytest.mark.benchmark(group="ablation")
def test_ablation_persistent_collectives(benchmark, publish):
    regular, persistent = benchmark.pedantic(
        lambda: (run_persistent(False), run_persistent(True)), rounds=1, iterations=1
    )
    report = Report(
        experiment="ablation_persistent",
        title="64 repeated small allreduces: regular vs persistent (4 ranks)",
        header=["configuration", "elapsed_us", "speedup_x"],
    )
    report.add_row("regular", regular, 1.0)
    report.add_row("persistent", persistent, regular / persistent)
    report.add_note("paper §V-E names persistent collectives as an easy future extension")
    publish(report)
    assert persistent < regular


# ----------------------------------------------------------------------
# MoE gating skew: balanced alltoall vs imbalanced all_to_allv
# ----------------------------------------------------------------------


def run_gating_skew(skew: float) -> float:
    from repro.cluster import lassen
    from repro.models import BackendPlan, DSMoEModel, MoEConfig, Trainer

    trainer = Trainer(lassen(max_nodes=8), steps=2, warmup=1)
    model = DSMoEModel(MoEConfig(layers=8, micro_batch=2, gating_skew=skew))
    return trainer.run(model, 8, BackendPlan.mixed()).samples_per_sec


@pytest.mark.benchmark(group="ablation")
def test_ablation_moe_gating_skew(benchmark, publish):
    skews = [0.0, 0.5, 1.0]
    rows = benchmark.pedantic(
        lambda: [(s, run_gating_skew(s)) for s in skews], rounds=1, iterations=1
    )
    report = Report(
        experiment="ablation_gating_skew",
        title="DS-MoE throughput vs expert gating imbalance (8 ranks)",
        header=["gating_skew", "samples_per_sec"],
    )
    for s, thr in rows:
        report.add_row(s, thr)
    report.add_note(
        "skew > 0 routes tokens with all_to_allv (§V-A's vectored path); "
        "the skewed run also pays the vectored-marshalling overhead"
    )
    publish(report)
    thr = dict(rows)
    assert thr[0.5] <= thr[0.0] * 1.02  # imbalance never helps


# ----------------------------------------------------------------------
# the paper's §I-A options: p2p emulation vs external wrapper vs MCR-DL
# ----------------------------------------------------------------------


def run_option(option: str, numel: int = 1 << 16, world: int = 8) -> float:
    import numpy as np

    from repro.backends.schedules import emulated_all_reduce
    from repro.frameworks import Mpi4pyLike

    def main(ctx):
        if option == "option1-p2p":
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            buf = np.ones(numel, dtype=np.float32)
            t0 = ctx.now
            emulated_all_reduce(ctx, comm, "mvapich2-gdr", buf)
            elapsed = ctx.now - t0
            comm.finalize()
        elif option == "option2-mpi4py":
            mpi = Mpi4pyLike(ctx)
            x = ctx.virtual_tensor(numel)
            t0 = ctx.now
            mpi.Allreduce(x)
            elapsed = ctx.now - t0
            mpi.finalize()
        else:  # mcr-dl
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            x = ctx.virtual_tensor(numel)
            t0 = ctx.now
            comm.all_reduce("mvapich2-gdr", x)
            elapsed = ctx.now - t0
            comm.finalize()
        return elapsed

    return max(Simulator(world).run(main).rank_results)


@pytest.mark.benchmark(group="ablation")
def test_ablation_section1a_options(benchmark, publish):
    options = ["option1-p2p", "option2-mpi4py", "mcr-dl"]
    rows = benchmark.pedantic(
        lambda: [(o, run_option(o)) for o in options], rounds=1, iterations=1
    )
    report = Report(
        experiment="ablation_options",
        title="One 256 KiB allreduce, 8 ranks: the paper's §I-A options",
        header=["approach", "latency_us", "vs MCR-DL"],
    )
    times = dict(rows)
    for option, elapsed in rows:
        report.add_row(option, elapsed, elapsed / times["mcr-dl"])
    report.add_note(
        "Option 1 rebuilds the collective from p2p (loses the tuned "
        "library); Option 2 stages through an external wrapper (loses "
        "CUDA-awareness); MCR-DL gets the native path"
    )
    publish(report)
    assert times["mcr-dl"] < times["option1-p2p"]
    assert times["mcr-dl"] < times["option2-mpi4py"]
