"""Figure 1: computation-vs-communication split and per-operation
communication breakdown for ResNet-50 (64 V100), DS-MoE (64 V100), and
DLRM (32 A100), measured with the communication-logging extension."""

import pytest

from repro.bench.reporting import Report
from repro.models import (
    BackendPlan,
    DLRMModel,
    DSMoEModel,
    ResNet50Model,
    Trainer,
)

CONFIGS = [
    ("resnet50", ResNet50Model, "lassen", 64),
    ("ds-moe", DSMoEModel, "lassen", 64),
    ("dlrm", DLRMModel, "thetagpu", 32),
]


def run_breakdowns(lassen_system, thetagpu_system):
    systems = {"lassen": lassen_system, "thetagpu": thetagpu_system}
    out = {}
    for name, model_cls, system, world in CONFIGS:
        trainer = Trainer(systems[system], steps=2, warmup=1, trace=True)
        result = trainer.run(model_cls(), world, BackendPlan.pure("nccl", "NCCL"))
        out[name] = result
    return out


@pytest.mark.benchmark(group="fig1")
def test_fig1_compute_vs_comm_and_op_breakdown(
    benchmark, lassen_system, thetagpu_system, publish
):
    results = benchmark.pedantic(
        lambda: run_breakdowns(lassen_system, thetagpu_system), rounds=1, iterations=1
    )

    report_a = Report(
        experiment="fig1a",
        title="Computation vs communication share of one training step",
        header=["model", "gpus", "compute_%", "comm_%"],
    )
    comm_frac = {}
    for name, _, system, world in CONFIGS:
        r = results[name]
        comm = r.comm_fraction
        comm_frac[name] = comm
        report_a.add_row(name, world, (1 - comm) * 100, comm * 100)
    publish(report_a)

    report_b = Report(
        experiment="fig1b",
        title="Communication time breakdown by operation (per-rank us/step)",
        header=["model", "allreduce", "alltoall", "other"],
    )
    op_share = {}
    for name, _, _, _ in CONFIGS:
        r = results[name]
        ar = r.comm_by_family.get("allreduce", 0.0)
        a2a = r.comm_by_family.get("alltoall", 0.0)
        other = sum(
            v for k, v in r.comm_by_family.items() if k not in ("allreduce", "alltoall")
        )
        total = max(ar + a2a + other, 1e-9)
        op_share[name] = {"allreduce": ar / total, "alltoall": a2a / total}
        report_b.add_row(name, ar, a2a, other)
    publish(report_b)

    # paper shape:
    # 1. data parallelism (ResNet-50) is strongly compute-dominated and
    #    its communication is almost entirely Allreduce
    assert comm_frac["resnet50"] < 0.35
    assert op_share["resnet50"]["allreduce"] > 0.95
    # 2. the hybrid-parallel models have much higher communication
    #    overhead at scale
    assert comm_frac["ds-moe"] > 2.0 * comm_frac["resnet50"]
    assert comm_frac["dlrm"] > 2.0 * comm_frac["resnet50"]
    # 3. their communication mixes are heterogeneous: Alltoall is a
    #    first-class component next to Allreduce
    assert op_share["ds-moe"]["alltoall"] > 0.25
    assert op_share["dlrm"]["alltoall"] > 0.15
    assert op_share["ds-moe"]["allreduce"] > 0.15
