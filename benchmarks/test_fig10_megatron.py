"""Figure 10: dense Megatron-DeepSpeed (6.7B, TP=2, ZeRO-2) on ThetaGPU
with pure MVAPICH2-GDR, pure SCCL/MSCCL, and their MCR-DL mixture."""

import pytest

from repro.bench.reporting import Report
from repro.models import BackendPlan, MegatronDenseModel, Trainer
from repro.models.trainer import scaling_efficiency

SCALES = [4, 8, 16, 32]


def run_fig10(system):
    model = MegatronDenseModel()
    trainer = Trainer(system, steps=2, warmup=1)
    plans = [
        BackendPlan.pure("msccl", "SCCL"),
        BackendPlan.pure("mvapich2-gdr", "MVAPICH2-GDR"),
        # the paper's MSCCL + MVAPICH2-GDR mixture: MV2 serves the
        # pairwise-exchange patterns (TP-pair allreduce, ZeRO-2
        # reduce-scatter), MSCCL serves its synthesized allgather
        BackendPlan.mixed(
            allreduce="mvapich2-gdr",
            alltoall="mvapich2-gdr",
            reduce_scatter="mvapich2-gdr",
            allgather="msccl",
            broadcast="mvapich2-gdr",
            label="MCR-DL",
        ),
    ]
    return {
        plan.label: [trainer.run(model, ws, plan) for ws in SCALES] for plan in plans
    }


@pytest.mark.benchmark(group="fig10")
def test_fig10_megatron_dense(benchmark, thetagpu_system, publish):
    results = benchmark.pedantic(
        lambda: run_fig10(thetagpu_system), rounds=1, iterations=1
    )
    labels = list(results)

    report = Report(
        experiment="fig10a",
        title="Dense Megatron-DeepSpeed throughput (samples/s), ThetaGPU A100",
        header=["gpus"] + labels,
    )
    for i, ws in enumerate(SCALES):
        report.add_row(ws, *[results[l][i].samples_per_sec for l in labels])
    publish(report)

    eff = {l: scaling_efficiency(results[l]) for l in labels}
    report_b = Report(
        experiment="fig10b",
        title="Dense Megatron-DeepSpeed scaling efficiency (vs 4 GPUs)",
        header=["gpus"] + labels,
    )
    for ws in SCALES:
        report_b.add_row(ws, *[eff[l][ws] for l in labels])
    report_b.add_note(
        "paper reports ~20% throughput improvement for the MSCCL+MVAPICH2-GDR "
        "mixture over the best pure backend on 32 A100 GPUs"
    )
    publish(report_b)

    thr = {l: [r.samples_per_sec for r in results[l]] for l in labels}
    # paper shape: the mixture is at least the best pure backend at every
    # scale, and strictly better at 32 GPUs
    for i in range(len(SCALES)):
        best_pure = max(thr["SCCL"][i], thr["MVAPICH2-GDR"][i])
        assert thr["MCR-DL"][i] >= best_pure * 0.99, SCALES[i]
    best_pure_32 = max(thr["SCCL"][-1], thr["MVAPICH2-GDR"][-1])
    gain = thr["MCR-DL"][-1] / best_pure_32 - 1
    assert 0.0 <= gain < 0.6
