"""Figure 12: communication-overhead reduction with MCR-DL at 256 Lassen
V100 GPUs (DS-MoE) and 32 ThetaGPU A100 GPUs (DLRM).

The paper reports a 9% reduction in communication time for DS-MoE and
7% for DLRM versus the best pure backend, measured with the logging
extension.
"""

import pytest

from repro.bench.reporting import Report
from repro.models import BackendPlan, DLRMModel, DSMoEModel, Trainer


def comm_time(result) -> float:
    return sum(v for k, v in result.comm_by_family.items() if k != "barrier")


def run_fig12(lassen_system, thetagpu_system):
    out = {}
    for name, model, system, world in [
        ("ds-moe", DSMoEModel(), lassen_system, 256),
        ("dlrm", DLRMModel(), thetagpu_system, 32),
    ]:
        trainer = Trainer(system, steps=2, warmup=1)
        pures = [
            trainer.run(model, world, BackendPlan.pure("nccl", "NCCL")),
            trainer.run(model, world, BackendPlan.pure("mvapich2-gdr", "MVAPICH2-GDR")),
        ]
        best_pure = min(pures, key=lambda r: r.step_time_us)
        mcr = trainer.run(model, world, BackendPlan.mixed(label="MCR-DL"))
        out[name] = (best_pure, mcr, world)
    return out


@pytest.mark.benchmark(group="fig12")
def test_fig12_comm_overhead_reduction(
    benchmark, lassen_system, thetagpu_system, publish
):
    results = benchmark.pedantic(
        lambda: run_fig12(lassen_system, thetagpu_system), rounds=1, iterations=1
    )

    report = Report(
        experiment="fig12",
        title="Communication time per step: best pure backend vs MCR-DL",
        header=[
            "model", "gpus", "best_pure", "pure_comm_us", "mcr_comm_us", "reduction_%",
        ],
    )
    reductions = {}
    for name, (pure, mcr, world) in results.items():
        pure_comm = comm_time(pure)
        mcr_comm = comm_time(mcr)
        red = (pure_comm - mcr_comm) / pure_comm * 100.0
        reductions[name] = red
        report.add_row(name, world, pure.plan_label, pure_comm, mcr_comm, red)
    report.add_note("paper: 9% comm-time reduction for DS-MoE, 7% for DLRM")
    publish(report)

    # paper shape: MCR-DL reduces total communication time vs the best
    # pure backend for both models, by a single-to-low-double-digit
    # percentage (paper: 9% and 7%)
    assert 2.0 < reductions["ds-moe"] < 45.0
    assert 2.0 < reductions["dlrm"] < 45.0

    # and the step time improves accordingly
    for name, (pure, mcr, _) in results.items():
        assert mcr.step_time_us < pure.step_time_us, name
