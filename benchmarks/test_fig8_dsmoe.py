"""Figure 8: DS-MoE throughput and scaling efficiency on Lassen.

Pure NCCL vs pure MVAPICH2-GDR vs coarse-grained mixing (MCR-DL) vs
tuned fine-grained mixing (MCR-DL-T), 16 -> 256 V100 GPUs.
"""

import pytest

from repro.bench.reporting import Report
from repro.models import BackendPlan, DSMoEModel, Trainer
from repro.models.trainer import scaling_efficiency

SCALES = [16, 32, 64, 128, 256]


def run_fig8(system, tuning_table):
    model = DSMoEModel()
    trainer = Trainer(system, steps=2, warmup=1)
    plans = [
        BackendPlan.pure("nccl", "NCCL"),
        BackendPlan.pure("mvapich2-gdr", "MVAPICH2-GDR"),
        BackendPlan.mixed(label="MCR-DL"),
        BackendPlan.tuned(tuning_table, label="MCR-DL-T"),
    ]
    results = {}
    for plan in plans:
        results[plan.label] = [trainer.run(model, ws, plan) for ws in SCALES]
    return results


@pytest.mark.benchmark(group="fig8")
def test_fig8_dsmoe_throughput_and_efficiency(
    benchmark, lassen_system, lassen_tuning_table, publish, publish_chart
):
    results = benchmark.pedantic(
        lambda: run_fig8(lassen_system, lassen_tuning_table), rounds=1, iterations=1
    )
    labels = list(results)

    report = Report(
        experiment="fig8a",
        title="DS-MoE throughput (samples/s), Lassen V100",
        header=["gpus"] + labels,
    )
    for i, ws in enumerate(SCALES):
        report.add_row(ws, *[results[l][i].samples_per_sec for l in labels])
    publish(report)

    eff = {l: scaling_efficiency(results[l]) for l in labels}
    report_b = Report(
        experiment="fig8b",
        title="DS-MoE scaling efficiency (vs 16 GPUs), Lassen V100",
        header=["gpus"] + labels,
    )
    for ws in SCALES:
        report_b.add_row(ws, *[eff[l][ws] for l in labels])
    report_b.add_note("paper: MCR-DL maintains ~81% efficiency at 256 GPUs")
    publish(report_b)

    thr = {l: [r.samples_per_sec for r in results[l]] for l in labels}
    publish_chart(
        "fig8a",
        {l: list(zip(SCALES, thr[l])) for l in labels},
        log_x=True, log_y=True,
        title="Fig 8(a): DS-MoE throughput vs GPUs (log-log)",
    )

    # --- paper shape assertions -------------------------------------
    # 1. NCCL beats MVAPICH2-GDR at small scale; the Allreduce-bound ->
    #    Alltoall-bound crossover flips the ordering by 256 GPUs.
    assert thr["NCCL"][0] > thr["MVAPICH2-GDR"][0]
    assert thr["MVAPICH2-GDR"][-1] > thr["NCCL"][-1]
    # 2. MCR-DL best of the three at every scale.
    for i in range(len(SCALES)):
        assert thr["MCR-DL"][i] > thr["NCCL"][i]
        assert thr["MCR-DL"][i] > thr["MVAPICH2-GDR"][i]
    # 3. tuned fine-grained mixing at least matches coarse mixing
    for i in range(len(SCALES)):
        assert thr["MCR-DL-T"][i] >= thr["MCR-DL"][i] * 0.98
    # 4. improvements at 256 in the paper's ballpark (31% / 35%)
    gain_mv2 = thr["MCR-DL"][-1] / thr["MVAPICH2-GDR"][-1] - 1
    gain_nccl = thr["MCR-DL"][-1] / thr["NCCL"][-1] - 1
    assert 0.15 < gain_mv2 < 0.60
    assert 0.20 < gain_nccl < 0.90
    # 5. scaling efficiency: MCR-DL ~0.75-0.9 at 256 and above both pures
    assert 0.65 < eff["MCR-DL"][256] < 0.95
    assert eff["MCR-DL"][256] > eff["NCCL"][256]
