"""Figure 11: MCR-DL against the PyTorch-compatible competing frameworks
on a Mixture-of-Experts transformer at 256 Lassen V100 GPUs.

Tensor fusion is enabled for MCR-DL, Horovod, and PyTorch-distributed
(their best configuration); mpi4py has no fusion and stages tensors
through the host — the source of the gap the paper reports.  LBANN is
excluded exactly as in the paper (footnote 7: no MoE implementation,
not PyTorch-compatible).
"""

import pytest

from repro.bench.reporting import Report
from repro.ext.fusion import FusionConfig
from repro.models import BackendPlan, DSMoEModel, PROFILES, Trainer

WORLD = 256
FRAMEWORKS = ["mcr-dl", "torch-distributed", "horovod", "mpi4py"]


def run_fig11(system):
    model = DSMoEModel()
    trainer = Trainer(system, steps=2, warmup=1, fusion=FusionConfig())
    results = {}
    for key in FRAMEWORKS:
        profile = PROFILES[key]
        # each framework gets its best plan: MCR-DL mixes, the rest run
        # their single best backend (NCCL where supported, MPI for mpi4py)
        if profile.supports_mixing:
            plan = BackendPlan.mixed(label="MCR-DL")
        elif profile.host_staging:
            plan = BackendPlan.pure("mvapich2-gdr", label=profile.name)
        else:
            plan = BackendPlan.pure("nccl", label=profile.name)
        results[key] = trainer.run(model, WORLD, plan, profile=profile)
    return results


@pytest.mark.benchmark(group="fig11")
def test_fig11_framework_comparison(benchmark, lassen_system, publish):
    results = benchmark.pedantic(lambda: run_fig11(lassen_system), rounds=1, iterations=1)

    report = Report(
        experiment="fig11",
        title=f"MoE transformer throughput by framework, {WORLD} V100 (Lassen)",
        header=["framework", "samples_per_sec", "step_ms"],
    )
    for key in FRAMEWORKS:
        r = results[key]
        report.add_row(PROFILES[key].name, r.samples_per_sec, r.step_time_us / 1e3)
    report.add_note("LBANN excluded (paper footnote 7: no MoE, not PyTorch-compatible)")
    publish(report)

    thr = {k: results[k].samples_per_sec for k in FRAMEWORKS}
    # paper shape: MCR-DL best (mixing + fusion); Horovod and
    # torch-distributed close together behind it; mpi4py last by a clear
    # margin (host staging, no fusion)
    assert thr["mcr-dl"] > thr["torch-distributed"]
    assert thr["mcr-dl"] > thr["horovod"]
    assert thr["mcr-dl"] > thr["mpi4py"]
    assert thr["horovod"] > thr["mpi4py"]
    assert thr["torch-distributed"] > thr["mpi4py"]
    ratio = thr["horovod"] / thr["torch-distributed"]
    assert 0.8 < ratio < 1.25  # the two fused single-backend stacks are close
