"""Figure 9: DLRM throughput and scaling efficiency on ThetaGPU
(2 -> 32 A100 GPUs): pure NCCL, pure MVAPICH2-GDR, MCR-DL, MCR-DL-T."""

import pytest

from repro.bench.reporting import Report
from repro.models import BackendPlan, DLRMModel, Trainer
from repro.models.trainer import scaling_efficiency

SCALES = [4, 8, 16, 32]


def run_fig9(system, tuning_table):
    model = DLRMModel()
    trainer = Trainer(system, steps=3, warmup=1)
    plans = [
        BackendPlan.pure("nccl", "NCCL"),
        BackendPlan.pure("mvapich2-gdr", "MVAPICH2-GDR"),
        BackendPlan.mixed(label="MCR-DL"),
        BackendPlan.tuned(tuning_table, label="MCR-DL-T"),
    ]
    return {
        plan.label: [trainer.run(model, ws, plan) for ws in SCALES] for plan in plans
    }


@pytest.mark.benchmark(group="fig9")
def test_fig9_dlrm_throughput_and_efficiency(
    benchmark, thetagpu_system, thetagpu_tuning_table, publish
):
    results = benchmark.pedantic(
        lambda: run_fig9(thetagpu_system, thetagpu_tuning_table), rounds=1, iterations=1
    )
    labels = list(results)

    report = Report(
        experiment="fig9a",
        title="DLRM throughput (samples/s), ThetaGPU A100",
        header=["gpus"] + labels,
    )
    for i, ws in enumerate(SCALES):
        report.add_row(ws, *[results[l][i].samples_per_sec for l in labels])
    publish(report)

    eff = {l: scaling_efficiency(results[l]) for l in labels}
    report_b = Report(
        experiment="fig9b",
        title="DLRM scaling efficiency (vs 4 GPUs), ThetaGPU A100",
        header=["gpus"] + labels,
    )
    for ws in SCALES:
        report_b.add_row(ws, *[eff[l][ws] for l in labels])
    report_b.add_note("paper: MCR-DL maintains ~75% efficiency at 32 GPUs")
    publish(report_b)

    thr = {l: [r.samples_per_sec for r in results[l]] for l in labels}

    # paper shape: NCCL >= MV2 inside the node / at small scale; MV2
    # catches up as Alltoall scales across nodes; MCR-DL best at 32.
    assert thr["NCCL"][0] >= thr["MVAPICH2-GDR"][0] * 0.99
    assert thr["MCR-DL"][-1] > thr["NCCL"][-1]
    assert thr["MCR-DL"][-1] > thr["MVAPICH2-GDR"][-1]
    # improvements at 32 in the paper's ballpark (25% / 30%)
    gain_mv2 = thr["MCR-DL"][-1] / thr["MVAPICH2-GDR"][-1] - 1
    gain_nccl = thr["MCR-DL"][-1] / thr["NCCL"][-1] - 1
    assert 0.05 < gain_mv2 < 0.50
    assert 0.05 < gain_nccl < 0.60
    # tuned at least matches coarse mixing
    assert thr["MCR-DL-T"][-1] >= thr["MCR-DL"][-1] * 0.98
    # efficiency at 32 around the paper's 75%
    assert 0.60 < eff["MCR-DL"][32] < 0.95
