"""Stream/event/graph semantics: FIFO order, gating, deferred resolution.

These are the CUDA-ordering behaviours MCR-DL's synchronization design
(paper §V-C, Fig. 4) depends on.
"""

import pytest

from repro.core.comm import MCRCommunicator
from repro.sim import DeadlockError, Simulator
from repro.sim.errors import SimError
from repro.sim.graph import apply_wire_lane


def run1(fn, **kw):
    return Simulator(1, **kw).run(fn)


class TestStreamFifo:
    def test_kernels_serialize_on_one_stream(self):
        def body(ctx):
            a = ctx.launch(100, label="a")
            b = ctx.launch(50, label="b")
            ctx.stream_synchronize()
            return (a.start, a.end, b.start, b.end)

        a_start, a_end, b_start, b_end = run1(body).rank_results[0]
        assert b_start == a_end
        assert b_end == a_end + 50

    def test_streams_run_concurrently(self):
        def body(ctx):
            a = ctx.launch(100, stream=ctx.stream("s1"))
            b = ctx.launch(100, stream=ctx.stream("s2"))
            ctx.device_synchronize()
            return (a.start, b.start, ctx.now)

        a_start, b_start, end = run1(body).rank_results[0]
        # second launch starts while the first still runs (offset only by
        # the host launch overhead)
        assert b_start < a_start + 100
        assert end < 200 + 20

    def test_kernel_starts_no_earlier_than_host(self):
        def body(ctx):
            ctx.sleep(500)
            node = ctx.launch(10)
            ctx.stream_synchronize()
            return node.start

        assert run1(body).rank_results[0] >= 500

    def test_negative_duration_rejected(self):
        def body(ctx):
            ctx.launch(-5)

        with pytest.raises(SimError):
            run1(body)


class TestEvents:
    def test_record_then_wait_orders_across_streams(self):
        def body(ctx):
            s1, s2 = ctx.stream("s1"), ctx.stream("s2")
            a = ctx.launch(100, stream=s1)
            ev = ctx.record_event(s1)
            s2.wait_event(ev)
            b = ctx.launch(10, stream=s2)
            ctx.device_synchronize()
            return (a.end, b.start)

        a_end, b_start = run1(body).rank_results[0]
        assert b_start >= a_end

    def test_event_on_idle_stream_is_timestamp(self):
        def body(ctx):
            ev = ctx.record_event(ctx.stream("empty"))
            return ev.completion_time()

        assert run1(body).rank_results[0] == 0.0

    def test_event_synchronize_blocks_host(self):
        def body(ctx):
            node = ctx.launch(250)
            ev = ctx.record_event()
            ctx.event_synchronize(ev)
            return ctx.now

        assert run1(body).rank_results[0] >= 250

    def test_unrecorded_event_rejected(self):
        from repro.sim.streams import CudaEvent

        def body(ctx):
            ctx.stream("s").wait_event(CudaEvent("raw"))

        with pytest.raises(SimError):
            run1(body)

    def test_unresolved_event_completion_time_raises(self):
        # an event on a collective that has not resolved cannot be polled
        from repro.sim.streams import CudaEvent

        ev = CudaEvent("never")
        with pytest.raises(SimError):
            ev.completion_time()


class TestDeviceSync:
    def test_device_sync_covers_all_streams(self):
        def body(ctx):
            ctx.launch(100, stream=ctx.stream("a"))
            ctx.launch(300, stream=ctx.stream("b"))
            ctx.device_synchronize()
            return ctx.now

        assert run1(body).rank_results[0] >= 300

    def test_implicit_device_sync_at_exit(self):
        def body(ctx):
            ctx.launch(1000, label="tail")
            return None  # no explicit sync: Simulator joins the device

        assert run1(body).elapsed_us >= 1000

    def test_tail_time_raises_on_pending_work(self):
        # a stream holding an unresolved collective member must not
        # expose a bogus tail
        def body(ctx):
            if ctx.rank == 0:
                comm = MCRCommunicator(ctx, ["nccl"])
                comm.all_reduce("nccl", ctx.zeros(4), async_op=True)
                stream = ctx.stream("nccl:comm0")
                with pytest.raises(SimError):
                    stream.tail_time
                raise KeyboardInterrupt("checked")  # abort the sim quickly

        with pytest.raises((KeyboardInterrupt, DeadlockError)):
            Simulator(2).run(body)


class TestTrace:
    def test_trace_records_intervals(self):
        def body(ctx):
            ctx.launch(100, label="k", category="compute")

        res = Simulator(1, trace=True).run(body)
        recs = res.tracer.filter(label_contains="k")
        assert len(recs) == 1
        assert recs[0].duration == 100

    def test_busy_time_merges_overlaps(self):
        from repro.sim.trace import TraceRecord, Tracer

        t = Tracer()
        recs = [
            TraceRecord(0, "s", "a", "c", 0, 10),
            TraceRecord(0, "s", "b", "c", 5, 15),
            TraceRecord(0, "s", "c", "c", 20, 30),
        ]
        assert t.busy_time(recs) == 25

    def test_overlap_time(self):
        from repro.sim.trace import TraceRecord, Tracer

        t = Tracer()
        a = [TraceRecord(0, "s", "a", "c", 0, 10)]
        b = [TraceRecord(0, "s", "b", "c", 5, 20)]
        assert t.overlap_time(a, b) == 5

    def test_category_totals(self):
        def body(ctx):
            ctx.launch(100, label="k", category="compute")
            ctx.launch(40, stream=ctx.stream("c"), label="x", category="comm")

        res = Simulator(1, trace=True).run(body)
        totals = res.tracer.category_totals(rank=0)
        assert totals["compute"] == 100
        assert totals["comm"] == 40


class TestWireLane:
    def test_same_lane_serializes(self):
        store = {}
        s1 = apply_wire_lane(store, "a", 0.0, 100.0, 0.5)
        s2 = apply_wire_lane(store, "a", 0.0, 100.0, 0.5)
        assert s1 == 0.0
        assert s2 == 100.0

    def test_cross_lane_partial_overlap(self):
        store = {}
        apply_wire_lane(store, "a", 0.0, 100.0, 0.5)
        s2 = apply_wire_lane(store, "b", 0.0, 100.0, 0.5)
        assert s2 == 50.0  # throttled by the shared tail, not fully serial

    def test_zero_interference_is_independent(self):
        store = {}
        apply_wire_lane(store, "a", 0.0, 100.0, 0.0)
        assert apply_wire_lane(store, "b", 0.0, 100.0, 0.0) == 0.0

    def test_full_interference_is_shared_wire(self):
        store = {}
        apply_wire_lane(store, "a", 0.0, 100.0, 1.0)
        assert apply_wire_lane(store, "b", 0.0, 100.0, 1.0) == 100.0
