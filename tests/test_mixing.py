"""Mixed-backend communication (paper §V-D, contribution C2).

Deadlock-freedom under cross-backend ordering mismatches, the two MPI
stream-handling modes, the footnote-4 mixing guidance, and validation
of mismatched collective arguments at the rendezvous.
"""

import pytest

from repro.core import (
    ConfigurationError,
    MCRCommunicator,
    MCRConfig,
    ValidationError,
)
from repro.sim import DeadlockError, Simulator


def misordered(ctx, config):
    """Rank parity determines cross-backend posting order (Listing 4
    gone wrong — the pattern MCR-DL must survive)."""
    comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"], config=config)
    x = ctx.virtual_tensor(1 << 18)
    y = ctx.virtual_tensor(1 << 18)
    if ctx.rank % 2 == 0:
        comm.all_reduce("nccl", x)
        comm.all_reduce("mvapich2-gdr", y)
    else:
        comm.all_reduce("mvapich2-gdr", y)
        comm.all_reduce("nccl", x)
    comm.finalize()
    return ctx.now


class TestDeadlockFreedom:
    def test_mcr_dl_survives_misordered_backends(self):
        res = Simulator(2).run(misordered, MCRConfig())
        assert res.elapsed_us > 0

    def test_naive_scheme_deadlocks(self):
        with pytest.raises(DeadlockError):
            Simulator(2).run(misordered, MCRConfig(synchronization="naive"))

    def test_mcr_dl_async_listing4(self):
        """Listing 4 verbatim: two async allreduces on different backends."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
            x = ctx.virtual_tensor(1 << 20)
            y = ctx.virtual_tensor(1 << 20)
            h1 = comm.all_reduce("nccl", x, async_op=True)
            h2 = comm.all_reduce("mvapich2-gdr", y, async_op=True)
            ctx.launch(100.0, label="z+z")
            h1.wait()
            h2.wait()
            comm.finalize()

        Simulator(4).run(main)  # must not deadlock

    def test_mismatched_participation_deadlocks(self):
        """One rank skips a collective: a real hang, reported as such."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            if ctx.rank != 1:
                comm.all_reduce("mvapich2-gdr", ctx.zeros(4))
            comm.finalize()

        with pytest.raises(DeadlockError):
            Simulator(3).run(main)

    def test_cross_backend_overlap_achieved(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
            h1 = comm.all_reduce("nccl", ctx.virtual_tensor(1 << 22), async_op=True)
            h2 = comm.all_reduce("mvapich2-gdr", ctx.virtual_tensor(1 << 22), async_op=True)
            h1.synchronize()
            h2.synchronize()
            comm.finalize()

        res = Simulator(4, trace=True).run(main)
        nccl = res.tracer.filter(rank=0, label_contains="nccl")
        mpi = res.tracer.filter(rank=0, label_contains="mvapich")
        assert res.tracer.overlap_time(nccl, mpi) > 0


class TestRendezvousValidation:
    def test_mismatched_sizes_raise(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            size = 4 if ctx.rank == 0 else 8
            comm.all_reduce("nccl", ctx.zeros(size))
            comm.finalize()

        with pytest.raises(ValidationError, match="mismatch"):
            Simulator(2).run(main)

    def test_mismatched_ops_raise(self):
        from repro.core import ReduceOp

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            op = ReduceOp.SUM if ctx.rank == 0 else ReduceOp.MAX
            comm.all_reduce("nccl", ctx.zeros(4), op=op)
            comm.finalize()

        with pytest.raises(ValidationError):
            Simulator(2).run(main)

    def test_mismatched_collective_types_raise(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            if ctx.rank == 0:
                comm.all_reduce("nccl", ctx.zeros(4))
            else:
                comm.bcast("nccl", ctx.zeros(4))
            comm.finalize()

        with pytest.raises(ValidationError):
            Simulator(2).run(main)


class TestMpiStreamModes:
    def test_mcr_managed_overlaps_compute(self):
        """Option 2 (§V-D): intercepted streams keep the host free."""

        def main(ctx, mode):
            config = MCRConfig(mpi_stream_mode=mode)
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"], config=config)
            ctx.launch(2000.0, label="producer")  # pending default-stream work
            t0 = ctx.now
            comm.all_reduce("mvapich2-gdr", ctx.virtual_tensor(1 << 20), async_op=True)
            post_block = ctx.now - t0
            comm.synchronize()
            comm.finalize()
            return post_block

        managed = Simulator(2).run(main, "mcr-managed").rank_results[0]
        mpi_owned = Simulator(2).run(main, "mpi-managed").rank_results[0]
        # mpi-managed synchronizes the default stream before posting
        # (host blocks for the producer); mcr-managed does not
        assert managed < 100.0
        assert mpi_owned >= 2000.0

    def test_mcr_managed_rejected_for_multistream_mpi(self):
        def main(ctx):
            config = MCRConfig(
                mpi_stream_mode="mcr-managed", mpi_internal_multistream=True
            )
            MCRCommunicator(ctx, ["mvapich2-gdr"], config=config)

        with pytest.raises(ConfigurationError, match="multi-stream"):
            Simulator(2).run(main)

    def test_mpi_managed_allowed_for_multistream_mpi(self):
        def main(ctx):
            config = MCRConfig(
                mpi_stream_mode="mpi-managed", mpi_internal_multistream=True
            )
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"], config=config)
            comm.all_reduce("mvapich2-gdr", ctx.zeros(4))
            comm.finalize()

        Simulator(2).run(main)


class TestMixingGuidance:
    def test_two_host_backends_flagged(self):
        """Footnote 4: at most one non-stream-aware backend is optimal."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr", "openmpi"])
            warning = comm.mixing_warning
            comm.finalize()
            return warning

        res = Simulator(2).run(main)
        assert "non-stream-aware" in res.rank_results[0]

    def test_stream_aware_pair_not_flagged(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "msccl"])
            warning = comm.mixing_warning
            comm.finalize()
            return warning

        assert Simulator(2).run(main).rank_results[0] is None

    def test_three_backend_mix_works(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "msccl", "mvapich2-gdr"])
            comm.all_reduce("msccl", ctx.zeros(8))
            comm.all_reduce("nccl", ctx.zeros(8))
            comm.all_to_all_single("mvapich2-gdr", ctx.zeros(8), ctx.zeros(8))
            comm.finalize()

        Simulator(4).run(main)

    def test_duplicate_backends_rejected(self):
        from repro.core import BackendError

        def main(ctx):
            MCRCommunicator(ctx, ["nccl", "nccl"])

        with pytest.raises(BackendError, match="duplicate"):
            Simulator(1).run(main)

    def test_alias_resolution_in_mix(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mv2-gdr"])
            names = comm.get_backends()
            comm.finalize()
            return names

        assert Simulator(1).run(main).rank_results[0] == ["nccl", "mvapich2-gdr"]
