"""Discrete-event engine: clock, scheduling, flags, deadlocks, errors."""

import pytest

from repro.sim import DeadlockError, Engine, Flag, Simulator
from repro.sim.errors import SimError


def run_procs(*fns, max_events=1_000_000):
    engine = Engine(max_events=max_events)
    for i, fn in enumerate(fns):
        engine.add_process(f"p{i}", lambda fn=fn, e=engine: fn(e))
    return engine.run()


class TestClock:
    def test_starts_at_zero_and_advances(self):
        times = []

        def body(e):
            times.append(e.now)
            e.sleep(10)
            times.append(e.now)

        assert run_procs(body) == 10.0
        assert times == [0.0, 10.0]

    def test_sleep_zero_keeps_time(self):
        def body(e):
            e.sleep(0)
            assert e.now == 0.0

        run_procs(body)

    def test_negative_sleep_rejected(self):
        def body(e):
            e.sleep(-1)

        with pytest.raises(SimError):
            run_procs(body)

    def test_wait_until_past_is_noop(self):
        def body(e):
            e.sleep(50)
            e.wait_until(10)
            assert e.now == 50

        run_procs(body)

    def test_interleaving_is_time_ordered(self):
        order = []

        def fast(e):
            e.sleep(5)
            order.append("fast")

        def slow(e):
            e.sleep(20)
            order.append("slow")

        run_procs(slow, fast)
        assert order == ["fast", "slow"]

    def test_fifo_tiebreak_at_equal_times(self):
        order = []

        def make(tag):
            def body(e):
                e.sleep(10)
                order.append(tag)

            return body

        run_procs(make("a"), make("b"), make("c"))
        assert order == ["a", "b", "c"]


class TestFlags:
    def test_fire_future_time_resumes_at_ready(self):
        def producer(e):
            e.sleep(10)
            flags["f"].fire(100.0)

        def consumer(e):
            e.wait_flag(flags["f"])
            assert e.now == 100.0

        engine = Engine()
        flags = {"f": engine.new_flag("f")}
        engine.add_process("prod", lambda: producer(engine))
        engine.add_process("cons", lambda: consumer(engine))
        assert engine.run() == 100.0

    def test_wait_already_fired_past(self):
        def body(e):
            f = e.new_flag()
            f.fire(0.0)
            e.sleep(5)
            e.wait_flag(f)
            assert e.now == 5.0

        run_procs(body)

    def test_double_fire_rejected(self):
        def body(e):
            f = e.new_flag()
            f.fire(1.0)
            f.fire(2.0)

        with pytest.raises(SimError):
            run_procs(body)

    def test_negative_fire_rejected(self):
        def body(e):
            e.new_flag().fire(-1.0)

        with pytest.raises(SimError):
            run_procs(body)

    def test_callbacks_invoked_once(self):
        calls = []

        def body(e):
            f = e.new_flag()
            f.callbacks.append(lambda: calls.append(1))
            f.fire(0.0)

        run_procs(body)
        assert calls == [1]

    def test_multiple_waiters_all_resume(self):
        resumed = []
        engine = Engine()
        flag = engine.new_flag("x")

        def waiter(e):
            e.wait_flag(flag)
            resumed.append(e.now)

        def firer(e):
            e.sleep(3)
            flag.fire(7.0)

        engine.add_process("w1", lambda: waiter(engine))
        engine.add_process("w2", lambda: waiter(engine))
        engine.add_process("f", lambda: firer(engine))
        engine.run()
        assert resumed == [7.0, 7.0]


class TestFailures:
    def test_deadlock_detected_with_diagnostics(self):
        def body(e):
            e.wait_flag(e.new_flag("never"), reason="stuck-on-x")

        with pytest.raises(DeadlockError) as err:
            run_procs(body, body)
        assert "stuck-on-x" in str(err.value)

    def test_user_exception_propagates(self):
        def bad(e):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_procs(bad)

    def test_other_ranks_unwound_after_failure(self):
        def bad(e):
            e.sleep(1)
            raise ValueError("boom")

        def waiter(e):
            e.wait_flag(e.new_flag("never"))

        with pytest.raises(ValueError):
            run_procs(bad, waiter)  # must not hang

    def test_event_budget(self):
        def spinner(e):
            while True:
                e.sleep(1)

        with pytest.raises(SimError, match="event budget"):
            run_procs(spinner, max_events=100)

    def test_run_twice_rejected(self):
        engine = Engine()
        engine.add_process("p", lambda: None)
        engine.run()
        with pytest.raises(SimError):
            engine.run()

    def test_add_process_after_start_rejected(self):
        engine = Engine()
        engine.add_process("p", lambda: None)
        engine.run()
        with pytest.raises(SimError):
            engine.add_process("late", lambda: None)

    def test_empty_engine_runs(self):
        assert Engine().run() == 0.0


class TestSimulatorFacade:
    def test_rank_results_collected(self):
        res = Simulator(3).run(lambda ctx: ctx.rank * 10)
        assert res.rank_results == [0, 10, 20]

    def test_elapsed_units(self):
        res = Simulator(1).run(lambda ctx: ctx.sleep(2500))
        assert res.elapsed_us == 2500
        assert res.elapsed_ms == 2.5
        assert res.elapsed_s == 0.0025

    def test_world_size_validated_against_system(self):
        from repro.cluster import thetagpu

        with pytest.raises(ValueError):
            Simulator(24 * 8 + 1, system=thetagpu())

    def test_args_passed_through(self):
        res = Simulator(2).run(lambda ctx, a, b=0: a + b + ctx.rank, 5, b=1)
        assert res.rank_results == [6, 7]

    def test_per_rank_rng_deterministic_and_distinct(self):
        def body(ctx):
            return float(ctx.rand(4).data[0])

        r1 = Simulator(2, seed=7).run(body).rank_results
        r2 = Simulator(2, seed=7).run(body).rank_results
        assert r1 == r2
        assert r1[0] != r1[1]


class TestEngineScalability:
    def test_256_rank_job_completes_quickly(self):
        """Guard against scheduler regressions: a 256-rank job with a few
        collectives per rank must stay interactive (the Fig-8 sweeps run
        thousands of these)."""
        import time

        from repro.cluster import lassen
        from repro.core import MCRCommunicator

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            for _ in range(4):
                h = comm.all_reduce("nccl", ctx.virtual_tensor(1 << 20), async_op=True)
                h.wait()
            comm.finalize()

        start = time.perf_counter()
        Simulator(256, system=lassen()).run(main)
        assert time.perf_counter() - start < 30.0
