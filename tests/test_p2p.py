"""Point-to-point send/recv: matching, tags, async, timing, errors."""

import numpy as np
import pytest

from repro.core import MCRCommunicator, ValidationError
from repro.sim import DeadlockError, Simulator

BACKENDS = ["nccl", "mvapich2-gdr"]


def spmd(world_size, fn):
    def main(ctx):
        comm = MCRCommunicator(ctx, BACKENDS)
        out = fn(ctx, comm)
        comm.finalize()
        return out

    return Simulator(world_size).run(main).rank_results


@pytest.mark.parametrize("backend", BACKENDS)
class TestSendRecv:
    def test_blocking_pair(self, backend):
        def fn(ctx, comm):
            if ctx.rank == 0:
                comm.send(backend, ctx.arange(8), dst=1)
                return None
            buf = ctx.zeros(8)
            comm.recv(backend, buf, src=0)
            return buf.data.copy()

        results = spmd(2, fn)
        assert np.array_equal(results[1], np.arange(8))

    def test_ring_pattern(self, backend):
        def fn(ctx, comm):
            right = (ctx.rank + 1) % ctx.world_size
            left = (ctx.rank - 1) % ctx.world_size
            buf = ctx.zeros(1)
            h = comm.irecv(backend, buf, src=left)
            comm.send(backend, ctx.full(1, float(ctx.rank)), dst=right)
            h.synchronize()
            return float(buf.data[0])

        results = spmd(4, fn)
        assert results == [3.0, 0.0, 1.0, 2.0]

    def test_isend_irecv(self, backend):
        def fn(ctx, comm):
            if ctx.rank == 0:
                h = comm.isend(backend, ctx.full(4, 9.0), dst=1)
                h.synchronize()
                return None
            buf = ctx.zeros(4)
            h = comm.irecv(backend, buf, src=0)
            h.synchronize()
            return float(buf.data[0])

        assert spmd(2, fn)[1] == 9.0

    def test_transfer_takes_time(self, backend):
        def fn(ctx, comm):
            start = ctx.now
            if ctx.rank == 0:
                comm.send(backend, ctx.zeros(1 << 20), dst=1)
            else:
                buf = ctx.zeros(1 << 20)
                comm.recv(backend, buf, src=0)
            return ctx.now - start

        elapsed = spmd(2, fn)
        assert min(elapsed) > 10.0  # 4 MiB cannot be free


class TestTagsAndOrdering:
    def test_fifo_matching_same_tag(self):
        def fn(ctx, comm):
            if ctx.rank == 0:
                comm.send("nccl", ctx.full(1, 1.0), dst=1)
                comm.send("nccl", ctx.full(1, 2.0), dst=1)
                return None
            a, b = ctx.zeros(1), ctx.zeros(1)
            comm.recv("nccl", a, src=0)
            comm.recv("nccl", b, src=0)
            return (float(a.data[0]), float(b.data[0]))

        assert spmd(2, fn)[1] == (1.0, 2.0)

    def test_tags_demultiplex(self):
        def fn(ctx, comm):
            if ctx.rank == 0:
                comm.send("nccl", ctx.full(1, 1.0), dst=1, tag=7)
                comm.send("nccl", ctx.full(1, 2.0), dst=1, tag=9)
                return None
            b, a = ctx.zeros(1), ctx.zeros(1)
            comm.recv("nccl", b, src=0, tag=9)  # out of send order
            comm.recv("nccl", a, src=0, tag=7)
            return (float(a.data[0]), float(b.data[0]))

        assert spmd(2, fn)[1] == (1.0, 2.0)

    def test_backends_have_separate_channels(self):
        def fn(ctx, comm):
            if ctx.rank == 0:
                comm.send("nccl", ctx.full(1, 1.0), dst=1)
                comm.send("mvapich2-gdr", ctx.full(1, 2.0), dst=1)
                return None
            m, n = ctx.zeros(1), ctx.zeros(1)
            comm.recv("mvapich2-gdr", m, src=0)
            comm.recv("nccl", n, src=0)
            return (float(n.data[0]), float(m.data[0]))

        assert spmd(2, fn)[1] == (1.0, 2.0)


class TestP2PErrors:
    def test_self_send_rejected(self):
        def fn(ctx, comm):
            comm.send("nccl", ctx.zeros(1), dst=ctx.rank)

        with pytest.raises(ValidationError):
            spmd(2, fn)

    def test_peer_out_of_range(self):
        def fn(ctx, comm):
            comm.send("nccl", ctx.zeros(1), dst=99)

        with pytest.raises(ValidationError):
            spmd(2, fn)

    def test_size_mismatch_detected(self):
        def fn(ctx, comm):
            if ctx.rank == 0:
                comm.send("nccl", ctx.zeros(4), dst=1)
            else:
                comm.recv("nccl", ctx.zeros(8), src=0)

        with pytest.raises(ValidationError, match="size mismatch"):
            spmd(2, fn)

    def test_unmatched_recv_deadlocks(self):
        def fn(ctx, comm):
            if ctx.rank == 1:
                comm.recv("nccl", ctx.zeros(1), src=0)  # nobody sends

        with pytest.raises(DeadlockError):
            spmd(2, fn)
