"""CLI surface (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestBackendsAndSystems:
    def test_backends_lists_all(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("nccl", "mvapich2-gdr", "openmpi", "msccl", "gloo"):
            assert name in out

    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "lassen" in out and "thetagpu" in out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit, match="unknown system"):
            main(["micro", "--system", "frontier"])


class TestTune:
    def test_tune_writes_table(self, tmp_path, capsys):
        out_file = tmp_path / "table.json"
        rc = main([
            "tune", "--system", "lassen", "--world-sizes", "8",
            "--num-sizes", "4", "--ops", "allgather", "--out", str(out_file),
        ])
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert payload["system"] == "lassen"
        assert "allgather" in payload["entries"]
        assert "tuned 4 cells" in capsys.readouterr().out


class TestMicro:
    def test_micro_prints_series(self, capsys):
        rc = main([
            "micro", "--system", "lassen", "--op", "allreduce",
            "--world", "16", "--num-sizes", "3",
            "--backends", "nccl", "mvapich2-gdr",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "msg_bytes" in out
        assert out.count("\n") >= 4


class TestTrain:
    def test_train_outputs_json(self, capsys):
        rc = main([
            "train", "--model", "resnet50", "--system", "lassen",
            "--world", "4", "--plan", "nccl", "--steps", "1", "--warmup", "0",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "resnet50"
        assert payload["samples_per_sec"] > 0

    def test_train_mixed_plan(self, capsys):
        rc = main([
            "train", "--model", "dlrm", "--system", "thetagpu",
            "--world", "4", "--plan", "mixed", "--steps", "1", "--warmup", "0",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"] == "MCR-DL"

    def test_train_tuned_requires_table(self):
        with pytest.raises(SystemExit, match="requires --table"):
            main(["train", "--plan", "tuned"])

    def test_train_with_faults_reports_events(self, capsys):
        rc = main([
            "train", "--model", "resnet50", "--system", "lassen",
            "--world", "4", "--plan", "nccl", "--steps", "1", "--warmup", "0",
            "--faults", "seed=7;backend=nccl:transient:prob=1.0",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fault_events"].get("retry", 0) > 0

    def test_train_bad_faults_spec_rejected(self):
        with pytest.raises(SystemExit, match="bad --faults spec"):
            main([
                "train", "--model", "resnet50", "--world", "4",
                "--faults", "backend=nccl:transient:prob=2.0",
            ])

    def test_train_tuned_with_table(self, tmp_path, capsys):
        table = tmp_path / "t.json"
        main([
            "tune", "--system", "thetagpu", "--world-sizes", "4",
            "--num-sizes", "3", "--ops", "allreduce", "alltoall",
            "--out", str(table),
        ])
        capsys.readouterr()
        rc = main([
            "train", "--model", "dlrm", "--system", "thetagpu", "--world", "4",
            "--plan", "tuned", "--table", str(table), "--steps", "1",
            "--warmup", "0",
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["plan"] == "MCR-DL-T"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["train", "--model", "bert"])
