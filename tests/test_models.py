"""Workload models and the training harness."""

import pytest

from repro.cluster import lassen, thetagpu
from repro.models import (
    BackendPlan,
    CommDriver,
    DLRMConfig,
    DLRMModel,
    DSMoEModel,
    MegatronConfig,
    MegatronDenseModel,
    MoEConfig,
    PROFILES,
    ResNet50Model,
    ResNetConfig,
    Trainer,
)
from repro.models.common import MLPSpec, chunk_bytes, even_counts, gemm_us, skewed_counts
from repro.models.trainer import scaling_efficiency
from repro.sim import Simulator


class TestCommonMath:
    def test_mlp_params(self):
        mlp = MLPSpec((4, 8, 2))
        assert mlp.params() == 4 * 8 + 8 + 8 * 2 + 2

    def test_mlp_flops(self):
        mlp = MLPSpec((4, 8))
        assert mlp.forward_flops(10) == 2 * 10 * 32
        assert mlp.backward_flops(10) == 2 * mlp.forward_flops(10)

    def test_gemm_time_positive_and_scaled(self):
        from repro.cluster import V100, A100

        assert gemm_us(A100, 1e12) < gemm_us(V100, 1e12)

    def test_chunk_bytes(self):
        assert chunk_bytes(100, 30) == [30, 30, 30, 10]
        assert chunk_bytes(60, 30) == [30, 30]
        assert chunk_bytes(0, 30) == []

    def test_even_counts(self):
        assert even_counts(10, 3) == [4, 3, 3]
        assert sum(even_counts(17, 5)) == 17

    def test_skewed_counts_conserve_total(self):
        counts = skewed_counts(1000, 4, 0.5, [0.1, 0.9, 0.4, 0.7])
        assert sum(counts) == 1000
        assert max(counts) > min(counts)

    def test_skew_zero_is_even(self):
        counts = skewed_counts(100, 4, 0.0, [0.1, 0.9, 0.4, 0.7])
        assert max(counts) - min(counts) <= 1

    def test_skew_out_of_range(self):
        with pytest.raises(ValueError):
            skewed_counts(100, 4, 1.5, [0.5] * 4)


class TestConfigs:
    def test_moe_defaults_match_paper(self):
        cfg = MoEConfig()
        assert cfg.hidden == 1024 and cfg.layers == 24  # 350M base
        assert cfg.moe_layers == 12  # PR-MoE: half the layers

    def test_moe_sizes(self):
        cfg = MoEConfig()
        # 350M base -> ~600 MB of fp16 dense grads
        assert 500e6 < cfg.dense_param_bytes() < 700e6
        assert cfg.alltoall_bytes() > 0

    def test_moe_invalid(self):
        with pytest.raises(ValueError):
            MoEConfig(hidden=0)

    def test_dlrm_defaults_match_paper(self):
        cfg = DLRMConfig()
        assert cfg.bottom_mlp[1:] == (512, 512, 64)
        assert cfg.top_mlp[1:] == (1024, 1024, 1024, 1)
        assert cfg.embedding_rows_per_rank == 1_000_000

    def test_megatron_defaults_match_paper(self):
        cfg = MegatronConfig()
        assert cfg.tensor_parallel == 2  # TP degree 2
        # 6.7B params
        assert 6e9 < cfg.params() < 7.5e9

    def test_resnet_config(self):
        assert ResNetConfig().params == 25_600_000


class TestBackendPlan:
    def test_pure(self):
        plan = BackendPlan.pure("nccl")
        assert plan.backend_for("allreduce") == "nccl"
        assert plan.backends() == ["nccl"]

    def test_mixed(self):
        plan = BackendPlan.mixed()
        assert plan.backend_for("allreduce") == "nccl"
        assert plan.backend_for("alltoall") == "mvapich2-gdr"
        assert set(plan.backends()) == {"nccl", "mvapich2-gdr"}

    def test_tuned(self):
        from repro.core import TuningTable

        table = TuningTable()
        table.add("allreduce", 4, 1024, "nccl")
        table.add("alltoall", 4, 1024, "mvapich2-gdr")
        plan = BackendPlan.tuned(table)
        assert plan.default == "auto"
        assert set(plan.backends()) == {"nccl", "mvapich2-gdr"}

    def test_tuned_empty_table_rejected(self):
        from repro.core import TuningTable

        with pytest.raises(ValueError):
            BackendPlan.tuned(TuningTable()).backends()


@pytest.mark.parametrize(
    "model,system",
    [
        (DSMoEModel(MoEConfig(layers=4, micro_batch=1)), lassen(max_nodes=8)),
        (DLRMModel(DLRMConfig(batch_size=256)), thetagpu()),
        (ResNet50Model(ResNetConfig(local_batch=8)), lassen(max_nodes=8)),
        (MegatronDenseModel(MegatronConfig(layers=4)), thetagpu()),
    ],
    ids=["moe", "dlrm", "resnet", "megatron"],
)
class TestModelsRun:
    def test_step_runs_and_times_sane(self, model, system):
        trainer = Trainer(system, steps=2, warmup=1)
        result = trainer.run(model, 4, BackendPlan.mixed())
        assert result.step_time_us > 0
        assert result.samples_per_sec > 0
        assert result.model == model.name

    def test_comm_log_populated(self, model, system):
        trainer = Trainer(system, steps=1, warmup=0)
        result = trainer.run(model, 4, BackendPlan.pure("nccl", "NCCL"))
        assert result.comm_by_family
        assert all(v >= 0 for v in result.comm_by_family.values())


class TestTrainerSemantics:
    def test_throughput_scales_with_step_time(self):
        model = ResNet50Model(ResNetConfig(local_batch=8))
        trainer = Trainer(lassen(max_nodes=4), steps=2, warmup=0)
        r = trainer.run(model, 4, BackendPlan.pure("nccl"))
        expected = model.samples_per_step(4) / (r.step_time_us / 1e6)
        assert r.samples_per_sec == pytest.approx(expected)

    def test_scaling_efficiency_base_is_one(self):
        model = ResNet50Model(ResNetConfig(local_batch=8))
        trainer = Trainer(lassen(max_nodes=8), steps=1, warmup=0)
        results = [
            trainer.run(model, ws, BackendPlan.pure("nccl")) for ws in (2, 4)
        ]
        eff = scaling_efficiency(results)
        assert eff[2] == pytest.approx(1.0)
        assert 0 < eff[4] <= 1.05

    def test_trace_breakdown_available(self):
        model = ResNet50Model(ResNetConfig(local_batch=8))
        trainer = Trainer(lassen(max_nodes=4), steps=1, warmup=0, trace=True)
        r = trainer.run(model, 4, BackendPlan.pure("nccl"))
        assert "compute" in r.busy_by_category
        assert "comm" in r.busy_by_category
        assert 0 <= r.comm_fraction <= 1

    def test_steps_must_be_positive(self):
        with pytest.raises(ValueError):
            Trainer(lassen(), steps=0)


class TestModelCommunicationShape:
    def test_moe_issues_alltoall_and_allreduce(self):
        trainer = Trainer(lassen(max_nodes=4), steps=1, warmup=0)
        r = trainer.run(
            DSMoEModel(MoEConfig(layers=4, micro_batch=1)), 4, BackendPlan.mixed()
        )
        assert "alltoall" in r.comm_by_family
        assert "allreduce" in r.comm_by_family

    def test_moe_gating_skew_uses_alltoallv(self):
        trainer = Trainer(lassen(max_nodes=4), steps=1, warmup=0)
        r = trainer.run(
            DSMoEModel(MoEConfig(layers=2, micro_batch=1, gating_skew=0.5)),
            4,
            BackendPlan.mixed(),
        )
        assert "alltoall" in r.comm_by_family

    def test_megatron_issues_reduce_scatter_and_allgather(self):
        """ZeRO-2's signature collectives."""
        trainer = Trainer(thetagpu(), steps=1, warmup=0)
        r = trainer.run(
            MegatronDenseModel(MegatronConfig(layers=2)), 4, BackendPlan.mixed()
        )
        assert "reduce_scatter" in r.comm_by_family
        assert "allgather" in r.comm_by_family

    def test_resnet_is_allreduce_only(self):
        trainer = Trainer(lassen(max_nodes=4), steps=1, warmup=0)
        r = trainer.run(
            ResNet50Model(ResNetConfig(local_batch=8)), 4, BackendPlan.pure("nccl")
        )
        comm_ops = {k for k, v in r.comm_by_family.items() if v > 0 and k != "barrier"}
        assert comm_ops == {"allreduce"}

    def test_resnet_compute_dominated(self):
        """Fig. 1(a): data parallelism is strongly compute-dominated."""
        trainer = Trainer(lassen(max_nodes=16), steps=1, warmup=0, trace=True)
        r = trainer.run(ResNet50Model(), 16, BackendPlan.pure("nccl"))
        assert r.comm_fraction < 0.35

    def test_single_backend_framework_collapses_plan(self):
        """PyTorch-dist can't mix: the plan collapses to one backend."""

        def main(ctx):
            driver = CommDriver(
                ctx, BackendPlan.mixed(), profile=PROFILES["torch-distributed"]
            )
            names = list(driver.comm.backends)
            driver.finalize()
            return names

        assert Simulator(2).run(main).rank_results[0] == ["nccl"]


class TestDLRMSyntheticData:
    def test_real_indices_path_runs_and_costs_more(self):
        from repro.cluster import thetagpu
        from repro.models.dlrm import DLRMConfig

        trainer = Trainer(thetagpu(), steps=2, warmup=1)
        balanced = trainer.run(
            DLRMModel(DLRMConfig(batch_size=512)), 4, BackendPlan.mixed()
        )
        skewed = trainer.run(
            DLRMModel(DLRMConfig(batch_size=512, synthetic_data=True)),
            4,
            BackendPlan.mixed(),
        )
        # the imbalanced vectored exchange + metadata round is never faster
        assert skewed.step_time_us >= balanced.step_time_us * 0.99
        assert skewed.comm_by_family.get("alltoall", 0) > 0

    def test_zipf_config_validated(self):
        from repro.models.data import zipfian_indices
        import numpy as np

        with pytest.raises(ValueError):
            zipfian_indices(np.random.default_rng(0), 100, 10, exponent=-1)
