"""Explicit fat-tree fabric model."""

import pytest

from repro.cluster import IB_EDR, lassen
from repro.cluster.fattree import FatTreeFabric


class TestStructure:
    def test_leaf_assignment(self):
        tree = FatTreeFabric(nodes_per_leaf=4)
        assert tree.leaf_of(0) == 0
        assert tree.leaf_of(3) == 0
        assert tree.leaf_of(4) == 1

    def test_hop_counts(self):
        tree = FatTreeFabric(nodes_per_leaf=4)
        assert tree.switch_hops(0, 0) == 0
        assert tree.switch_hops(0, 1) == 1  # same leaf
        assert tree.switch_hops(0, 5) == 3  # via the spine

    def test_path_latency_accumulates_switches(self):
        tree = FatTreeFabric(nodes_per_leaf=4, switch_latency_us=0.5)
        intra = tree.path_latency_us(IB_EDR, 0, 1)
        inter = tree.path_latency_us(IB_EDR, 0, 5)
        assert inter == pytest.approx(intra + 2 * 0.5)
        assert tree.path_latency_us(IB_EDR, 2, 2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTreeFabric(nodes_per_leaf=0)
        with pytest.raises(ValueError):
            FatTreeFabric(taper=0.0)
        with pytest.raises(ValueError):
            FatTreeFabric(taper=1.5)
        with pytest.raises(ValueError):
            FatTreeFabric(switch_latency_us=-1)


class TestContention:
    def test_full_bisection_never_contends(self):
        tree = FatTreeFabric(nodes_per_leaf=4, taper=1.0)
        for n in (1, 4, 16, 64):
            assert tree.contention(n) == 1.0

    def test_single_leaf_never_contends(self):
        tree = FatTreeFabric(nodes_per_leaf=18, taper=0.5)
        assert tree.contention(18) == 1.0

    def test_tapered_contention_grows_then_saturates(self):
        tree = FatTreeFabric(nodes_per_leaf=4, taper=0.5)
        values = [tree.contention(n) for n in (4, 8, 16, 64, 256)]
        assert values[0] == 1.0
        assert all(b >= a for a, b in zip(values, values[1:]))
        # asymptote: all traffic cross-leaf -> 1/taper
        assert values[-1] < 1.0 / 0.5 + 1e-9

    def test_cross_leaf_fraction(self):
        tree = FatTreeFabric(nodes_per_leaf=2)
        assert tree.cross_leaf_fraction(2) == 0.0
        assert tree.cross_leaf_fraction(4) == pytest.approx(1 - 4 / 12)

    def test_effective_latency_jumps_at_spine(self):
        tree = FatTreeFabric(nodes_per_leaf=4, switch_latency_us=0.3)
        assert tree.effective_inter_latency_us(IB_EDR, 4) < tree.effective_inter_latency_us(
            IB_EDR, 8
        )


class TestSystemIntegration:
    def test_detailed_lassen_uses_tree(self):
        system = lassen(detailed_fabric=True)
        assert system.fabric is not None
        path = system.comm_path(256)  # 64 nodes, > 3 leaves
        heuristic = lassen().comm_path(256)
        # both models agree on the qualitative picture
        assert path.spans_nodes and heuristic.spans_nodes
        assert path.alpha_us > IB_EDR.latency_us  # switch hops included

    def test_detailed_contention_kicks_in_across_leaves(self):
        system = lassen(detailed_fabric=True)
        one_leaf = system.comm_path(18 * 4)  # 18 nodes = 1 leaf
        many_leaves = system.comm_path(72 * 4)
        assert many_leaves.beta_us_per_byte > one_leaf.beta_us_per_byte

    def test_calibrated_figures_unaffected_by_default(self):
        assert lassen().fabric is None

    def test_detailed_mode_still_runs_training(self):
        from repro.models import BackendPlan, DSMoEModel, MoEConfig, Trainer

        trainer = Trainer(lassen(detailed_fabric=True), steps=1, warmup=0)
        result = trainer.run(
            DSMoEModel(MoEConfig(layers=4, micro_batch=1)), 8, BackendPlan.mixed()
        )
        assert result.samples_per_sec > 0


class TestLeafBoundary:
    """Exact behavior at n_nodes == nodes_per_leaf: a job filling one
    leaf never pays spine contention or spine hops; one node more pays
    both (boundary sweep for the lassen-default k=18)."""

    @pytest.mark.parametrize("n_nodes", [1, 17, 18])
    def test_at_or_below_one_leaf(self, n_nodes):
        tree = FatTreeFabric(nodes_per_leaf=18, taper=0.5)
        assert tree.leaves_spanned(n_nodes) == 1
        assert tree.cross_leaf_fraction(n_nodes) == 0.0
        assert tree.contention(n_nodes) == 1.0
        assert tree.effective_inter_latency_us(IB_EDR, n_nodes) == pytest.approx(
            IB_EDR.latency_us + tree.switch_latency_us
        )

    @pytest.mark.parametrize("n_nodes", [19, 36])
    def test_above_one_leaf(self, n_nodes):
        tree = FatTreeFabric(nodes_per_leaf=18, taper=0.5)
        assert tree.leaves_spanned(n_nodes) == 2
        assert tree.cross_leaf_fraction(n_nodes) > 0.0
        assert tree.contention(n_nodes) > 1.0
        assert tree.effective_inter_latency_us(IB_EDR, n_nodes) == pytest.approx(
            IB_EDR.latency_us + 3 * tree.switch_latency_us
        )

    def test_contention_monotone_across_boundary(self):
        tree = FatTreeFabric(nodes_per_leaf=18, taper=0.5)
        sweep = [tree.contention(n) for n in (1, 17, 18, 19, 36)]
        assert sweep == sorted(sweep)
        assert sweep[2] == 1.0 < sweep[3] < sweep[4]

    def test_system_path_steps_at_boundary(self):
        system = lassen(detailed_fabric=True)
        k, ppn = 18, system.gpus_per_node
        one_leaf = system.comm_path(k * ppn)
        two_leaves = system.comm_path((k + 1) * ppn)
        assert two_leaves.alpha_us > one_leaf.alpha_us
        assert two_leaves.beta_us_per_byte > one_leaf.beta_us_per_byte
