"""Tuning tables and the tuning suite (paper §V-F, C5)."""

import math

import pytest

from repro.backends.ops import OpFamily
from repro.cluster import lassen, thetagpu
from repro.core import (
    MCRCommunicator,
    TuningError,
    TuningTable,
    Tuner,
    message_bucket,
)
from repro.sim import Simulator


class TestMessageBucket:
    def test_powers_of_two_fixed(self):
        assert message_bucket(4096) == 4096

    def test_rounds_to_nearest_pow2_in_log_space(self):
        # geometric midpoint of [2048, 4096] is ~2896
        assert message_bucket(2800) == 2048
        assert message_bucket(3000) == 4096

    def test_floor_at_one(self):
        assert message_bucket(0) == 1
        assert message_bucket(1) == 1

    def test_midpoint_boundaries_exact(self):
        # the geometric midpoint of [2**k, 2**(k+1)] is 2**(k+0.5); the
        # largest integer below it is isqrt(2**(2k+1) - 1).  Exact
        # round-half-up: that integer snaps down, the next one snaps up,
        # at every scale
        for k in range(1, 60):
            below = math.isqrt((1 << (2 * k + 1)) - 1)
            assert message_bucket(below) == 1 << k, k
            assert message_bucket(below + 1) == 1 << (k + 1), k

    def test_large_sizes_not_subject_to_float_rounding(self):
        # regression: round(math.log2(n)) could not separate values
        # around large midpoints, and banker's rounding then snapped
        # both of these into the same (2**48) bucket
        assert message_bucket(199032864766430) == 1 << 47
        assert message_bucket(398065729532861) == 1 << 49


class TestTuningTable:
    def make(self):
        t = TuningTable(system="lassen")
        t.add("allreduce", 16, 1024, "mvapich2-gdr")
        t.add("allreduce", 16, 1 << 20, "nccl")
        t.add("allreduce", 64, 1 << 20, "nccl")
        t.add("allgather", 16, 16384, "msccl")
        return t

    def test_exact_lookup(self):
        assert self.make().lookup("allreduce", 16, 1024) == "mvapich2-gdr"

    def test_message_size_snaps_to_nearest(self):
        assert self.make().lookup("allreduce", 16, 900) == "mvapich2-gdr"
        assert self.make().lookup("allreduce", 16, 2 << 20) == "nccl"

    def test_lookup_splits_at_bucket_midpoint(self):
        t = TuningTable(system="lassen")
        t.add("allreduce", 16, 2048, "mvapich2-gdr")
        t.add("allreduce", 16, 4096, "nccl")
        # geometric midpoint of [2048, 4096] is ~2896.3
        assert t.lookup("allreduce", 16, 2896) == "mvapich2-gdr"
        assert t.lookup("allreduce", 16, 2897) == "nccl"

    def test_world_size_snaps_log_space(self):
        # 48 is closer to 64 than to 16 in log2 space
        assert self.make().lookup("allreduce", 48, 1 << 20) == "nccl"

    def test_unknown_op_returns_none(self):
        assert self.make().lookup("alltoall", 16, 1024) is None

    def test_rows_table2_format(self):
        rows = self.make().rows("allreduce", 16)
        assert rows == [(1024, "mvapich2-gdr"), (1 << 20, "nccl")]

    def test_rows_missing_scale_raises(self):
        with pytest.raises(TuningError):
            self.make().rows("allreduce", 999)

    def test_num_entries(self):
        assert self.make().num_entries() == 4

    def test_roundtrip_save_load(self, tmp_path):
        t = self.make()
        path = tmp_path / "table.json"
        t.save(path)
        loaded = TuningTable.load(path)
        assert loaded.system == "lassen"
        assert loaded.lookup("allreduce", 16, 1024) == "mvapich2-gdr"
        assert loaded.num_entries() == t.num_entries()

    def test_load_enforces_system(self, tmp_path):
        """Tables are not transferable across systems (§V-F)."""
        t = self.make()
        path = tmp_path / "table.json"
        t.save(path)
        with pytest.raises(TuningError, match="not transferable"):
            TuningTable.load(path, expect_system="thetagpu")

    def test_merge(self):
        a, b = self.make(), TuningTable()
        b.add("alltoall", 16, 1024, "mvapich2-gdr")
        a.merge(b)
        assert a.lookup("alltoall", 16, 1024) == "mvapich2-gdr"

    def test_invalid_add_rejected(self):
        t = TuningTable()
        with pytest.raises(TuningError):
            t.add("allreduce", 0, 1024, "nccl")
        with pytest.raises(TuningError):
            t.add("allreduce", 4, -1, "nccl")

    def test_merge_bumps_generation_once_per_changing_merge(self):
        a, b = self.make(), TuningTable()
        b.add("alltoall", 16, 1024, "mvapich2-gdr")
        b.add("alltoall", 16, 65536, "nccl")
        before = a.generation
        a.merge(b)
        assert a.generation == before + 1

    def test_noop_merge_keeps_generation_and_memo(self):
        """Regression: a merge that changes nothing must not invalidate
        every cached "auto" dispatch plan downstream."""
        a = self.make()
        # prime the lookup memo, then merge an identical overlay
        assert a.lookup("allreduce", 16, 1024) == "mvapich2-gdr"
        before = a.generation
        a.merge(self.make())
        assert a.generation == before
        assert a._lookup_cache  # memo survived
        # merging an empty table is also a no-op
        a.merge(TuningTable())
        assert a.generation == before

    def test_merge_invalid_keys_rejected_atomically(self):
        """Regression: merge validates like add(), and a bad overlay must
        not leave the table half-updated."""
        a = self.make()
        before_entries = {
            op: {ws: dict(b) for ws, b in scales.items()}
            for op, scales in a.entries.items()
        }
        before_gen = a.generation

        bad_ws = TuningTable()
        bad_ws.entries = {"alltoall": {0: {1024: "nccl"}}}
        with pytest.raises(TuningError, match="world size"):
            a.merge(bad_ws)

        bad_bucket = TuningTable()
        # one good entry *before* the bad one: neither may land
        bad_bucket.entries = {
            "allgather": {8: {1024: "nccl"}},
            "alltoall": {8: {1000: "nccl"}},  # not a power-of-two bucket
        }
        with pytest.raises(TuningError, match="bucket"):
            a.merge(bad_bucket)

        assert a.entries == before_entries
        assert a.generation == before_gen

    def test_nearest_tie_breaks_to_smaller_candidate(self):
        """Equidistant log2 neighbours resolve to the smaller entry —
        pinned because online retuning needs every rank to agree."""
        # 32 is exactly between tuned scales 16 and 64 in log2 space
        t = TuningTable(system="lassen")
        t.add("allreduce", 16, 1024, "small-ws")
        t.add("allreduce", 64, 1024, "large-ws")
        assert t.lookup("allreduce", 32, 1024) == "small-ws"
        # same for message buckets: 2048 is the log2 midpoint of 1024/4096
        t2 = TuningTable(system="lassen")
        t2.add("allreduce", 16, 1024, "small-msg")
        t2.add("allreduce", 16, 4096, "large-msg")
        assert t2.lookup("allreduce", 16, 2048) == "small-msg"
        assert TuningTable._nearest([16, 64], 32) == 16

    def test_clone_is_independent(self):
        a = self.make()
        c = a.clone()
        assert c.system == a.system
        assert c.entries == a.entries
        assert c.generation == 0
        c.add("allreduce", 16, 1024, "msccl")
        assert a.lookup("allreduce", 16, 1024) == "mvapich2-gdr"
        assert c.lookup("allreduce", 16, 1024) == "msccl"


class TestTuner:
    def test_analytic_builds_full_table(self):
        tuner = Tuner(lassen(), ["nccl", "mvapich2-gdr", "msccl"])
        report = tuner.build_table(
            world_sizes=[16], message_sizes=[256, 4096, 1 << 20],
            ops=[OpFamily.ALLREDUCE, OpFamily.ALLGATHER],
        )
        # Num_Collectives x Num_Scales x Num_Message_Sizes (paper §V-F)
        assert report.table.num_entries() == 2 * 1 * 3
        assert len(report.samples) == 2 * 1 * 3 * 3

    def test_winner_has_min_latency(self):
        tuner = Tuner(lassen(), ["nccl", "mvapich2-gdr", "msccl"])
        report = tuner.build_table(
            world_sizes=[16], message_sizes=[4096], ops=[OpFamily.ALLGATHER]
        )
        samples = report.samples_for("allgather", 16, 4096)
        best = min(samples, key=lambda s: s.latency_us)
        assert report.table.lookup("allgather", 16, 4096) == best.backend

    def test_simulated_and_analytic_agree_on_ranking(self):
        kwargs = dict(
            world_sizes=[4], message_sizes=[1024, 1 << 18], ops=[OpFamily.ALLREDUCE]
        )
        analytic = Tuner(lassen(), ["nccl", "mvapich2-gdr"], mode="analytic").build_table(**kwargs)
        simulated = Tuner(
            lassen(), ["nccl", "mvapich2-gdr"], mode="simulated", iterations=3
        ).build_table(**kwargs)
        assert analytic.table.entries == simulated.table.entries

    def test_sweep_samples_cover_every_cell_once_per_backend(self):
        """Sweep integrity: no cell is skipped or double-measured."""
        backends = ["nccl", "mvapich2-gdr", "msccl"]
        ops = [OpFamily.ALLREDUCE, OpFamily.ALLTOALL]
        world_sizes = [4, 16]
        sizes = [256, 4096, 1 << 20]
        report = Tuner(lassen(), backends).build_table(
            world_sizes=world_sizes, message_sizes=sizes, ops=ops
        )
        expected = len(ops) * len(world_sizes) * len(sizes) * len(backends)
        assert len(report.samples) == expected
        for op in ops:
            for ws in world_sizes:
                for msg in sizes:
                    cell = report.samples_for(str(op), ws, msg)
                    assert len(cell) == len(backends), (op, ws, msg)
                    assert sorted(s.backend for s in cell) == sorted(backends)

    def test_table_roundtrip_serves_auto_dispatch_keys(self, tmp_path):
        # "auto" in core/comm.py looks tables up by OpFamily.value; a
        # saved/loaded table must keep serving exactly those keys
        ops = [OpFamily.ALLREDUCE, OpFamily.ALLGATHER, OpFamily.ALLTOALL]
        report = Tuner(lassen(), ["nccl", "mvapich2-gdr"]).build_table(
            world_sizes=[16], message_sizes=[256, 1 << 20], ops=ops
        )
        path = tmp_path / "table.json"
        report.table.save(path)
        loaded = TuningTable.load(path, expect_system="lassen")
        assert set(loaded.entries) == {op.value for op in ops}
        for op in ops:
            assert str(op) == op.value  # the contract build_table relies on
            for msg in (256, 1 << 20):
                choice = loaded.lookup(op.value, 16, msg)
                assert choice is not None
                assert choice == report.table.lookup(op.value, 16, msg)

    def test_bad_mode_rejected(self):
        with pytest.raises(TuningError):
            Tuner(lassen(), ["nccl"], mode="magic")

    def test_empty_backends_rejected(self):
        with pytest.raises(TuningError):
            Tuner(lassen(), [])

    def test_world_size_one_rejected(self):
        with pytest.raises(TuningError):
            Tuner(lassen(), ["nccl"]).build_table(world_sizes=[1], message_sizes=[256])


class TestAutoDispatch:
    def build_table(self):
        return Tuner(lassen(), ["nccl", "mvapich2-gdr", "msccl"]).build_table(
            world_sizes=[4],
            message_sizes=[256, 4096, 1 << 20],
        ).table

    def test_auto_routes_by_size(self):
        """Fine-grained mixing: one op, different backend per size."""
        table = self.build_table()

        def main(ctx):
            comm = MCRCommunicator(
                ctx, ["nccl", "mvapich2-gdr", "msccl"], tuning_table=table
            )
            comm.all_reduce("auto", ctx.zeros(64))  # 256 B
            comm.all_reduce("auto", ctx.virtual_tensor(1 << 18))  # 1 MiB
            comm.finalize()

        res = Simulator(4, trace=True).run(main)
        labels = {r.label for r in res.tracer.filter(rank=0, category="comm")}
        chosen_small = table.lookup("allreduce", 4, 256)
        chosen_large = table.lookup("allreduce", 4, 1 << 20)
        assert chosen_small != chosen_large  # the table is actually mixed
        assert f"allreduce:{chosen_small}" in labels
        assert f"allreduce:{chosen_large}" in labels

    def test_auto_skips_uninitialized_backend(self):
        table = TuningTable()
        table.add("allreduce", 4, 256, "gloo")  # tuned for a missing backend

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"], tuning_table=table)
            comm.all_reduce("auto", ctx.zeros(64))
            comm.finalize()

        Simulator(4).run(main)  # falls back instead of crashing

    def test_table_ops_cover_paper_defaults(self):
        from repro.core import DEFAULT_OPS

        assert OpFamily.ALLREDUCE in DEFAULT_OPS
        assert OpFamily.ALLTOALL in DEFAULT_OPS
        assert len(DEFAULT_OPS) == 8
