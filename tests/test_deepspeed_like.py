"""DeepSpeed-style config-driven engine facade."""

import pytest

from repro.core import ConfigurationError, Tuner
from repro.frameworks.deepspeed_like import DEFAULT_CONFIG, DeepSpeedLikeEngine, _merge
from repro.models import DSMoEModel, MoEConfig
from repro.sim import Simulator


def small_model():
    return DSMoEModel(MoEConfig(layers=4, micro_batch=1))


class TestConfigHandling:
    def test_merge_nested(self):
        merged = _merge({"a": {"x": 1, "y": 2}, "b": 3}, {"a": {"y": 9}})
        assert merged == {"a": {"x": 1, "y": 9}, "b": 3}

    def test_defaults_applied(self):
        def main(ctx):
            engine = DeepSpeedLikeEngine(ctx)
            names = list(engine.driver.comm.backends)
            engine.finalize()
            return names

        res = Simulator(2).run(main)
        assert res.rank_results[0] == ["nccl", "mvapich2-gdr"]

    def test_empty_backends_rejected(self):
        def main(ctx):
            DeepSpeedLikeEngine(ctx, {"communication": {"backends": []}})

        with pytest.raises(ConfigurationError, match="non-empty"):
            Simulator(1).run(main)

    def test_op_backend_must_be_initialized(self):
        def main(ctx):
            DeepSpeedLikeEngine(
                ctx,
                {"communication": {"backends": ["nccl"], "alltoall_backend": "gloo"}},
            )

        with pytest.raises(ConfigurationError, match="not in communication.backends"):
            Simulator(1).run(main)

    def test_auto_requires_table(self):
        def main(ctx):
            DeepSpeedLikeEngine(
                ctx,
                {
                    "communication": {
                        "backends": ["nccl"],
                        "allreduce_backend": "auto",
                        "alltoall_backend": "nccl",
                    }
                },
            )

        with pytest.raises(ConfigurationError, match="tuning_table"):
            Simulator(1).run(main)


class TestTraining:
    def test_train_steps_and_stats(self):
        def main(ctx):
            engine = DeepSpeedLikeEngine(ctx)
            model = small_model()
            for _ in range(2):
                engine.train_step(model)
            stats = engine.finalize()
            return stats

        stats = Simulator(4).run(main).rank_results[0]
        assert stats["steps"] == 2
        assert "alltoall" in stats["comm_by_family_us"]
        assert set(stats["comm_by_backend_us"]) == {"nccl", "mvapich2-gdr"}

    def test_mixed_routing_respected(self):
        def main(ctx):
            engine = DeepSpeedLikeEngine(ctx)
            engine.train_step(small_model())
            stats = engine.finalize()
            return stats["comm_by_backend_us"]

        by_backend = Simulator(4).run(main).rank_results[0]
        assert by_backend["nccl"] > 0  # allreduce traffic
        assert by_backend["mvapich2-gdr"] > 0  # alltoall traffic

    def test_tuned_engine(self):
        from repro.backends.ops import OpFamily
        from repro.cluster import generic_cluster

        table = Tuner(
            generic_cluster(), ["nccl", "mvapich2-gdr"], mode="analytic"
        ).build_table(
            world_sizes=[4],
            message_sizes=[1024, 1 << 20],
            ops=[OpFamily.ALLREDUCE, OpFamily.ALLTOALL],
        ).table

        def main(ctx):
            engine = DeepSpeedLikeEngine(ctx, tuning_table=table)
            engine.train_step(small_model())
            stats = engine.finalize()
            return stats["steps"]

        assert Simulator(4).run(main).rank_results == [1] * 4

    def test_compression_config_applied(self):
        def main(ctx, compressed):
            config = {"compression": {"enabled": compressed, "rate_bits": 8}}
            engine = DeepSpeedLikeEngine(ctx, config)
            engine.train_step(small_model())
            stats = engine.finalize()
            return sum(stats["comm_by_family_us"].values())

        plain = Simulator(4).run(main, False).rank_results[0]
        squeezed = Simulator(4).run(main, True).rank_results[0]
        assert squeezed < plain  # gradient allreduce bytes shrank

    def test_default_config_not_mutated(self):
        snapshot = {k: dict(v) for k, v in DEFAULT_CONFIG.items()}

        def main(ctx):
            engine = DeepSpeedLikeEngine(ctx, {"fusion": {"enabled": False}})
            engine.finalize()

        Simulator(1).run(main)
        assert {k: dict(v) for k, v in DEFAULT_CONFIG.items()} == snapshot
