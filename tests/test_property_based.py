"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import datapath
from repro.backends.cost import CostParams, evaluate, ALGORITHMS
from repro.backends.ops import ReduceOp
from repro.core.tuning import TuningTable, message_bucket
from repro.ext.compression import BLOCK_ELEMS, FixedRateCodec
from repro.sim.graph import apply_wire_lane
from repro.sim.trace import TraceRecord, Tracer

finite_f32 = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, width=32
)


class TestDatapathProperties:
    @given(
        p=st.integers(2, 8),
        n=st.integers(1, 64),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_allreduce_sum_equals_numpy_sum(self, p, n, data):
        ins = [
            np.array(data.draw(st.lists(finite_f32, min_size=n, max_size=n)), dtype=np.float32)
            for _ in range(p)
        ]
        outs = [np.zeros(n, dtype=np.float32) for _ in range(p)]
        datapath.all_reduce(ins, outs, ReduceOp.SUM)
        expected = np.sum(np.stack(ins), axis=0, dtype=np.float32)
        for out in outs:
            assert np.allclose(out, expected, rtol=1e-4, atol=1e-3)

    @given(p=st.integers(2, 8), chunk=st.integers(1, 16), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_alltoall_twice_is_identity(self, p, chunk, seed):
        rng = np.random.default_rng(seed)
        ins = [rng.random(p * chunk).astype(np.float32) for _ in range(p)]
        mid = [np.zeros(p * chunk, dtype=np.float32) for _ in range(p)]
        out = [np.zeros(p * chunk, dtype=np.float32) for _ in range(p)]
        datapath.all_to_all_single(ins, mid)
        datapath.all_to_all_single(mid, out)
        for a, b in zip(ins, out):
            assert np.array_equal(a, b)

    @given(p=st.integers(2, 6), seed=st.integers(0, 2**16), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_allgatherv_places_every_contribution(self, p, seed, data):
        counts = data.draw(st.lists(st.integers(0, 8), min_size=p, max_size=p))
        displs = list(np.cumsum([0] + counts[:-1]))
        total = sum(counts)
        rng = np.random.default_rng(seed)
        ins = [rng.random(max(c, 1)).astype(np.float32) for c in counts]
        outs = [np.zeros(max(total, 1), dtype=np.float32) for _ in range(p)]
        datapath.all_gather_v(ins, outs, counts, displs)
        for out in outs:
            for i, c in enumerate(counts):
                assert np.array_equal(out[displs[i] : displs[i] + c], ins[i][:c])

    @given(p=st.integers(2, 8), chunk=st.integers(1, 8), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_reduce_scatter_matches_allreduce_slice(self, p, chunk, seed):
        rng = np.random.default_rng(seed)
        n = p * chunk
        ins = [rng.random(n).astype(np.float32) for _ in range(p)]
        rs_out = [np.zeros(chunk, dtype=np.float32) for _ in range(p)]
        datapath.reduce_scatter([a.copy() for a in ins], rs_out, ReduceOp.SUM)
        ar_out = [np.zeros(n, dtype=np.float32) for _ in range(p)]
        datapath.all_reduce([a.copy() for a in ins], ar_out, ReduceOp.SUM)
        for r in range(p):
            assert np.allclose(rs_out[r], ar_out[r][r * chunk : (r + 1) * chunk], rtol=1e-5)

    @given(
        p=st.integers(2, 8),
        op=st.sampled_from([ReduceOp.MIN, ReduceOp.MAX]),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_minmax_result_is_elementwise_extreme(self, p, op, seed):
        rng = np.random.default_rng(seed)
        ins = [rng.normal(size=8).astype(np.float32) for _ in range(p)]
        outs = [np.zeros(8, dtype=np.float32) for _ in range(p)]
        datapath.all_reduce(ins, outs, op)
        stack = np.stack(ins)
        expected = stack.min(axis=0) if op is ReduceOp.MIN else stack.max(axis=0)
        assert np.array_equal(outs[0], expected)


class TestCostProperties:
    @given(
        algo=st.sampled_from(sorted(ALGORITHMS)),
        p=st.integers(1, 512),
        n=st.integers(0, 1 << 26),
        alpha=st.floats(0.1, 50.0),
        beta=st.floats(1e-6, 1e-3),
    )
    @settings(max_examples=120, deadline=None)
    def test_costs_nonnegative_and_finite(self, algo, p, n, alpha, beta):
        cost = evaluate(algo, CostParams(alpha, beta, p, n))
        assert cost >= 0.0
        assert np.isfinite(cost)

    @given(
        algo=st.sampled_from(sorted(ALGORITHMS)),
        p=st.integers(2, 128),
        n=st.integers(1, 1 << 22),
    )
    @settings(max_examples=60, deadline=None)
    def test_costs_monotone_in_alpha_and_beta(self, algo, p, n):
        low = evaluate(algo, CostParams(1.0, 1e-5, p, n))
        hi_alpha = evaluate(algo, CostParams(2.0, 1e-5, p, n))
        hi_beta = evaluate(algo, CostParams(1.0, 2e-5, p, n))
        assert hi_alpha >= low
        assert hi_beta >= low


class TestTuningTableProperties:
    @given(
        entries=st.lists(
            st.tuples(
                st.sampled_from(["allreduce", "alltoall", "allgather"]),
                st.sampled_from([2, 4, 8, 16, 32]),
                st.integers(1, 1 << 24),
                st.sampled_from(["nccl", "mvapich2-gdr", "msccl"]),
            ),
            min_size=1,
            max_size=32,
        ),
        q_op=st.sampled_from(["allreduce", "alltoall", "allgather"]),
        q_ws=st.integers(1, 64),
        q_bytes=st.integers(1, 1 << 25),
    )
    @settings(max_examples=60, deadline=None)
    def test_lookup_total_and_closed(self, entries, q_op, q_ws, q_bytes):
        table = TuningTable()
        for op, ws, nbytes, backend in entries:
            table.add(op, ws, nbytes, backend)
        result = table.lookup(q_op, q_ws, q_bytes)
        tuned_ops = {op for op, *_ in entries}
        if q_op in tuned_ops:
            assert result in {"nccl", "mvapich2-gdr", "msccl"}
        else:
            assert result is None

    @given(nbytes=st.integers(0, 1 << 30))
    @settings(max_examples=60, deadline=None)
    def test_message_bucket_is_power_of_two(self, nbytes):
        bucket = message_bucket(nbytes)
        assert bucket >= 1
        assert bucket & (bucket - 1) == 0

    @given(msg=st.integers(1, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_identity(self, msg):
        import os
        import tempfile

        table = TuningTable(system="s")
        table.add("allreduce", 4, msg, "nccl")
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "t.json")
            table.save(path)
            loaded = TuningTable.load(path)
        assert loaded.entries == table.entries


class TestCodecProperties:
    @given(
        rate=st.integers(4, 12),
        seed=st.integers(0, 2**16),
        n=st.integers(1, 1024),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantization_error_within_bound(self, rate, seed, n):
        codec = FixedRateCodec(rate_bits=rate)
        rng = np.random.default_rng(seed)
        data = (rng.normal(size=n) * 10).astype(np.float32)
        original = data.copy()
        codec.apply_quantization_error(data)
        pad = -(-n // BLOCK_ELEMS) * BLOCK_ELEMS
        padded = np.zeros(pad)
        padded[:n] = original
        blocks = padded.reshape(-1, BLOCK_ELEMS)
        bounds = np.abs(blocks).max(axis=1) * codec.max_relative_error() + 1e-6
        err_padded = np.zeros(pad)
        err_padded[:n] = np.abs(data - original)
        assert np.all(err_padded.reshape(-1, BLOCK_ELEMS) <= bounds[:, None])

    @given(nbytes=st.integers(4, 1 << 24), rate=st.integers(2, 16))
    @settings(max_examples=60, deadline=None)
    def test_compressed_always_smaller_for_fp32(self, nbytes, rate):
        codec = FixedRateCodec(rate_bits=rate)
        if rate <= 16:
            # payload bits + block scales must stay below 32 bits/elem
            assert codec.compressed_nbytes(nbytes) < nbytes + BLOCK_ELEMS * 4


class TestWireLaneProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.floats(0.0, 1000.0),
                st.floats(0.1, 500.0),
            ),
            min_size=1,
            max_size=20,
        ),
        interference=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_lane_tails_monotone_and_starts_admissible(self, ops, interference):
        store: dict = {}
        prev_tail = {"a": 0.0, "b": 0.0}
        for lane, ready, duration in ops:
            start = apply_wire_lane(store, lane, ready, duration, interference)
            assert start >= ready
            assert start >= prev_tail[lane]  # same-lane FIFO
            prev_tail[lane] = start + duration
            assert store[lane] == start + duration


class TestTracerProperties:
    @given(
        spans=st.lists(
            st.tuples(st.floats(0, 1000), st.floats(0.1, 100)),
            min_size=0,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_busy_time_bounds(self, spans):
        recs = [
            TraceRecord(0, "s", "x", "c", start, start + dur) for start, dur in spans
        ]
        tracer = Tracer()
        busy = tracer.busy_time(recs)
        total = sum(r.duration for r in recs)
        assert 0 <= busy <= total + 1e-9
        if recs:
            longest = max(r.duration for r in recs)
            assert busy >= longest - 1e-9
