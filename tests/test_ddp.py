"""DDP-style gradient synchronization (ext.ddp)."""

import numpy as np
import pytest

from repro.core import MCRCommunicator, MCRError
from repro.ext.ddp import DistributedDataParallel
from repro.sim import Simulator


def spmd(world, fn):
    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
        out = fn(ctx, comm)
        comm.finalize()
        return out

    return Simulator(world).run(main).rank_results


class TestBucketing:
    def test_reverse_order_greedy_fill(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl", bucket_bytes=40)
            for name, numel in [("a", 4), ("b", 4), ("c", 4)]:  # 16 B each
                ddp.register_parameter(name, ctx.zeros(numel))
            ddp.finalize_buckets()
            return ddp.bucket_layout()

        layout = spmd(2, fn)[0]
        # reverse registration order, two fit per 40-byte bucket
        assert layout == [["c", "b"], ["a"]]

    def test_num_buckets_single_when_small(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            ddp.register_parameter("w", ctx.zeros(16))
            ddp.finalize_buckets()
            return ddp.num_buckets

        assert spmd(2, fn)[0] == 1

    def test_duplicate_registration_rejected(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            ddp.register_parameter("w", ctx.zeros(4))
            with pytest.raises(MCRError, match="twice"):
                ddp.register_parameter("w", ctx.zeros(4))
            ddp.finalize_buckets()

        spmd(1, fn)

    def test_lifecycle_errors(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            with pytest.raises(MCRError, match="no parameters"):
                ddp.finalize_buckets()
            ddp.register_parameter("w", ctx.zeros(4))
            with pytest.raises(MCRError, match="finalize_buckets"):
                ddp.grad_ready("w")
            ddp.finalize_buckets()
            with pytest.raises(MCRError, match="register parameters after"):
                ddp.register_parameter("x", ctx.zeros(4))
            with pytest.raises(MCRError, match="unknown parameter"):
                ddp.grad_ready("nope")

        spmd(1, fn)


class TestReduction:
    def test_gradients_averaged_across_ranks(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            w = ctx.full(8, float(ctx.rank))
            b = ctx.full(4, float(ctx.rank * 10))
            ddp.register_parameter("w", w)
            ddp.register_parameter("b", b)
            ddp.finalize_buckets()
            ddp.grad_ready("b")
            ddp.grad_ready("w")
            ddp.wait_all()
            return (w.data.copy(), b.data.copy())

        results = spmd(4, fn)
        for w, b in results:
            assert np.allclose(w, (0 + 1 + 2 + 3) / 4)
            assert np.allclose(b, (0 + 10 + 20 + 30) / 4)

    def test_multiple_steps_reuse(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="mvapich2-gdr")
            w = ctx.zeros(4)
            ddp.register_parameter("w", w)
            ddp.finalize_buckets()
            values = []
            for step in range(3):
                w.fill_(float(ctx.rank + step))
                ddp.grad_ready("w")
                ddp.wait_all()
                values.append(float(w.data[0]))
            return values

        results = spmd(2, fn)
        assert results[0] == [0.5, 1.5, 2.5]

    def test_wait_with_missing_grad_rejected(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            ddp.register_parameter("w", ctx.zeros(4))
            ddp.register_parameter("v", ctx.zeros(4))
            ddp.finalize_buckets()
            ddp.grad_ready("w")
            with pytest.raises(MCRError, match="still missing"):
                ddp.wait_all()
            # finish the step so the job exits cleanly
            ddp.grad_ready("v")
            ddp.wait_all()

        spmd(2, fn)

    def test_double_ready_rejected(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            ddp.register_parameter("w", ctx.zeros(4))
            ddp.register_parameter("v", ctx.zeros(4))
            ddp.finalize_buckets()
            ddp.grad_ready("w")
            with pytest.raises(MCRError, match="ready twice"):
                ddp.grad_ready("w")
            ddp.grad_ready("v")
            ddp.wait_all()

        spmd(2, fn)

    def test_virtual_gradients_supported(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            ddp.register_parameter("big", ctx.virtual_tensor(1 << 22))
            ddp.finalize_buckets()
            ddp.grad_ready("big")
            ddp.wait_all()
            return ctx.now

        assert all(t > 0 for t in spmd(2, fn))


class TestOverlap:
    def test_early_buckets_reduce_during_backward(self):
        """Bucket 0 (last-registered params) should complete while later
        gradients are still being produced."""

        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl", bucket_bytes=64)
            first = ctx.zeros(16)
            last = ctx.zeros(16)
            ddp.register_parameter("first", first)
            ddp.register_parameter("last", last)
            ddp.finalize_buckets()
            assert ddp.num_buckets == 2
            ddp.grad_ready("last")  # bucket 0 posts immediately
            ctx.sleep(5_000.0)  # rest of backward
            t0 = ctx.now
            ddp.grad_ready("first")
            ddp.wait_all()
            # bucket 0 was long done; only bucket 1's latency is paid here
            return ctx.now - t0

        tail = spmd(2, fn)
        assert max(tail) < 4_000.0


class TestRecovery:
    """reset() rearms a step abandoned mid-backward (regression: a step
    that raised between grad_ready calls left buckets half-drained, so
    every retried grad_ready hit "marked ready twice")."""

    def test_reset_rearms_after_midstep_failure(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl", bucket_bytes=16)
            w = ctx.zeros(4)
            v = ctx.zeros(4)
            ddp.register_parameter("w", w)
            ddp.register_parameter("v", v)
            ddp.finalize_buckets()
            assert ddp.num_buckets == 2  # one param per bucket

            # step 1: "v" produced (its bucket posts), then the backward
            # raises before "w" — the step is abandoned
            v.fill_(99.0)
            ddp.grad_ready("v")
            ddp.reset()

            # retried step: without reset() this first call raises
            # "marked ready twice" for "v"
            w.fill_(float(ctx.rank))
            v.fill_(float(ctx.rank * 10))
            ddp.grad_ready("v")
            ddp.grad_ready("w")
            ddp.wait_all()
            return (w.data.copy(), v.data.copy())

        for w, v in spmd(4, fn):
            assert np.allclose(w, (0 + 1 + 2 + 3) / 4)
            assert np.allclose(v, (0 + 10 + 20 + 30) / 4)

    def test_retry_without_reset_still_rejected(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            ddp.register_parameter("w", ctx.zeros(4))
            ddp.register_parameter("v", ctx.zeros(4))
            ddp.finalize_buckets()
            ddp.grad_ready("v")
            with pytest.raises(MCRError, match="ready twice"):
                ddp.grad_ready("v")  # the pre-fix retry experience
            ddp.grad_ready("w")
            ddp.wait_all()

        spmd(2, fn)

    def test_reset_requires_finalized_buckets(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl")
            ddp.register_parameter("w", ctx.zeros(4))
            with pytest.raises(MCRError, match="finalize_buckets"):
                ddp.reset()
            ddp.finalize_buckets()
            ddp.reset()  # idle reset is a no-op

        spmd(1, fn)

    def test_reset_midflight_completes_posted_allreduce(self):
        def fn(ctx, comm):
            ddp = DistributedDataParallel(comm, backend="nccl", bucket_bytes=16)
            w = ctx.zeros(4)
            v = ctx.full(4, float(ctx.rank + 1))
            ddp.register_parameter("w", w)
            ddp.register_parameter("v", v)
            ddp.finalize_buckets()
            ddp.grad_ready("v")
            ddp.reset()  # must synchronize the in-flight bucket first
            # the abandoned step's allreduce still completed SPMD-wide
            return float(v.data[0])

        assert spmd(2, fn) == [1.5, 1.5]
