"""Dispatch plan cache (core/comm.py CommPlan, paper §V-E).

The contract under test: compiled plans make steady-state dispatch a
dict lookup (hit rate ~1 in a training loop), epoch invalidation
recompiles them on tuning-table installs, in-place table edits,
quarantines, and codec/synchronization changes, and — the load-bearing
property — a run with the cache force-disabled is byte-identical in
simulated time and data to the cached run, healthy or degraded.
"""

import numpy as np
import pytest

from repro.core import MCRCommunicator, MCRConfig
from repro.core.config import CompressionConfig
from repro.core.tuning import TuningTable
from repro.sim import Simulator
from repro.sim.faults import BackendFault, FaultSpec

BACKENDS = ["nccl", "mvapich2-gdr"]


def _run(main, world_size=2, **sim_kwargs):
    return Simulator(world_size, **sim_kwargs).run(main)


def _cfg(plan_cache=True, **kwargs):
    return MCRConfig(plan_cache=plan_cache, **kwargs)


class TestSteadyState:
    def test_one_miss_then_hits(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            x = ctx.virtual_tensor(1024)
            for _ in range(20):
                comm.all_reduce("nccl", x)
            stats = comm.plan_stats
            comm.finalize()
            return stats

        stats = _run(main).rank_results[0]
        assert stats["misses"] == 1
        assert stats["hits"] == 19
        assert stats["plans"] == 1
        assert stats["hit_rate"] == pytest.approx(19 / 20)

    def test_distinct_signatures_get_distinct_plans(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            small, large = ctx.virtual_tensor(256), ctx.virtual_tensor(65536)
            for _ in range(4):
                comm.all_reduce("nccl", small)
                comm.all_reduce("nccl", large)
                comm.all_reduce("mvapich2-gdr", small)
            stats = comm.plan_stats
            comm.finalize()
            return stats

        stats = _run(main).rank_results[0]
        assert stats["misses"] == 3
        assert stats["hits"] == 9
        assert stats["plans"] == 3

    def test_cached_and_uncached_identical(self):
        """The core claim: the cache never changes simulated results."""

        def job(plan_cache):
            def main(ctx):
                comm = MCRCommunicator(ctx, BACKENDS, config=_cfg(plan_cache))
                x = ctx.full(64, float(ctx.rank + 1))
                for i in range(6):
                    comm.all_reduce(BACKENDS[i % 2], x)
                comm.synchronize()
                comm.finalize()
                return ctx.now, x.data.copy()

            return _run(main, world_size=4)

        cached, uncached = job(True), job(False)
        assert cached.elapsed_us == uncached.elapsed_us
        for (tc, dc), (tu, du) in zip(cached.rank_results, uncached.rank_results):
            assert tc == tu
            assert np.array_equal(dc, du)

    def test_cache_off_never_hits(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS, config=_cfg(False))
            x = ctx.virtual_tensor(1024)
            for _ in range(5):
                comm.all_reduce("nccl", x)
            stats = comm.plan_stats
            comm.finalize()
            return stats

        stats = _run(main).rank_results[0]
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["plans"] == 0


class TestAutoDispatch:
    def _table(self, backend, ws=2):
        table = TuningTable()
        table.add("allreduce", ws, 4096, backend)
        return table

    def test_auto_plans_cache_and_pin_the_choice(self):
        table = self._table("mvapich2-gdr")

        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS, tuning_table=table)
            x = ctx.virtual_tensor(1024)
            for _ in range(10):
                comm.all_reduce("auto", x)
            stats = comm.plan_stats
            plans = list(comm._plans.values())
            comm.finalize()
            return stats, [p.resolved_name for p in plans]

        stats, resolved = _run(main).rank_results[0]
        assert stats == {
            "hits": 9, "misses": 1, "invalidations": 0,
            "plans": 1, "hit_rate": 0.9,
        }
        assert resolved == ["mvapich2-gdr"]

    def test_table_swap_recompiles(self):
        """Assigning a new table must re-resolve 'auto' plans."""
        first = self._table("nccl")
        second = self._table("mvapich2-gdr")

        def job(plan_cache):
            def main(ctx):
                comm = MCRCommunicator(
                    ctx, BACKENDS, config=_cfg(plan_cache), tuning_table=first
                )
                x = ctx.virtual_tensor(1024)
                picked = []
                for i in range(6):
                    if i == 3:
                        comm.tuning_table = second
                    comm.all_reduce("auto", x)
                    # the rendezvous sequence number reveals which backend
                    # actually carried each op
                    picked.append(dict(comm._seq))
                comm.finalize()
                return ctx.now, picked[-1]

            return _run(main)

        cached, uncached = job(True), job(False)
        t, seqs = cached.rank_results[0]
        assert seqs == {"nccl": 3, "mvapich2-gdr": 3}
        assert t == uncached.rank_results[0][0]

    def test_inplace_table_edit_recompiles(self):
        """add()/merge() bump the table generation; plans pinned on the
        old generation recompile without an explicit reinstall."""

        def main(ctx):
            # rank-local table: each rank edits its own copy, exactly one
            # generation bump per rank
            table = TuningTable()
            table.add("allreduce", 2, 4096, "nccl")
            comm = MCRCommunicator(ctx, BACKENDS, tuning_table=table)
            x = ctx.virtual_tensor(1024)
            for _ in range(3):
                comm.all_reduce("auto", x)
            table.add("allreduce", 2, 4096, "mvapich2-gdr")
            for _ in range(3):
                comm.all_reduce("auto", x)
            seqs = dict(comm._seq)
            stats = comm.plan_stats
            comm.finalize()
            return seqs, stats

        seqs, stats = _run(main).rank_results[0]
        assert seqs == {"nccl": 3, "mvapich2-gdr": 3}
        assert stats["misses"] == 2  # recompiled once after the edit

    def test_explicit_plans_survive_table_edits(self):
        """Plans that never consulted the table are not generation-pinned."""
        table = self._table("nccl")

        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS, tuning_table=table)
            x = ctx.virtual_tensor(1024)
            comm.all_reduce("nccl", x)
            table.add("allreduce", 2, 8192, "mvapich2-gdr")
            comm.all_reduce("nccl", x)
            stats = comm.plan_stats
            comm.finalize()
            return stats

        stats = _run(main).rank_results[0]
        assert stats == {
            "hits": 1, "misses": 1, "invalidations": 0,
            "plans": 1, "hit_rate": 0.5,
        }


class TestInvalidation:
    def test_quarantine_mid_run_identical_to_uncached(self):
        """A permanent fault quarantines mid-run; cached and uncached
        degraded runs must agree on timing and data."""
        spec = FaultSpec(
            backend_faults=(
                BackendFault(backend="nccl", kind="permanent", at_op=3),
            ),
        )

        def job(plan_cache):
            def main(ctx):
                comm = MCRCommunicator(ctx, BACKENDS, config=_cfg(plan_cache))
                x = ctx.full(32, float(ctx.rank + 1))
                for _ in range(6):
                    comm.all_reduce("nccl", x)
                    comm.synchronize()
                stats = comm.plan_stats
                comm.finalize()
                return ctx.now, x.data.copy(), stats

            return _run(main, world_size=2, faults=spec)

        cached, uncached = job(True), job(False)
        (tc, dc, stats), (tu, du, _) = (
            cached.rank_results[0], uncached.rank_results[0],
        )
        assert tc == tu
        assert np.array_equal(dc, du)
        assert stats["invalidations"] >= 1  # the quarantine bumped the epoch

    def test_codec_toggle_recompiles_and_matches_uncached(self):
        compression = CompressionConfig(enabled=True, rate_bits=8)

        def job(plan_cache):
            def main(ctx):
                comm = MCRCommunicator(ctx, BACKENDS, config=_cfg(plan_cache))
                x = ctx.virtual_tensor(262_144)
                for _ in range(3):
                    comm.all_reduce("nccl", x)
                comm.set_compression(compression)
                for _ in range(3):
                    comm.all_reduce("nccl", x)
                comm.set_compression(CompressionConfig(enabled=False))
                for _ in range(3):
                    comm.all_reduce("nccl", x)
                comm.synchronize()
                stats = comm.plan_stats
                comm.finalize()
                return ctx.now, stats

            return _run(main)

        cached, uncached = job(True), job(False)
        t, stats = cached.rank_results[0]
        assert t == uncached.rank_results[0][0]
        assert stats["misses"] == 3  # one compile per codec regime
        assert stats["hits"] == 6
        assert stats["invalidations"] == 2

    def test_compression_still_shortens_wire_time(self):
        """The codec arithmetic cached in plans still takes effect."""

        def job(compression):
            def main(ctx):
                comm = MCRCommunicator(
                    ctx, BACKENDS,
                    config=MCRConfig(compression=compression),
                )
                x = ctx.virtual_tensor(1 << 20)
                for _ in range(4):
                    comm.all_reduce("nccl", x)
                comm.synchronize()
                comm.finalize()
                return ctx.now

            return _run(main).rank_results[0]

        plain = job(CompressionConfig(enabled=False))
        packed = job(CompressionConfig(enabled=True, rate_bits=8))
        assert packed < plain

    def test_synchronization_switch_recompiles(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            x = ctx.virtual_tensor(1024)
            comm.all_reduce("nccl", x)
            stream_plan = next(iter(comm._plans.values())).stream_kind
            comm.set_synchronization("naive")
            comm.all_reduce("nccl", x)
            naive_plan = next(iter(comm._plans.values())).stream_kind
            comm.synchronize()
            comm.finalize()
            return stream_plan, naive_plan

        stream_plan, naive_plan = _run(main).rank_results[0]
        # both post to a stream, but only because naive forces the
        # default stream; what matters is the plan was recompiled
        assert stream_plan is True and naive_plan is True

    def test_manual_invalidate_clears_plans(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            x = ctx.virtual_tensor(1024)
            comm.all_reduce("nccl", x)
            before = len(comm._plans)
            comm.invalidate_plans("test")
            after = len(comm._plans)
            comm.all_reduce("nccl", x)
            stats = comm.plan_stats
            comm.finalize()
            return before, after, stats

        before, after, stats = _run(main).rank_results[0]
        assert (before, after) == (1, 0)
        assert stats["misses"] == 2
        assert stats["invalidations"] == 1


class TestRendezvousSequencing:
    def test_mixed_families_stay_matched(self):
        """Sequence numbers are keyed per backend only; an SPMD program
        mixing op families on one backend must rendezvous correctly."""

        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            p = comm.world_size
            x = ctx.full(8, float(ctx.rank + 1))
            gathered = ctx.zeros(8 * p)
            for _ in range(3):
                comm.all_reduce("nccl", x)
                comm.all_gather("nccl", gathered, x)
                comm.bcast("nccl", x, root=1)
                comm.barrier("mvapich2-gdr")
            comm.synchronize()
            comm.finalize()
            return x.data.copy(), gathered.data.copy()

        results = _run(main, world_size=4).rank_results
        for x, gathered in results:
            assert np.array_equal(x, results[0][0])
            assert np.array_equal(gathered, results[0][1])

    def test_family_mismatch_still_detected(self):
        """Matching by backend sequence must still catch asymmetric
        programs through the rendezvous meta check."""
        from repro.core import ValidationError

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            x = ctx.zeros(8)
            if ctx.rank == 0:
                comm.all_reduce("nccl", x)
            else:
                comm.bcast("nccl", x)
            comm.finalize()

        with pytest.raises(ValidationError, match="collective mismatch"):
            _run(main)


class TestObservability:
    def test_plan_counters_flow_into_registry(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            x = ctx.virtual_tensor(1024)
            for _ in range(5):
                comm.all_reduce("nccl", x)
            comm.invalidate_plans("test")
            comm.all_reduce("nccl", x)
            comm.synchronize()
            comm.finalize()  # flushes plan stats into the registry
            return ctx.now

        world = 2
        sim = Simulator(world, observe=True)
        sim.run(main)
        counters = sim.observer.counters
        assert counters["comm.plan.hit"] == 4 * world
        assert counters["comm.plan.miss"] == 2 * world
        assert counters["comm.plan.invalidate"] == 1 * world

    def test_no_events_when_observability_off(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            x = ctx.virtual_tensor(1024)
            comm.all_reduce("nccl", x)
            comm.finalize()
            return ctx.now

        _run(main)  # must not raise: no registry installed


class TestVectoredCollectives:
    """Vectored ops (gatherv/scatterv/all_gatherv/all_to_allv) through
    the plan cache and fault failover — their plan keys carry the
    vector flag, count vectors change nbytes, and a quarantined backend
    reroutes them like any flat collective."""

    def _vectored_round(self, ctx, comm, backend):
        x = ctx.full(4, float(ctx.rank + 1))
        pair = ctx.zeros(8)
        comm.gatherv(backend, x, pair if ctx.rank == 0 else None, rcounts=[4, 4])
        comm.scatterv(backend, x, pair if ctx.rank == 0 else None, scounts=[4, 4])
        comm.all_gatherv(backend, pair, x, rcounts=[4, 4])
        comm.all_to_allv(backend, pair, pair, scounts=[4, 4], rcounts=[4, 4])
        comm.synchronize()
        return x, pair

    def test_steady_state_hits_per_family(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            for _ in range(5):
                self._vectored_round(ctx, comm, "nccl")
            stats = comm.plan_stats
            comm.finalize()
            return stats

        stats = _run(main).rank_results[0]
        assert stats["misses"] == 4  # one plan per vectored family
        assert stats["hits"] == 16
        assert stats["plans"] == 4

    def test_count_vector_change_is_a_new_plan(self):
        """nbytes derives from the count vectors, so a resized gatherv
        must compile a fresh plan, not reuse the old one."""

        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            small = ctx.full(2, 1.0)
            big = ctx.full(6, 1.0)
            out_s = ctx.zeros(4) if ctx.rank == 0 else None
            out_b = ctx.zeros(12) if ctx.rank == 0 else None
            for _ in range(3):
                comm.gatherv("nccl", small, out_s, rcounts=[2, 2])
                comm.gatherv("nccl", big, out_b, rcounts=[6, 6])
            comm.synchronize()
            stats = comm.plan_stats
            comm.finalize()
            return stats

        stats = _run(main).rank_results[0]
        assert stats["plans"] == 2
        assert stats["misses"] == 2
        assert stats["hits"] == 4

    def test_cached_and_uncached_identical(self):
        """Byte identity for the vectored families: simulated time and
        real data must not move when the cache is disabled."""

        def job(plan_cache):
            def main(ctx):
                comm = MCRCommunicator(ctx, BACKENDS, config=_cfg(plan_cache))
                data = []
                for i in range(3):
                    backend = BACKENDS[i % 2]
                    x, pair = self._vectored_round(ctx, comm, backend)
                    data.append((x.data.copy(), pair.data.copy()))
                stats = comm.plan_stats
                comm.finalize()
                return ctx.now, data, stats

            return _run(main, world_size=2)

        cached, uncached = job(True), job(False)
        assert cached.elapsed_us == uncached.elapsed_us
        for (tc, dc, stats), (tu, du, _) in zip(
            cached.rank_results, uncached.rank_results
        ):
            assert tc == tu
            for (xc, pc), (xu, pu) in zip(dc, du):
                assert np.array_equal(xc, xu)
                assert np.array_equal(pc, pu)
        assert cached.rank_results[0][2]["hits"] > 0
        assert uncached.rank_results[0][2]["hits"] == 0

    def test_permanent_fault_fails_over_with_correct_data(self):
        """A mid-run quarantine reroutes vectored ops to the survivor;
        the rerouted all_gatherv still delivers every rank's shard, and
        cached/uncached degraded runs agree."""
        spec = FaultSpec(
            backend_faults=(
                BackendFault(backend="nccl", kind="permanent", at_op=2),
            ),
        )

        def job(plan_cache):
            def main(ctx):
                comm = MCRCommunicator(ctx, BACKENDS, config=_cfg(plan_cache))
                out = None
                for _ in range(4):
                    x = ctx.full(2, float(ctx.rank + 1))
                    out = ctx.zeros(4)
                    comm.all_gatherv("nccl", out, x, rcounts=[2, 2])
                    comm.synchronize()
                stats = comm.plan_stats
                quarantined = sorted(comm._quarantined)
                comm.finalize()
                return ctx.now, out.data.copy(), stats, quarantined

            return _run(main, world_size=2, faults=spec)

        cached, uncached = job(True), job(False)
        for res in (cached, uncached):
            for _, data, _, quarantined in res.rank_results:
                assert np.array_equal(data, [1, 1, 2, 2])
                assert quarantined == ["nccl"]
        (tc, dc, stats, _), (tu, du, _, _) = (
            cached.rank_results[0], uncached.rank_results[0],
        )
        assert tc == tu
        assert np.array_equal(dc, du)
        assert stats["invalidations"] >= 1
