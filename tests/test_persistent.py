"""Persistent collectives (ext.persistent, paper §V-E future work)."""

import numpy as np
import pytest

from repro.core import MCRCommunicator, MCRError
from repro.ext.persistent import PersistentCollective
from repro.sim import Simulator


class TestSemantics:
    def test_repeated_starts_correct_data(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            x = ctx.full(8, 1.0)
            op = PersistentCollective(comm, "all_reduce", "nccl", x)
            values = []
            for _ in range(3):
                x.fill_(1.0)
                h = op.start()
                h.synchronize()
                values.append(float(x.data[0]))
            comm.finalize()
            return values

        results = Simulator(2).run(main).rank_results
        assert results[0] == [2.0, 2.0, 2.0]

    def test_start_counter(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            op = PersistentCollective(comm, "all_reduce", "nccl", ctx.zeros(4))
            for _ in range(5):
                op.start().synchronize()
            comm.finalize()
            return op.starts

        assert Simulator(2).run(main).rank_results[0] == 5

    def test_vectored_persistent(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            p = ctx.world_size
            out = ctx.zeros(p)
            inp = ctx.full(1, float(ctx.rank))
            op = PersistentCollective(
                comm, "all_gatherv", "mvapich2-gdr", out, inp, rcounts=[1] * p
            )
            op.start().synchronize()
            comm.finalize()
            return out.data.copy()

        results = Simulator(3).run(main).rank_results
        assert np.array_equal(results[0], [0, 1, 2])

    def test_unknown_op_rejected(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            PersistentCollective(comm, "barrier", "nccl")

        with pytest.raises(MCRError, match="persistent"):
            Simulator(1).run(main)

    def test_bad_backend_fails_at_init(self):
        from repro.core import BackendError

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            PersistentCollective(comm, "all_reduce", "gloo", ctx.zeros(4))

        with pytest.raises(BackendError):
            Simulator(1).run(main)

    def test_async_kwarg_rejected(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            PersistentCollective(comm, "all_reduce", "nccl", ctx.zeros(4), async_op=True)

        with pytest.raises(MCRError, match="always started async"):
            Simulator(1).run(main)


class TestPerformance:
    def test_persistent_cheaper_than_regular(self):
        n_ops = 32

        def run(persistent: bool):
            def main(ctx):
                comm = MCRCommunicator(ctx, ["nccl"])
                x = ctx.zeros(64)
                if persistent:
                    op = PersistentCollective(comm, "all_reduce", "nccl", x)
                    handles = [op.start() for _ in range(n_ops)]
                else:
                    handles = [
                        comm.all_reduce("nccl", x, async_op=True) for _ in range(n_ops)
                    ]
                for h in handles:
                    h.synchronize()
                comm.finalize()
                return ctx.now

            return max(Simulator(2).run(main).rank_results)

        assert run(True) < run(False)

    def test_discount_does_not_leak(self):
        """After start(), regular ops pay the full dispatch cost again."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            op = PersistentCollective(comm, "all_reduce", "nccl", ctx.zeros(4))
            op.start().synchronize()
            t0 = ctx.now
            comm.all_reduce("nccl", ctx.zeros(4), async_op=True).synchronize()
            full_cost = ctx.now - t0
            t1 = ctx.now
            op.start().synchronize()
            persistent_cost = ctx.now - t1
            comm.finalize()
            return full_cost, persistent_cost

        full, persistent = Simulator(2).run(main).rank_results[0]
        assert persistent < full
