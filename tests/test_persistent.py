"""Persistent collectives (ext.persistent, paper §V-E future work)."""

import numpy as np
import pytest

from repro.core import MCRCommunicator, MCRError
from repro.ext.persistent import PersistentCollective
from repro.sim import Simulator


class TestSemantics:
    def test_repeated_starts_correct_data(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            x = ctx.full(8, 1.0)
            op = PersistentCollective(comm, "all_reduce", "nccl", x)
            values = []
            for _ in range(3):
                x.fill_(1.0)
                h = op.start()
                h.synchronize()
                values.append(float(x.data[0]))
            comm.finalize()
            return values

        results = Simulator(2).run(main).rank_results
        assert results[0] == [2.0, 2.0, 2.0]

    def test_start_counter(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            op = PersistentCollective(comm, "all_reduce", "nccl", ctx.zeros(4))
            for _ in range(5):
                op.start().synchronize()
            comm.finalize()
            return op.starts

        assert Simulator(2).run(main).rank_results[0] == 5

    def test_vectored_persistent(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            p = ctx.world_size
            out = ctx.zeros(p)
            inp = ctx.full(1, float(ctx.rank))
            op = PersistentCollective(
                comm, "all_gatherv", "mvapich2-gdr", out, inp, rcounts=[1] * p
            )
            op.start().synchronize()
            comm.finalize()
            return out.data.copy()

        results = Simulator(3).run(main).rank_results
        assert np.array_equal(results[0], [0, 1, 2])

    def test_unknown_op_rejected(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            PersistentCollective(comm, "barrier", "nccl")

        with pytest.raises(MCRError, match="persistent"):
            Simulator(1).run(main)

    def test_bad_backend_fails_at_init(self):
        from repro.core import BackendError

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            PersistentCollective(comm, "all_reduce", "gloo", ctx.zeros(4))

        with pytest.raises(BackendError):
            Simulator(1).run(main)

    def test_async_kwarg_rejected(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            PersistentCollective(comm, "all_reduce", "nccl", ctx.zeros(4), async_op=True)

        with pytest.raises(MCRError, match="always started async"):
            Simulator(1).run(main)


class TestPlanPinning:
    def test_plan_compiled_at_init(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            op = PersistentCollective(comm, "all_reduce", "nccl", ctx.zeros(4))
            stats = comm.plan_stats
            comm.finalize()
            return stats["plans"], op.plan.resolved_name

        plans, resolved = Simulator(2).run(main).rank_results[0]
        assert plans == 1
        assert resolved == "nccl"

    def test_pinned_plan_recompiles_after_table_swap(self):
        from repro.core.tuning import TuningTable

        first = TuningTable()
        first.add("allreduce", 2, 4096, "nccl")
        second = TuningTable()
        second.add("allreduce", 2, 4096, "mvapich2-gdr")

        def main(ctx):
            comm = MCRCommunicator(
                ctx, ["nccl", "mvapich2-gdr"], tuning_table=first
            )
            op = PersistentCollective(comm, "all_reduce", "auto", ctx.zeros(1024))
            before = op.plan.resolved_name
            op.start().synchronize()
            comm.tuning_table = second
            after = op.plan.resolved_name
            op.start().synchronize()
            seqs = dict(comm._seq)
            comm.finalize()
            return before, after, seqs

        before, after, seqs = Simulator(2).run(main).rank_results[0]
        assert before == "nccl"
        assert after == "mvapich2-gdr"
        assert seqs == {"nccl": 1, "mvapich2-gdr": 1}

    def test_failed_start_does_not_discount_subsequent_ops(self):
        """A start() that raises must not leak its dispatch discount
        into later non-persistent operations (the old global
        ``_persistent_scale`` did exactly that when start raised)."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            x = ctx.zeros(4)
            op = PersistentCollective(comm, "all_reduce", "nccl", x)
            op.start().synchronize()
            t0 = ctx.now
            comm.all_reduce("nccl", x, async_op=True).synchronize()
            cost_before = ctx.now - t0
            # force the next start to raise mid-dispatch
            comm._finalized = True
            try:
                op.start()
            except MCRError:
                pass
            finally:
                comm._finalized = False
            t1 = ctx.now
            comm.all_reduce("nccl", x, async_op=True).synchronize()
            cost_after = ctx.now - t1
            t2 = ctx.now
            op.start().synchronize()
            persistent_cost = ctx.now - t2
            comm.finalize()
            return cost_before, cost_after, persistent_cost

        before, after, persistent = Simulator(2).run(main).rank_results[0]
        # full price both times (tight tolerance: clock-subtraction float
        # noise only — a leaked 0.25x discount would shift this by ~1us)
        assert after == pytest.approx(before, rel=1e-9)
        assert persistent < before


class TestPerformance:
    def test_persistent_cheaper_than_regular(self):
        n_ops = 32

        def run(persistent: bool):
            def main(ctx):
                comm = MCRCommunicator(ctx, ["nccl"])
                x = ctx.zeros(64)
                if persistent:
                    op = PersistentCollective(comm, "all_reduce", "nccl", x)
                    handles = [op.start() for _ in range(n_ops)]
                else:
                    handles = [
                        comm.all_reduce("nccl", x, async_op=True) for _ in range(n_ops)
                    ]
                for h in handles:
                    h.synchronize()
                comm.finalize()
                return ctx.now

            return max(Simulator(2).run(main).rank_results)

        assert run(True) < run(False)

    def test_discount_does_not_leak(self):
        """After start(), regular ops pay the full dispatch cost again."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            op = PersistentCollective(comm, "all_reduce", "nccl", ctx.zeros(4))
            op.start().synchronize()
            t0 = ctx.now
            comm.all_reduce("nccl", ctx.zeros(4), async_op=True).synchronize()
            full_cost = ctx.now - t0
            t1 = ctx.now
            op.start().synchronize()
            persistent_cost = ctx.now - t1
            comm.finalize()
            return full_cost, persistent_cost

        full, persistent = Simulator(2).run(main).rank_results[0]
        assert persistent < full
