"""RankContext: tensor factories, time primitives, device identity."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.tensor import float64, int64


def run1(fn):
    return Simulator(1).run(fn).rank_results[0]


class TestTensorFactories:
    def test_factories_on_rank_device(self):
        def main(ctx):
            tensors = [
                ctx.zeros(4), ctx.ones(4), ctx.full(4, 2.0), ctx.arange(4),
                ctx.rand(4), ctx.tensor([1, 2, 3]), ctx.virtual_tensor(100),
            ]
            return all(t.device.kind == "cuda" and t.device.index == ctx.rank for t in tensors)

        assert run1(main)

    def test_values(self):
        def main(ctx):
            return (
                float(ctx.zeros(2).data[0]),
                float(ctx.ones(2).data[0]),
                float(ctx.full(2, 7.5).data[0]),
                list(ctx.arange(3).data),
                list(ctx.tensor([4, 5]).data),
            )

        z, o, f, a, t = run1(main)
        assert (z, o, f) == (0.0, 1.0, 7.5)
        assert a == [0, 1, 2]
        assert t == [4, 5]

    def test_dtype_parameter(self):
        def main(ctx):
            return (
                ctx.zeros(2, dtype=float64).dtype.name,
                ctx.tensor([1], dtype=int64).dtype.name,
            )

        assert run1(main) == ("float64", "int64")

    def test_rand_in_unit_interval(self):
        def main(ctx):
            data = ctx.rand(256).data
            return float(data.min()), float(data.max())

        lo, hi = run1(main)
        assert 0 <= lo and hi < 1

    def test_devices_distinct_per_rank(self):
        res = Simulator(3).run(lambda ctx: str(ctx.device))
        assert res.rank_results == ["cuda:0", "cuda:1", "cuda:2"]


class TestTimePrimitives:
    def test_now_advances_with_sleep(self):
        def main(ctx):
            t0 = ctx.now
            ctx.sleep(123.0)
            return ctx.now - t0

        assert run1(main) == 123.0

    def test_launch_charges_launch_overhead_only(self):
        def main(ctx):
            t0 = ctx.now
            ctx.launch(10_000.0)
            return ctx.now - t0

        host_cost = run1(main)
        assert host_cost < 100.0  # async: host pays the launch, not the kernel

    def test_flags_roundtrip(self):
        def main(ctx):
            f = ctx.new_flag("x")
            f.fire(ctx.now + 50.0)
            ctx.wait_flag(f)
            return ctx.now

        assert run1(main) == 50.0

    def test_named_streams_are_cached(self):
        def main(ctx):
            return ctx.stream("a") is ctx.stream("a")

        assert run1(main)

    def test_shared_dict_is_cross_rank(self):
        def main(ctx):
            ctx.shared.setdefault("seen", []).append(ctx.rank)
            from repro.core import MCRCommunicator

            comm = MCRCommunicator(ctx, ["nccl"])
            comm.barrier()
            comm.finalize()
            return sorted(ctx.shared["seen"])

        res = Simulator(3).run(main)
        assert res.rank_results[0] == [0, 1, 2]
