"""The comm-core layering contract (docs/INTERNALS.md §15).

Two halves:

* the real tree is clean — op surface → dispatch/op-table → execution
  only, extensions hold a :class:`~repro.core.protocols.CommCore`, and
  ``core/comm.py`` stays an op-surface-sized module;
* the lint itself works — ``scripts/check_imports.py`` run against a
  copied tree with an injected violation actually fails, so a green CI
  step means something.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

sys.path.insert(0, str(REPO / "scripts"))
from check_imports import check  # noqa: E402

from repro.core import MCRCommunicator  # noqa: E402
from repro.core.protocols import CommCore  # noqa: E402
from repro.sim import Simulator  # noqa: E402


def _copy_tree(tmp_path: Path) -> Path:
    root = tmp_path / "src"
    shutil.copytree(SRC, root)
    return root


class TestRealTree:
    def test_clean(self):
        assert check(SRC) == []

    def test_cli_exit_status(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "check_imports.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_comm_is_op_surface_sized(self):
        # acceptance: core/comm.py shrinks to the op-surface layer only
        n = len((SRC / "repro" / "core" / "comm.py").read_text().splitlines())
        assert n < 800, f"core/comm.py is {n} lines — op surface only"

    def test_ci_runs_the_lint(self):
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        assert "scripts/check_imports.py" in ci

    def test_communicator_satisfies_protocol(self):
        # runtime_checkable protocols verify method presence; attribute
        # members need an instance, so build one inside the simulator
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"])
            assert isinstance(comm, CommCore)
            for attr in ("_shared", "_quarantined", "_fault_counters", "_phase_tag"):
                assert hasattr(comm, attr)
            comm.finalize()

        Simulator(2).run(main)


class TestInjectedViolations:
    def test_injected_cycle_fails(self, tmp_path):
        root = _copy_tree(tmp_path)
        target = root / "repro" / "core" / "rendezvous.py"
        target.write_text(
            "from repro.core.comm import MCRCommunicator  # injected\n"
            + target.read_text()
        )
        violations = check(root)
        assert any("cycle" in v for v in violations), violations
        assert any("layer violation" in v for v in violations), violations

    def test_lower_layer_importing_up_fails_even_without_cycle(self, tmp_path):
        root = _copy_tree(tmp_path)
        target = root / "repro" / "core" / "protocols.py"
        target.write_text(
            target.read_text() + "\nfrom repro.core.dispatch import CommPlan\n"
        )
        violations = check(root)
        assert any(
            "repro.core.protocols" in v and "repro.core.dispatch" in v
            for v in violations
        ), violations

    def test_type_checking_layer_edge_fails(self, tmp_path):
        # the cycle-papering idiom is banned inside the core even when
        # guarded: a TYPE_CHECKING edge upward is still a layer breach
        root = _copy_tree(tmp_path)
        target = root / "repro" / "core" / "dispatch.py"
        target.write_text(
            target.read_text()
            + "\nfrom typing import TYPE_CHECKING\n"
            + "if TYPE_CHECKING:\n    from repro.core.comm import MCRCommunicator\n"
        )
        violations = check(root)
        assert any("TYPE_CHECKING import of repro.core.comm" in v for v in violations)

    def test_ext_importing_concrete_class_fails(self, tmp_path):
        root = _copy_tree(tmp_path)
        target = root / "repro" / "ext" / "fusion.py"
        target.write_text(
            "from repro.core.comm import MCRCommunicator  # injected\n"
            + target.read_text()
        )
        violations = check(root)
        assert any(
            "repro.ext.fusion" in v and "CommCore" in v for v in violations
        ), violations

    def test_framework_function_local_import_fails(self, tmp_path):
        root = _copy_tree(tmp_path)
        target = root / "repro" / "frameworks" / "horovod.py"
        target.write_text(
            target.read_text()
            + "\ndef _sneaky():\n    from repro.core.comm import MCRCommunicator\n"
            + "    return MCRCommunicator\n"
        )
        violations = check(root)
        assert any("function-local import of repro.core.comm" in v for v in violations)

    def test_deferred_import_outside_core_fails(self, tmp_path):
        # bench/ may construct the concrete class, but only via a
        # top-level import — deferred imports were the cycle-papering
        # idiom and stay banned everywhere outside repro/core/
        root = _copy_tree(tmp_path)
        target = root / "repro" / "bench" / "microbench.py"
        target.write_text(
            target.read_text()
            + "\ndef _lazy():\n    from repro.core.comm import MCRCommunicator\n"
            + "    return MCRCommunicator\n"
        )
        violations = check(root)
        assert any("function-local import of repro.core.comm" in v for v in violations)

    def test_cli_fails_on_dirty_tree(self, tmp_path):
        root = _copy_tree(tmp_path)
        target = root / "repro" / "core" / "op_table.py"
        target.write_text(
            "import repro.core.dispatch  # injected\n" + target.read_text()
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "scripts" / "check_imports.py"),
                "--src",
                str(root),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "layer violation" in proc.stderr


@pytest.mark.parametrize(
    "module, banned",
    [
        ("repro.core.rendezvous", ("repro.core.dispatch", "repro.core.comm")),
        ("repro.core.dispatch", ("repro.core.comm", "repro.core.op_table")),
        ("repro.core.op_table", ("repro.core.comm", "repro.core.dispatch")),
        ("repro.core.protocols", ("repro.core.comm", "repro.core.rendezvous")),
    ],
)
def test_layer_modules_do_not_import_upward(module, banned):
    import importlib

    mod = importlib.import_module(module)
    py = Path(mod.__file__).read_text()
    for target in banned:
        assert f"from {target} import" not in py and f"import {target}" not in py
