"""Collective algorithm cost models: formulas, monotonicity, edge cases."""

import pytest

from repro.backends.cost import (
    ALGORITHMS,
    CostParams,
    binomial_broadcast,
    bruck_alltoall,
    evaluate,
    p2p_alltoall,
    pairwise_alltoall,
    recursive_doubling_allreduce,
    ring_allgather,
    ring_allreduce,
    tree_allreduce,
)


def params(p=8, n=1 << 20, alpha=2.0, beta=1e-4):
    return CostParams(alpha_us=alpha, beta_us_per_byte=beta, p=p, n=n)


class TestFormulas:
    def test_ring_allreduce_formula(self):
        c = params(p=4, n=1000, alpha=1.0, beta=0.001)
        # 2(p-1) alpha + 2n(p-1)/p beta + n gamma
        expected = 6 * 1.0 + 2 * 1000 * 0.75 * 0.001 + 1000 * c.gamma_us_per_byte
        assert ring_allreduce(c) == pytest.approx(expected)

    def test_recursive_doubling_formula(self):
        c = params(p=8, n=100, alpha=1.0, beta=0.01)
        expected = 3 * (1.0 + 100 * 0.01) + 100 * c.gamma_us_per_byte
        assert recursive_doubling_allreduce(c) == pytest.approx(expected)

    def test_binomial_broadcast_formula(self):
        c = params(p=8, n=100, alpha=2.0, beta=0.01)
        assert binomial_broadcast(c) == pytest.approx(3 * (2.0 + 1.0))

    def test_ring_allgather_receives_p_minus_1_chunks(self):
        c = params(p=4, n=1000, alpha=0.0, beta=0.001)
        assert ring_allgather(c) == pytest.approx(3 * 1000 * 0.001)

    def test_single_rank_collectives_are_free(self):
        c = params(p=1)
        for name, fn in ALGORITHMS.items():
            if name in ("p2p_send",):
                continue
            assert fn(CostParams(2.0, 1e-4, 1, 100)) == 0.0, name

    def test_non_power_of_two_p(self):
        # log terms must use ceil, not crash or undercount
        c = params(p=6, n=1024)
        assert recursive_doubling_allreduce(c) > recursive_doubling_allreduce(
            params(p=4, n=1024)
        )


class TestRelativeBehaviour:
    def test_ring_beats_rd_for_large_messages(self):
        big = params(p=16, n=64 << 20)
        assert ring_allreduce(big) < recursive_doubling_allreduce(big)

    def test_rd_beats_ring_for_small_messages(self):
        small = params(p=16, n=256)
        assert recursive_doubling_allreduce(small) < ring_allreduce(small)

    def test_tree_between_rd_and_ring_for_medium(self):
        mid = params(p=64, n=1 << 20)
        assert tree_allreduce(mid) < ring_allreduce(mid)

    def test_bruck_beats_pairwise_small(self):
        small = params(p=32, n=32 * 64)  # 64B per pair
        assert bruck_alltoall(small) < pairwise_alltoall(small)

    def test_pairwise_beats_bruck_large(self):
        large = params(p=32, n=32 << 20)
        assert pairwise_alltoall(large) < bruck_alltoall(large)

    def test_p2p_alltoall_pays_per_peer_latency(self):
        c = params(p=64, n=64 * 1024)
        assert p2p_alltoall(c) > pairwise_alltoall(c)

    def test_costs_increase_with_message_size(self):
        for name, fn in ALGORITHMS.items():
            if name in ("dissemination_barrier",):
                continue
            small = fn(params(p=8, n=1024))
            large = fn(params(p=8, n=1 << 20))
            assert large >= small, name

    def test_costs_increase_with_scale(self):
        for name, fn in ALGORITHMS.items():
            if name == "p2p_send":
                continue
            p8 = fn(params(p=8))
            p64 = fn(params(p=64))
            assert p64 >= p8, name


class TestEvaluate:
    def test_known_algorithm(self):
        assert evaluate("ring_allreduce", params()) > 0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown collective algorithm"):
            evaluate("quantum_allreduce", params())

    def test_registry_complete(self):
        # every algorithm a backend can name must be priceable
        from repro.backends import available_backends, create_backend
        from repro.backends.ops import OpFamily
        from repro.cluster import generic_cluster

        sys = generic_cluster()
        for name in available_backends():
            backend = create_backend(name, 0, 8, sys)
            for family in OpFamily:
                if family is OpFamily.BARRIER:
                    continue
                for nbytes in (256, 1 << 20):
                    algo = backend.algorithm_for(family, nbytes, 8)
                    assert algo in ALGORITHMS, (name, family, algo)
