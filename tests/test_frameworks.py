"""Baseline frameworks (Table I): capability gaps and overhead profiles."""

import numpy as np
import pytest

from repro.frameworks import (
    FEATURE_MATRIX,
    HorovodLike,
    Mpi4pyLike,
    TorchDistributed,
    feature_table_rows,
)
from repro.frameworks.horovod import UnsupportedOpError as HvdUnsupported
from repro.frameworks.torch_dist import UnsupportedOpError as TorchUnsupported
from repro.sim import DeadlockError, Simulator


class TestTorchDistributed:
    def test_basic_collectives_work(self):
        def main(ctx):
            dist = TorchDistributed(ctx, "nccl")
            x = ctx.full(8, float(ctx.rank + 1))
            dist.all_reduce(x)
            dist.synchronize()
            value = float(x.data[0])
            dist.finalize()
            return value

        assert Simulator(2).run(main).rank_results == [3.0, 3.0]

    def test_no_vectored_collectives(self):
        def main(ctx):
            dist = TorchDistributed(ctx, "nccl")
            with pytest.raises(TorchUnsupported, match="vectored"):
                dist.gatherv()
            with pytest.raises(TorchUnsupported):
                dist.all_to_allv()
            dist.finalize()

        Simulator(1).run(main)

    def test_nonblocking_nccl_only(self):
        def main(ctx):
            dist = TorchDistributed(ctx, "mvapich2-gdr")
            with pytest.raises(TorchUnsupported, match="NCCL backend only"):
                dist.all_reduce(ctx.zeros(4), async_op=True)
            dist.finalize()

        Simulator(1).run(main)

    def test_nonblocking_allowed_on_nccl(self):
        def main(ctx):
            dist = TorchDistributed(ctx, "nccl")
            h = dist.all_reduce(ctx.zeros(4), async_op=True)
            h.synchronize()
            dist.finalize()

        Simulator(2).run(main)

    def test_higher_dispatch_cost_than_mcr(self):
        from repro.frameworks.torch_dist import TORCH_DISPATCH_OVERHEAD_US
        from repro.core import MCRConfig

        assert TORCH_DISPATCH_OVERHEAD_US > MCRConfig().dispatch_overhead_us


class TestHorovod:
    def test_allreduce_averages_and_fuses(self):
        def main(ctx):
            hvd = HorovodLike(ctx, "nccl")
            x = ctx.full(8, float(ctx.rank))  # ranks 0,1 -> avg 0.5
            h = hvd.allreduce(x)
            hvd.flush()
            h.synchronize()
            value = float(x.data[0])
            hvd.finalize()
            return value

        assert Simulator(2).run(main).rank_results == [0.5, 0.5]

    def test_no_p2p_or_alltoall(self):
        def main(ctx):
            hvd = HorovodLike(ctx, "nccl")
            with pytest.raises(HvdUnsupported):
                hvd.send()
            with pytest.raises(HvdUnsupported):
                hvd.alltoall()
            with pytest.raises(HvdUnsupported):
                hvd.gatherv()
            hvd.finalize()

        Simulator(1).run(main)

    def test_experimental_mixing_can_deadlock(self):
        """Table I: Horovod's mixed mode has no deadlock avoidance."""

        def main(ctx):
            hvd = HorovodLike(ctx, "nccl", experimental_mixed=["mvapich2-gdr"])
            x = ctx.virtual_tensor(1 << 18)
            y = ctx.virtual_tensor(1 << 18)
            if ctx.rank % 2 == 0:
                hvd._comm.all_reduce("nccl", x)
                hvd._comm.all_reduce("mvapich2-gdr", y)
            else:
                hvd._comm.all_reduce("mvapich2-gdr", y)
                hvd._comm.all_reduce("nccl", x)
            hvd.finalize()

        with pytest.raises(DeadlockError):
            Simulator(2).run(main)

    def test_fusion_stats_exposed(self):
        def main(ctx):
            hvd = HorovodLike(ctx, "nccl")
            for _ in range(4):
                hvd.allreduce(ctx.zeros(16))
            hvd.flush()
            stats = hvd.fusion_stats
            hvd.finalize()
            return stats["fused_tensors"]

        assert Simulator(2).run(main).rank_results[0] == 4


class TestMpi4py:
    def test_full_mpi_surface_including_vectored(self):
        def main(ctx):
            mpi = Mpi4pyLike(ctx)
            p = mpi.Get_size()
            x = ctx.full(2, float(ctx.rank))
            out = ctx.zeros(2 * p)
            mpi.Allgatherv(out, x, rcounts=[2] * p, displs=[2 * r for r in range(p)])
            mpi.Barrier()
            value = out.data.copy()
            mpi.finalize()
            return value

        results = Simulator(2).run(main).rank_results
        assert np.array_equal(results[0], [0, 0, 1, 1])

    def test_rank_size(self):
        def main(ctx):
            mpi = Mpi4pyLike(ctx)
            info = (mpi.Get_rank(), mpi.Get_size())
            mpi.finalize()
            return info

        assert Simulator(3).run(main).rank_results[1] == (1, 3)

    def test_host_staging_costs_time(self):
        """Listing 2's cupy->numpy->MPI->numpy->cupy staging penalty."""
        from repro.core import MCRCommunicator

        def mpi4py_run(ctx):
            mpi = Mpi4pyLike(ctx)
            mpi.Allreduce(ctx.virtual_tensor(4 << 20))
            mpi.finalize()
            return ctx.now

        def mcr_run(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            comm.all_reduce("mvapich2-gdr", ctx.virtual_tensor(4 << 20))
            comm.finalize()
            return ctx.now

        staged = max(Simulator(2).run(mpi4py_run).rank_results)
        direct = max(Simulator(2).run(mcr_run).rank_results)
        assert staged > direct * 1.2

    def test_send_recv(self):
        def main(ctx):
            mpi = Mpi4pyLike(ctx)
            if ctx.rank == 0:
                mpi.Send(ctx.arange(4), dest=1)
            else:
                buf = ctx.zeros(4)
                mpi.Recv(buf, source=0)
                assert np.array_equal(buf.data, np.arange(4))
            mpi.finalize()

        Simulator(2).run(main)


class TestFeatureMatrix:
    def test_all_frameworks_present(self):
        assert set(FEATURE_MATRIX) == {
            "horovod", "torch-distributed", "lbann", "mpi4py", "mcr-dl"
        }

    def test_mcr_dl_row_all_yes(self):
        row = FEATURE_MATRIX["mcr-dl"]
        assert row.point_to_point == "yes"
        assert row.collectives == "yes"
        assert row.vector_collectives == "yes"
        assert row.non_blocking == "yes"
        assert row.mixed_backend == "yes"
        assert row.backend_as_class == "yes"

    def test_competitors_have_gaps(self):
        for key in ("horovod", "torch-distributed", "lbann", "mpi4py"):
            row = FEATURE_MATRIX[key]
            assert "no" in (
                row.point_to_point, row.vector_collectives, row.mixed_backend,
                row.backend_as_class,
            ) or row.mixed_backend == "experimental", key

    def test_render_rows(self):
        rows = feature_table_rows()
        assert rows[0][0] == "Framework"
        assert len(rows) == 6
