"""End-to-end collective correctness through the full runtime.

Every operation of Listing 1 is exercised on real tensors across
several world sizes and backends; results are checked for bit-correct
data movement (the data plane is shared across backends, so one
stream-aware and one host-synchronized backend cover both paths).
"""

import numpy as np
import pytest

from repro.core import MCRCommunicator, ReduceOp
from repro.sim import Simulator

BACKENDS = ["nccl", "mvapich2-gdr"]


def spmd(world_size, fn, **sim_kw):
    """Run fn(ctx, comm) on every rank with both backends initialized."""

    def main(ctx):
        comm = MCRCommunicator(ctx, BACKENDS)
        out = fn(ctx, comm)
        comm.finalize()
        return out

    return Simulator(world_size, **sim_kw).run(main).rank_results


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("world", [1, 2, 4, 5])
class TestAllReduce:
    def test_sum(self, backend, world):
        def fn(ctx, comm):
            x = ctx.full(16, float(ctx.rank + 1))
            comm.all_reduce(backend, x)
            comm.synchronize()
            return x.data.copy()

        expected = sum(range(1, world + 1))
        for data in spmd(world, fn):
            assert np.allclose(data, expected)

    def test_max(self, backend, world):
        def fn(ctx, comm):
            x = ctx.full(4, float(ctx.rank))
            comm.all_reduce(backend, x, op=ReduceOp.MAX)
            comm.synchronize()
            return float(x.data[0])

        assert all(v == world - 1 for v in spmd(world, fn))


@pytest.mark.parametrize("backend", BACKENDS)
class TestRootedCollectives:
    def test_reduce_to_nonzero_root(self, backend):
        def fn(ctx, comm):
            x = ctx.full(8, float(ctx.rank + 1))
            comm.reduce(backend, x, root=2)
            comm.synchronize()
            return x.data.copy()

        results = spmd(4, fn)
        assert np.allclose(results[2], 10.0)

    def test_bcast(self, backend):
        def fn(ctx, comm):
            x = ctx.full(8, float(ctx.rank))
            comm.bcast(backend, x, root=1)
            comm.synchronize()
            return float(x.data[0])

        assert spmd(3, fn) == [1.0, 1.0, 1.0]

    def test_gather(self, backend):
        def fn(ctx, comm):
            x = ctx.full(2, float(ctx.rank))
            out = ctx.zeros(2 * ctx.world_size) if ctx.rank == 0 else None
            comm.gather(backend, x, out, root=0)
            comm.synchronize()
            return out.data.copy() if out is not None else None

        results = spmd(3, fn)
        assert np.array_equal(results[0], [0, 0, 1, 1, 2, 2])
        assert results[1] is None

    def test_scatter(self, backend):
        def fn(ctx, comm):
            out = ctx.zeros(2)
            src = ctx.arange(2 * ctx.world_size) if ctx.rank == 0 else None
            comm.scatter(backend, out, src, root=0)
            comm.synchronize()
            return out.data.copy()

        results = spmd(3, fn)
        for r, data in enumerate(results):
            assert np.array_equal(data, [2 * r, 2 * r + 1])


@pytest.mark.parametrize("backend", BACKENDS)
class TestGatherFamily:
    def test_all_gather(self, backend):
        def fn(ctx, comm):
            x = ctx.full(3, float(ctx.rank))
            out = ctx.zeros(3 * ctx.world_size)
            comm.all_gather(backend, out, x)
            comm.synchronize()
            return out.data.copy()

        for data in spmd(4, fn):
            assert np.array_equal(
                data.reshape(4, 3), np.repeat(np.arange(4), 3).reshape(4, 3)
            )

    def test_all_gather_base_alias(self, backend):
        def fn(ctx, comm):
            x = ctx.full(1, float(ctx.rank))
            out = ctx.zeros(ctx.world_size)
            comm.all_gather_base(backend, out, x)
            comm.synchronize()
            return out.data.copy()

        for data in spmd(2, fn):
            assert np.array_equal(data, [0, 1])

    def test_reduce_scatter(self, backend):
        def fn(ctx, comm):
            x = ctx.arange(2 * ctx.world_size)
            out = ctx.zeros(2)
            comm.reduce_scatter(backend, out, x)
            comm.synchronize()
            return out.data.copy()

        results = spmd(3, fn)
        for r, data in enumerate(results):
            assert np.array_equal(data, [3 * 2 * r, 3 * (2 * r + 1)])


@pytest.mark.parametrize("backend", BACKENDS)
class TestAllToAll:
    def test_single(self, backend):
        def fn(ctx, comm):
            x = ctx.tensor(
                [10 * ctx.rank + j for j in range(ctx.world_size)]
            )
            out = ctx.zeros(ctx.world_size)
            comm.all_to_all_single(backend, out, x)
            comm.synchronize()
            return out.data.copy()

        results = spmd(3, fn)
        for j, data in enumerate(results):
            assert np.array_equal(data, [10 * i + j for i in range(3)])

    def test_tensor_lists_variable_sizes(self, backend):
        # rank i sends (i + j + 1) elements of value i to rank j
        def fn(ctx, comm):
            p = ctx.world_size
            inputs = [ctx.full(ctx.rank + j + 1, float(ctx.rank)) for j in range(p)]
            outputs = [ctx.zeros(i + ctx.rank + 1) for i in range(p)]
            comm.all_to_all(backend, outputs, inputs)
            comm.synchronize()
            return [o.data.copy() for o in outputs]

        results = spmd(3, fn)
        for j, outs in enumerate(results):
            for i, data in enumerate(outs):
                assert len(data) == i + j + 1
                assert np.all(data == i)


class TestBarrier:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_barrier_aligns_ranks(self, backend):
        def fn(ctx, comm):
            ctx.sleep(100.0 * ctx.rank)
            comm.barrier(backend)
            return ctx.now

        times = spmd(4, fn)
        assert max(times) - min(times) < 1e-9
        assert min(times) >= 300.0


class TestWorldSizeOne:
    def test_all_ops_trivial(self):
        def fn(ctx, comm):
            x = ctx.full(4, 3.0)
            comm.all_reduce("nccl", x)
            out = ctx.zeros(4)
            comm.all_gather("nccl", out, x)
            comm.barrier()
            return (x.data.copy(), out.data.copy())

        x, out = spmd(1, fn)[0]
        assert np.all(x == 3.0)
        assert np.all(out == 3.0)


class TestAuto:
    def test_auto_without_table_uses_fallback(self):
        def fn(ctx, comm):
            x = ctx.full(4, 1.0)
            comm.all_reduce("auto", x)
            comm.synchronize()
            return float(x.data[0])

        assert spmd(2, fn) == [2.0, 2.0]
