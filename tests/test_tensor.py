"""SimTensor semantics: metadata, movement, virtual tensors."""

import numpy as np
import pytest

from repro.tensor import (
    SimTensor,
    Device,
    arange,
    empty,
    from_numpy,
    full,
    ones,
    zeros,
    float16,
    float32,
    float64,
    int32,
    int64,
    uint8,
)
from repro.tensor.tensor import cat, virtual, CPU


class TestDevice:
    def test_parse_cpu(self):
        assert Device.parse("cpu") == Device("cpu")

    def test_parse_cuda_default_index(self):
        assert Device.parse("cuda") == Device("cuda", 0)

    def test_parse_cuda_index(self):
        assert Device.parse("cuda:3") == Device("cuda", 3)

    def test_parse_passthrough(self):
        d = Device("cuda", 2)
        assert Device.parse(d) is d

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Device.parse("tpu:0")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Device("npu", 0)

    def test_str(self):
        assert str(Device("cuda", 5)) == "cuda:5"
        assert str(CPU) == "cpu"

    def test_is_cuda(self):
        assert Device("cuda", 1).is_cuda
        assert not CPU.is_cuda


class TestFactories:
    def test_zeros_shape_and_value(self):
        t = zeros((3, 4))
        assert t.shape == (3, 4)
        assert np.all(t.data == 0)

    def test_ones(self):
        assert np.all(ones(5).data == 1)

    def test_full(self):
        assert np.all(full(4, 2.5).data == 2.5)

    def test_arange(self):
        assert np.array_equal(arange(4).data, [0, 1, 2, 3])

    def test_empty_is_deterministic(self):
        assert np.all(empty(8).data == 0)

    def test_dtype_selection(self):
        assert zeros(2, dtype=int64).dtype is int64
        assert zeros(2, dtype=float16).element_size() == 2

    def test_from_numpy_shares_memory(self):
        a = np.zeros(4, dtype=np.float32)
        t = from_numpy(a)
        t.data[0] = 7
        assert a[0] == 7

    def test_device_placement(self):
        t = zeros(2, device="cuda:1")
        assert t.device == Device("cuda", 1)
        assert t.is_cuda


class TestMetadata:
    def test_numel_element_size_nbytes(self):
        t = zeros((2, 3), dtype=float64)
        assert t.numel() == 6
        assert t.element_size() == 8
        assert t.nbytes() == 48

    def test_contiguity(self):
        t = from_numpy(np.zeros((4, 4), dtype=np.float32)[:, ::2])
        assert not t.is_contiguous()
        assert t.contiguous().is_contiguous()

    def test_view_flat_requires_contiguous(self):
        t = from_numpy(np.zeros((4, 4), dtype=np.float32)[:, ::2])
        with pytest.raises(ValueError):
            t.view_flat()

    def test_rejects_non_array(self):
        with pytest.raises(TypeError):
            SimTensor([1, 2, 3])

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            SimTensor(np.zeros(2, dtype=np.complex128))


class TestOps:
    def test_clone_is_independent(self):
        t = ones(3)
        c = t.clone()
        c.data[0] = 9
        assert t.data[0] == 1

    def test_to_same_device_is_identity(self):
        t = zeros(3)
        assert t.to("cpu") is t

    def test_to_other_device_copies(self):
        t = zeros(3)
        g = t.cuda(2)
        g.data[0] = 5
        assert t.data[0] == 0
        assert g.device.index == 2

    def test_copy_inplace(self):
        a, b = zeros(4), arange(4)
        a.copy_(b)
        assert np.array_equal(a.data, b.data)

    def test_copy_size_mismatch(self):
        with pytest.raises(ValueError):
            zeros(4).copy_(zeros(5))

    def test_fill(self):
        assert np.all(zeros(4).fill_(3.0).data == 3)

    def test_chunk(self):
        parts = arange(8).chunk(4)
        assert len(parts) == 4
        assert np.array_equal(parts[1].data, [2, 3])

    def test_chunk_shares_storage(self):
        t = zeros(8)
        t.chunk(2)[0].data[0] = 4
        assert t.data[0] == 4

    def test_chunk_indivisible(self):
        with pytest.raises(ValueError):
            arange(7).chunk(2)

    def test_arithmetic(self):
        a, b = arange(3), ones(3)
        assert np.array_equal((a + b).data, [1, 2, 3])
        assert np.array_equal((a - b).data, [-1, 0, 1])
        assert np.array_equal((a * 2).data, [0, 2, 4])
        assert np.allclose((a / 2).data, [0, 0.5, 1.0])

    def test_allclose(self):
        assert arange(3).allclose(np.array([0, 1, 2], dtype=np.float32))

    def test_reshape(self):
        assert arange(6).reshape(2, 3).shape == (2, 3)

    def test_identity_equality_and_hash(self):
        a, b = zeros(2), zeros(2)
        assert a == a and a != b
        assert len({a, b}) == 2


class TestVirtual:
    def test_declares_size_without_storage(self):
        v = virtual(1_000_000)
        assert v.numel() == 1_000_000
        assert v.nbytes() == 4_000_000
        assert v.data.size == 1
        assert v.is_virtual

    def test_real_tensor_is_not_virtual(self):
        assert not zeros(4).is_virtual

    def test_clone_preserves_virtual(self):
        assert virtual(100).clone().numel() == 100

    def test_virtual_numel_must_cover_storage(self):
        with pytest.raises(ValueError):
            SimTensor(np.zeros(10, dtype=np.float32), virtual_numel=5)

    def test_cat_real(self):
        c = cat([arange(2), arange(3)])
        assert np.array_equal(c.data, [0, 1, 0, 1, 2])

    def test_cat_with_virtual_is_virtual(self):
        c = cat([virtual(100), arange(4)])
        assert c.is_virtual
        assert c.numel() == 104

    def test_cat_empty(self):
        with pytest.raises(ValueError):
            cat([])
