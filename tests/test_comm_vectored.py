"""Vectored collectives (gatherv / scatterv / all_gatherv / all_to_allv).

Table I's differentiator: MCR-DL supports them on *every* backend —
including NCCL, which has no native vectored collectives.
"""

import numpy as np
import pytest

from repro.core import MCRCommunicator, ValidationError
from repro.sim import Simulator

BACKENDS = ["nccl", "mvapich2-gdr"]


def spmd(world_size, fn):
    def main(ctx):
        comm = MCRCommunicator(ctx, BACKENDS)
        out = fn(ctx, comm)
        comm.finalize()
        return out

    return Simulator(world_size).run(main).rank_results


@pytest.mark.parametrize("backend", BACKENDS)
class TestGatherv:
    def test_uneven_contributions(self, backend):
        rcounts = [1, 2, 3]

        def fn(ctx, comm):
            x = ctx.full(rcounts[ctx.rank], float(ctx.rank + 1))
            out = ctx.zeros(6) if ctx.rank == 0 else None
            comm.gatherv(backend, x, out, rcounts=rcounts, root=0)
            comm.synchronize()
            return out.data.copy() if out is not None else None

        results = spmd(3, fn)
        assert np.array_equal(results[0], [1, 2, 2, 3, 3, 3])

    def test_explicit_displacements(self, backend):
        rcounts, displs = [1, 1], [3, 0]

        def fn(ctx, comm):
            x = ctx.full(1, float(ctx.rank + 5))
            out = ctx.zeros(4).fill_(-1.0) if ctx.rank == 0 else None
            comm.gatherv(backend, x, out, rcounts=rcounts, displs=displs, root=0)
            comm.synchronize()
            return out.data.copy() if out is not None else None

        results = spmd(2, fn)
        assert np.array_equal(results[0], [6, -1, -1, 5])


@pytest.mark.parametrize("backend", BACKENDS)
class TestScatterv:
    def test_uneven_chunks(self, backend):
        scounts = [2, 1]

        def fn(ctx, comm):
            out = ctx.zeros(scounts[ctx.rank])
            src = ctx.arange(3) if ctx.rank == 0 else None
            comm.scatterv(backend, out, src, scounts=scounts, root=0)
            comm.synchronize()
            return out.data.copy()

        results = spmd(2, fn)
        assert np.array_equal(results[0], [0, 1])
        assert np.array_equal(results[1], [2])


@pytest.mark.parametrize("backend", BACKENDS)
class TestAllGatherv:
    def test_every_rank_gets_everything(self, backend):
        rcounts = [2, 1, 3]

        def fn(ctx, comm):
            x = ctx.full(rcounts[ctx.rank], float(ctx.rank))
            out = ctx.zeros(6)
            comm.all_gatherv(backend, out, x, rcounts=rcounts)
            comm.synchronize()
            return out.data.copy()

        for data in spmd(3, fn):
            assert np.array_equal(data, [0, 0, 1, 2, 2, 2])


@pytest.mark.parametrize("backend", BACKENDS)
class TestAllToAllv:
    def test_asymmetric_exchange(self, backend):
        # 2 ranks: rank 0 sends 1 elem to itself, 2 to rank 1;
        # rank 1 sends 2 to rank 0, 1 to itself.
        scounts = {0: [1, 2], 1: [2, 1]}
        rcounts = {0: [1, 2], 1: [2, 1]}

        def fn(ctx, comm):
            x = ctx.tensor([10 * ctx.rank + k for k in range(3)])
            out = ctx.zeros(3)
            comm.all_to_allv(
                backend, out, x,
                scounts=scounts[ctx.rank], rcounts=rcounts[ctx.rank],
            )
            comm.synchronize()
            return out.data.copy()

        results = spmd(2, fn)
        assert np.array_equal(results[0], [0, 10, 11])
        assert np.array_equal(results[1], [1, 2, 12])

    def test_zero_counts_allowed(self, backend):
        def fn(ctx, comm):
            x = ctx.arange(2)
            out = ctx.zeros(2).fill_(-1.0)
            counts = [2, 0] if ctx.rank == 0 else [0, 2]
            rcv = [2, 0] if ctx.rank == 0 else [0, 2]
            comm.all_to_allv(backend, out, x, scounts=counts, rcounts=rcv)
            comm.synchronize()
            return out.data.copy()

        results = spmd(2, fn)
        assert np.array_equal(results[0], [0, 1])
        assert np.array_equal(results[1], [0, 1])


class TestVectoredValidation:
    def _run(self, fn, world=2):
        def main(ctx):
            comm = MCRCommunicator(ctx, BACKENDS)
            fn(ctx, comm)
            comm.finalize()

        Simulator(world).run(main)

    def test_missing_counts_rejected(self):
        with pytest.raises(ValidationError, match="requires counts"):
            self._run(lambda ctx, comm: comm.gatherv("nccl", ctx.zeros(2), ctx.zeros(4)))

    def test_wrong_counts_length_rejected(self):
        with pytest.raises(ValidationError, match="length"):
            self._run(
                lambda ctx, comm: comm.all_gatherv(
                    "nccl", ctx.zeros(4), ctx.zeros(2), rcounts=[1, 1, 1]
                )
            )

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError, match="negative"):
            self._run(
                lambda ctx, comm: comm.all_gatherv(
                    "nccl", ctx.zeros(4), ctx.zeros(2), rcounts=[-1, 2]
                )
            )

    def test_input_smaller_than_count_rejected(self):
        with pytest.raises(ValidationError, match="smaller"):
            self._run(
                lambda ctx, comm: comm.gatherv(
                    "nccl", ctx.zeros(1),
                    ctx.zeros(8) if ctx.rank == 0 else None,
                    rcounts=[4, 4], root=0,
                )
            )
