"""The simulated (end-to-end) tuning path reproduces Table II's bands.

The fast analytic tuner backs the benchmarks; this validates that the
paper-faithful path — actually running the micro-benchmarks through the
runtime, as the real tuning suite does — lands on the same winners.
"""

import pytest

from repro.backends.ops import OpFamily
from repro.cluster import lassen
from repro.core import Tuner

BACKENDS = ["mvapich2-gdr", "nccl", "msccl"]


@pytest.fixture(scope="module")
def simulated_table():
    tuner = Tuner(lassen(), BACKENDS, mode="simulated", iterations=3, warmup=1)
    report = tuner.build_table(
        world_sizes=[16],
        message_sizes=[256, 2048, 4096, 8192, 16384, 32768],
        ops=[OpFamily.ALLGATHER],
    )
    return report.table


class TestSimulatedTableII:
    def test_small_band(self, simulated_table):
        for msg in (256, 2048):
            assert simulated_table.lookup("allgather", 16, msg) == "mvapich2-gdr"

    def test_mid_band(self, simulated_table):
        for msg in (4096, 8192):
            assert simulated_table.lookup("allgather", 16, msg) == "nccl"

    def test_large_band(self, simulated_table):
        for msg in (16384, 32768):
            assert simulated_table.lookup("allgather", 16, msg) == "msccl"


class TestSimulatedMeasurements:
    def test_simulated_exceeds_analytic_by_dispatch_margin(self):
        """End-to-end numbers include the synchronization the analytic
        path doesn't; they must be close but never smaller."""
        analytic = Tuner(lassen(), BACKENDS, mode="analytic")
        simulated = Tuner(lassen(), BACKENDS, mode="simulated", iterations=3)
        for msg in (2048, 1 << 18):
            a = analytic.measure("nccl", OpFamily.ALLREDUCE, msg, 8)
            s = simulated.measure("nccl", OpFamily.ALLREDUCE, msg, 8)
            assert s >= a * 0.95
            assert s <= a * 3.0 + 50.0

    @pytest.mark.parametrize(
        "op",
        [
            OpFamily.REDUCE_SCATTER,
            OpFamily.BROADCAST,
            OpFamily.REDUCE,
            OpFamily.GATHER,
            OpFamily.SCATTER,
        ],
    )
    def test_simulated_covers_every_default_op(self, op):
        tuner = Tuner(lassen(), ["nccl"], mode="simulated", iterations=2)
        latency = tuner.measure("nccl", op, 4096, 4)
        assert latency > 0
