"""Property-based tests on the deferred GPU task graph."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Simulator

# A random single-GPU stream program: each instruction launches a kernel
# on one of three streams, optionally gated on an event recorded earlier.
instr = st.fixed_dictionaries(
    {
        "stream": st.sampled_from(["s0", "s1", "s2"]),
        "duration": st.floats(1.0, 200.0),
        "record": st.booleans(),
        "wait_last_event": st.booleans(),
        "host_sleep": st.floats(0.0, 20.0),
    }
)


@given(program=st.lists(instr, min_size=1, max_size=24))
@settings(max_examples=50, deadline=None)
def test_random_stream_programs_resolve_consistently(program):
    def main(ctx):
        nodes = []
        last_event = None
        for step in program:
            if step["host_sleep"]:
                ctx.sleep(step["host_sleep"])
            stream = ctx.stream(step["stream"])
            if step["wait_last_event"] and last_event is not None:
                stream.wait_event(last_event)
            node = ctx.launch(step["duration"], stream=stream, label="k")
            nodes.append((node, step))
            if step["record"]:
                last_event = ctx.record_event(stream)
        ctx.device_synchronize()
        return [(n.start, n.end) for n, _ in nodes]

    results = Simulator(1).run(main).rank_results[0]

    # every node resolved with end = start + duration and start >= 0
    for (start, end), step in zip(results, program):
        assert start is not None and end is not None
        assert end == pytest.approx(start + step["duration"])
        assert start >= 0

    # FIFO per stream: starts are non-decreasing along each stream
    per_stream: dict = {}
    for (start, end), step in zip(results, program):
        per_stream.setdefault(step["stream"], []).append((start, end))
    for spans in per_stream.values():
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1  # strict serialization within a stream


@given(program=st.lists(instr, min_size=1, max_size=16))
@settings(max_examples=30, deadline=None)
def test_random_stream_programs_deterministic(program):
    def main(ctx):
        for step in program:
            stream = ctx.stream(step["stream"])
            ctx.launch(step["duration"], stream=stream)
            if step["host_sleep"]:
                ctx.sleep(step["host_sleep"])
        ctx.device_synchronize()
        return ctx.now

    assert Simulator(1).run(main).rank_results == Simulator(1).run(main).rank_results


@given(
    durations=st.lists(st.floats(1.0, 100.0), min_size=2, max_size=10),
)
@settings(max_examples=30, deadline=None)
def test_event_gating_transitive(durations):
    """A chain of cross-stream event waits is a happens-before chain:
    every kernel starts after its predecessor ends."""

    def main(ctx):
        spans = []
        event = None
        for i, duration in enumerate(durations):
            stream = ctx.stream(f"s{i % 4}")
            if event is not None:
                stream.wait_event(event)
            node = ctx.launch(duration, stream=stream)
            event = ctx.record_event(stream)
            spans.append(node)
        ctx.device_synchronize()
        return [(n.start, n.end) for n in spans]

    spans = Simulator(1).run(main).rank_results[0]
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= e1
