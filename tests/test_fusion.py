"""Tensor fusion (paper §V-E): B/T semantics, correctness, cross-backend
timeout-flush overlap."""

import numpy as np
import pytest

from repro.core import MCRCommunicator
from repro.ext.fusion import FusionConfig, TensorFusion
from repro.sim import Simulator


def spmd(world, fn, backends=("nccl", "mvapich2-gdr")):
    def main(ctx):
        comm = MCRCommunicator(ctx, list(backends))
        fusion = TensorFusion(comm, FusionConfig(
            max_buffer_bytes=1024, max_wait_us=50.0, bypass_threshold=1 << 20
        ))
        out = fn(ctx, comm, fusion)
        fusion.flush_all()
        comm.finalize()
        return out

    return Simulator(world).run(main).rank_results


class TestCorrectness:
    def test_fused_values_scattered_back(self):
        def fn(ctx, comm, fusion):
            a = ctx.full(4, float(ctx.rank))
            b = ctx.full(8, float(ctx.rank * 10))
            ha = fusion.all_reduce("nccl", a)
            hb = fusion.all_reduce("nccl", b)
            fusion.flush_all()
            ha.synchronize()
            hb.synchronize()
            return (a.data.copy(), b.data.copy())

        for a, b in spmd(3, fn):
            assert np.allclose(a, 0 + 1 + 2)
            assert np.allclose(b, 0 + 10 + 20)

    def test_wait_triggers_flush(self):
        def fn(ctx, comm, fusion):
            a = ctx.full(4, 1.0)
            h = fusion.all_reduce("nccl", a)
            h.synchronize()  # bucket below B: must self-flush, not hang
            return float(a.data[0])

        assert spmd(2, fn) == [2.0, 2.0]

    def test_wait_validates_backend_name(self):
        from repro.core.exceptions import MCRError

        def fn(ctx, comm, fusion):
            h = fusion.all_reduce("nccl", ctx.ones(4))
            fusion.flush_all()
            h.wait(backend="nccl")  # the posted backend is always valid
            h2 = fusion.all_reduce("nccl", ctx.ones(4))
            fusion.flush_all()
            with pytest.raises(MCRError, match="fused handle belongs"):
                h2.wait(backend="gloo")
            return True

        assert spmd(2, fn) == [True, True]

    def test_different_dtypes_not_fused_together(self):
        from repro.tensor import int64

        def fn(ctx, comm, fusion):
            a = ctx.full(4, 1.0)
            b = ctx.tensor(np.ones(4, dtype=np.int64), dtype=int64)
            fusion.all_reduce("nccl", a)
            fusion.all_reduce("nccl", b)
            return len(fusion._buckets)

        assert spmd(2, fn)[0] == 2


class TestBufferPolicy:
    def test_full_buffer_flushes_immediately(self):
        def fn(ctx, comm, fusion):
            # 1024-byte buffer; two 512-byte tensors fill it exactly
            fusion.all_reduce("nccl", ctx.zeros(128))
            fusion.all_reduce("nccl", ctx.zeros(128))
            return (fusion.stats["full_flushes"], fusion.pending_bytes)

        flushes, pending = spmd(2, fn)[0]
        assert flushes == 1
        assert pending == 0

    def test_large_tensors_bypass(self):
        def fn(ctx, comm, fusion):
            h = fusion.all_reduce("nccl", ctx.virtual_tensor(1 << 20))
            h.synchronize()
            return fusion.stats["bypass"]

        assert spmd(2, fn)[0] == 1

    def test_timeout_T_flushes_stale_bucket(self):
        def fn(ctx, comm, fusion):
            fusion.all_reduce("nccl", ctx.zeros(8))
            ctx.sleep(100.0)  # exceed T=50us
            fusion.all_reduce("nccl", ctx.zeros(8))  # triggers lazy timeout
            fusion.flush_all()
            return fusion.stats["timeout_flushes"]

        assert spmd(2, fn)[0] == 1

    def test_step_boundary_flush_counted_separately(self):
        def fn(ctx, comm, fusion):
            fusion.all_reduce("nccl", ctx.zeros(8))
            fusion.flush_all()  # below B and no timeout: a boundary flush
            return dict(fusion.stats)

        stats = spmd(2, fn)[0]
        assert stats["boundary_flushes"] == 1
        assert stats["full_flushes"] == 0
        assert stats["timeout_flushes"] == 0

    def test_fused_tensor_count_tracked(self):
        def fn(ctx, comm, fusion):
            for _ in range(5):
                fusion.all_reduce("nccl", ctx.zeros(8))
            return fusion.stats["fused_tensors"]

        assert spmd(2, fn)[0] == 5


class TestCrossBackendOverlap:
    def test_timeout_flush_prefers_least_busy_backend(self):
        """The §V-E optimization: a below-B timeout flush routes to the
        least busy backend's streams."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "msccl"])
            fusion = TensorFusion(
                comm,
                FusionConfig(max_buffer_bytes=1 << 30, max_wait_us=10.0),
            )
            # saturate NCCL's comm streams with a big op
            comm.all_reduce("nccl", ctx.virtual_tensor(8 << 20), async_op=True)
            fusion.all_reduce("nccl", ctx.zeros(8))
            ctx.sleep(50.0)
            fusion.all_reduce("nccl", ctx.zeros(8))  # timeout flush
            fusion.flush_all()
            comm.finalize()

        res = Simulator(2, trace=True).run(main)
        comm_labels = {r.label for r in res.tracer.filter(rank=0, category="comm")}
        assert any("msccl" in l for l in comm_labels)  # rerouted off NCCL

    def test_boundary_flush_reroutes_and_stays_symmetric(self):
        """A step-boundary flush below B takes the same least-busy
        reroute as a timeout flush — and every rank must land on the
        same target (the first flusher's choice is shared; per-rank
        choices would post mismatched collectives and deadlock)."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "msccl"])
            fusion = TensorFusion(
                comm,
                FusionConfig(max_buffer_bytes=1 << 30, max_wait_us=1e9),
            )
            comm.all_reduce("nccl", ctx.virtual_tensor(8 << 20), async_op=True)
            fusion.all_reduce("nccl", ctx.zeros(8))
            fusion.flush_all()
            comm.finalize()
            return dict(fusion.stats)

        res = Simulator(2, trace=True).run(main)
        comm_labels = {r.label for r in res.tracer.filter(rank=0, category="comm")}
        assert any("msccl" in l for l in comm_labels)
        assert res.rank_results[0]["boundary_flushes"] == 1

    def test_wait_tolerates_cross_backend_reroute(self):
        """After a timeout reroute, wait(backend=...) accepts both the
        posted backend and the one the flush actually ran on."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "msccl"])
            fusion = TensorFusion(
                comm,
                FusionConfig(max_buffer_bytes=1 << 30, max_wait_us=10.0),
            )
            comm.all_reduce("nccl", ctx.virtual_tensor(8 << 20), async_op=True)
            h = fusion.all_reduce("nccl", ctx.zeros(8))
            ctx.sleep(50.0)
            fusion.all_reduce("nccl", ctx.zeros(8))  # timeout-flushes h
            h.wait(backend="nccl")
            actual = h._inner.backend_name
            h.wait(backend=actual)
            fusion.flush_all()
            comm.finalize()
            return actual

        assert Simulator(2).run(main).rank_results[0] == "msccl"

    def test_overlap_disabled_keeps_backend(self):
        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "msccl"])
            fusion = TensorFusion(
                comm,
                FusionConfig(
                    max_buffer_bytes=1 << 30,
                    max_wait_us=10.0,
                    cross_backend_overlap=False,
                ),
            )
            comm.all_reduce("nccl", ctx.virtual_tensor(8 << 20), async_op=True)
            fusion.all_reduce("nccl", ctx.zeros(8))
            ctx.sleep(50.0)
            fusion.all_reduce("nccl", ctx.zeros(8))
            fusion.flush_all()
            comm.finalize()

        res = Simulator(2, trace=True).run(main)
        comm_labels = {r.label for r in res.tracer.filter(rank=0, category="comm")}
        assert not any("msccl" in l for l in comm_labels)


class TestFusionBenefit:
    def test_fusion_beats_many_small_allreduces(self):
        """The reason fusion exists: N tiny ops cost N launches."""

        def run(fused: bool):
            def main(ctx):
                comm = MCRCommunicator(ctx, ["nccl"])
                tensors = [ctx.zeros(64) for _ in range(64)]
                if fused:
                    fusion = TensorFusion(comm, FusionConfig())
                    handles = [fusion.all_reduce("nccl", t) for t in tensors]
                    fusion.flush_all()
                    for h in handles:
                        h.synchronize()
                else:
                    handles = [
                        comm.all_reduce("nccl", t, async_op=True) for t in tensors
                    ]
                    for h in handles:
                        h.synchronize()
                comm.finalize()
                return ctx.now

            return max(Simulator(4).run(main).rank_results)

        assert run(fused=True) < run(fused=False)
