"""Pipeline-parallel model: schedule correctness and p2p usage."""

import pytest

from repro.cluster import lassen
from repro.models import BackendPlan, PipelineConfig, PipelineParallelModel, Trainer


@pytest.fixture
def trainer():
    return Trainer(lassen(max_nodes=8), steps=2, warmup=1)


class TestPipelineRuns:
    def test_pure_pipeline(self, trainer):
        model = PipelineParallelModel(PipelineConfig(layers=8))
        r = trainer.run(model, 4, BackendPlan.mixed())
        assert r.samples_per_sec > 0
        assert r.comm_by_family.get("p2p", 0) > 0

    def test_hybrid_pipeline_data_parallel(self, trainer):
        model = PipelineParallelModel(PipelineConfig(layers=8, stages=4))
        r = trainer.run(model, 8, BackendPlan.mixed())
        # hybrid: p2p between stages AND allreduce within DP groups
        assert r.comm_by_family.get("p2p", 0) > 0
        assert r.comm_by_family.get("allreduce", 0) > 0

    def test_indivisible_world_rejected(self, trainer):
        model = PipelineParallelModel(PipelineConfig(layers=8, stages=3))
        with pytest.raises(ValueError, match="divisible"):
            trainer.run(model, 4, BackendPlan.mixed())

    def test_samples_accounting(self):
        cfg = PipelineConfig(micro_batch=2, micro_batches=8, stages=4)
        model = PipelineParallelModel(cfg)
        # dp = 8 / 4 = 2 -> 2 * 8 * 2 samples per step
        assert model.samples_per_step(8) == 32

    def test_more_microbatches_better_utilization(self, trainer):
        """1F1B: pipeline bubble shrinks as micro-batch count grows."""
        few = trainer.run(
            PipelineParallelModel(PipelineConfig(layers=8, micro_batches=4)),
            4, BackendPlan.mixed(),
        )
        many = trainer.run(
            PipelineParallelModel(PipelineConfig(layers=8, micro_batches=16)),
            4, BackendPlan.mixed(),
        )
        # the warmup/drain bubble amortizes away: throughput rises
        assert many.samples_per_sec > few.samples_per_sec * 1.2

    def test_activation_bytes(self):
        cfg = PipelineConfig(hidden=2048, seq_len=1024, micro_batch=1)
        assert cfg.activation_bytes() == 1024 * 2048 * 2
