"""Backend classes: registry, properties, cost surfaces, extensibility."""

import pytest

from repro.backends import (
    Backend,
    BackendProperties,
    GlooBackend,
    MscclBackend,
    MvapichGdrBackend,
    NcclBackend,
    OpenMpiBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.backends.base import backend_class, canonical_name
from repro.backends.calibration import BackendTuning, OpTuning
from repro.backends.ops import OpFamily
from repro.cluster import generic_cluster


@pytest.fixture
def system():
    return generic_cluster()


class TestRegistry:
    def test_all_paper_backends_registered(self):
        names = available_backends()
        assert {"nccl", "mvapich2-gdr", "openmpi", "msccl", "gloo"} <= set(names)

    def test_aliases(self):
        assert canonical_name("mv2-gdr") == "mvapich2-gdr"
        assert canonical_name("sccl") == "msccl"
        assert canonical_name("ompi") == "openmpi"
        assert canonical_name("mpi") == "mvapich2-gdr"
        assert canonical_name("NCCL") == "nccl"

    def test_create_by_alias(self, system):
        backend = create_backend("sccl", 0, 4, system)
        assert isinstance(backend, MscclBackend)

    def test_unknown_backend(self, system):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("rccl", 0, 4, system)

    def test_backend_class_lookup(self):
        assert backend_class("nccl") is NcclBackend

    def test_register_new_backend_class(self, system):
        """Paper C6: extending MCR-DL with a new library is one subclass."""

        class OneCclBackend(Backend):
            properties = BackendProperties(
                name="test-oneccl",
                display_name="oneCCL",
                stream_aware=False,
                cuda_aware=True,
                native_vector_collectives=True,
                native_nonblocking=True,
                native_gather_scatter=True,
                abi="mpich",
                mpi_compliant=True,
            )
            tuning = BackendTuning(call_overhead_us=3.0, default=OpTuning())

            def algorithm_for(self, family, nbytes, p):
                if family is OpFamily.ALLTOALL:
                    return "pairwise_alltoall"
                if family is OpFamily.ALLGATHER:
                    return "ring_allgather"
                return "ring_allreduce"

        register_backend(OneCclBackend, aliases=("oneccl-test",))
        backend = create_backend("oneccl-test", 0, 4, system)
        cost = backend.collective_cost_us(
            OpFamily.ALLREDUCE, 1 << 20, 4, system.comm_path(4)
        )
        assert cost > 0

    def test_conflicting_registration_rejected(self):
        class Impostor(Backend):
            properties = NcclBackend.properties
            tuning = NcclBackend.tuning

            def algorithm_for(self, family, nbytes, p):
                return "ring_allreduce"

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Impostor)


class TestProperties:
    def test_stream_awareness(self):
        assert NcclBackend.properties.stream_aware
        assert MscclBackend.properties.stream_aware
        assert not MvapichGdrBackend.properties.stream_aware
        assert not OpenMpiBackend.properties.stream_aware
        assert not GlooBackend.properties.stream_aware

    def test_cuda_awareness(self):
        assert NcclBackend.properties.cuda_aware
        assert MvapichGdrBackend.properties.cuda_aware
        assert not GlooBackend.properties.cuda_aware

    def test_nccl_gaps(self):
        """NCCL lacks gather/scatter and vectored collectives (§III-C)."""
        props = NcclBackend.properties
        assert not props.native_gather_scatter
        assert not props.native_vector_collectives
        assert not props.mpi_compliant

    def test_mpi_backends_complete(self):
        for cls in (MvapichGdrBackend, OpenMpiBackend):
            assert cls.properties.native_vector_collectives
            assert cls.properties.native_gather_scatter
            assert cls.properties.mpi_compliant

    def test_abi_families(self):
        assert NcclBackend.properties.abi == MscclBackend.properties.abi
        assert MvapichGdrBackend.properties.abi != OpenMpiBackend.properties.abi

    def test_supports_reflects_capabilities(self, system):
        nccl = create_backend("nccl", 0, 4, system)
        assert nccl.supports(OpFamily.ALLREDUCE)
        assert not nccl.supports(OpFamily.GATHER)
        assert not nccl.supports(OpFamily.ALLGATHER, vector=True)
        mpi = create_backend("mvapich2-gdr", 0, 4, system)
        assert mpi.supports(OpFamily.GATHER)
        assert mpi.supports(OpFamily.ALLGATHER, vector=True)


class TestCostSurface:
    @pytest.mark.parametrize("name", ["nccl", "mvapich2-gdr", "openmpi", "msccl", "gloo"])
    def test_every_family_priceable(self, name, system):
        backend = create_backend(name, 0, 8, system)
        path = system.comm_path(8)
        for family in OpFamily:
            if family is OpFamily.P2P:
                cost = backend.p2p_cost_us(4096, same_node=True)
            else:
                cost = backend.collective_cost_us(family, 4096, 8, path)
            assert cost > 0, (name, family)

    def test_vector_variant_costs_more(self, system):
        backend = create_backend("mvapich2-gdr", 0, 8, system)
        path = system.comm_path(8)
        plain = backend.collective_cost_us(OpFamily.GATHER, 4096, 8, path)
        vectored = backend.collective_cost_us(OpFamily.GATHER, 4096, 8, path, vector=True)
        assert vectored > plain

    def test_emulated_vector_costlier_on_nccl(self, system):
        path = system.comm_path(8)
        nccl = create_backend("nccl", 0, 8, system)
        extra_nccl = nccl.collective_cost_us(
            OpFamily.GATHER, 4096, 8, path, vector=True
        ) - nccl.collective_cost_us(OpFamily.GATHER, 4096, 8, path)
        mpi = create_backend("mvapich2-gdr", 0, 8, system)
        extra_mpi = mpi.collective_cost_us(
            OpFamily.GATHER, 4096, 8, path, vector=True
        ) - mpi.collective_cost_us(OpFamily.GATHER, 4096, 8, path)
        assert extra_nccl > extra_mpi  # p2p emulation penalty

    def test_gloo_staging_penalty(self, system):
        path = system.comm_path(8)
        gloo = create_backend("gloo", 0, 8, system)
        nccl = create_backend("nccl", 0, 8, system)
        nbytes = 1 << 20
        assert gloo.staging_cost_us(nbytes) > 0
        assert nccl.staging_cost_us(nbytes) == 0
        assert gloo.collective_cost_us(
            OpFamily.ALLREDUCE, nbytes, 8, path
        ) > nccl.collective_cost_us(OpFamily.ALLREDUCE, nbytes, 8, path)

    def test_p2p_intra_cheaper_than_inter(self, system):
        backend = create_backend("mvapich2-gdr", 0, 8, system)
        assert backend.p2p_cost_us(1 << 20, same_node=True) < backend.p2p_cost_us(
            1 << 20, same_node=False
        )

    def test_invalid_world_size(self, system):
        backend = create_backend("nccl", 0, 8, system)
        with pytest.raises(ValueError):
            backend.collective_cost_us(OpFamily.ALLREDUCE, 4, 0, system.comm_path(4))

    def test_lifecycle(self, system):
        backend = create_backend("nccl", 0, 4, system)
        assert not backend.initialized
        backend.init()
        assert backend.initialized
        backend.finalize()
        assert not backend.initialized
