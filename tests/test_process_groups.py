"""Process groups: sub-communicators over rank subsets (MPI semantics)."""

import numpy as np
import pytest

from repro.core import BackendError, MCRCommunicator
from repro.sim import DeadlockError, Simulator


class TestGroupBasics:
    def test_group_rank_and_size(self):
        def main(ctx):
            if ctx.rank in (1, 3):
                comm = MCRCommunicator(ctx, ["nccl"], ranks=[1, 3], comm_id="odd")
                info = (comm.rank, comm.world_size, comm.get_rank(), comm.get_size())
                comm.finalize()
                return info
            return None

        results = Simulator(4).run(main).rank_results
        assert results[1] == (0, 2, 0, 2)
        assert results[3] == (1, 2, 1, 2)

    def test_collective_within_group_only(self):
        def main(ctx):
            group = [0, 1] if ctx.rank < 2 else [2, 3]
            comm = MCRCommunicator(
                ctx, ["nccl"], ranks=group, comm_id=f"g{group[0]}"
            )
            x = ctx.full(4, float(ctx.rank + 1))
            comm.all_reduce("nccl", x)
            comm.synchronize()
            comm.finalize()
            return float(x.data[0])

        results = Simulator(4).run(main).rank_results
        assert results[:2] == [3.0, 3.0]  # 1 + 2
        assert results[2:] == [7.0, 7.0]  # 3 + 4

    def test_group_local_root(self):
        def main(ctx):
            if ctx.rank == 0:
                return None
            comm = MCRCommunicator(ctx, ["nccl"], ranks=[1, 2, 3], comm_id="tail")
            x = ctx.full(2, float(ctx.rank))
            comm.bcast("nccl", x, root=1)  # group rank 1 == global rank 2
            comm.synchronize()
            comm.finalize()
            return float(x.data[0])

        results = Simulator(4).run(main).rank_results
        assert results[1:] == [2.0, 2.0, 2.0]

    def test_group_local_p2p_peers(self):
        def main(ctx):
            if ctx.rank == 0:
                return None
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"], ranks=[1, 2], comm_id="pair")
            if comm.rank == 0:  # global rank 1
                comm.send("mvapich2-gdr", ctx.full(1, 42.0), dst=1)
                comm.finalize()
                return None
            buf = ctx.zeros(1)
            comm.recv("mvapich2-gdr", buf, src=0)
            comm.finalize()
            return float(buf.data[0])

        results = Simulator(3).run(main).rank_results
        assert results[2] == 42.0

    def test_non_member_rejected(self):
        def main(ctx):
            MCRCommunicator(ctx, ["nccl"], ranks=[1], comm_id="x")

        with pytest.raises(BackendError, match="does not belong"):
            Simulator(2).run(main)

    def test_out_of_range_rank_rejected(self):
        def main(ctx):
            MCRCommunicator(ctx, ["nccl"], ranks=[0, 9], comm_id="x")

        with pytest.raises(BackendError, match="out of range"):
            Simulator(2).run(main)

    def test_duplicate_ranks_rejected(self):
        def main(ctx):
            MCRCommunicator(ctx, ["nccl"], ranks=[0, 0, 1], comm_id="x")

        with pytest.raises(BackendError, match="duplicate ranks"):
            Simulator(2).run(main)


class TestGroupIsolation:
    def test_same_comm_id_different_groups_do_not_collide(self):
        """Two disjoint groups using the same comm_id must not match."""

        def main(ctx):
            group = [0, 1] if ctx.rank < 2 else [2, 3]
            comm = MCRCommunicator(ctx, ["nccl"], ranks=group, comm_id="shared")
            x = ctx.full(1, float(ctx.rank))
            comm.all_reduce("nccl", x)
            comm.synchronize()
            comm.finalize()
            return float(x.data[0])

        results = Simulator(4).run(main).rank_results
        assert results == [1.0, 1.0, 5.0, 5.0]

    def test_world_and_subgroup_coexist(self):
        def main(ctx):
            world = MCRCommunicator(ctx, ["nccl"], comm_id="w")
            pair = MCRCommunicator(
                ctx, ["nccl"], ranks=[(ctx.rank // 2) * 2, (ctx.rank // 2) * 2 + 1],
                comm_id=f"pair{ctx.rank // 2}",
            )
            a = ctx.full(1, 1.0)
            b = ctx.full(1, 1.0)
            world.all_reduce("nccl", a)
            pair.all_reduce("nccl", b)
            world.synchronize()
            pair.synchronize()
            out = (float(a.data[0]), float(b.data[0]))
            world.finalize()
            pair.finalize()
            return out

        results = Simulator(4).run(main).rank_results
        assert all(r == (4.0, 2.0) for r in results)

    def test_partial_group_participation_deadlocks(self):
        """A group collective missing one member hangs — and is caught."""

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"], ranks=[0, 1], comm_id="g")
            if ctx.rank == 0:
                comm.all_reduce("nccl", ctx.zeros(2))
            comm.finalize()

        with pytest.raises(DeadlockError):
            Simulator(2).run(main)


class TestGroupTopologyAwareness:
    def test_intra_node_group_faster_than_cross_node(self):
        from repro.cluster import lassen

        def run(ranks, comm_id):
            def main(ctx):
                if ctx.rank not in ranks:
                    return None
                comm = MCRCommunicator(ctx, ["nccl"], ranks=ranks, comm_id=comm_id)
                t0 = ctx.now
                h = comm.all_reduce("nccl", ctx.virtual_tensor(1 << 20), async_op=True)
                h.synchronize()
                elapsed = ctx.now - t0
                comm.finalize()
                return elapsed

            results = Simulator(8, system=lassen()).run(main).rank_results
            return max(r for r in results if r is not None)

        intra = run([0, 1], "intra")  # same Lassen node (4 GPUs/node)
        inter = run([0, 4], "inter")  # different nodes
        assert intra < inter


class TestMixedPpnGroups:
    """End-to-end collectives on a group whose members are spread
    unevenly across nodes ({0,1,2,4} on lassen: 3 + 1), with and
    without the dispatch plan cache."""

    RANKS = [0, 1, 2, 4]

    def _run(self, plan_cache=True):
        from repro.cluster import lassen
        from repro.core import MCRConfig

        ranks = self.RANKS

        def main(ctx):
            if ctx.rank not in ranks:
                return None
            comm = MCRCommunicator(
                ctx,
                ["nccl", "mvapich2-gdr"],
                ranks=ranks,
                comm_id="mixed-ppn",
                config=MCRConfig(plan_cache=plan_cache),
            )
            g, p = comm.rank, comm.world_size
            red = ctx.full(4, float(g + 1))
            comm.all_reduce("nccl", red)
            bc = ctx.full(2, float(g))
            comm.bcast("mvapich2-gdr", bc, root=3)
            gat = ctx.zeros(p)
            comm.all_gather("nccl", gat, ctx.full(1, float(g)))
            a2a = ctx.zeros(p)
            comm.all_to_all_single(
                "mvapich2-gdr", a2a, ctx.tensor([10.0 * g + j for j in range(p)])
            )
            comm.synchronize()
            now = ctx.now
            comm.finalize()
            return (now, red.data.tobytes(), bc.data.tobytes(),
                    gat.data.copy(), a2a.data.copy())

        from repro.sim import Simulator

        return Simulator(8, system=lassen()).run(main).rank_results

    def test_collectives_correct_on_uneven_placement(self):
        results = self._run()
        for g, rank in enumerate(self.RANKS):
            _, red, bc, gat, a2a = results[rank]
            assert np.frombuffer(red, dtype=np.float32)[0] == 1 + 2 + 3 + 4
            assert np.frombuffer(bc, dtype=np.float32)[0] == 3.0
            assert np.array_equal(gat, np.arange(4.0))
            assert np.array_equal(a2a, [10.0 * i + g for i in range(4)])

    def test_plan_cache_byte_identity_on_groups(self):
        cached = self._run(plan_cache=True)
        uncached = self._run(plan_cache=False)
        for a, b in zip(cached, uncached):
            if a is None:
                assert b is None
                continue
            assert a[0] == b[0]  # same simulated completion time
            assert a[1] == b[1] and a[2] == b[2]
            assert np.array_equal(a[3], b[3]) and np.array_equal(a[4], b[4])
