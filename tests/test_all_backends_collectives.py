"""Every registered backend moves identical bytes.

The mix-and-match guarantee rests on backends differing only in time
and synchronization, never in data — exercised here for all five
in-tree libraries (covering the stream-aware, host-synchronized
CUDA-aware, and host-staged classes).
"""

import numpy as np
import pytest

from repro.core import MCRCommunicator, ReduceOp
from repro.sim import Simulator

ALL_BACKENDS = ["nccl", "mvapich2-gdr", "openmpi", "msccl", "gloo", "ucc"]


def spmd(world, backend, fn):
    def main(ctx):
        comm = MCRCommunicator(ctx, [backend])
        out = fn(ctx, comm)
        comm.finalize()
        return out

    return Simulator(world).run(main).rank_results


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestEveryBackend:
    def test_all_reduce(self, backend):
        def fn(ctx, comm):
            x = ctx.full(8, float(ctx.rank + 1))
            comm.all_reduce(backend, x)
            comm.synchronize()
            return float(x.data[0])

        assert spmd(3, backend, fn) == [6.0, 6.0, 6.0]

    def test_all_gather(self, backend):
        def fn(ctx, comm):
            out = ctx.zeros(3)
            comm.all_gather(backend, out, ctx.full(1, float(ctx.rank)))
            comm.synchronize()
            return out.data.copy()

        for data in spmd(3, backend, fn):
            assert np.array_equal(data, [0, 1, 2])

    def test_all_to_all_single(self, backend):
        def fn(ctx, comm):
            x = ctx.tensor([10.0 * ctx.rank, 10.0 * ctx.rank + 1])
            out = ctx.zeros(2)
            comm.all_to_all_single(backend, out, x)
            comm.synchronize()
            return out.data.copy()

        results = spmd(2, backend, fn)
        assert np.array_equal(results[0], [0, 10])
        assert np.array_equal(results[1], [1, 11])

    def test_vectored_gatherv(self, backend):
        """Vectored collectives on every backend — the Table I claim."""
        rcounts = [1, 2]

        def fn(ctx, comm):
            x = ctx.full(rcounts[ctx.rank], float(ctx.rank + 1))
            out = ctx.zeros(3) if ctx.rank == 0 else None
            comm.gatherv(backend, x, out, rcounts=rcounts, root=0)
            comm.synchronize()
            return out.data.copy() if out is not None else None

        results = spmd(2, backend, fn)
        assert np.array_equal(results[0], [1, 2, 2])

    def test_nonblocking(self, backend):
        """Non-blocking ops on every backend — the Table I claim."""

        def fn(ctx, comm):
            x = ctx.full(4, 1.0)
            h = comm.all_reduce(backend, x, op=ReduceOp.MAX, async_op=True)
            h.synchronize()
            return float(x.data[0])

        assert spmd(2, backend, fn) == [1.0, 1.0]

    def test_barrier(self, backend):
        def fn(ctx, comm):
            ctx.sleep(ctx.rank * 50.0)
            comm.barrier(backend)
            return ctx.now

        times = spmd(3, backend, fn)
        assert max(times) - min(times) < 1e-9


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("backend", ALL_BACKENDS[1:])
    def test_same_result_as_nccl(self, backend):
        """Same program, different backend, bit-identical data."""

        def program(chosen):
            def fn(ctx, comm):
                rng = np.random.default_rng(ctx.rank)
                x = ctx.tensor(rng.normal(size=12).astype(np.float32))
                comm.all_reduce(chosen, x)
                out = ctx.zeros(12 * ctx.world_size)
                comm.all_gather(chosen, out, x)
                comm.synchronize()
                return out.data.copy()

            return spmd(3, chosen, fn)

        reference = program("nccl")
        other = program(backend)
        for a, b in zip(reference, other):
            assert np.allclose(a, b, rtol=1e-6)

    def test_gloo_slowest_nccl_among_fastest_large_allreduce(self):
        def elapsed(backend):
            def fn(ctx, comm):
                h = comm.all_reduce(backend, ctx.virtual_tensor(8 << 20), async_op=True)
                h.synchronize()
                return ctx.now

            return max(spmd(4, backend, fn))

        times = {b: elapsed(b) for b in ALL_BACKENDS}
        assert max(times, key=times.get) == "gloo"  # host staging
        assert times["nccl"] <= min(times[b] for b in ("openmpi", "ucc", "gloo"))
