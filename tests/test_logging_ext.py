"""Communication logging extension (paper §V-E; feeds Figs. 1 and 12)."""

import pytest

from repro.core import MCRCommunicator, MCRConfig
from repro.sim import Simulator


def run_logged(fn, world=2):
    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"], config=MCRConfig(enable_logging=True))
        fn(ctx, comm)
        comm.finalize()

    res = Simulator(world).run(main)
    return res.shared["comm_logger"]


class TestRecording:
    def test_every_rank_logs_each_collective(self):
        logger = run_logged(
            lambda ctx, comm: comm.all_reduce("nccl", ctx.zeros(64)), world=3
        )
        recs = [r for r in logger.records if r.family == "allreduce"]
        assert len(recs) == 3
        assert {r.rank for r in recs} == {0, 1, 2}

    def test_record_fields(self):
        logger = run_logged(lambda ctx, comm: comm.all_reduce("nccl", ctx.zeros(64)))
        rec = logger.records[0]
        assert rec.backend == "nccl"
        assert rec.nbytes == 256
        assert rec.end > rec.start
        assert rec.duration > 0

    def test_duration_is_transfer_not_queueing(self):
        """A late-posted op's record must not include its wait for peers."""

        def fn(ctx, comm):
            ctx.sleep(ctx.rank * 10_000.0)
            comm.all_reduce("mvapich2-gdr", ctx.virtual_tensor(1024))

        logger = run_logged(fn)
        for rec in logger.records:
            if rec.family == "allreduce":
                assert rec.duration < 1_000.0

    def test_p2p_logged_for_both_endpoints(self):
        def fn(ctx, comm):
            if ctx.rank == 0:
                comm.send("nccl", ctx.zeros(8), dst=1)
            else:
                comm.recv("nccl", ctx.zeros(8), src=0)

        logger = run_logged(fn)
        p2p = [r for r in logger.records if r.family == "p2p"]
        assert {r.rank for r in p2p} == {0, 1}

    def test_async_ops_logged_on_completion(self):
        def fn(ctx, comm):
            h = comm.all_reduce("nccl", ctx.zeros(64), async_op=True)
            h.synchronize()

        logger = run_logged(fn)
        assert any(r.async_op for r in logger.records)


class TestAggregation:
    def make_logger(self):
        def fn(ctx, comm):
            comm.all_reduce("nccl", ctx.virtual_tensor(1 << 18))
            comm.all_to_all_single(
                "mvapich2-gdr", ctx.virtual_tensor(1 << 18), ctx.virtual_tensor(1 << 18)
            )
            comm.all_to_all_single(
                "mvapich2-gdr", ctx.virtual_tensor(1 << 18), ctx.virtual_tensor(1 << 18)
            )

        return run_logged(fn, world=4)

    def test_totals_by_family(self):
        logger = self.make_logger()
        totals = logger.total_time_by_family()
        assert set(totals) >= {"allreduce", "alltoall"}
        assert all(v > 0 for v in totals.values())
        # the two alltoalls cost roughly twice one of them
        a2a = [r.duration for r in logger.records if r.family == "alltoall" and r.rank == 0]
        assert len(a2a) == 2
        assert totals["alltoall"] == pytest.approx(sum(a2a))

    def test_totals_by_backend(self):
        totals = self.make_logger().total_time_by_backend()
        assert set(totals) >= {"nccl", "mvapich2-gdr"}

    def test_per_rank_filter(self):
        logger = self.make_logger()
        rank0 = logger.total_time_by_family(rank=0)
        avg = logger.total_time_by_family()
        assert rank0.keys() == avg.keys()

    def test_op_counts(self):
        counts = self.make_logger().op_counts()
        assert counts["alltoall"] == 2 * 4  # 2 ops x 4 ranks
        assert counts["allreduce"] == 4

    def test_bytes_by_family(self):
        by_bytes = self.make_logger().bytes_by_family()
        assert by_bytes["alltoall"] == 2 * 4 * (1 << 20)

    def test_clear(self):
        logger = self.make_logger()
        logger.clear()
        assert logger.records == []
        assert logger.events == []


class TestPerRankAverages:
    def test_shared_logger_records_world_size(self):
        logger = run_logged(
            lambda ctx, comm: comm.all_reduce("nccl", ctx.zeros(16)), world=3
        )
        assert logger.world_size == 3

    def test_average_divides_by_world_size_not_observed_ranks(self):
        """Ranks that logged nothing for a family still count in the
        per-rank average; dividing by observed ranks inflated it."""
        from repro.ext.logging_ext import CommLogger

        logger = CommLogger(world_size=4)
        logger.log(0, "p2p", "nccl", 64, 0.0, 10.0, False)
        logger.log(1, "p2p", "nccl", 64, 0.0, 10.0, False)
        assert logger.total_time_by_family()["p2p"] == pytest.approx(5.0)
        assert logger.total_time_by_backend()["nccl"] == pytest.approx(5.0)

    def test_direct_construction_keeps_observed_rank_fallback(self):
        from repro.ext.logging_ext import CommLogger

        logger = CommLogger()
        logger.log(0, "p2p", "nccl", 64, 0.0, 10.0, False)
        logger.log(1, "p2p", "nccl", 64, 0.0, 10.0, False)
        assert logger.total_time_by_family()["p2p"] == pytest.approx(10.0)
