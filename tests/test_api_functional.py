"""The module-level mcr_dl API (paper Listing 1) bound per rank."""

import numpy as np
import pytest

from repro import mcr_dl
from repro.core import MCRError, ReduceOp
from repro.sim import Simulator


class TestLifecycle:
    def test_init_get_finalize(self):
        def main(ctx):
            comm = mcr_dl.init(["nccl", "mvapich2-gdr"])
            info = (
                mcr_dl.get_backends(),
                mcr_dl.get_size(),
                mcr_dl.get_rank(),
                mcr_dl.get_size("nccl"),
            )
            mcr_dl.finalize()
            return info

        res = Simulator(3).run(main)
        backends, size, rank, nccl_size = res.rank_results[1]
        assert backends == ["nccl", "mvapich2-gdr"]
        assert size == 3 and nccl_size == 3
        assert rank == 1

    def test_single_backend_string(self):
        def main(ctx):
            mcr_dl.init("nccl")
            names = mcr_dl.get_backends()
            mcr_dl.finalize()
            return names

        assert Simulator(1).run(main).rank_results[0] == ["nccl"]

    def test_double_init_rejected(self):
        def main(ctx):
            mcr_dl.init("nccl")
            mcr_dl.init("nccl")

        with pytest.raises(MCRError, match="init"):
            Simulator(1).run(main)

    def test_use_before_init_rejected(self):
        def main(ctx):
            mcr_dl.get_backends()

        with pytest.raises(MCRError, match="init"):
            Simulator(1).run(main)

    def test_use_outside_simulator_rejected(self):
        with pytest.raises(MCRError, match="rank context"):
            mcr_dl.init("nccl")

    def test_available_lists_registered_backends(self):
        names = mcr_dl.available()
        for expected in ("nccl", "mvapich2-gdr", "openmpi", "msccl", "gloo"):
            assert expected in names

    def test_reinit_after_finalize(self):
        def main(ctx):
            mcr_dl.init("nccl")
            mcr_dl.finalize()
            mcr_dl.init("mvapich2-gdr")
            names = mcr_dl.get_backends()
            mcr_dl.finalize()
            return names

        assert Simulator(1).run(main).rank_results[0] == ["mvapich2-gdr"]


class TestListing3And4:
    def test_listing3_pattern(self):
        """h = all_reduce(async) ; independent compute ; h.wait()."""

        def main(ctx):
            mcr_dl.init("nccl")
            x = ctx.rand(1024)
            h = mcr_dl.all_reduce("nccl", x, async_op=True)
            ctx.launch(100.0, label="y+y")
            h.wait("nccl")
            mcr_dl.finalize()

        Simulator(4).run(main)

    def test_listing4_mixed_backends(self):
        def main(ctx):
            mcr_dl.init(["nccl", "mvapich2-gdr"])
            x, y = ctx.rand(1024), ctx.rand(1024)
            h1 = mcr_dl.all_reduce("nccl", x, async_op=True)
            h2 = mcr_dl.all_reduce("mvapich2-gdr", y, async_op=True)
            ctx.launch(50.0, label="z+z")
            h1.wait()
            h2.wait()
            mcr_dl.finalize()

        Simulator(4).run(main)


class TestFullSurface:
    """Every Listing-1 operation callable through the functional API."""

    def test_collectives(self):
        def main(ctx):
            mcr_dl.init(["nccl", "mvapich2-gdr"])
            p = ctx.world_size
            x = ctx.full(p * 2, float(ctx.rank))
            out = ctx.zeros(p * 2)
            mcr_dl.all_reduce("nccl", x)
            mcr_dl.all_reduce("nccl", x, op=ReduceOp.MAX)
            mcr_dl.reduce("mvapich2-gdr", x, root=0)
            mcr_dl.bcast("nccl", x, root=0)
            mcr_dl.broadcast("nccl", x, root=0)
            mcr_dl.all_gather("nccl", ctx.zeros(p * p * 2), x)
            mcr_dl.all_gather_base("nccl", ctx.zeros(p * p * 2), x)
            mcr_dl.reduce_scatter("mvapich2-gdr", ctx.zeros(2), x)
            mcr_dl.all_to_all_single("mvapich2-gdr", out, x)
            mcr_dl.all_to_all(
                "nccl",
                [ctx.zeros(2) for _ in range(p)],
                [ctx.zeros(2) for _ in range(p)],
            )
            mcr_dl.gather("mvapich2-gdr", x, ctx.zeros(p * p * 2) if ctx.rank == 0 else None)
            mcr_dl.scatter("mvapich2-gdr", ctx.zeros(2), ctx.zeros(p * 2) if ctx.rank == 0 else None)
            mcr_dl.gatherv("nccl", x, ctx.zeros(p * 2 * p) if ctx.rank == 0 else None, rcounts=[2] * p)
            mcr_dl.scatterv("nccl", ctx.zeros(2), ctx.arange(2 * p) if ctx.rank == 0 else None, scounts=[2] * p)
            mcr_dl.all_gatherv("mvapich2-gdr", ctx.zeros(2 * p), ctx.zeros(2), rcounts=[2] * p)
            mcr_dl.all_to_allv("mvapich2-gdr", out, x, scounts=[2] * p, rcounts=[2] * p)
            mcr_dl.barrier()
            mcr_dl.synchronize()
            mcr_dl.finalize()

        Simulator(3).run(main)

    def test_p2p(self):
        def main(ctx):
            mcr_dl.init("mvapich2-gdr")
            if ctx.rank == 0:
                mcr_dl.send("mvapich2-gdr", ctx.arange(4), dst=1)
                h = mcr_dl.isend("mvapich2-gdr", ctx.arange(4), dst=1)
                h.synchronize()
            else:
                buf = ctx.zeros(4)
                mcr_dl.recv("mvapich2-gdr", buf, src=0)
                h = mcr_dl.irecv("mvapich2-gdr", buf, src=0)
                h.synchronize()
                assert np.array_equal(buf.data, np.arange(4))
            mcr_dl.finalize()

        Simulator(2).run(main)

    def test_set_tuning_table(self):
        from repro.core import TuningTable

        def main(ctx):
            mcr_dl.init(["nccl", "mvapich2-gdr"])
            table = TuningTable()
            table.add("allreduce", 2, 256, "mvapich2-gdr")
            mcr_dl.set_tuning_table(table)
            mcr_dl.all_reduce("auto", ctx.zeros(64))
            mcr_dl.finalize()

        Simulator(2).run(main)

    def test_paper_api_names_exist(self):
        """The exact function names of Listing 1."""
        for name in [
            "get_backends", "init", "finalize", "synchronize", "get_size",
            "get_rank", "send", "recv", "all_to_all_single", "all_to_all",
            "all_reduce", "all_gather", "gather", "scatter", "reduce",
            "reduce_scatter", "bcast", "gatherv", "scatterv", "all_to_allv",
            "all_gatherv",
        ]:
            assert callable(getattr(mcr_dl, name)), name
