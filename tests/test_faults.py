"""Fault injection and graceful degradation.

The failure-handling contract: seeded faults are deterministic (same
seed, same trace), transient backend faults are retried and the op still
returns correct values, permanent failures quarantine the backend and
fail over to a survivor instead of deadlocking, per-op deadlines raise
:class:`CommTimeoutError` with per-rank diagnostics, and a healthy run
is bit-identical whether or not the fault machinery exists.
"""

import numpy as np
import pytest

from repro.core import (
    BackendError,
    CommTimeoutError,
    MCRCommunicator,
    MCRConfig,
)
from repro.sim import Simulator
from repro.sim.faults import (
    BackendFault,
    FaultInjector,
    FaultSpec,
    LinkFault,
    LinkSchedule,
)


def transient(backend="nccl", prob=1.0, max_consecutive=2):
    return FaultSpec(
        seed=7,
        backend_faults=(
            BackendFault(backend=backend, kind="transient", prob=prob,
                         max_consecutive=max_consecutive),
        ),
    )


def permanent(backend="nccl", at_op=3):
    return FaultSpec(
        backend_faults=(
            BackendFault(backend=backend, kind="permanent", at_op=at_op),
        ),
    )


def allreduce_job(backends, n_ops=3, dispatch=None, config=None):
    """An SPMD program of ``n_ops`` summed allreduces; returns the data."""

    def main(ctx):
        comm = MCRCommunicator(ctx, list(backends), config=config)
        x = ctx.full(16, float(ctx.rank + 1))
        for _ in range(n_ops):
            comm.all_reduce(dispatch or backends[0], x)
            comm.synchronize()
        comm.finalize()
        return x.data.copy()

    return main


class TestSpecValidation:
    def test_transient_needs_valid_prob(self):
        with pytest.raises(ValueError):
            BackendFault("nccl", "transient", prob=1.5).validate()

    def test_permanent_needs_at_op(self):
        with pytest.raises(ValueError):
            BackendFault("nccl", "permanent").validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BackendFault("nccl", "intermittent").validate()

    def test_empty_link_window_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(start_us=100.0, end_us=100.0).validate()

    def test_enabled_property(self):
        assert not FaultSpec().enabled
        assert transient().enabled
        assert FaultSpec(link_faults=(LinkFault(),)).enabled
        assert FaultSpec(stragglers={0: 2.0}).enabled


class TestSpecParsing:
    def test_compact_spec_round_trip(self):
        spec = FaultSpec.parse(
            "seed=7;backend=nccl:transient:prob=0.2:max=3;"
            "backend=mvapich2-gdr:permanent:at=5;"
            "link=2000:8000:1.8:period=500:duty=0.25;"
            "straggler=1:1.4;stragglers=2:1.6"
        )
        assert spec.seed == 7
        t, p = spec.backend_faults
        assert (t.backend, t.kind, t.prob, t.max_consecutive) == ("nccl", "transient", 0.2, 3)
        assert (p.backend, p.kind, p.at_op) == ("mvapich2-gdr", "permanent", 5)
        (lf,) = spec.link_faults
        assert (lf.start_us, lf.end_us, lf.factor) == (2000.0, 8000.0, 1.8)
        assert (lf.period_us, lf.duty) == (500.0, 0.25)
        assert spec.stragglers == {1: 1.4}
        assert (spec.random_stragglers, spec.straggler_scale) == (2, 1.6)

    def test_open_ended_link_window(self):
        (lf,) = FaultSpec.parse("link=1000:inf:x2.5").link_faults
        assert lf.end_us == float("inf")
        assert lf.factor == 2.5

    def test_json_spec(self):
        spec = FaultSpec.parse(
            '{"seed": 3, "backend_faults": '
            '[{"backend": "nccl", "kind": "permanent", "at_op": 2}], '
            '"stragglers": {"0": 2.0}}'
        )
        assert spec.seed == 3
        assert spec.backend_faults[0].at_op == 2
        assert spec.stragglers == {0: 2.0}

    @pytest.mark.parametrize("bad", [
        "frobnicate=1",
        "backend=nccl",
        "backend=nccl:transient:prob=2.0",
        "backend=nccl:permanent",
        "link=100:50:2.0",
        "seed",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)


class TestLinkFaults:
    def test_window_bounds(self):
        lf = LinkFault(start_us=1000.0, end_us=2000.0, factor=3.0)
        assert lf.factor_at(999.9) == 1.0
        assert lf.factor_at(1000.0) == 3.0
        assert lf.factor_at(1999.9) == 3.0
        assert lf.factor_at(2000.0) == 1.0

    def test_flapping_duty_cycle(self):
        lf = LinkFault(
            start_us=1000.0, end_us=2000.0, factor=2.0, period_us=100.0, duty=0.25
        )
        assert lf.factor_at(1010.0) == 2.0  # phase 0.10 < duty
        assert lf.factor_at(1030.0) == 1.0  # phase 0.30 >= duty
        assert lf.factor_at(1110.0) == 2.0  # next period, degraded again

    def test_schedule_composes_multiplicatively(self):
        sched = LinkSchedule((
            LinkFault(start_us=0.0, end_us=100.0, factor=2.0),
            LinkFault(start_us=50.0, end_us=150.0, factor=3.0),
        ))
        assert sched.factor_at(25.0) == 2.0
        assert sched.factor_at(75.0) == 6.0
        assert sched.factor_at(125.0) == 3.0
        assert sched.factor_at(200.0) == 1.0

    def test_degraded_link_slows_the_job(self):
        main = allreduce_job(["nccl"], n_ops=4)
        healthy = Simulator(4).run(main)
        degraded = Simulator(
            4, faults=FaultSpec(link_faults=(LinkFault(factor=4.0),))
        ).run(main)
        assert degraded.elapsed_us > healthy.elapsed_us
        # degradation changes timing, never data
        for h, d in zip(healthy.rank_results, degraded.rank_results):
            assert np.allclose(h, d)

    def test_stream_path_arrival_time_reflects_pre_post_sync(self):
        """Regression: on the stream path, ``sync.pre_post`` can advance
        the host clock (naive mode synchronizes the default stream
        before posting).  The arrival timestamp must be taken *after*
        that sync, or a fault window opening during the sync is missed
        and the transfer runs at healthy speed inside a degraded window.
        """
        config = MCRConfig(synchronization="naive")

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"], config=config)
            # a long default-stream kernel: pre_post must drain it, which
            # advances the host well past the fault window's opening edge
            ctx.launch(1000.0, label="compute")
            comm.all_reduce("nccl", ctx.virtual_tensor(262_144))
            comm.finalize()
            return ctx.now

        healthy = Simulator(2).run(main)
        degraded = Simulator(
            2,
            faults=FaultSpec(
                # opens after the op is requested but before the default-
                # stream drain completes: only the post-sync timestamp
                # lands inside it
                link_faults=(LinkFault(start_us=500.0, factor=4.0),)
            ),
        ).run(main)
        assert degraded.elapsed_us > healthy.elapsed_us


class TestStragglers:
    def test_random_stragglers_seeded(self):
        spec = FaultSpec(seed=11, random_stragglers=2, straggler_scale=1.6)
        picked = spec.straggler_map(8)
        assert len(picked) == 2
        assert all(s == 1.6 for s in picked.values())
        assert picked == spec.straggler_map(8)  # same seed, same picks
        other = FaultSpec(seed=12, random_stragglers=2, straggler_scale=1.6)
        assert picked != other.straggler_map(8) or True  # seeds may collide...
        assert FaultSpec(seed=11, random_stragglers=8).straggler_map(4).keys() <= set(range(4))

    def test_explicit_straggler_wins_over_random(self):
        spec = FaultSpec(seed=11, random_stragglers=8, straggler_scale=1.6,
                         stragglers={3: 2.5})
        assert spec.straggler_map(8)[3] == 2.5

    def test_spec_stragglers_populate_simulator(self):
        sim = Simulator(8, faults=FaultSpec(seed=11, random_stragglers=2))
        assert len(sim.stragglers) == 2

    def test_simulator_explicit_map_wins(self):
        sim = Simulator(
            8,
            stragglers={0: 2.0},
            faults=FaultSpec(stragglers={0: 1.4, 1: 1.4}),
        )
        assert sim.stragglers[0] == 2.0
        assert sim.stragglers[1] == 1.4


class TestInjectorDeterminism:
    def test_same_query_same_decision(self):
        inj = FaultInjector(transient(prob=0.5))
        a = [inj.backend_fault("comm0", "nccl", i) for i in range(50)]
        b = [inj.backend_fault("comm0", "nccl", i) for i in range(50)]
        assert a == b
        assert any(d is not None for d in a)
        assert any(d is None for d in a)

    def test_seed_changes_decisions(self):
        hits = []
        for seed in (1, 2):
            spec = transient(prob=0.5)
            spec.seed = seed
            inj = FaultInjector(spec)
            hits.append(
                [i for i in range(50) if inj.backend_fault("c", "nccl", i)]
            )
        assert hits[0] != hits[1]

    def test_p2p_never_sees_permanent(self):
        inj = FaultInjector(permanent(at_op=1))
        assert inj.backend_fault("c", "nccl", 5, p2p=False).kind == "permanent"
        assert inj.backend_fault("c", "nccl", 5, p2p=True) is None

    def test_unlisted_backend_unaffected(self):
        inj = FaultInjector(transient(backend="nccl"))
        assert inj.backend_fault("c", "msccl", 1) is None


class TestTransientFaults:
    def run(self, spec, world=4, n_ops=3, backends=("nccl", "mvapich2-gdr")):
        return Simulator(world, faults=spec).run(
            allreduce_job(list(backends), n_ops=n_ops)
        )

    def test_retried_op_completes_with_correct_values(self):
        world, n_ops = 4, 3
        res = self.run(transient(prob=1.0, max_consecutive=2), world, n_ops)
        # repeated sum-allreduce: each op multiplies the common value by world
        expected = sum(range(1, world + 1)) * world ** (n_ops - 1)
        for data in res.rank_results:
            assert np.allclose(data, expected)

    def test_retries_are_logged(self):
        res = self.run(transient(prob=1.0, max_consecutive=2))
        logger = res.shared["comm_logger"]
        counts = logger.event_counts()
        assert counts.get("retry", 0) > 0
        assert counts.get("quarantine", 0) == 0
        retry = next(e for e in logger.events if e.kind == "retry")
        assert retry.backend == "nccl"
        assert "attempt" in retry.detail

    def test_retries_cost_simulated_time(self):
        healthy = self.run(FaultSpec(
            backend_faults=(BackendFault("nccl", "transient", prob=0.0),)
        ))
        faulted = self.run(transient(prob=1.0))
        assert faulted.elapsed_us > healthy.elapsed_us

    def test_same_seed_identical_event_trace(self):
        spec = transient(prob=0.5)
        trace = lambda res: [
            (e.kind, e.rank, e.backend, e.time_us, e.detail)
            for e in res.shared["comm_logger"].events
        ]
        a = trace(self.run(spec, n_ops=10))
        b = trace(self.run(spec, n_ops=10))
        assert a == b
        other = transient(prob=0.5)
        other.seed = 8
        assert trace(self.run(other, n_ops=10)) != a

    def test_exhausted_retries_quarantine_the_backend(self):
        # every attempt fails and the fault outlasts the retry budget:
        # the collective treats the library as dead and fails over
        spec = transient(prob=1.0, max_consecutive=10)
        res = self.run(spec, n_ops=2)
        counts = res.shared["comm_logger"].event_counts()
        assert counts.get("quarantine", 0) > 0
        assert counts.get("failover", 0) > 0
        expected = sum(range(1, 5)) * 4
        for data in res.rank_results:
            assert np.allclose(data, expected)


class TestPermanentFailover:
    def test_failover_completes_not_deadlocks(self):
        world, n_ops = 4, 5
        res = Simulator(world, faults=permanent(at_op=3)).run(
            allreduce_job(["nccl", "mvapich2-gdr"], n_ops=n_ops)
        )
        expected = sum(range(1, world + 1)) * world ** (n_ops - 1)
        for data in res.rank_results:
            assert np.allclose(data, expected)
        logger = res.shared["comm_logger"]
        counts = logger.event_counts()
        # every rank quarantines nccl once, then reroutes each later op
        assert counts["quarantine"] == world
        assert counts["failover"] >= world
        q = next(e for e in logger.events if e.kind == "quarantine")
        assert q.backend == "nccl"

    def test_auto_dispatch_avoids_quarantined_backend(self):
        res = Simulator(2, faults=permanent(at_op=1)).run(
            allreduce_job(["nccl", "mvapich2-gdr"], n_ops=3, dispatch="auto")
        )
        assert res.shared["comm_logger"].event_counts()["quarantine"] == 2
        for data in res.rank_results:
            assert np.allclose(data, 3 * 2 ** 2)

    def test_all_backends_failed_raises_backend_error(self):
        with pytest.raises(BackendError, match="permanently failed"):
            Simulator(2, faults=permanent(at_op=1)).run(
                allreduce_job(["nccl"], n_ops=1)
            )

    def test_p2p_transient_reroutes_without_quarantine(self):
        spec = transient(prob=1.0)
        # zero retry budget: every injected fault outlasts it, forcing the
        # reroute path deterministically
        config = MCRConfig(comm_max_retries=0)

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"], config=config)
            x = ctx.full(8, 5.0) if ctx.rank == 0 else ctx.zeros(8)
            if ctx.rank == 0:
                comm.send("nccl", x, dst=1)
            else:
                comm.recv("nccl", x, src=0)
            comm.finalize()
            return x.data.copy()

        res = Simulator(2, faults=spec).run(main)
        for data in res.rank_results:
            assert np.allclose(data, 5.0)
        counts = res.shared["comm_logger"].event_counts()
        assert counts.get("quarantine", 0) == 0  # single-op reroute only
        assert counts.get("failover", 0) > 0


class TestDeadlines:
    def test_missing_rank_times_out_with_diagnostics(self):
        # host-synchronized backend: the synchronous wait blocks on the
        # rendezvous flag, where the deadline is enforced (stream-aware
        # sync ops gate the stream instead and time out at wait()s)
        config = MCRConfig(op_deadline_us=500.0)

        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"], config=config)
            if ctx.rank == 0:
                comm.all_reduce("mvapich2-gdr", ctx.zeros(16))
            else:
                ctx.sleep(50_000.0)  # never posts
            comm.finalize()

        with pytest.raises(CommTimeoutError) as err:
            Simulator(2).run(main)
        assert err.value.rank == 0
        assert err.value.deadline_us == 500.0
        assert "never posted" in err.value.detail
        assert "ranks [1]" in err.value.detail

    def test_async_handle_deadline(self):
        config = MCRConfig(op_deadline_us=300.0)

        def main(ctx):
            comm = MCRCommunicator(ctx, ["nccl"], config=config)
            if ctx.rank == 0:
                h = comm.all_reduce("nccl", ctx.zeros(16), async_op=True)
                h.synchronize()
            else:
                ctx.sleep(50_000.0)
            comm.finalize()

        with pytest.raises(CommTimeoutError, match="never posted"):
            Simulator(2).run(main)

    def test_healthy_job_unaffected_by_deadline(self):
        world, n_ops = 4, 3
        base = allreduce_job(["nccl"], n_ops=n_ops)
        no_deadline = Simulator(world).run(base)
        with_deadline = Simulator(world).run(
            allreduce_job(["nccl"], n_ops=n_ops,
                          config=MCRConfig(op_deadline_us=1e9))
        )
        assert with_deadline.elapsed_us == no_deadline.elapsed_us
        for a, b in zip(no_deadline.rank_results, with_deadline.rank_results):
            assert np.allclose(a, b)


class TestHealthyPathUnchanged:
    def test_no_faults_bit_identical_timing(self):
        main = allreduce_job(["nccl", "mvapich2-gdr"], n_ops=4)
        plain = Simulator(4).run(main)
        gated = Simulator(4, faults=FaultSpec()).run(main)
        assert plain.elapsed_us == gated.elapsed_us
        for a, b in zip(plain.rank_results, gated.rank_results):
            assert np.array_equal(a, b)
