"""Golden-trace determinism tests for the scheduler fast paths.

The engine's direct-handoff optimizations (inline continue in
``_Proc.park``, run-ahead in ``wait_until``, the early-return in
``wait_flag``) are only admissible because they never reorder events:
simulated timestamps must be *byte-identical* to the pre-optimization
scheduler.  These tests pin that contract against golden traces that
were captured from the reference (pre-fast-path) engine.

``tests/golden/determinism_traces.json`` holds, for each scenario, the
exact per-rank ``ctx.now`` trace (and for the deadlock scenario, the
exact failure diagnostics).  JSON round-trips Python floats exactly
(``repr`` grammar), so equality below is bit-equality of timestamps.

To regenerate after an *intentional* timing-semantics change::

    PYTHONPATH=src python tests/test_determinism.py --regen

and review the diff — every changed number is a user-visible change in
simulated timing.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core import MCRCommunicator
from repro.sim import DeadlockError, Simulator

GOLDEN = pathlib.Path(__file__).parent / "golden" / "determinism_traces.json"


# ----------------------------------------------------------------------
# scenarios: each returns a JSON-serializable structure of simulated
# timestamps.  Keep these byte-stable: any edit invalidates the golden.
# ----------------------------------------------------------------------


def scenario_mixed_flag_heavy() -> dict:
    """Flag-heavy mixed-backend traffic: async collectives on two
    backends, cross-backend waits, p2p, barriers — the pattern that
    exercises every park/handoff path in one program."""

    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl", "mvapich2-gdr"])
        trace = []
        x = ctx.zeros(256)
        big = ctx.zeros(256 * ctx.world_size)
        for i in range(5):
            h1 = comm.all_reduce("nccl", x, async_op=True)
            h2 = comm.all_gather("mvapich2-gdr", big, x, async_op=True)
            trace.append(ctx.now)
            h1.wait()
            h2.wait()
            comm.synchronize()
            trace.append(ctx.now)
            if ctx.rank % 2 == 0 and ctx.rank + 1 < ctx.world_size:
                comm.send("nccl", x, ctx.rank + 1, tag=i)
            elif ctx.rank % 2 == 1:
                comm.recv("nccl", x, ctx.rank - 1, tag=i)
            trace.append(ctx.now)
            comm.barrier()
            trace.append(ctx.now)
        comm.finalize()
        return trace

    result = Simulator(8).run(main)
    return {"traces": result.rank_results, "elapsed_us": result.elapsed_us}


def scenario_p2p_with_bystanders() -> dict:
    """Repeated p2p between two ranks while others advance on timers —
    stresses the FIFO tie-break between timer wakes and flag fires."""

    def main(ctx):
        comm = MCRCommunicator(ctx, ["openmpi"])
        t = ctx.ones(64)
        trace = []
        for _ in range(10):
            if ctx.rank == 0:
                comm.send("openmpi", t, 1)
            elif ctx.rank == 1:
                comm.recv("openmpi", t, 0)
            else:
                ctx.sleep(3.0)
            trace.append(ctx.now)
        comm.finalize()
        return trace

    result = Simulator(4).run(main)
    return {"traces": result.rank_results, "elapsed_us": result.elapsed_us}


def scenario_deadlock() -> dict:
    """An asymmetric program (rank 0 skips the collective) must still
    deadlock with identical diagnostics: same blocked-rank reasons and
    the same virtual time of detection."""

    captured: dict = {}

    def main(ctx):
        comm = MCRCommunicator(ctx, ["nccl"])
        x = ctx.zeros(32)
        comm.all_reduce("nccl", x)
        comm.synchronize()
        captured[ctx.rank] = ctx.now
        if ctx.rank != 0:
            # everyone but rank 0 posts a second collective: no full
            # rendezvous can form, every live rank ends up parked
            comm.all_reduce("nccl", x)
            comm.synchronize()
        else:
            comm.finalize()
        return ctx.now

    with pytest.raises(DeadlockError) as err:
        Simulator(4).run(main)
    return {
        "blocked": dict(sorted(err.value.blocked.items())),
        "now_after_first_collective": {
            str(r): t for r, t in sorted(captured.items())
        },
    }


SCENARIOS = {
    "mixed_flag_heavy": scenario_mixed_flag_heavy,
    "p2p_with_bystanders": scenario_p2p_with_bystanders,
    "deadlock": scenario_deadlock,
}


# ----------------------------------------------------------------------
# tests
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN.exists():  # pragma: no cover - repo integrity
        pytest.fail(f"golden file missing: {GOLDEN}; regenerate with --regen")
    with GOLDEN.open() as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_matches_golden(name, golden):
    fresh = json.loads(json.dumps(SCENARIOS[name]()))
    assert fresh == golden[name], (
        f"simulated timestamps for {name!r} drifted from the reference "
        "scheduler — a fast path reordered events"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_stable_across_reruns(name):
    a = json.loads(json.dumps(SCENARIOS[name]()))
    b = json.loads(json.dumps(SCENARIOS[name]()))
    assert a == b


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/test_determinism.py --regen")
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    data = {name: json.loads(json.dumps(fn())) for name, fn in SCENARIOS.items()}
    with GOLDEN.open("w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN}")
