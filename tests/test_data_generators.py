"""Synthetic data generators (models.data) and straggler modeling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.data import (
    gating_token_counts,
    imbalance_factor,
    shard_counts,
    synthetic_token_batch,
    unique_row_fraction,
    zipfian_indices,
)
from repro.sim import Simulator


class TestZipfian:
    def test_indices_in_range(self):
        rng = np.random.default_rng(0)
        idx = zipfian_indices(rng, n_rows=1000, n_lookups=5000)
        assert idx.min() >= 0 and idx.max() < 1000

    def test_heavy_tail_concentrates_on_head(self):
        rng = np.random.default_rng(0)
        idx = zipfian_indices(rng, n_rows=100_000, n_lookups=10_000, exponent=1.05)
        head_share = np.mean(idx < 1000)  # top 1% of rows
        assert head_share > 0.3  # far above the uniform 1%

    def test_higher_exponent_more_skew(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        mild = zipfian_indices(rng1, 10_000, 5000, exponent=0.8)
        steep = zipfian_indices(rng2, 10_000, 5000, exponent=1.5)
        assert np.mean(steep < 100) > np.mean(mild < 100)

    def test_deterministic_under_seed(self):
        a = zipfian_indices(np.random.default_rng(7), 100, 50)
        b = zipfian_indices(np.random.default_rng(7), 100, 50)
        assert np.array_equal(a, b)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            zipfian_indices(rng, 0, 10)
        with pytest.raises(ValueError):
            zipfian_indices(rng, 10, 10, exponent=0)

    def test_unique_fraction_bounds(self):
        rng = np.random.default_rng(0)
        idx = zipfian_indices(rng, 1000, 500)
        frac = unique_row_fraction(idx, 1000)
        assert 0 < frac <= 0.5
        assert unique_row_fraction(np.array([], dtype=np.int64), 10) == 0.0


class TestShardCounts:
    def test_counts_conserve_total(self):
        rng = np.random.default_rng(0)
        idx = zipfian_indices(rng, 4096, 1000)
        counts = shard_counts(idx, 8)
        assert counts.sum() == 1000
        assert len(counts) == 8

    def test_zipf_shards_imbalanced(self):
        rng = np.random.default_rng(0)
        idx = zipfian_indices(rng, 100_000, 10_000, exponent=1.2)
        counts = shard_counts(idx, 16)
        assert imbalance_factor(counts) > 2.0  # shard 0 holds the head

    def test_empty(self):
        counts = shard_counts(np.array([], dtype=np.int64), 4)
        assert counts.tolist() == [0, 0, 0, 0]


class TestGating:
    def test_counts_conserve_tokens(self):
        rng = np.random.default_rng(0)
        counts = gating_token_counts(rng, 8192, 32)
        assert counts.sum() == 8192

    def test_lower_temperature_more_imbalance(self):
        hot = gating_token_counts(np.random.default_rng(3), 8192, 32, temperature=0.25)
        cool = gating_token_counts(np.random.default_rng(3), 8192, 32, temperature=4.0)
        assert imbalance_factor(hot) > imbalance_factor(cool)

    def test_imbalance_factor_balanced(self):
        assert imbalance_factor(np.array([5, 5, 5, 5])) == 1.0

    @given(
        tokens=st.integers(0, 4096),
        experts=st.integers(1, 64),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_gating_properties(self, tokens, experts, seed):
        rng = np.random.default_rng(seed)
        counts = gating_token_counts(rng, tokens, experts)
        assert counts.sum() == tokens
        assert (counts >= 0).all()
        assert len(counts) == experts


class TestTokenBatch:
    def test_shape_and_range(self):
        rng = np.random.default_rng(0)
        batch = synthetic_token_batch(rng, 4, 128, vocab=1000)
        assert batch.shape == (4, 128)
        assert batch.min() >= 0 and batch.max() < 1000


class TestStragglers:
    def test_straggler_slows_its_own_kernels(self):
        def main(ctx):
            node = ctx.launch(1000.0)
            ctx.stream_synchronize()
            return node.end - node.start

        res = Simulator(2, stragglers={1: 2.0}).run(main)
        assert res.rank_results[0] == 1000.0
        assert res.rank_results[1] == 2000.0

    def test_straggler_delays_collectives_for_everyone(self):
        from repro.core import MCRCommunicator

        def main(ctx):
            comm = MCRCommunicator(ctx, ["mvapich2-gdr"])
            ctx.launch(1000.0, label="compute")
            ctx.stream_synchronize()
            comm.all_reduce("mvapich2-gdr", ctx.zeros(16))
            comm.finalize()
            return ctx.now

        clean = max(Simulator(4).run(main).rank_results)
        skewed = max(Simulator(4, stragglers={3: 3.0}).run(main).rank_results)
        assert skewed > clean + 1500.0  # everyone waits for rank 3

    def test_invalid_straggler_spec(self):
        with pytest.raises(ValueError):
            Simulator(2, stragglers={5: 2.0})
        with pytest.raises(ValueError):
            Simulator(2, stragglers={0: 0.0})
