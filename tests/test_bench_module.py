"""Benchmark harness utilities: microbench, reporting, plotting."""

import json

import pytest

from repro.backends.ops import OpFamily
from repro.bench.microbench import (
    MICRO_MESSAGE_SIZES,
    effective_nbytes,
    framework_latency_us,
    framework_overhead_pct,
    omb_latency_us,
    overhead_pct,
    sweep_backends,
)
from repro.bench.plotting import ascii_chart, series_from_rows
from repro.bench.reporting import Report, format_table, save_report
from repro.cluster import lassen
from repro.core import MCRConfig


class TestMicrobench:
    def test_omb_reference_positive_and_monotone(self):
        system = lassen()
        small = omb_latency_us(system, "nccl", OpFamily.ALLREDUCE, 1024, 16)
        large = omb_latency_us(system, "nccl", OpFamily.ALLREDUCE, 1 << 22, 16)
        assert 0 < small < large

    def test_framework_latency_exceeds_omb(self):
        system = lassen()
        omb = omb_latency_us(system, "mvapich2-gdr", OpFamily.ALLREDUCE, 1 << 16, 4)
        fw = framework_latency_us(
            system, "mvapich2-gdr", OpFamily.ALLREDUCE, 1 << 16, 4, config=MCRConfig()
        )
        assert fw > omb

    def test_overhead_pct(self):
        assert overhead_pct(110.0, 100.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            overhead_pct(1.0, 0.0)

    def test_sweep_backends_shape(self):
        series = sweep_backends(
            lassen(), ["nccl", "msccl"], OpFamily.ALLGATHER, 8,
            message_sizes=[1024, 4096],
        )
        assert set(series) == {"nccl", "msccl"}
        assert [s for s, _ in series["nccl"]] == [1024, 4096]

    def test_nonblocking_costs_slightly_more(self):
        system = lassen()
        blocking = omb_latency_us(system, "mvapich2-gdr", OpFamily.ALLREDUCE, 4096, 8)
        nb = omb_latency_us(
            system, "mvapich2-gdr", OpFamily.ALLREDUCE, 4096, 8, nonblocking=True
        )
        assert nb > blocking

    def test_default_sweep_range(self):
        assert MICRO_MESSAGE_SIZES[0] == 1024
        assert MICRO_MESSAGE_SIZES[-1] == 64 * 1024 * 1024

    def test_effective_nbytes_rounds_to_world_multiple(self):
        # 60 bytes = 15 float32 elements; at world size 8 the framework
        # can only exercise 8 elements = 32 bytes
        assert effective_nbytes(60, 8) == 32
        assert effective_nbytes(1024, 8) == 1024  # exact multiple untouched
        assert effective_nbytes(1, 8) == 32  # floor: one element per rank

    def test_sweep_constructs_one_backend_per_name(self, monkeypatch):
        # perf guard: backend construction is hoisted out of the sweep
        # loop — a 17-size sweep must not build 17 backends per name
        from repro.bench import microbench

        built = []
        real = microbench.create_backend

        def counting(name, rank, world_size, system):
            built.append(name)
            return real(name, rank, world_size, system)

        microbench._cost_backend.cache_clear()
        monkeypatch.setattr(microbench, "create_backend", counting)
        try:
            sweep_backends(
                lassen(), ["nccl", "gloo"], OpFamily.ALLREDUCE, 8,
                message_sizes=[1024 * (2**i) for i in range(8)],
            )
            assert sorted(built) == ["gloo", "nccl"]
        finally:
            microbench._cost_backend.cache_clear()

    def test_overhead_prices_both_sides_at_one_payload(self):
        # regression: the framework side floored 60 bytes to 32 while the
        # OMB reference was still priced at 60, comparing the two sides
        # at different payloads
        system = lassen()
        awkward, ws = 60, 8
        fixed = framework_overhead_pct(
            system, "mvapich2-gdr", OpFamily.ALLREDUCE, awkward, ws
        )
        # same answer as asking at the already-effective size directly
        assert fixed == pytest.approx(
            framework_overhead_pct(
                system, "mvapich2-gdr", OpFamily.ALLREDUCE,
                effective_nbytes(awkward, ws), ws,
            )
        )
        # the mismatched pairing measurably disagrees
        mismatched = overhead_pct(
            framework_latency_us(system, "mvapich2-gdr", OpFamily.ALLREDUCE, awkward, ws),
            omb_latency_us(system, "mvapich2-gdr", OpFamily.ALLREDUCE, awkward, ws),
        )
        assert fixed != pytest.approx(mismatched, abs=1e-6)


class TestReporting:
    def make_report(self):
        r = Report("figX", "test figure", header=["a", "b"])
        r.add_row(1, 2.5)
        r.add_row(10, 25.0)
        r.add_note("hello")
        return r

    def test_render_contains_rows_and_notes(self):
        text = self.make_report().render()
        assert "figX" in text
        assert "25.00" in text
        assert "note: hello" in text

    def test_format_table_alignment(self):
        table = format_table(["col"], [[123456]])
        lines = table.splitlines()
        assert lines[0].strip() == "col"
        assert lines[2].strip() == "123456"

    def test_save_report_writes_txt_and_json(self, tmp_path):
        path = save_report(self.make_report(), base=tmp_path)
        assert path.exists()
        payload = json.loads((tmp_path / "results" / "figX.json").read_text())
        assert payload["experiment"] == "figX"
        assert payload["rows"] == [[1, 2.5], [10, 25.0]]

    def test_to_json_roundtrip_fields(self):
        payload = self.make_report().to_json()
        assert payload["header"] == ["a", "b"]
        assert payload["notes"] == ["hello"]


class TestPlotting:
    def test_chart_renders_all_series(self):
        chart = ascii_chart(
            {"one": [(1, 1), (2, 2)], "two": [(1, 2), (2, 4)]},
            width=20, height=8, title="t",
        )
        assert "t" in chart
        assert "o=one" in chart and "x=two" in chart
        assert "o" in chart

    def test_log_scales(self):
        chart = ascii_chart(
            {"s": [(1024, 10.0), (1 << 20, 1000.0)]},
            log_x=True, log_y=True, width=30, height=6,
        )
        assert "1.02e+03" in chart or "1.02e+3" in chart or "1024" in chart or "1.02" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": []})

    def test_flat_series_no_division_error(self):
        chart = ascii_chart({"s": [(1, 5), (2, 5)]}, width=10, height=4)
        assert "o" in chart

    def test_series_from_rows(self):
        rows = [(16, 1.0, 2.0), (32, 3.0, 4.0)]
        series = series_from_rows(rows, x_col=0, y_cols={"a": 1, "b": 2})
        assert series["a"] == [(16.0, 1.0), (32.0, 3.0)]
        assert series["b"][1] == (32.0, 4.0)
