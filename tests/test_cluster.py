"""Cluster topology: placement, paths, comm-path aggregation, systems."""

import pytest

from repro.cluster import (
    A100,
    IB_EDR,
    NVSWITCH,
    V100,
    LinkSpec,
    generic_cluster,
    lassen,
    thetagpu,
)


class TestLinkSpec:
    def test_transfer_time_alpha_beta(self):
        link = LinkSpec("x", latency_us=2.0, bandwidth_gbps=10.0)
        # 10 GB/s = 10_000 bytes/us
        assert link.transfer_us(10_000) == pytest.approx(3.0)

    def test_beta(self):
        link = LinkSpec("x", 1.0, 20.0)
        assert link.beta_us_per_byte == pytest.approx(1 / 20_000)


class TestGpuSpecs:
    def test_effective_flops_below_peak(self):
        assert V100.effective_fp16_flops() < V100.fp16_tflops * 1e12
        assert A100.effective_fp16_flops() > V100.effective_fp16_flops()


class TestPlacement:
    def test_dense_packing_lassen(self):
        sys = lassen()
        assert sys.gpus_per_node == 4
        assert sys.node_of(0) == 0
        assert sys.node_of(3) == 0
        assert sys.node_of(4) == 1

    def test_same_node(self):
        sys = thetagpu()  # 8 per node
        assert sys.same_node(0, 7)
        assert not sys.same_node(7, 8)

    def test_nodes_for_rounds_up(self):
        assert lassen().nodes_for(5) == 2
        assert lassen().nodes_for(4) == 1

    def test_validate_world_size(self):
        with pytest.raises(ValueError):
            thetagpu().validate_world_size(24 * 8 + 1)
        with pytest.raises(ValueError):
            lassen().validate_world_size(0)


class TestPaths:
    def test_intra_vs_inter_link(self):
        sys = thetagpu()
        assert sys.path(0, 1) is NVSWITCH
        assert sys.path(0, 8).name == "IB-HDR"

    def test_loopback_is_fast(self):
        sys = lassen()
        loop = sys.path(2, 2)
        assert loop.latency_us < sys.node.intra_link.latency_us


class TestCommPath:
    def test_single_node_uses_intra_only(self):
        path = lassen().comm_path(4)
        assert path.n_nodes == 1
        assert path.intra_fraction == 1.0
        assert path.alpha_us == lassen().node.intra_link.latency_us

    def test_multi_node_uses_inter_alpha(self):
        path = lassen().comm_path(8)
        assert path.n_nodes == 2
        assert path.spans_nodes
        assert path.alpha_us == IB_EDR.latency_us

    def test_beta_degrades_with_scale(self):
        sys = lassen()
        b8 = sys.comm_path(8).beta_us_per_byte
        b64 = sys.comm_path(64).beta_us_per_byte
        b256 = sys.comm_path(256).beta_us_per_byte
        assert b8 < b64 <= b256

    def test_intra_fraction_shrinks_with_scale(self):
        sys = thetagpu()
        assert sys.comm_path(16).intra_fraction > sys.comm_path(64).intra_fraction

    def test_single_rank(self):
        path = lassen().comm_path(1)
        assert path.n_nodes == 1
        assert path.ppn == 1


class TestSystems:
    def test_lassen_shape(self):
        sys = lassen()
        assert sys.max_nodes == 792
        assert sys.node.gpu is V100

    def test_thetagpu_shape(self):
        sys = thetagpu()
        assert sys.max_nodes == 24
        assert sys.node.gpu is A100
        assert sys.gpus_per_node == 8

    def test_generic_cluster_custom(self):
        sys = generic_cluster(gpus_per_node=2, max_nodes=10)
        assert sys.gpus_per_node == 2
        sys.validate_world_size(20)

    def test_host_staging_cost(self):
        sys = lassen()
        small = sys.host_staging_us(1024)
        big = sys.host_staging_us(1 << 20)
        assert big > small > 0


class TestGroupPathFabric:
    """comm_path_for_ranks must use the same fabric model as comm_path
    (regression: it applied the linear heuristic and raw link latency
    even when a detailed fabric was installed)."""

    def test_dense_group_matches_world_path(self):
        sys = lassen(detailed_fabric=True)
        dense = sys.comm_path(16)
        group = sys.comm_path_for_ranks(range(16))
        assert group.alpha_us == pytest.approx(dense.alpha_us)
        assert group.beta_us_per_byte == pytest.approx(dense.beta_us_per_byte)
        assert (group.n_nodes, group.ppn) == (dense.n_nodes, dense.ppn)

    def test_group_alpha_uses_fabric_latency(self):
        sys = lassen(detailed_fabric=True)
        path = sys.comm_path_for_ranks([0, 1, 2, 4])
        assert path.alpha_us == pytest.approx(
            sys.fabric.effective_inter_latency_us(sys.inter_link, 2)
        )
        # pre-fix this was the raw link latency, no switch hops
        assert path.alpha_us > sys.inter_link.latency_us

    def test_uneven_group_hand_computed(self):
        # {0,1,2,4} on lassen: 3 ranks on node 0 + 1 on node 1
        sys = lassen()
        path = sys.comm_path_for_ranks([0, 1, 2, 4])
        assert path.n_nodes == 2
        assert path.ppn == 3  # max per-node occupancy
        # intra pairs: 3*2 of 4*3 ordered pairs
        assert path.intra_fraction == pytest.approx(0.5)
        assert path.alpha_us == sys.inter_link.latency_us
        contention = 1.0 + sys.fabric_contention / (sys.max_nodes - 1)
        beta_inter = 1.0 / (sys.inter_link.bandwidth_gbps / 3 / contention * 1e3)
        expect = 0.5 * sys.node.intra_link.beta_us_per_byte + 0.5 * beta_inter
        assert path.beta_us_per_byte == pytest.approx(expect)
